//! Release-mode timing guards for the two hot paths fixed by the
//! shared-forest value core, so the exponential-interpreter and
//! exponential-optimizer regressions can never silently return:
//!
//! * `examples/compose.rs` was ~18 s release before the memoizing
//!   value-based evaluator (0.04 s after) — guarded at 10 s wall clock;
//! * `opt::optimize` on 20 nested value-doubling lets was ~5.8 s before the
//!   inlining growth budget (~15 ms after) — guarded at 50 ms.
//!
//! Plus the foxq-store acceptance bars: replaying a stored tape with
//! seek-based subtree skipping must stay ≥ 3× faster than re-parsing the
//! XML for a prefilter-eligible query (measured ~6×), and reading the
//! same query's matched events through the FET2 merged index cursor must
//! be ≥ 2× faster again than the FET1 prefilter seek replay (measured
//! ~2.6× at 2 MiB).
//!
//! Plus the foxq-obs acceptance bar: serving with full tracing enabled
//! (slow-query ring on every request + JSONL trace log) must stay within
//! 5% of default-config keep-alive throughput — the instrumentation is
//! atomics and a handful of clock reads per request, not a new hot path.
//!
//! The bounds are the PR's acceptance criteria; they sit orders of
//! magnitude below the pre-fix numbers (a regression cannot sneak under
//! them) while leaving 3–25× headroom over the measured post-fix times for
//! scheduler noise. All tests no-op in debug builds (debug constant factors
//! are not what they guard); CI runs them via `cargo test --release`.

use std::time::{Duration, Instant};

/// Skip (returning true) unless this is an optimized build.
fn debug_build() -> bool {
    if cfg!(debug_assertions) {
        eprintln!("perf_smoke: skipped (debug build; run with --release)");
        return true;
    }
    false
}

#[test]
fn composed_ft_ft_interpretation_is_subsecond() {
    if debug_build() {
        return;
    }
    use foxq::core::interp::run_mft;
    use foxq::core::parse_mft;
    use foxq::forest::term::parse_forest;
    let doubler = parse_mft("q(%t(x1) x2) -> q(x2) q(x2); q(eps) -> a();").unwrap();
    let composed = foxq::tt::compose_ft_ft(&doubler, &doubler);
    let f = parse_forest("w x y z").unwrap();
    let start = Instant::now();
    let direct = run_mft(&composed, &f).unwrap();
    let elapsed = start.elapsed();
    assert_eq!(direct.len(), 1 << 16);
    assert!(
        elapsed < Duration::from_secs(1),
        "accumulator-encoded FT∘FT interpretation took {elapsed:?} (was ~18 s \
         before the memoizing evaluator; must stay well under 1 s)"
    );
}

#[test]
fn optimizer_is_polynomial_on_nested_doubling_lets() {
    if debug_build() {
        return;
    }
    use foxq::core::opt::{nested_doubling_lets, optimize_with_stats};
    use foxq::core::translate::translate;
    use foxq::xquery::parse_query;
    let q = parse_query(&nested_doubling_lets(20)).unwrap();
    let m = translate(&q).unwrap();
    let start = Instant::now();
    let (opt, stats) = optimize_with_stats(m);
    let elapsed = start.elapsed();
    assert!(stats.inline_budget_skips > 0, "{stats:?}");
    assert!(opt.size() < 100_000, "size {}", opt.size());
    assert!(
        elapsed < Duration::from_millis(50),
        "optimize on the 20-nested-let adversary took {elapsed:?} (was ~5.8 s \
         before the inlining growth budget; must stay under 50 ms)"
    );
}

#[test]
fn tape_seek_replay_beats_reparse_by_3x() {
    if debug_build() {
        return;
    }
    use foxq::core::stream::StreamLimits;
    use foxq::gen::Dataset;
    use foxq::service::{run_multi, run_multi_on_tape_scan, PreparedQuery, QuerySetPlan};
    use foxq::store::{ingest_xml_to_tape, TapeReader};
    use foxq::xml::{forest_to_xml_string, NullSink, XmlReader};
    use std::io::Cursor;

    // The store_replay acceptance bar: a prefilter-eligible query over a
    // stored XMark tape must run ≥ 3× faster via the seek path than by
    // re-parsing the XML (measured ~6× at 2 MiB; 3× leaves 2× headroom
    // for scheduler noise). Scan mode is forced — the index path has its
    // own, stricter guard below.
    let forest = foxq::gen::generate(Dataset::Xmark, 2 << 20, 0xF0E5);
    let xml = forest_to_xml_string(&forest).into_bytes();
    let (out, _, _) = ingest_xml_to_tape(&xml[..], Cursor::new(Vec::new())).unwrap();
    let tape = out.into_inner();
    let prepared =
        PreparedQuery::compile("<o>{$input/site/people/person/name/text()}</o>").unwrap();
    let mft = prepared.mft();
    let plan = QuerySetPlan::new([mft]);

    // Best of 3 per engine: robust to one-off scheduler hiccups.
    let best = |f: &mut dyn FnMut()| {
        (0..3)
            .map(|_| {
                let start = Instant::now();
                f();
                start.elapsed()
            })
            .min()
            .unwrap()
    };
    let reparse = best(&mut || {
        run_multi(&[mft], XmlReader::new(&xml[..]), vec![NullSink]).unwrap();
    });
    let seek = best(&mut || {
        let reader = TapeReader::new(Cursor::new(&tape[..])).unwrap();
        run_multi_on_tape_scan(
            &[mft],
            reader,
            vec![NullSink],
            StreamLimits::default(),
            &plan,
        )
        .unwrap();
    });
    assert!(
        seek * 3 <= reparse,
        "tape seek replay must be ≥ 3× faster than reparse: reparse {reparse:?}, seek {seek:?}"
    );
}

#[test]
fn fet2_index_read_beats_fet1_seek_replay_by_2x() {
    if debug_build() {
        return;
    }
    use foxq::gen::Dataset;
    use foxq::service::{PreparedQuery, QuerySetPlan};
    use foxq::store::{
        index_drive, ingest_xml_to_tape, ingest_xml_to_tape_v1, TapeDrive, TapeReader,
    };
    use foxq::xml::{forest_to_xml_string, XmlEvent};
    use std::io::Cursor;

    // The FET2 acceptance bar: for a prefilter-eligible child-path query,
    // reading the matched events off a FET2 tape through the merged
    // posting-list cursor (mmapped, zero-copy) must be ≥ 2× faster than
    // the FET1 read path — a full scan whose prefilter seeks over every
    // unmatched subtree — delivering the *same* event stream (measured
    // ~2.6× at 2 MiB). The query engine downstream of either reader does
    // identical work on identical events (the equivalence is proven in
    // tests/store.rs), so this guard times exactly the part the skip
    // index claims to improve: the tape read.
    let forest = foxq::gen::generate(Dataset::Xmark, 2 << 20, 0xF0E5);
    let xml = forest_to_xml_string(&forest).into_bytes();
    let (v1, _, _) = ingest_xml_to_tape_v1(&xml[..], Cursor::new(Vec::new())).unwrap();
    let v1 = v1.into_inner();
    let v2_path = std::env::temp_dir().join(format!("foxq_perf_fet2_{}.fet", std::process::id()));
    ingest_xml_to_tape(&xml[..], std::fs::File::create(&v2_path).unwrap()).unwrap();
    let prepared =
        PreparedQuery::compile("<o>{$input/site/people/person/name/text()}</o>").unwrap();
    let plan = QuerySetPlan::new([prepared.mft()]);
    let matched = plan.matched_labels();
    let texts = plan.skips_texts();

    // FET1 (best of 3): decode every frame, ask the prefilter about every
    // open, seek over unmatched skippable subtrees — the read path the
    // service drives on v1 tapes.
    let mut fet1_seek = Duration::MAX;
    let mut fet1_delivered = 0u64;
    for _ in 0..3 {
        let start = Instant::now();
        let mut tape = TapeReader::new(Cursor::new(&v1[..])).unwrap();
        let mut delivered = 0u64;
        let mut open_texts = 0u64;
        let mut stack: Vec<bool> = Vec::new();
        loop {
            match tape.next_event().unwrap() {
                XmlEvent::Open(label) => {
                    let kind_ok = !label.is_text() || texts;
                    if open_texts == 0 && kind_ok && !matched.contains(&label) && tape.skippable() {
                        tape.skip_subtree().unwrap();
                    } else {
                        stack.push(label.is_text());
                        open_texts += u64::from(label.is_text());
                        delivered += 1;
                    }
                }
                XmlEvent::Close(_) => {
                    if let Some(was_text) = stack.pop() {
                        open_texts -= u64::from(was_text);
                    }
                    delivered += 1;
                }
                XmlEvent::Eof => break,
            }
        }
        assert!(tape.seek_skipped_bytes() > 0, "FET1 read must seek");
        fet1_seek = fet1_seek.min(start.elapsed());
        fet1_delivered = delivered;
    }

    // FET2 (best of 3): merge the matched labels' posting lists over the
    // mmapped file, decode only candidate frames — the read path the
    // service drives on v2 tapes.
    let mut fet2_index = Duration::MAX;
    let mut fet2_delivered = 0u64;
    for _ in 0..3 {
        let start = Instant::now();
        let reader = TapeReader::open_file(&v2_path).unwrap();
        let TapeDrive::Indexed(mut drive) = index_drive(reader, matched.clone(), texts).unwrap()
        else {
            panic!("FET2 tape must take the index path");
        };
        let mut delivered = 0u64;
        loop {
            match drive.next_event().unwrap() {
                XmlEvent::Eof => break,
                _ => delivered += 1,
            }
        }
        assert!(
            drive.index_skipped_bytes() > 0,
            "index read must skip bytes"
        );
        fet2_index = fet2_index.min(start.elapsed());
        fet2_delivered = delivered;
    }
    let _ = std::fs::remove_file(&v2_path);
    assert_eq!(
        fet1_delivered, fet2_delivered,
        "both read paths must deliver the same event stream"
    );
    assert!(fet2_delivered > 0, "the query must match something");
    eprintln!(
        "tape read: FET1 seek {fet1_seek:?}, FET2 index {fet2_index:?} \
         ({fet2_delivered} delivered events)"
    );
    assert!(
        fet2_index * 2 <= fet1_seek,
        "FET2 index read must be ≥ 2× faster than FET1 seek replay: \
         seek {fet1_seek:?}, index {fet2_index:?}"
    );
}

#[test]
fn instrumented_keep_alive_throughput_within_5_percent() {
    if debug_build() {
        return;
    }
    use foxq::server::client::{self, Client};
    use foxq::server::{Server, ServerConfig};

    // A/B over the same binary: a default server vs. one with maximal
    // tracing (ring on every request + JSONL log). Keep-alive requests on
    // one connection isolate per-request cost from connection setup.
    let log_path = std::env::temp_dir().join(format!("foxq_perf_{}.jsonl", std::process::id()));
    let _ = std::fs::remove_file(&log_path);
    let base_config = || ServerConfig {
        addr: "127.0.0.1:0".to_string(),
        threads: 2,
        read_timeout: Duration::from_secs(5),
        write_timeout: Duration::from_secs(5),
        ..ServerConfig::default()
    };
    let query = "<o>{$input/site/people/person/name/text()}</o>";
    let mut doc = String::from("<site><people>");
    for i in 0..50 {
        doc.push_str(&format!("<person><name>p{i}</name></person>"));
    }
    doc.push_str("</people></site>");

    let requests = 2_000u32;
    let mut measure = |config: ServerConfig| {
        let handle = Server::bind(config).unwrap().start().unwrap();
        let addr = handle.local_addr();
        let target = client::query_target(query);
        let mut c = Client::connect(addr).unwrap();
        // Warm the cache and the connection outside the timed window.
        for _ in 0..100 {
            assert_eq!(
                c.request("POST", &target, &[], doc.as_bytes())
                    .unwrap()
                    .status,
                200
            );
        }
        let start = Instant::now();
        for _ in 0..requests {
            assert_eq!(
                c.request("POST", &target, &[], doc.as_bytes())
                    .unwrap()
                    .status,
                200
            );
        }
        let elapsed = start.elapsed();
        drop(c);
        handle.shutdown();
        f64::from(requests) / elapsed.as_secs_f64()
    };

    // Best of 3 per configuration: robust to one-off scheduler hiccups.
    let best = |mk: &dyn Fn() -> ServerConfig, measure: &mut dyn FnMut(ServerConfig) -> f64| {
        (0..3).map(|_| measure(mk())).fold(0.0f64, f64::max)
    };
    let baseline = best(&base_config, &mut measure);
    let traced = best(
        &|| ServerConfig {
            slow_ms: 0, // every request through the ring
            trace_log: Some(log_path.to_str().unwrap().to_string()),
            ..base_config()
        },
        &mut measure,
    );
    let _ = std::fs::remove_file(&log_path);
    eprintln!("keep-alive throughput: baseline {baseline:.0} req/s, traced {traced:.0} req/s");
    // The 5% budget, with the same measurement headroom style as the
    // other guards: full tracing must retain ≥ 80% of baseline here for
    // the ≤ 5% production bound to hold with margin (loopback req/s noise
    // between two multi-second runs is itself several percent).
    assert!(
        traced >= 0.80 * baseline,
        "tracing overhead too high: baseline {baseline:.0} req/s, traced {traced:.0} req/s"
    );
}

#[test]
fn profiled_keep_alive_throughput_within_5_percent() {
    if debug_build() {
        return;
    }
    use foxq::server::client::{self, Client};
    use foxq::server::{Server, ServerConfig};

    // A/B over the same binary: observer-off vs. `--profile` (a
    // StreamProfiler on every /query lane plus allocator scope billing
    // and registry folds). The off side monomorphizes the engine with the
    // `()` observer — the hooks compile away entirely — so this guard
    // bounds the *on* cost: ≥ 95% of baseline in production terms, ≥ 80%
    // in-test to absorb loopback req/s noise between multi-second runs.
    let base_config = || ServerConfig {
        addr: "127.0.0.1:0".to_string(),
        threads: 2,
        read_timeout: Duration::from_secs(5),
        write_timeout: Duration::from_secs(5),
        ..ServerConfig::default()
    };
    let query = "<o>{$input/site/people/person/name/text()}</o>";
    let mut doc = String::from("<site><people>");
    for i in 0..50 {
        doc.push_str(&format!("<person><name>p{i}</name></person>"));
    }
    doc.push_str("</people></site>");

    let requests = 2_000u32;
    let mut measure = |config: ServerConfig| {
        let handle = Server::bind(config).unwrap().start().unwrap();
        let addr = handle.local_addr();
        let target = client::query_target(query);
        let mut c = Client::connect(addr).unwrap();
        for _ in 0..100 {
            assert_eq!(
                c.request("POST", &target, &[], doc.as_bytes())
                    .unwrap()
                    .status,
                200
            );
        }
        let start = Instant::now();
        for _ in 0..requests {
            assert_eq!(
                c.request("POST", &target, &[], doc.as_bytes())
                    .unwrap()
                    .status,
                200
            );
        }
        let elapsed = start.elapsed();
        drop(c);
        handle.shutdown();
        f64::from(requests) / elapsed.as_secs_f64()
    };

    let best = |mk: &dyn Fn() -> ServerConfig, measure: &mut dyn FnMut(ServerConfig) -> f64| {
        (0..3).map(|_| measure(mk())).fold(0.0f64, f64::max)
    };
    let baseline = best(&base_config, &mut measure);
    let profiled = best(
        &|| ServerConfig {
            profile: true,
            ..base_config()
        },
        &mut measure,
    );
    eprintln!(
        "keep-alive throughput: observer-off {baseline:.0} req/s, profiled {profiled:.0} req/s"
    );
    assert!(
        profiled >= 0.80 * baseline,
        "profiler overhead too high: observer-off {baseline:.0} req/s, \
         profiled {profiled:.0} req/s"
    );
}

#[test]
fn streamed_query_ttfb_and_peak_output_buffer() {
    if debug_build() {
        return;
    }
    use foxq::core::stream::StreamLimits;
    use foxq::gen::Dataset;
    use foxq::server::client::{self, Client};
    use foxq::server::{Server, ServerConfig};
    use foxq::service::PreparedQuery;
    use foxq::xml::forest_to_xml_string;
    use std::io::{Read, Write};
    use std::net::TcpStream;

    // The earliest-emission acceptance bar, on an output-heavy query whose
    // matches start near the front of the document (africa is the first
    // region): the streamed path must put first bytes on the wire while the
    // rest of the document is still uploading — TTFB ≤ 25% of total request
    // latency — and must never buffer more than a sliver of the output,
    // where the materializing path holds all of it at once.
    let query = "<o>{$input/site/regions/africa/item}</o>";
    let forest = foxq::gen::generate(Dataset::Xmark, 4 << 20, 0xE817);
    let xml = forest_to_xml_string(&forest).into_bytes();

    // (a) Service level: largest single flush vs. materialized output size.
    let prepared = PreparedQuery::compile(query).unwrap();
    let materialized = prepared
        .run_to_string_with_limits(&xml, StreamLimits::default())
        .unwrap()
        .output;
    let mut max_chunk = 0usize;
    let mut total = 0usize;
    prepared
        .run_streaming_with_limits(&xml, StreamLimits::default(), |c| {
            max_chunk = max_chunk.max(c.len());
            total += c.len();
            Ok(())
        })
        .unwrap();
    assert_eq!(total, materialized.len(), "streamed bytes diverge");
    assert!(total > 100_000, "query not output-heavy enough: {total} B");
    eprintln!(
        "streamed output: {total} B total, largest single flush {max_chunk} B \
         (materializing path buffers all {total} B)"
    );
    assert!(
        max_chunk * 4 <= total,
        "streaming must hold at most a quarter of the output at once: \
         largest flush {max_chunk} B of {total} B"
    );

    // (b) Server level: first response byte vs. last, streamed and buffered.
    let handle = Server::bind(ServerConfig {
        addr: "127.0.0.1:0".to_string(),
        threads: 2,
        read_timeout: Duration::from_secs(10),
        write_timeout: Duration::from_secs(10),
        ..ServerConfig::default()
    })
    .unwrap()
    .start()
    .unwrap();
    let addr = handle.local_addr();
    // Warm the query cache outside the timed window.
    let mut c = Client::connect(addr).unwrap();
    let warm = b"<site><regions><africa><item><name>w</name></item></africa></regions></site>";
    assert_eq!(
        c.request("POST", &client::query_target(query), &[], warm)
            .unwrap()
            .status,
        200
    );
    drop(c);

    // One raw timed exchange: a helper thread uploads the request while
    // this thread times first and last response byte — the two must overlap
    // on the streamed path, which is the whole point.
    let measure = |target: &str| -> (Duration, Duration) {
        let mut reader = TcpStream::connect(addr).unwrap();
        reader
            .set_read_timeout(Some(Duration::from_secs(30)))
            .unwrap();
        reader.set_nodelay(true).ok();
        let mut writer = reader.try_clone().unwrap();
        let head = format!(
            "POST {target} HTTP/1.1\r\nhost: foxq\r\nconnection: close\r\ncontent-length: {}\r\n\r\n",
            xml.len()
        );
        let body = xml.clone();
        let t0 = Instant::now();
        let upload = std::thread::spawn(move || {
            writer.write_all(head.as_bytes()).unwrap();
            writer.write_all(&body).unwrap();
            writer.flush().unwrap();
        });
        let mut first = [0u8; 1];
        reader.read_exact(&mut first).unwrap();
        let ttfb = t0.elapsed();
        let mut rest = Vec::new();
        reader.read_to_end(&mut rest).unwrap();
        let total = t0.elapsed();
        upload.join().unwrap();
        assert_eq!(first[0], b'H', "unexpected first byte");
        assert!(
            rest.starts_with(b"TTP/1.1 200"),
            "unexpected response head: {}",
            String::from_utf8_lossy(&rest[..rest.len().min(80)])
        );
        (ttfb, total)
    };

    // Best of 3 per path: keep the run with the lowest TTFB fraction.
    let streamed_target = format!("{}&stream=1", client::query_target(query));
    let buffered_target = client::query_target(query);
    let mut streamed_frac = f64::MAX;
    let mut buffered_frac = f64::MAX;
    for _ in 0..3 {
        let (ttfb, total) = measure(&streamed_target);
        streamed_frac = streamed_frac.min(ttfb.as_secs_f64() / total.as_secs_f64());
        let (ttfb, total) = measure(&buffered_target);
        buffered_frac = buffered_frac.min(ttfb.as_secs_f64() / total.as_secs_f64());
    }
    handle.shutdown();
    eprintln!(
        "TTFB as a fraction of request latency: streamed {:.1}%, buffered {:.1}%",
        streamed_frac * 100.0,
        buffered_frac * 100.0
    );
    assert!(
        streamed_frac <= 0.25,
        "streamed TTFB must be ≤ 25% of total request latency, got {:.1}%",
        streamed_frac * 100.0
    );
}

#[test]
fn compose_example_completes_under_wall_clock_guard() {
    if debug_build() {
        return;
    }
    // The example binary sits next to the test binary's profile directory.
    // `cargo test --release --test perf_smoke` does not build examples, so
    // build it here if a previous step has not (e.g. a fresh CI runner).
    let mut dir = std::env::current_exe().unwrap();
    dir.pop();
    if dir.ends_with("deps") {
        dir.pop();
    }
    let path = dir.join("examples").join("compose");
    if !path.exists() {
        let status = std::process::Command::new(env!("CARGO"))
            .args(["build", "--release", "--example", "compose"])
            .status()
            .unwrap();
        assert!(status.success(), "building examples/compose failed");
    }
    assert!(path.exists(), "example binary missing: {}", path.display());
    let start = Instant::now();
    let out = std::process::Command::new(path).output().unwrap();
    let elapsed = start.elapsed();
    assert!(out.status.success());
    assert!(
        String::from_utf8_lossy(&out.stdout).contains("single-pass composition"),
        "unexpected example output"
    );
    assert!(
        elapsed < Duration::from_secs(10),
        "examples/compose took {elapsed:?} (must stay far below the old ~18 s)"
    );
}
