//! Equivalence of the two MFT evaluators: the shared-value memoizing
//! interpreter (`run_mft`) must agree with the retained naive reference
//! (`run_mft_naive`) — on outputs over random transducers and inputs, and on
//! errors (ε-rule `%t`, step limits).

use foxq::core::mft::{rhs, Mft, StateId, XVar};
use foxq::core::{run_mft_naive_with_limits, run_mft_with_limits, RunError, RunLimits};
use foxq::forest::term::parse_forest;
use foxq::forest::{Forest, Label, Tree};
use proptest::prelude::*;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

const SYMS: [&str; 3] = ["a", "b", "c"];

/// A random total deterministic MFT over {a,b,c} with accumulating
/// parameters (rank ≤ 3). Guaranteed to terminate: no `x0` (stay) calls, so
/// every call descends into `x1`/`x2`, and ε-rules are call-free.
fn random_mft(rng: &mut SmallRng) -> Mft {
    let mut m = Mft::new();
    for s in SYMS {
        m.alphabet.intern_elem(s);
    }
    let nstates = rng.gen_range(1..=3);
    let params: Vec<usize> = (0..nstates)
        .map(|i| if i == 0 { 0 } else { rng.gen_range(0..=2) })
        .collect();
    for (i, &p) in params.iter().enumerate() {
        m.add_state(format!("q{i}"), p);
    }
    m.initial = StateId(0);
    for q in 0..nstates {
        let nsym = rng.gen_range(0..=SYMS.len());
        for s in 0..nsym {
            let body = random_rhs(rng, &params, params[q], 0, true);
            m.set_sym_rule(StateId(q as u32), foxq::forest::SymId(s as u32), body);
        }
        if rng.gen_bool(0.3) {
            let body = random_rhs(rng, &params, params[q], 0, true);
            m.set_text_rule(StateId(q as u32), body);
        }
        let body = random_rhs(rng, &params, params[q], 0, true);
        m.set_default_rule(StateId(q as u32), body);
        let body = random_rhs(rng, &params, params[q], 0, false);
        m.set_eps_rule(StateId(q as u32), body);
    }
    m.validate().unwrap();
    m
}

fn random_rhs(
    rng: &mut SmallRng,
    params: &[usize],
    own_params: usize,
    depth: usize,
    calls: bool,
) -> Vec<foxq::core::RhsNode> {
    let len = if depth >= 3 {
        rng.gen_range(0..=1)
    } else {
        rng.gen_range(0..=3)
    };
    (0..len)
        .map(|_| {
            let choice = rng.gen_range(0..6);
            match choice {
                0 | 1 => rhs::out(
                    foxq::forest::SymId(rng.gen_range(0..SYMS.len()) as u32),
                    random_rhs(rng, params, own_params, depth + 1, calls),
                ),
                2 if calls => {
                    rhs::out_current(random_rhs(rng, params, own_params, depth + 1, calls))
                }
                3 if own_params > 0 => rhs::param(rng.gen_range(0..own_params)),
                4 | 5 if calls => {
                    let callee = rng.gen_range(0..params.len());
                    let x = if rng.gen_bool(0.5) {
                        XVar::X1
                    } else {
                        XVar::X2
                    };
                    let args = (0..params[callee])
                        .map(|_| random_rhs(rng, params, own_params, depth + 1, calls))
                        .collect();
                    rhs::call(StateId(callee as u32), x, args)
                }
                _ => rhs::out(foxq::forest::SymId(0), vec![]),
            }
        })
        .collect()
}

fn random_input(rng: &mut SmallRng) -> Forest {
    fn forest(rng: &mut SmallRng, budget: &mut usize, depth: usize) -> Forest {
        let mut out = Vec::new();
        while *budget > 0 && out.len() < 3 && rng.gen_bool(0.7) {
            *budget -= 1;
            let children = if depth < 4 {
                forest(rng, budget, depth + 1)
            } else {
                vec![]
            };
            let label = if rng.gen_bool(0.15) {
                Label::text("t")
            } else {
                Label::elem(SYMS[rng.gen_range(0..SYMS.len())])
            };
            out.push(Tree { label, children });
        }
        out
    }
    let mut budget = rng.gen_range(1..14usize);
    forest(rng, &mut budget, 0)
}

/// One seed: both evaluators agree on every input (output or error).
fn check_agreement(seed: u64) {
    let mut rng = SmallRng::seed_from_u64(seed);
    let m = random_mft(&mut rng);
    // Parameter-duplicating MFTs can be output-exponential; bound the
    // reference by steps and the value evaluator by output size, and only
    // compare where the reference finished.
    let limits = RunLimits {
        max_steps: 2_000_000,
        max_output_nodes: 50_000_000,
    };
    for _ in 0..5 {
        let input = random_input(&mut rng);
        let Ok(expected) = run_mft_naive_with_limits(&m, &input, limits) else {
            continue;
        };
        let got = run_mft_with_limits(&m, &input, limits)
            .unwrap_or_else(|e| panic!("value evaluator failed (seed {seed}): {e}\n{m:?}"));
        assert_eq!(
            got, expected,
            "evaluators disagree (seed {seed}) on {input:?}"
        );
    }
}

#[test]
fn evaluators_agree_on_fixed_seeds() {
    for seed in 0..300u64 {
        check_agreement(seed);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]
    #[test]
    fn evaluators_agree_on_random_seeds(seed in any::<u64>()) {
        check_agreement(seed);
    }
}

#[test]
fn evaluators_agree_on_translated_queries() {
    // The richer family: transducers produced by the §3 translation.
    use foxq::core::opt::optimize;
    use foxq::core::translate::translate;
    use foxq::xquery::parse_query;
    let cases = [
        (
            r#"<out>{ for $b in $input/person[./p_id/text() = "person0"]
               return let $r := $b/name/text() return $r }</out>"#,
            r#"person(p_id(a() "person0") name("Jim") c() name("Li"))"#,
        ),
        ("<o>{$input//*//*}</o>", "a(b(c(d)) e) f(g)"),
        (
            "<double><r1>{$input/*}</r1>{$input/*}</double>",
            r#"site(a("x") b())"#,
        ),
    ];
    for (query, doc) in cases {
        let q = parse_query(query).unwrap();
        let unopt = translate(&q).unwrap();
        let opt = optimize(unopt.clone());
        let f = parse_forest(doc).unwrap();
        for m in [&unopt, &opt] {
            assert_eq!(
                foxq::core::run_mft(m, &f).unwrap(),
                foxq::core::run_mft_naive(m, &f).unwrap(),
                "{query} on {doc}"
            );
        }
    }
}

#[test]
fn step_limit_error_parity_on_stay_loops() {
    let m = foxq::core::parse_mft("q0(%) -> q0(x0);").unwrap();
    let limits = RunLimits::with_max_steps(500);
    let f = parse_forest("a").unwrap();
    let expected = Err(RunError::StepLimit { max_steps: 500 });
    assert_eq!(run_mft_with_limits(&m, &f, limits), expected);
    assert_eq!(run_mft_naive_with_limits(&m, &f, limits), expected);
}

#[test]
fn eps_current_label_error_parity() {
    // %t in an ε-rule is rejected by validate(); build it anyway — both
    // evaluators must report the same CurrentLabelAtEps, naming the state.
    let mut m = Mft::new();
    let q0 = m.add_state("q0", 0);
    let bad = m.add_state("qbad", 0);
    m.initial = q0;
    m.set_default_rule(q0, vec![rhs::call(bad, XVar::X1, vec![])]);
    m.set_eps_rule(q0, vec![rhs::call(bad, XVar::X0, vec![])]);
    m.set_default_rule(bad, vec![rhs::call(bad, XVar::X2, vec![])]);
    m.set_eps_rule(bad, vec![rhs::out_current(vec![])]);
    let expected = Err(RunError::CurrentLabelAtEps {
        state: "qbad".to_string(),
    });
    for doc in ["", "a(b)"] {
        let f = parse_forest(doc).unwrap();
        assert_eq!(foxq::core::run_mft(&m, &f), expected, "value on {doc:?}");
        assert_eq!(
            foxq::core::run_mft_naive(&m, &f),
            expected,
            "naive on {doc:?}"
        );
    }
}

#[test]
fn output_budget_refuses_exponential_unfolds_cheaply() {
    // Doubling over 60 trees: 2^60 output trees. The value evaluator
    // represents it in O(n) steps and then refuses to materialize.
    let m = foxq::core::parse_mft(
        "q(%t(x1) x2) -> q(x2) q(x2);
         q(eps) -> a();",
    )
    .unwrap();
    let f = parse_forest(&"a ".repeat(60)).unwrap();
    let limits = RunLimits {
        max_steps: 100_000,
        max_output_nodes: 10_000,
    };
    assert_eq!(
        run_mft_with_limits(&m, &f, limits),
        Err(RunError::OutputLimit {
            max_output_nodes: 10_000
        })
    );
}
