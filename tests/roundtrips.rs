//! Property-based tests on the core data structures: term notation, fcns
//! encoding, XML serialization, and the query printer/parser pair.

use foxq::forest::fcns::{fcns, unfcns};
use foxq::forest::term::{forest_to_term, parse_forest};
use foxq::forest::{elem, text, Forest, Tree};
use foxq::xml::{forest_to_xml_string, parse_document_with, WhitespaceMode};
use proptest::prelude::*;

/// Random trees over a small vocabulary. Text content avoids whitespace-only
/// strings so XML whitespace handling cannot drop nodes.
fn arb_tree() -> impl Strategy<Value = Tree> {
    let leaf = prop_oneof![
        prop::sample::select(vec!["a", "b", "c", "site", "x-y.z"]).prop_map(|n| elem(n, vec![])),
        prop::sample::select(vec!["t", "42", "hello world", "<&>\"'", "päper"]).prop_map(text),
    ];
    leaf.prop_recursive(4, 48, 5, |inner| {
        (
            prop::sample::select(vec!["a", "b", "c", "person", "deep"]),
            prop::collection::vec(inner, 0..5),
        )
            .prop_map(|(n, children)| elem(n, children))
    })
}

fn arb_forest() -> impl Strategy<Value = Forest> {
    prop::collection::vec(arb_tree(), 0..4)
}

proptest! {
    #[test]
    fn term_notation_roundtrips(f in arb_forest()) {
        let printed = forest_to_term(&f);
        let back = parse_forest(&printed).unwrap();
        prop_assert_eq!(back, f);
    }

    #[test]
    fn fcns_roundtrips(f in arb_forest()) {
        prop_assert_eq!(unfcns(&fcns(&f)), f);
    }

    #[test]
    fn fcns_preserves_size(f in arb_forest()) {
        prop_assert_eq!(fcns(&f).size(), foxq::forest::forest_size(&f));
    }

    #[test]
    fn xml_serialization_is_stable(f in arb_forest()) {
        // Serialized XML reparses to something that serializes identically
        // (adjacent text nodes may merge, so compare serialized forms).
        let xml = forest_to_xml_string(&f);
        let back = parse_document_with(xml.as_bytes(), WhitespaceMode::Preserve).unwrap();
        prop_assert_eq!(forest_to_xml_string(&back), xml);
    }

    #[test]
    fn identity_mft_is_identity(f in arb_forest()) {
        let m = foxq::core::parse_mft(
            "qc(%t(x1) x2) -> %t(qc(x1)) qc(x2); qc(eps) -> eps;",
        ).unwrap();
        let out = foxq::core::run_mft(&m, &f).unwrap();
        prop_assert_eq!(out, f.clone());
        // And the streaming engine agrees.
        let (sink, _) = foxq::core::stream::run_streaming_on_forest(
            &m, &f, foxq::xml::ForestSink::new(),
        ).unwrap();
        prop_assert_eq!(sink.into_forest(), f);
    }

    #[test]
    fn lemma1_holds_on_random_forests(f in arb_forest()) {
        // fcns([[M]](f)) = eval([[mft_to_mtt(M)]](fcns f)) for the identity
        // and a relabeling transducer.
        for src in [
            "qc(%t(x1) x2) -> %t(qc(x1)) qc(x2); qc(eps) -> eps;",
            "q(a(x1) x2) -> b(q(x1)) q(x2); q(%t(x1) x2) -> %t(q(x1)) q(x2); q(eps) -> eps;",
        ] {
            let m = foxq::core::parse_mft(src).unwrap();
            let n = foxq::tt::mft_to_mtt(&m);
            let expected = fcns(&foxq::core::run_mft(&m, &f).unwrap());
            let got = foxq::tt::eval_btree(&foxq::tt::run_mtt(&n, &fcns(&f)).unwrap());
            prop_assert_eq!(got, expected);
        }
    }
}

#[test]
fn stats_depth_agrees_with_tree_depth() {
    let f = parse_forest("a(b(c(d)) e) f").unwrap();
    let stats = foxq::forest::ForestStats::of_forest(&f);
    assert_eq!(stats.depth, 4);
    assert_eq!(stats.nodes, 6);
}
