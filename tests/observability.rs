//! End-to-end observability suite: Prometheus exposition conformance,
//! request-id / Server-Timing response headers, the slow-query ring at
//! `GET /debug/requests`, the JSONL trace log, and the liveness gauges.

use foxq::server::client::{self, Client};
use foxq::server::{Server, ServerConfig};
use std::collections::HashMap;
use std::time::Duration;

const PERSON_NAMES: &str = "<o>{$input/site/people/person/name/text()}</o>";

fn doc(persons: usize) -> Vec<u8> {
    let mut xml = String::from("<site><regions><africa><item/></africa></regions><people>");
    for i in 0..persons {
        xml.push_str(&format!("<person><name>p{i}</name></person>"));
    }
    xml.push_str("</people></site>");
    xml.into_bytes()
}

fn test_config() -> ServerConfig {
    ServerConfig {
        addr: "127.0.0.1:0".to_string(),
        threads: 4,
        read_timeout: Duration::from_secs(5),
        write_timeout: Duration::from_secs(5),
        ..ServerConfig::default()
    }
}

fn start(config: ServerConfig) -> foxq::server::ServerHandle {
    Server::bind(config).unwrap().start().unwrap()
}

// ---------------------------------------------------------------------------
// A small Prometheus text-format checker
// ---------------------------------------------------------------------------

/// One parsed exposition: per-family metadata plus every sample.
struct Exposition {
    /// family -> (help seen, type string), in order of first appearance.
    families: HashMap<String, (usize, String)>,
    /// (sample name with suffix, label string, value), in document order.
    samples: Vec<(String, String, f64)>,
}

/// The family a sample belongs to: histogram suffixes fold into their
/// base name when that base is a declared histogram family.
fn family_of<'a>(name: &'a str, families: &HashMap<String, (usize, String)>) -> &'a str {
    for suffix in ["_bucket", "_sum", "_count"] {
        if let Some(base) = name.strip_suffix(suffix) {
            if families.get(base).is_some_and(|(_, t)| t == "histogram") {
                return base;
            }
        }
    }
    name
}

fn parse_exposition(text: &str) -> Exposition {
    let mut families: HashMap<String, (usize, String)> = HashMap::new();
    let mut samples = Vec::new();
    let mut seen: HashMap<(String, String), usize> = HashMap::new();
    for line in text.lines() {
        if line.is_empty() {
            continue;
        }
        if let Some(rest) = line.strip_prefix("# HELP ") {
            let name = rest.split(' ').next().unwrap().to_string();
            let entry = families.entry(name).or_insert((0, String::new()));
            entry.0 += 1;
        } else if let Some(rest) = line.strip_prefix("# TYPE ") {
            let mut parts = rest.split(' ');
            let name = parts.next().unwrap().to_string();
            let ty = parts.next().unwrap_or("").to_string();
            let entry = families.entry(name.clone()).or_insert((0, String::new()));
            assert!(entry.1.is_empty(), "duplicate TYPE for {name}");
            entry.1 = ty;
        } else {
            assert!(!line.starts_with('#'), "unknown comment line: {line}");
            let (name_labels, value) = line.rsplit_once(' ').unwrap_or_else(|| {
                panic!("sample line without a value: {line:?}");
            });
            let value: f64 = value
                .parse()
                .unwrap_or_else(|_| panic!("unparsable value in {line:?}"));
            let (name, labels) = match name_labels.split_once('{') {
                Some((n, rest)) => (n.to_string(), rest.trim_end_matches('}').to_string()),
                None => (name_labels.to_string(), String::new()),
            };
            let key = (name.clone(), labels.clone());
            *seen.entry(key.clone()).or_insert(0) += 1;
            assert_eq!(seen[&key], 1, "duplicate sample {name}{{{labels}}}");
            samples.push((name, labels, value));
        }
    }
    Exposition { families, samples }
}

impl Exposition {
    /// Every sample belongs to a family with exactly one HELP and one
    /// TYPE line.
    fn check_metadata(&self) {
        for (name, _, _) in &self.samples {
            let family = family_of(name, &self.families);
            let (help_count, ty) = self
                .families
                .get(family)
                .unwrap_or_else(|| panic!("sample {name} has no # TYPE metadata"));
            assert_eq!(*help_count, 1, "family {family}: {help_count} HELP lines");
            assert!(
                matches!(ty.as_str(), "counter" | "gauge" | "histogram"),
                "family {family} has unexpected type {ty:?}"
            );
        }
    }

    /// Histogram buckets are cumulative, le-ordered, end at `+Inf`, and
    /// agree with `_count`; `_sum` exists for each series.
    fn check_histograms(&self) {
        // (family, labels-minus-le) -> ordered (le, value).
        let mut buckets: HashMap<(String, String), Vec<(f64, f64)>> = HashMap::new();
        let mut counts: HashMap<(String, String), f64> = HashMap::new();
        let mut sums: HashMap<(String, String), f64> = HashMap::new();
        for (name, labels, value) in &self.samples {
            let family = family_of(name, &self.families).to_string();
            if self.families.get(&family).map(|(_, t)| t.as_str()) != Some("histogram") {
                continue;
            }
            if name.ends_with("_bucket") {
                let (rest, le) = labels
                    .rsplit_once("le=\"")
                    .unwrap_or_else(|| panic!("bucket without le: {name}{{{labels}}}"));
                let le = le.trim_end_matches('"');
                let le = if le == "+Inf" {
                    f64::INFINITY
                } else {
                    le.parse().unwrap()
                };
                let series = rest.trim_end_matches(',').to_string();
                buckets
                    .entry((family, series))
                    .or_default()
                    .push((le, *value));
            } else if name.ends_with("_count") {
                counts.insert((family, labels.clone()), *value);
            } else if name.ends_with("_sum") {
                sums.insert((family, labels.clone()), *value);
            }
        }
        assert!(!buckets.is_empty(), "no histogram series found");
        for ((family, series), ladder) in &buckets {
            let key = (family.clone(), series.clone());
            for pair in ladder.windows(2) {
                assert!(
                    pair[0].0 < pair[1].0,
                    "{family}{{{series}}}: le not increasing"
                );
                assert!(
                    pair[0].1 <= pair[1].1,
                    "{family}{{{series}}}: buckets not cumulative"
                );
            }
            let (last_le, last_count) = *ladder.last().unwrap();
            assert!(
                last_le.is_infinite(),
                "{family}{{{series}}}: ladder does not end at +Inf"
            );
            let count = counts
                .get(&key)
                .unwrap_or_else(|| panic!("{family}{{{series}}}: no _count"));
            assert_eq!(
                last_count, *count,
                "{family}{{{series}}}: +Inf bucket != _count"
            );
            assert!(sums.contains_key(&key), "{family}{{{series}}}: no _sum");
        }
    }

    /// Every counter sample (including histogram buckets/counts/sums) in
    /// `earlier` is still present and did not decrease.
    fn check_monotone_from(&self, earlier: &Exposition) {
        let now: HashMap<(String, String), f64> = self
            .samples
            .iter()
            .map(|(n, l, v)| ((n.clone(), l.clone()), *v))
            .collect();
        let mut compared = 0;
        for (name, labels, value) in &earlier.samples {
            let family = family_of(name, &earlier.families);
            let ty = earlier.families[family].1.as_str();
            if ty == "gauge" {
                continue; // gauges may legitimately go down
            }
            let later = now
                .get(&(name.clone(), labels.clone()))
                .unwrap_or_else(|| panic!("{name}{{{labels}}} vanished between scrapes"));
            assert!(
                later >= value,
                "{name}{{{labels}}} went backwards: {value} -> {later}"
            );
            compared += 1;
        }
        assert!(compared > 50, "only {compared} counter samples compared");
    }
}

fn scrape(c: &mut Client) -> String {
    let r = c.request("GET", "/metrics", &[], &[]).unwrap();
    assert_eq!(r.status, 200);
    r.text()
}

#[test]
fn exposition_is_conformant_and_counters_are_monotone() {
    let handle = start(test_config());
    let addr = handle.local_addr();
    let target = client::query_target(PERSON_NAMES);

    let mut c = Client::connect(addr).unwrap();
    for _ in 0..3 {
        let r = c.request("POST", &target, &[], &doc(50)).unwrap();
        assert_eq!(r.status, 200);
    }
    let first = parse_exposition(&scrape(&mut c));
    first.check_metadata();
    first.check_histograms();

    // More traffic, including an error, then a second scrape.
    for _ in 0..3 {
        let r = c.request("POST", &target, &[], &doc(10)).unwrap();
        assert_eq!(r.status, 200);
    }
    assert_eq!(c.request("GET", "/nope", &[], &[]).unwrap().status, 404);
    let second = parse_exposition(&scrape(&mut c));
    second.check_metadata();
    second.check_histograms();
    second.check_monotone_from(&first);

    // The request-latency histogram actually collected the queries.
    let query_count = second
        .samples
        .iter()
        .find(|(n, l, _)| n == "foxq_request_latency_seconds_count" && l.contains("query"))
        .map(|(_, _, v)| *v)
        .unwrap();
    assert!(query_count >= 6.0, "query latency count {query_count}");

    handle.shutdown();
}

#[test]
fn responses_carry_request_id_and_server_timing() {
    let handle = start(test_config());
    let addr = handle.local_addr();
    let target = client::query_target(PERSON_NAMES);

    let mut c = Client::connect(addr).unwrap();
    // A document big enough that execute time cannot round to zero.
    let r1 = c.request("POST", &target, &[], &doc(2000)).unwrap();
    assert_eq!(r1.status, 200);
    let id1 = r1
        .header("x-foxq-request-id")
        .expect("request id")
        .to_string();
    assert_eq!(id1.len(), 16, "id {id1:?} is not 16 hex chars");
    assert!(id1.chars().all(|ch| ch.is_ascii_hexdigit()));
    let timing = r1
        .header("server-timing")
        .expect("server-timing")
        .to_string();
    assert!(
        timing.contains("total;dur="),
        "no total entry in {timing:?}"
    );
    assert!(
        timing.contains("execute;dur="),
        "no execute entry in {timing:?}"
    );

    // Ids are unique per request; even a 404 carries them.
    let r2 = c.request("GET", "/nope", &[], &[]).unwrap();
    let id2 = r2.header("x-foxq-request-id").unwrap();
    assert_ne!(id1, id2);
    assert!(r2.header("server-timing").is_some());

    // Every stage named in the header was also recorded in the
    // engine-stage histograms (same snapshot feeds both).
    let metrics = scrape(&mut c);
    for entry in timing.split(", ") {
        let stage = entry.split(';').next().unwrap();
        if stage == "total" {
            continue;
        }
        let needle = format!("foxq_engine_stage_seconds_count{{stage=\"{stage}\"}}");
        let line = metrics
            .lines()
            .find(|l| l.starts_with(&needle))
            .unwrap_or_else(|| panic!("no histogram samples for stage {stage}"));
        let count: f64 = line.rsplit(' ').next().unwrap().parse().unwrap();
        assert!(count >= 1.0, "stage {stage} has zero histogram samples");
    }

    handle.shutdown();
}

#[test]
fn slow_query_ring_and_trace_log_capture_requests() {
    let log_path = std::env::temp_dir().join(format!("foxq_trace_{}.jsonl", std::process::id()));
    let _ = std::fs::remove_file(&log_path);
    let handle = start(ServerConfig {
        slow_ms: 0, // trace everything
        trace_log: Some(log_path.to_str().unwrap().to_string()),
        ..test_config()
    });
    let addr = handle.local_addr();
    let target = client::query_target(PERSON_NAMES);

    let r = client::post(addr, &target, &doc(5)).unwrap();
    assert_eq!(r.status, 200);
    let id = r.header("x-foxq-request-id").unwrap().to_string();

    let debug = client::get(addr, "/debug/requests").unwrap();
    assert_eq!(debug.status, 200);
    let dump = debug.text();
    assert!(
        dump.contains(&format!("id={id}")),
        "ring misses {id}:\n{dump}"
    );
    assert!(dump.contains("target=query"), "no query record:\n{dump}");
    assert!(dump.contains("POST /query"), "no detail:\n{dump}");

    handle.shutdown();
    let log = std::fs::read_to_string(&log_path).unwrap();
    assert!(log.lines().count() >= 2, "trace log too short:\n{log}");
    assert!(log.lines().all(|l| l.starts_with('{') && l.ends_with('}')));
    assert!(log.contains(&format!("\"id\":\"{id}\"")));
    assert!(log.contains("\"stages_us\""));
    let _ = std::fs::remove_file(&log_path);
}

#[test]
fn profiler_endpoint_headers_and_json_ring() {
    let log_path = std::env::temp_dir().join(format!("foxq_prof_{}.jsonl", std::process::id()));
    let _ = std::fs::remove_file(&log_path);
    let handle = start(ServerConfig {
        profile: true,
        slow_ms: 0, // every request through the ring
        trace_log: Some(log_path.to_str().unwrap().to_string()),
        ..test_config()
    });
    let addr = handle.local_addr();
    let target = client::query_target(PERSON_NAMES);

    let mut c = Client::connect(addr).unwrap();
    let r = c.request("POST", &target, &[], &doc(50)).unwrap();
    assert_eq!(r.status, 200);
    let peak_bytes: u64 = r
        .header("x-foxq-peak-live-bytes")
        .expect("x-foxq-peak-live-bytes header")
        .parse()
        .unwrap();
    assert!(peak_bytes > 0, "peak live bytes must be nonzero");

    // The registry renders the run: aggregates, hot-state rows, timeline.
    let p = c.request("GET", "/debug/profile", &[], &[]).unwrap();
    assert_eq!(p.status, 200);
    let text = p.text();
    assert!(text.contains("runs=1"), "no run recorded:\n{text}");
    assert!(text.contains("peak_live_bytes"), "no aggregates:\n{text}");
    assert!(text.contains("hot states"), "no hot-state table:\n{text}");
    assert!(text.contains("buffer timeline"), "no timeline:\n{text}");

    // A second identical query folds into the same profile entry.
    assert_eq!(
        c.request("POST", &target, &[], &doc(50)).unwrap().status,
        200
    );
    let text = c.request("GET", "/debug/profile", &[], &[]).unwrap().text();
    assert!(text.contains("runs=2"), "runs did not fold:\n{text}");

    // The slow-query ring serves JSON when asked.
    let json = c
        .request("GET", "/debug/requests?format=json", &[], &[])
        .unwrap();
    assert_eq!(json.status, 200);
    let body = json.text();
    assert!(body.lines().count() >= 2, "ring json too short:\n{body}");
    assert!(body.lines().all(|l| l.starts_with('{') && l.ends_with('}')));
    assert!(body.contains("\"target\":\"query\""), "{body}");

    // The new metric families collected the runs, and the process-level
    // memory gauges report.
    let metrics = scrape(&mut c);
    let sample = |name: &str| -> f64 {
        metrics
            .lines()
            .find(|l| l.starts_with(name) && l[name.len()..].starts_with(' '))
            .and_then(|l| l.rsplit(' ').next())
            .and_then(|v| v.parse().ok())
            .unwrap_or_else(|| panic!("metric {name} not found"))
    };
    assert!(sample("foxq_live_nodes_peak_count") >= 2.0);
    assert!(sample("foxq_live_bytes_peak_count") >= 2.0);
    assert!(sample("foxq_alloc_bytes_per_request_count") >= 2.0);
    assert!(sample("foxq_alloc_allocations_total") > 0.0);
    assert!(sample("foxq_process_rss_bytes") > 0.0);

    handle.shutdown();
    // Profile records ride in the same JSONL stream as the traces.
    let log = std::fs::read_to_string(&log_path).unwrap();
    assert!(log.contains("\"profile\""), "no profile record:\n{log}");
    assert!(log.contains("\"hot_states\""), "no hot states:\n{log}");
    let _ = std::fs::remove_file(&log_path);
}

#[test]
fn debug_profile_is_disabled_without_the_flag() {
    let handle = start(test_config());
    let r = client::get(handle.local_addr(), "/debug/profile").unwrap();
    assert_eq!(r.status, 503);
    assert!(r.text().contains("--profile"));
    handle.shutdown();
}

#[test]
fn liveness_gauges_and_accept_gate_counter() {
    let handle = start(ServerConfig {
        max_connections: 1,
        ..test_config()
    });
    let addr = handle.local_addr();

    // The single allowed connection: accepting it closes the gate, which
    // is exactly the rejection event the counter records.
    let mut c = Client::connect(addr).unwrap();
    let r = c.request("GET", "/healthz", &[], &[]).unwrap();
    assert_eq!(r.status, 200);

    let metrics = scrape(&mut c);
    let gauge = |name: &str| -> f64 {
        metrics
            .lines()
            .find(|l| l.starts_with(name) && l[name.len()..].starts_with(' '))
            .and_then(|l| l.rsplit(' ').next())
            .and_then(|v| v.parse().ok())
            .unwrap_or_else(|| panic!("metric {name} not found"))
    };
    assert!(gauge("foxq_connections_active") >= 1.0);
    assert!(gauge("foxq_accept_gate_rejections_total") >= 1.0);
    assert_eq!(gauge("foxq_connections_lingering"), 0.0);

    handle.shutdown();
}
