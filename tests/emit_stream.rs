//! Byte-identity guard for the earliest-emission subsystem: on every
//! generated dataset, the concatenation of the streamed prefixes equals the
//! materialized output — for the XML text source and for FET1 and FET2
//! tapes, with the label prefilter both on and off.
//!
//! This is the contract [`PreparedQuery::run_streaming`] documents: emission
//! boundaries change *when* bytes leave, never *which* bytes leave.

use foxq::core::emit::EmitWriter;
use foxq::core::stream::StreamLimits;
use foxq::core::Mft;
use foxq::gen::Dataset;
use foxq::service::{run_multi_emit, run_multi_on_tape_emit, PreparedQuery, QuerySetPlan};
use foxq::store::{ingest_xml_to_tape, ingest_xml_to_tape_v1, TapeReader};
use foxq::xml::{forest_to_xml_string, XmlReader};
use proptest::prelude::*;
use std::io::Cursor;

/// A navigator per dataset that matches part of the document, so the
/// prefilter has subtrees to withhold and the stream has output to emit.
fn query_for(dataset: Dataset) -> &'static str {
    match dataset {
        Dataset::Xmark => "<o>{$input/site/people/person/name/text()}</o>",
        Dataset::Treebank => "<o>{$input//NP/NN/text()}</o>",
        Dataset::Medline => {
            "<o>{$input/MedlineCitationSet/MedlineCitation/Article/AuthorList/Author/LastName/text()}</o>"
        }
        Dataset::Protein => "<o>{$input/ProteinDatabase/ProteinEntry/protein/name/text()}</o>",
    }
}

/// Stream `xml` through the emit driver, concatenating delivered prefixes.
fn stream_xml(mft: &Mft, xml: &[u8], plan: &QuerySetPlan) -> (Vec<u8>, usize) {
    let mut out = Vec::new();
    let mut chunks = 0usize;
    let sink = EmitWriter::new(|c: &[u8]| {
        out.extend_from_slice(c);
        chunks += 1;
        Ok(())
    });
    let run = run_multi_emit(
        &[mft],
        XmlReader::new(xml),
        vec![sink],
        StreamLimits::default(),
        plan,
    )
    .unwrap();
    let (sink, _stats) = run.results.into_iter().next().unwrap().unwrap();
    sink.finish().unwrap();
    (out, chunks)
}

/// Stream a tape through the emit driver (index, seek-scan, or plain replay
/// is the driver's choice), concatenating delivered prefixes.
fn stream_tape(mft: &Mft, tape_bytes: &[u8], plan: &QuerySetPlan) -> Vec<u8> {
    let mut out = Vec::new();
    let sink = EmitWriter::new(|c: &[u8]| {
        out.extend_from_slice(c);
        Ok(())
    });
    let run = run_multi_on_tape_emit(
        &[mft],
        TapeReader::new(Cursor::new(tape_bytes.to_vec())).unwrap(),
        vec![sink],
        StreamLimits::default(),
        plan,
    )
    .unwrap();
    let (sink, _stats) = run.results.into_iter().next().unwrap().unwrap();
    sink.finish().unwrap();
    out
}

/// Run the whole source × prefilter matrix for one document and compare
/// every cell against the materialized reference output.
fn assert_streamed_identity(dataset: Dataset, xml: &str) {
    let prepared = PreparedQuery::compile(query_for(dataset)).unwrap();
    let mft = prepared.mft();
    let expected = prepared
        .run_to_string_with_limits(xml.as_bytes(), StreamLimits::default())
        .unwrap()
        .output;

    let (fet2, _, _) = ingest_xml_to_tape(xml.as_bytes(), Cursor::new(Vec::new())).unwrap();
    let fet2 = fet2.into_inner();
    let (fet1, _, _) = ingest_xml_to_tape_v1(xml.as_bytes(), Cursor::new(Vec::new())).unwrap();
    let fet1 = fet1.into_inner();

    let on = QuerySetPlan::new([mft]);
    let off = QuerySetPlan::pass_through(1);
    for (plan, mode) in [(&on, "prefilter on"), (&off, "prefilter off")] {
        let (bytes, chunks) = stream_xml(mft, xml.as_bytes(), plan);
        assert_eq!(
            String::from_utf8(bytes).unwrap(),
            expected,
            "{}: xml source, {mode}",
            dataset.name()
        );
        if !expected.is_empty() {
            assert!(chunks >= 1, "{}: output never streamed", dataset.name());
        }
        for (tape, fmt) in [(&fet1, "FET1"), (&fet2, "FET2")] {
            let bytes = stream_tape(mft, tape, plan);
            assert_eq!(
                String::from_utf8(bytes).unwrap(),
                expected,
                "{}: {fmt} tape, {mode}",
                dataset.name()
            );
        }
    }
}

#[test]
fn streamed_prefixes_concatenate_to_materialized_output() {
    for dataset in Dataset::ALL {
        let forest = foxq::gen::generate(dataset, 60_000, 0xF0C5);
        assert_streamed_identity(dataset, &forest_to_xml_string(&forest));
    }
}

proptest! {
    /// The same identity on seeded random documents from all four
    /// generators at random sizes.
    #[test]
    fn streamed_prefixes_match_materialized_randomized(seed in any::<u64>()) {
        let dataset = Dataset::ALL[(seed % 4) as usize];
        let size = 2_000 + (seed >> 3) as usize % 28_000;
        let xml = forest_to_xml_string(&foxq::gen::generate(dataset, size, seed));
        assert_streamed_identity(dataset, &xml);
    }
}
