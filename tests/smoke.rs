//! Smoke tests for the `foxq` CLI binary and the `examples/` programs: run
//! each on a tiny document and assert exit status plus golden output.
//!
//! The examples are compiled by `cargo test` alongside the test binaries;
//! they are located relative to the test executable
//! (`target/<profile>/examples/…`).

use std::path::PathBuf;
use std::process::{Command, Output, Stdio};

const QUERY: &str = r#"<out>{ for $b in $input/person[./p_id/text() = "person0"]
   return let $r := $b/name/text() return $r }</out>"#;
const DOC: &str = "<person><p_id>person0</p_id><name>Jim</name><name>Li</name></person>";

/// A per-test scratch directory under the target dir.
fn scratch(test: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("foxq-smoke-{test}-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

fn write(dir: &std::path::Path, name: &str, content: &str) -> PathBuf {
    let p = dir.join(name);
    std::fs::write(&p, content).unwrap();
    p
}

fn stdout_of(out: &Output) -> String {
    String::from_utf8_lossy(&out.stdout).into_owned()
}

// ---------------------------------------------------------------------------
// CLI
// ---------------------------------------------------------------------------

fn foxq() -> Command {
    Command::new(env!("CARGO_BIN_EXE_foxq"))
}

#[test]
fn cli_run_streams_a_document() {
    let dir = scratch("run");
    let q = write(&dir, "q.xq", QUERY);
    let x = write(&dir, "in.xml", DOC);
    let out = foxq().arg("run").arg(&q).arg(&x).output().unwrap();
    assert!(
        out.status.success(),
        "stderr: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    assert_eq!(stdout_of(&out), "<out>JimLi</out>\n");
}

#[test]
fn cli_run_reads_stdin_by_default() {
    let dir = scratch("stdin");
    let q = write(&dir, "q.xq", QUERY);
    let mut child = foxq()
        .arg("run")
        .arg(&q)
        .stdin(Stdio::piped())
        .stdout(Stdio::piped())
        .spawn()
        .unwrap();
    use std::io::Write as _;
    child
        .stdin
        .take()
        .unwrap()
        .write_all(DOC.as_bytes())
        .unwrap();
    let out = child.wait_with_output().unwrap();
    assert!(out.status.success());
    assert_eq!(stdout_of(&out), "<out>JimLi</out>\n");
}

#[test]
fn cli_compile_prints_rules_and_opt_report() {
    let dir = scratch("compile");
    let q = write(&dir, "q.xq", QUERY);
    let out = foxq().arg("compile").arg(&q).output().unwrap();
    assert!(out.status.success());
    let rules = stdout_of(&out);
    // Rule notation: at least an initial rule with the paper's arrow.
    assert!(rules.contains("->"), "no rules printed:\n{rules}");
    assert!(String::from_utf8_lossy(&out.stderr).contains("optimized:"));

    let noopt = foxq()
        .args(["compile", "--no-opt"])
        .arg(&q)
        .output()
        .unwrap();
    assert!(noopt.status.success());
    // The raw §3 translation is strictly larger than the optimized MFT.
    assert!(stdout_of(&noopt).len() > rules.len());
}

#[test]
fn cli_stats_reports_engine_counters() {
    let dir = scratch("stats");
    let q = write(&dir, "q.xq", QUERY);
    let x = write(&dir, "in.xml", DOC);
    let out = foxq().arg("stats").arg(&q).arg(&x).output().unwrap();
    assert!(out.status.success());
    assert_eq!(stdout_of(&out), "<out>JimLi</out>\n");
    let err = String::from_utf8_lossy(&out.stderr);
    for counter in ["events:", "rule expansions:", "peak live nodes:"] {
        assert!(err.contains(counter), "missing {counter} in:\n{err}");
    }
}

#[test]
fn cli_errors_exit_nonzero() {
    let dir = scratch("errors");
    // Missing query file.
    let out = foxq().args(["run", "no-such-file.xq"]).output().unwrap();
    assert_eq!(out.status.code(), Some(1));
    // Syntactically invalid query.
    let bad = write(&dir, "bad.xq", "for $x return $x");
    let out = foxq().arg("run").arg(&bad).output().unwrap();
    assert_eq!(out.status.code(), Some(1));
    assert!(String::from_utf8_lossy(&out.stderr).contains("syntax error"));
    // Malformed XML.
    let q = write(&dir, "q.xq", QUERY);
    let x = write(&dir, "bad.xml", "<person><p_id>person0</p_id>");
    let out = foxq().arg("run").arg(&q).arg(&x).output().unwrap();
    assert_eq!(out.status.code(), Some(1));
    // Unknown command.
    let out = foxq().arg("frobnicate").output().unwrap();
    assert_eq!(out.status.code(), Some(1));
}

#[test]
fn cli_run_max_output_bounds_hostile_queries() {
    // 40 value-doubling lets: the output would be 2^40 trees. The budget
    // must abort the run with a clear error and exit code 1.
    let dir = scratch("max-output");
    let bomb = foxq::core::opt::nested_doubling_lets(40);
    let q = write(&dir, "bomb.xq", &bomb);
    let x = write(&dir, "in.xml", "<r/>");
    let out = foxq()
        .args(["run", "--max-output", "10000"])
        .arg(&q)
        .arg(&x)
        .output()
        .unwrap();
    assert_eq!(out.status.code(), Some(1));
    assert!(
        String::from_utf8_lossy(&out.stderr).contains("output limit"),
        "stderr: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    // The batch path is bounded too: the bomb's cell fails, labeled.
    let out = foxq()
        .args(["batch", "--max-output", "10000", "-q"])
        .arg(&q)
        .arg(&x)
        .output()
        .unwrap();
    assert_eq!(out.status.code(), Some(1));
    assert!(
        stdout_of(&out).contains("error: output limit"),
        "stdout: {}",
        stdout_of(&out)
    );
    // An ordinary run is untouched by the default budget.
    let q = write(&dir, "q.xq", QUERY);
    let x = write(&dir, "in.xml", DOC);
    let out = foxq().arg("run").arg(&q).arg(&x).output().unwrap();
    assert!(out.status.success());
}

#[test]
fn cli_batch_answers_multiple_queries_in_one_pass() {
    let dir = scratch("batch");
    let q1 = write(&dir, "q1.xq", QUERY);
    let q2 = write(&dir, "q2.xq", "<names>{$input/person/name}</names>");
    let x = write(&dir, "in.xml", DOC);
    let out = foxq()
        .args(["batch", "-q"])
        .arg(&q1)
        .arg("-q")
        .arg(&q2)
        .arg("--stats")
        .arg(&x)
        .output()
        .unwrap();
    assert!(
        out.status.success(),
        "stderr: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    let text = stdout_of(&out);
    // Labeled output blocks, one per query, in -q order.
    let q1_pos = text.find("q1.xq").expect("q1 label");
    let q2_pos = text.find("q2.xq").expect("q2 label");
    assert!(q1_pos < q2_pos, "labels out of order:\n{text}");
    assert!(text.contains("<out>JimLi</out>"), "{text}");
    assert!(
        text.contains("<names><name>Jim</name><name>Li</name></names>"),
        "{text}"
    );
    let err = String::from_utf8_lossy(&out.stderr);
    assert!(err.contains("one pass"), "missing stats report:\n{err}");
}

#[test]
fn cli_batch_reads_stdin_and_shards_multiple_documents() {
    let dir = scratch("batch-multi");
    let q = write(&dir, "q.xq", QUERY);
    // stdin path
    let mut child = foxq()
        .arg("batch")
        .arg("-q")
        .arg(&q)
        .stdin(Stdio::piped())
        .stdout(Stdio::piped())
        .spawn()
        .unwrap();
    use std::io::Write as _;
    child
        .stdin
        .take()
        .unwrap()
        .write_all(DOC.as_bytes())
        .unwrap();
    let out = child.wait_with_output().unwrap();
    assert!(out.status.success());
    assert!(stdout_of(&out).contains("<out>JimLi</out>"));

    // Multiple documents: threaded batch output must be deterministic.
    let x1 = write(&dir, "a.xml", DOC);
    let x2 = write(
        &dir,
        "b.xml",
        "<person><p_id>person0</p_id><name>Bo</name></person>",
    );
    let run = |threads: &str| {
        let out = foxq()
            .arg("batch")
            .arg("-q")
            .arg(&q)
            .args(["--threads", threads])
            .arg(&x1)
            .arg(&x2)
            .output()
            .unwrap();
        assert!(out.status.success(), "threads={threads}");
        stdout_of(&out)
    };
    let serial = run("1");
    assert!(serial.contains("<out>JimLi</out>"), "{serial}");
    assert!(serial.contains("<out>Bo</out>"), "{serial}");
    assert_eq!(serial, run("4"), "batch output depends on thread count");
}

#[test]
fn cli_batch_errors_exit_nonzero() {
    let dir = scratch("batch-errors");
    // No queries at all.
    let out = foxq().arg("batch").output().unwrap();
    assert_eq!(out.status.code(), Some(1));
    // Malformed XML: exit 1, but the labeled block contract still holds
    // (same shape as the multi-document path).
    let q = write(&dir, "q.xq", QUERY);
    let x = write(&dir, "bad.xml", "<person><p_id>");
    let out = foxq()
        .arg("batch")
        .arg("-q")
        .arg(&q)
        .arg(&x)
        .output()
        .unwrap();
    assert_eq!(out.status.code(), Some(1));
    let text = stdout_of(&out);
    assert!(text.contains("### "), "no labeled block:\n{text}");
    assert!(text.contains("error: "), "no labeled error row:\n{text}");
    // Unparseable query file.
    let bad = write(&dir, "bad.xq", "for $x return $x");
    let out = foxq().arg("batch").arg("-q").arg(&bad).output().unwrap();
    assert_eq!(out.status.code(), Some(1));
}

#[test]
fn cli_help_succeeds() {
    for args in [vec!["--help"], vec![]] {
        let out = foxq().args(&args).output().unwrap();
        assert!(out.status.success(), "{args:?}");
        assert!(
            String::from_utf8_lossy(&out.stderr).contains("usage:"),
            "{args:?}"
        );
    }
}

#[test]
fn cli_store_roundtrip_and_tape_stats() {
    let dir = scratch("store");
    let corpus = dir.join("corpus");
    let q = write(&dir, "q.xq", QUERY);
    let x = write(&dir, "person.xml", DOC);

    // add → ls → query from the tape.
    let out = foxq()
        .args(["store", "add", "--dir"])
        .arg(&corpus)
        .arg(&x)
        .output()
        .unwrap();
    assert!(
        out.status.success(),
        "stderr: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    assert!(
        stdout_of(&out).contains("stored person"),
        "{}",
        stdout_of(&out)
    );

    let out = foxq()
        .args(["store", "ls", "--dir"])
        .arg(&corpus)
        .output()
        .unwrap();
    assert!(out.status.success());
    assert!(stdout_of(&out).contains("person"), "{}", stdout_of(&out));
    assert!(stdout_of(&out).contains("FET2"), "{}", stdout_of(&out));

    // migrate is a no-op on an already-FET2 corpus.
    let out = foxq()
        .args(["store", "migrate", "--dir"])
        .arg(&corpus)
        .output()
        .unwrap();
    assert!(
        out.status.success(),
        "stderr: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    assert!(
        stdout_of(&out).contains("migrated 0 tape(s)"),
        "{}",
        stdout_of(&out)
    );

    let out = foxq()
        .args(["store", "query", "--dir"])
        .arg(&corpus)
        .arg("-q")
        .arg(&q)
        .output()
        .unwrap();
    assert!(
        out.status.success(),
        "stderr: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    assert!(
        stdout_of(&out).contains("<out>JimLi</out>"),
        "{}",
        stdout_of(&out)
    );

    // `foxq stats <tape.fet>` inspects the footer without a query…
    let tape = corpus.join("person.fet");
    let out = foxq().arg("stats").arg(&tape).output().unwrap();
    assert!(out.status.success());
    let text = stdout_of(&out);
    for line in [
        "format:            FET2 v2",
        "events:",
        "label table:",
        "max depth:",
        "text bytes:",
        "skip index:",
        "#text",
    ] {
        assert!(text.contains(line), "missing {line:?} in:\n{text}");
    }

    // …and `foxq run query tape.fet` replays it with identical output.
    let out = foxq().arg("run").arg(&q).arg(&tape).output().unwrap();
    assert!(
        out.status.success(),
        "stderr: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    assert_eq!(stdout_of(&out), "<out>JimLi</out>\n");

    // rm empties the corpus.
    let out = foxq()
        .args(["store", "rm", "--dir"])
        .arg(&corpus)
        .arg("person")
        .output()
        .unwrap();
    assert!(out.status.success());
    assert!(!tape.exists());
}

// ---------------------------------------------------------------------------
// Examples
// ---------------------------------------------------------------------------

/// `target/<profile>/examples/<name>`, located relative to the test binary
/// (which lives in `target/<profile>/deps/`).
fn example(name: &str) -> Command {
    let mut dir = std::env::current_exe().unwrap();
    dir.pop(); // the test binary
    if dir.ends_with("deps") {
        dir.pop();
    }
    let path = dir.join("examples").join(name);
    assert!(path.exists(), "example binary missing: {}", path.display());
    Command::new(path)
}

#[test]
fn example_quickstart_produces_the_papers_result() {
    let out = example("quickstart").output().unwrap();
    assert!(out.status.success());
    assert!(stdout_of(&out).contains("output: <out>JimLi</out>"));
}

#[test]
fn example_paper_person_agrees_with_hand_written_mft() {
    let out = example("paper_person").output().unwrap();
    assert!(out.status.success());
    assert!(stdout_of(&out).contains("translation agrees with the paper's hand-written transducer"));
}

#[test]
fn example_compose_demonstrates_lemma2() {
    // Cap the chain length: the naive construction is exponential in k and
    // debug builds of k=12 take tens of seconds.
    let out = example("compose").arg("8").output().unwrap();
    assert!(out.status.success());
    let text = stdout_of(&out);
    assert!(text.contains("single-pass composition avoids materializing"));
    assert!(text.contains("Lemma 2"));
}

#[test]
fn example_xmark_queries_all_engines_agree() {
    // 16 KiB keeps the debug-mode DOM reference evaluation fast.
    let out = example("xmark_queries").arg("16").output().unwrap();
    assert!(
        out.status.success(),
        "stderr: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    let text = stdout_of(&out);
    assert!(text.contains("all supported engines agree with the reference semantics"));
    // Q4 must show the paper's GCX N/A.
    assert!(text.contains("N/A"), "expected a GCX N/A row:\n{text}");
}
