//! Integration suite for `foxq-server`: a real listener on an ephemeral
//! port, driven by the crate's own minimal HTTP client.
//!
//! The acceptance properties of the subsystem:
//!
//! 1. **Correct under concurrency** — ≥ 100 concurrent connections, each
//!    with its own document, all answered, none mixed up.
//! 2. **Streaming, bounded input** — a request body is never buffered
//!    whole: an over-limit chunked upload is answered 413 after the server
//!    has consumed roughly `max_body_bytes`, not the full upload (observed
//!    through `foxq_bytes_in_total`).
//! 3. **Observable** — /metrics reflects cache hits for repeated query
//!    texts and its counters are monotone.
//! 4. **Graceful shutdown** — a drain signalled mid-request lets the
//!    in-flight request finish before the server exits.

use foxq::server::client::{self, Client};
use foxq::server::{Server, ServerConfig};
use std::time::Duration;

const PERSON_NAMES: &str = "<o>{$input/site/people/person/name/text()}</o>";

fn doc(names: &[&str]) -> Vec<u8> {
    let mut xml = String::from("<site><regions><africa><item/></africa></regions><people>");
    for n in names {
        xml.push_str(&format!("<person><name>{n}</name></person>"));
    }
    xml.push_str("</people></site>");
    xml.into_bytes()
}

fn test_config() -> ServerConfig {
    ServerConfig {
        addr: "127.0.0.1:0".to_string(),
        threads: 8,
        read_timeout: Duration::from_secs(5),
        write_timeout: Duration::from_secs(5),
        ..ServerConfig::default()
    }
}

fn start(config: ServerConfig) -> foxq::server::ServerHandle {
    Server::bind(config).unwrap().start().unwrap()
}

/// Scrape one counter value out of a Prometheus rendering.
fn metric(text: &str, name: &str) -> u64 {
    text.lines()
        .find(|l| l.starts_with(name) && l[name.len()..].starts_with(' '))
        .and_then(|l| l.rsplit(' ').next())
        .and_then(|v| v.parse().ok())
        .unwrap_or_else(|| panic!("metric {name} not found in:\n{text}"))
}

#[test]
fn health_metrics_and_unknown_routes() {
    let handle = start(test_config());
    let addr = handle.local_addr();

    let ok = client::get(addr, "/healthz").unwrap();
    assert_eq!((ok.status, ok.text().as_str()), (200, "ok\n"));

    let metrics = client::get(addr, "/metrics").unwrap();
    assert_eq!(metrics.status, 200);
    assert!(metrics
        .text()
        .contains("foxq_requests_total{endpoint=\"healthz\"} 1"));

    assert_eq!(client::get(addr, "/nope").unwrap().status, 404);
    // Known path, wrong method.
    assert_eq!(client::get(addr, "/query").unwrap().status, 405);
    assert_eq!(client::post(addr, "/healthz", b"x").unwrap().status, 405);

    handle.shutdown();
}

#[test]
fn query_round_trip_cache_hits_and_keep_alive() {
    let handle = start(test_config());
    let addr = handle.local_addr();
    let target = client::query_target(PERSON_NAMES);

    // One keep-alive connection, several exchanges.
    let mut c = Client::connect(addr).unwrap();
    let r1 = c
        .request("POST", &target, &[], &doc(&["Jim", "Li"]))
        .unwrap();
    assert_eq!((r1.status, r1.text().as_str()), (200, "<o>JimLi</o>"));
    // The regions decoy subtree was withheld by the label prefilter.
    let prefiltered: u64 = r1
        .header("x-foxq-prefiltered-events")
        .unwrap()
        .parse()
        .unwrap();
    assert!(prefiltered > 0, "prefilter did not engage");

    let r2 = c.request("POST", &target, &[], &doc(&["Ada"])).unwrap();
    assert_eq!((r2.status, r2.text().as_str()), (200, "<o>Ada</o>"));
    let r3 = c.request("GET", "/healthz", &[], &[]).unwrap();
    assert_eq!(r3.status, 200);

    // Same query text compiled once; the second run was a cache hit.
    let metrics = c.request("GET", "/metrics", &[], &[]).unwrap().text();
    assert_eq!(metric(&metrics, "foxq_query_cache_compiles_total"), 1);
    assert!(metric(&metrics, "foxq_query_cache_hits_total") >= 1);
    assert!(metric(&metrics, "foxq_prefilter_skipped_events_total") >= prefiltered);

    handle.shutdown();
}

#[test]
fn batch_answers_n_queries_in_one_pass() {
    let handle = start(test_config());
    let addr = handle.local_addr();
    let target = client::batch_target([PERSON_NAMES, "<n>{$input//item}</n>"]);

    let r = client::post(addr, &target, &doc(&["Jim"])).unwrap();
    assert_eq!(r.status, 200);
    assert_eq!(
        r.text(),
        "### query 0\n<o>Jim</o>\n### query 1\n<n><item></item></n>\n"
    );
    assert_eq!(r.header("x-foxq-failed-lanes"), Some("0"));
    // Two lanes, one parse: the input-events header counts the shared pass.
    let events: u64 = r.header("x-foxq-input-events").unwrap().parse().unwrap();
    let solo = client::post(addr, &client::query_target(PERSON_NAMES), &doc(&["Jim"])).unwrap();
    let solo_events: u64 = solo.header("x-foxq-input-events").unwrap().parse().unwrap();
    assert_eq!(events, solo_events);

    handle.shutdown();
}

#[test]
fn bad_requests_are_rejected_cleanly() {
    let handle = start(test_config());
    let addr = handle.local_addr();

    // Malformed XML body.
    let r = client::post(addr, &client::query_target(PERSON_NAMES), b"<a><b>").unwrap();
    assert_eq!(r.status, 400);
    assert!(r.text().contains("malformed XML"), "{}", r.text());

    // Unparsable query text.
    let r = client::post(addr, "/query?q=for+%24x+return", b"<a/>").unwrap();
    assert_eq!(r.status, 400);
    assert!(r.text().contains("query rejected"), "{}", r.text());

    // Missing q parameter / missing body.
    assert_eq!(client::post(addr, "/query", b"<a/>").unwrap().status, 400);
    let r = Client::connect(addr)
        .unwrap()
        .request("POST", &client::query_target(PERSON_NAMES), &[], &[])
        .unwrap();
    assert_eq!(r.status, 400);

    // A query that cannot stream within its fuel: per-run failure is 422.
    let bomb = "<o>{$input//a//a//a//a//a//a//a//a}</o>";
    let deep = format!("<a>{}</a>", "<a>".repeat(60) + &"</a>".repeat(60));
    let r = client::post(addr, &client::query_target(bomb), deep.as_bytes()).unwrap();
    // Either it completes (200) or trips a serving limit (422) — never 5xx,
    // never a hung connection.
    assert!(r.status == 200 || r.status == 422, "status {}", r.status);

    handle.shutdown();
}

#[test]
fn oversized_bodies_get_413_without_being_buffered() {
    let config = ServerConfig {
        max_body_bytes: 4 * 1024,
        ..test_config()
    };
    let handle = start(config);
    let addr = handle.local_addr();
    let metrics0 = client::get(addr, "/metrics").unwrap().text();
    let bytes_before = metric(&metrics0, "foxq_bytes_in_total");

    // Content-Length framing: rejected as soon as the budget is exhausted.
    let big = doc(&vec!["x"; 2000]); // ~60 KiB
    assert!(big.len() > 32 * 1024);
    let r = client::post(addr, &client::query_target(PERSON_NAMES), &big).unwrap();
    assert_eq!(r.status, 413);
    assert!(r.text().contains("4096 bytes"), "{}", r.text());

    // Chunked framing: the server answers mid-upload; the client may not
    // even manage to send the whole body.
    let chunks: Vec<&[u8]> = big.chunks(1024).collect();
    let mut c = Client::connect(addr).unwrap();
    let (r, _sent) = c
        .request_chunked_expecting_early_reply(
            "POST",
            &client::query_target(PERSON_NAMES),
            chunks.iter().copied(),
        )
        .unwrap();
    assert_eq!(r.status, 413);

    // The server consumed ~max_body_bytes per attempt, not the ~120 KiB the
    // two uploads totalled: the body was streamed against the budget, never
    // buffered whole.
    let metrics1 = client::get(addr, "/metrics").unwrap().text();
    let consumed = metric(&metrics1, "foxq_bytes_in_total") - bytes_before;
    assert!(
        consumed < 2 * 16 * 1024,
        "server consumed {consumed} bytes of two over-limit uploads"
    );
    assert_eq!(metric(&metrics1, "foxq_responses_total{code=\"413\"}"), 2);

    handle.shutdown();
}

#[test]
fn a_document_larger_than_the_connection_buffer_streams_through() {
    // The inverse direction: a large *legitimate* document under the limit
    // streams through chunk by chunk and produces the right answer.
    let handle = start(test_config());
    let addr = handle.local_addr();
    let names: Vec<String> = (0..3000).map(|i| format!("p{i}")).collect();
    let refs: Vec<&str> = names.iter().map(String::as_str).collect();
    let big = doc(&refs); // ~100 KiB
    let chunks: Vec<&[u8]> = big.chunks(1500).collect();
    let mut c = Client::connect(addr).unwrap();
    let r = c
        .request_chunked("POST", &client::query_target(PERSON_NAMES), chunks)
        .unwrap();
    assert_eq!(r.status, 200);
    let expected = format!("<o>{}</o>", names.join(""));
    assert_eq!(r.text(), expected);
    handle.shutdown();
}

#[test]
fn sustains_100_concurrent_connections_with_zero_errors() {
    let handle = start(test_config());
    let addr = handle.local_addr();
    const CLIENTS: usize = 100;

    let results: Vec<Result<(), String>> = std::thread::scope(|scope| {
        let mut joins = Vec::with_capacity(CLIENTS);
        for i in 0..CLIENTS {
            joins.push(scope.spawn(move || -> Result<(), String> {
                let name = format!("client{i}");
                let mut c = Client::connect(addr).map_err(|e| e.to_string())?;
                // Two requests per connection: exercises keep-alive under load.
                for _ in 0..2 {
                    let r = c
                        .request(
                            "POST",
                            &client::query_target(PERSON_NAMES),
                            &[],
                            &doc(&[&name]),
                        )
                        .map_err(|e| e.to_string())?;
                    if r.status != 200 {
                        return Err(format!("status {}", r.status));
                    }
                    let expected = format!("<o>{name}</o>");
                    if r.text() != expected {
                        return Err(format!("mixed-up response: {}", r.text()));
                    }
                }
                Ok(())
            }));
        }
        joins.into_iter().map(|j| j.join().unwrap()).collect()
    });

    let failures: Vec<&String> = results.iter().filter_map(|r| r.as_ref().err()).collect();
    assert!(
        failures.is_empty(),
        "{} failures: {:?}",
        failures.len(),
        &failures[..failures.len().min(5)]
    );

    let metrics = client::get(addr, "/metrics").unwrap().text();
    assert!(metric(&metrics, "foxq_connections_total") >= CLIENTS as u64);
    assert_eq!(metric(&metrics, "foxq_query_cache_compiles_total"), 1);
    assert!(metric(&metrics, "foxq_query_cache_hits_total") >= (2 * CLIENTS - 1) as u64);
    handle.shutdown();
}

#[test]
fn metrics_counters_are_monotone() {
    let handle = start(test_config());
    let addr = handle.local_addr();
    let watched = [
        "foxq_connections_total",
        "foxq_bytes_in_total",
        "foxq_bytes_out_total",
        "foxq_input_events_total",
        "foxq_output_events_total",
        "foxq_lane_runs_total",
        "foxq_query_cache_hits_total",
        "foxq_query_cache_misses_total",
    ];
    let mut last = vec![0u64; watched.len()];
    for round in 0..4 {
        let r = client::post(addr, &client::query_target(PERSON_NAMES), &doc(&["n"])).unwrap();
        assert_eq!(r.status, 200);
        let text = client::get(addr, "/metrics").unwrap().text();
        for (name, prev) in watched.iter().zip(&mut last) {
            let now = metric(&text, name);
            assert!(now >= *prev, "{name} went backwards in round {round}");
            *prev = now;
        }
    }
    handle.shutdown();
}

#[test]
fn graceful_shutdown_drains_the_in_flight_request() {
    let config = ServerConfig {
        threads: 1, // the in-flight request owns the only worker
        ..test_config()
    };
    let handle = start(config);
    let addr = handle.local_addr();
    let metrics = handle.metrics();

    // Start a chunked /query upload but do not finish the body yet.
    let mut c = Client::connect(addr).unwrap();
    use std::io::Write;
    let target = client::query_target(PERSON_NAMES);
    let head =
        format!("POST {target} HTTP/1.1\r\nhost: foxq\r\ntransfer-encoding: chunked\r\n\r\n");
    let part1 = b"<site><people><person><name>Drain</name></person>";
    c.raw_writer()
        .write_all(format!("{head}{:x}\r\n", part1.len()).as_bytes())
        .unwrap();
    c.raw_writer().write_all(part1).unwrap();
    c.raw_writer().write_all(b"\r\n").unwrap();
    c.raw_writer().flush().unwrap();

    // Wait until the server is demonstrably inside the request…
    let deadline = std::time::Instant::now() + Duration::from_secs(5);
    while metrics.requests(foxq::server::Endpoint::Query) == 0 {
        assert!(
            std::time::Instant::now() < deadline,
            "request never started"
        );
        std::thread::sleep(Duration::from_millis(5));
    }

    // …then signal shutdown from another thread (it blocks on the drain).
    let shutdown = std::thread::spawn(move || handle.shutdown());
    std::thread::sleep(Duration::from_millis(100));

    // Finish the body: the draining server must still answer.
    let part2 = b"</people></site>";
    c.raw_writer()
        .write_all(format!("{:x}\r\n", part2.len()).as_bytes())
        .unwrap();
    c.raw_writer().write_all(part2).unwrap();
    c.raw_writer().write_all(b"\r\n0\r\n\r\n").unwrap();
    c.raw_writer().flush().unwrap();
    let r = c.read_response().unwrap();
    assert_eq!((r.status, r.text().as_str()), (200, "<o>Drain</o>"));

    shutdown.join().unwrap();

    // The listener is gone: new connections are refused (or reset).
    match Client::connect(addr) {
        Err(_) => {}
        Ok(mut c) => {
            assert!(c.request("GET", "/healthz", &[], &[]).is_err());
        }
    }
}

#[test]
fn shutdown_endpoint_drains_remotely() {
    let handle = start(test_config());
    let addr = handle.local_addr();
    let r = client::post(addr, "/shutdown", &[]).unwrap();
    assert_eq!((r.status, r.text().as_str()), (200, "draining\n"));
    // join() returns because the endpoint signalled the drain.
    handle.join();
    assert!(Client::connect(addr)
        .map(|mut c| c.request("GET", "/healthz", &[], &[]).is_err())
        .unwrap_or(true));
}

#[test]
fn corpus_ingest_list_query_and_metrics() {
    let dir = std::env::temp_dir().join(format!("foxq-server-corpus-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let handle = start(ServerConfig {
        corpus_dir: Some(dir.to_string_lossy().into_owned()),
        ..test_config()
    });
    let addr = handle.local_addr();
    let mut c = Client::connect(addr).unwrap();

    // Ingest two documents; the second replaces nothing (distinct ids).
    let r = c
        .request("POST", "/corpus/alpha", &[], &doc(&["Jim", "Li"]))
        .unwrap();
    assert_eq!(r.status, 200, "{}", r.text());
    assert!(r.text().contains("stored alpha"), "{}", r.text());
    let r = c
        .request("POST", "/corpus/beta", &[], &doc(&["Ada"]))
        .unwrap();
    assert_eq!(r.status, 200);

    // Hostile ids and missing bodies are rejected.
    let r = c.request("POST", "/corpus/.sneaky", &[], b"<a/>").unwrap();
    assert_eq!(r.status, 400);
    // (that reply closed the connection: the body was left on the wire)
    let mut c = Client::connect(addr).unwrap();
    let r = c.request("POST", "/corpus/nobody", &[], &[]).unwrap();
    assert_eq!(r.status, 400);

    // The manifest lists both docs.
    let r = c.request("GET", "/corpus", &[], &[]).unwrap();
    assert_eq!(r.status, 200);
    let listing = r.text();
    assert!(
        listing.contains("alpha\t") && listing.contains("beta\t"),
        "{listing}"
    );

    // Query from the stored tape: no request body at all.
    let r = c
        .request(
            "POST",
            &client::query_doc_target(PERSON_NAMES, "alpha"),
            &[],
            &[],
        )
        .unwrap();
    assert_eq!((r.status, r.text().as_str()), (200, "<o>JimLi</o>"));
    // Corpus tapes are FET2, so the query rides the label skip index:
    // unmatched regions are never visited, let alone seeked over.
    let index: u64 = r
        .header("x-foxq-index-skipped-bytes")
        .unwrap()
        .parse()
        .unwrap();
    assert!(index > 0, "regions subtree was not index-skipped");

    // Unknown doc → 404; malformed ingest XML → 400.
    let r = c
        .request(
            "POST",
            &client::query_doc_target(PERSON_NAMES, "nope"),
            &[],
            &[],
        )
        .unwrap();
    assert_eq!(r.status, 404);
    let mut c2 = Client::connect(addr).unwrap();
    let r = c2
        .request("POST", "/corpus/broken", &[], b"<a><unclosed>")
        .unwrap();
    assert_eq!(r.status, 400);

    // Metrics carry the corpus counters.
    let text = client::get(addr, "/metrics").unwrap().text();
    assert_eq!(metric(&text, "foxq_corpus_ingests_total"), 2);
    assert_eq!(metric(&text, "foxq_corpus_hits_total"), 1);
    assert_eq!(metric(&text, "foxq_corpus_docs"), 2);
    assert!(metric(&text, "foxq_index_skipped_bytes_total") > 0);

    // The store is durable: a fresh server over the same directory serves
    // the same documents.
    handle.shutdown();
    let handle = start(ServerConfig {
        corpus_dir: Some(dir.to_string_lossy().into_owned()),
        ..test_config()
    });
    let r = client::post(
        handle.local_addr(),
        &client::query_doc_target(PERSON_NAMES, "beta"),
        &[],
    )
    .unwrap();
    assert_eq!((r.status, r.text().as_str()), (200, "<o>Ada</o>"));
    handle.shutdown();
    let _ = std::fs::remove_dir_all(&dir);
}

// ---------------------------------------------------------------------------
// Keep-alive framing: pipelining, smuggling shapes, trailing bytes
// ---------------------------------------------------------------------------

/// Two complete requests written in one TCP segment: both must be answered,
/// in order, off the bytes the server buffered past the first request.
#[test]
fn pipelined_requests_in_one_segment_are_both_answered() {
    use std::io::Write;
    let handle = start(test_config());
    let addr = handle.local_addr();
    let mut c = Client::connect(addr).unwrap();
    let target = client::query_target(PERSON_NAMES);
    let body = doc(&["Pipe"]);
    let mut segment = Vec::new();
    segment.extend_from_slice(
        format!(
            "POST {target} HTTP/1.1\r\nhost: foxq\r\ncontent-length: {}\r\n\r\n",
            body.len()
        )
        .as_bytes(),
    );
    segment.extend_from_slice(&body);
    segment.extend_from_slice(b"GET /healthz HTTP/1.1\r\nhost: foxq\r\n\r\n");
    c.raw_writer().write_all(&segment).unwrap();
    c.raw_writer().flush().unwrap();

    let r1 = c.read_response().unwrap();
    assert_eq!((r1.status, r1.text().as_str()), (200, "<o>Pipe</o>"));
    let r2 = c.read_response().unwrap();
    assert_eq!((r2.status, r2.text().as_str()), (200, "ok\n"));
    handle.shutdown();
}

/// Duplicate, conflicting, and list-valued `Content-Length` headers are the
/// request-smuggling shapes of RFC 9112 §6.3: each must be answered 400 and
/// the connection closed, and the bytes a desynchronized parser would have
/// treated as a second request must never be answered.
#[test]
fn conflicting_content_lengths_are_rejected_and_the_connection_closed() {
    use std::io::Write;
    let handle = start(test_config());
    let addr = handle.local_addr();
    // The trailer is what a front proxy honoring the *other* CL value
    // would forward as a separate request; answering it means smuggling.
    let smuggle = "GET /smuggled HTTP/1.1\r\nhost: foxq\r\n\r\n";
    for cl_headers in [
        "content-length: 0\r\ncontent-length: 38\r\n",
        "content-length: 38\r\ncontent-length: 38\r\n",
        "content-length: 0, 38\r\n",
    ] {
        let mut c = Client::connect(addr).unwrap();
        let wire = format!("GET /healthz HTTP/1.1\r\nhost: foxq\r\n{cl_headers}\r\n{smuggle}");
        c.raw_writer().write_all(wire.as_bytes()).unwrap();
        c.raw_writer().flush().unwrap();
        let r = c.read_response().unwrap();
        assert_eq!(r.status, 400, "headers {cl_headers:?}: {}", r.text());
        assert!(
            c.read_response().is_err(),
            "connection stayed open after ambiguous framing {cl_headers:?}"
        );
    }
    // The smuggled target never reached routing.
    let text = client::get(addr, "/metrics").unwrap().text();
    assert_eq!(metric(&text, "foxq_responses_total{code=\"400\"}"), 3);
    handle.shutdown();
}

/// `Transfer-Encoding` together with `Content-Length` is ambiguous framing
/// (RFC 9112 §6.3): 400, connection closed — today's silent TE-wins
/// behavior is exactly how smuggling pairs disagree.
#[test]
fn transfer_encoding_with_content_length_is_rejected() {
    use std::io::Write;
    let handle = start(test_config());
    let addr = handle.local_addr();
    let target = client::query_target(PERSON_NAMES);
    let mut c = Client::connect(addr).unwrap();
    let wire = format!(
        "POST {target} HTTP/1.1\r\nhost: foxq\r\n\
         transfer-encoding: chunked\r\ncontent-length: 4\r\n\r\n\
         4\r\n<a/>\r\n0\r\n\r\n"
    );
    c.raw_writer().write_all(wire.as_bytes()).unwrap();
    c.raw_writer().flush().unwrap();
    let r = c.read_response().unwrap();
    assert_eq!(r.status, 400, "{}", r.text());
    assert!(r.text().contains("transfer-encoding"), "{}", r.text());
    assert!(c.read_response().is_err(), "connection stayed open");
    handle.shutdown();
}

/// Bytes after the XML root inside a sized body must never desynchronize
/// the next keep-alive request: either the parser consumes them (top-level
/// text) and the pipelined request is answered normally, or the request
/// fails and the connection closes. A response to a *mis-framed* second
/// request is the bug.
#[test]
fn trailing_bytes_after_the_root_never_misframe_the_next_request() {
    use std::io::Write;
    let handle = start(test_config());
    let addr = handle.local_addr();
    let target = client::query_target(PERSON_NAMES);

    // Trailing top-level text: consumed to the framed end, connection
    // reusable, pipelined request answered.
    let mut c = Client::connect(addr).unwrap();
    let body = b"<site><people/></site> trailing words";
    let wire = format!(
        "POST {target} HTTP/1.1\r\nhost: foxq\r\ncontent-length: {}\r\n\r\n",
        body.len()
    );
    c.raw_writer().write_all(wire.as_bytes()).unwrap();
    c.raw_writer().write_all(body).unwrap();
    c.raw_writer()
        .write_all(b"GET /healthz HTTP/1.1\r\nhost: foxq\r\n\r\n")
        .unwrap();
    c.raw_writer().flush().unwrap();
    let r1 = c.read_response().unwrap();
    // If the server kept the connection, the second response must be the
    // health check — not a parse of mid-body bytes. A closed connection
    // (read error) is also sound.
    if let Ok(r2) = c.read_response() {
        assert_eq!(r1.status, 200, "{}", r1.text());
        assert_eq!((r2.status, r2.text().as_str()), (200, "ok\n"));
    }

    // Trailing garbage that kills the parse mid-body: the 400 must close
    // the connection (unread bytes remain), never answer the next head.
    let mut c = Client::connect(addr).unwrap();
    let body = b"<site><people/></site></oops>";
    let wire = format!(
        "POST {target} HTTP/1.1\r\nhost: foxq\r\ncontent-length: {}\r\n\r\n",
        body.len()
    );
    c.raw_writer().write_all(wire.as_bytes()).unwrap();
    c.raw_writer().write_all(body).unwrap();
    c.raw_writer()
        .write_all(b"GET /healthz HTTP/1.1\r\nhost: foxq\r\n\r\n")
        .unwrap();
    c.raw_writer().flush().unwrap();
    let r1 = c.read_response().unwrap();
    assert_eq!(r1.status, 400, "{}", r1.text());
    assert!(
        c.read_response().is_err(),
        "connection reused after an unconsumed body"
    );
    handle.shutdown();
}

/// A chunked body whose terminating `0\r\n\r\n` is followed *in the same
/// segment* by the next request head: the chunk decoder must stop exactly
/// at the framed end and the next head must be answered.
#[test]
fn chunked_body_followed_immediately_by_the_next_head() {
    use std::io::Write;
    let handle = start(test_config());
    let addr = handle.local_addr();
    let target = client::query_target(PERSON_NAMES);
    let body = doc(&["Chunky"]);

    let mut segment = Vec::new();
    segment.extend_from_slice(
        format!("POST {target} HTTP/1.1\r\nhost: foxq\r\ntransfer-encoding: chunked\r\n\r\n")
            .as_bytes(),
    );
    for chunk in body.chunks(7) {
        segment.extend_from_slice(format!("{:x}\r\n", chunk.len()).as_bytes());
        segment.extend_from_slice(chunk);
        segment.extend_from_slice(b"\r\n");
    }
    segment.extend_from_slice(b"0\r\n\r\n");
    segment.extend_from_slice(b"GET /healthz HTTP/1.1\r\nhost: foxq\r\n\r\n");

    let mut c = Client::connect(addr).unwrap();
    c.raw_writer().write_all(&segment).unwrap();
    c.raw_writer().flush().unwrap();
    let r1 = c.read_response().unwrap();
    assert_eq!((r1.status, r1.text().as_str()), (200, "<o>Chunky</o>"));
    let r2 = c.read_response().unwrap();
    assert_eq!((r2.status, r2.text().as_str()), (200, "ok\n"));
    handle.shutdown();
}

/// The reactor property itself: connections trickling partial heads park in
/// the reactor, not on workers — with a single worker thread and eight
/// stalled peers, a healthy client is still answered immediately. (The
/// worker-pool server wedged here: each stalled head held the worker for a
/// full read timeout.)
#[test]
fn stalled_head_connections_do_not_wedge_healthy_clients() {
    use std::io::Write;
    let config = ServerConfig {
        threads: 1,
        ..test_config()
    };
    let handle = start(config);
    let addr = handle.local_addr();

    let mut stalled = Vec::new();
    for _ in 0..8 {
        let mut c = Client::connect(addr).unwrap();
        c.raw_writer()
            .write_all(b"GET /healthz HTTP/1.1\r\nhost: loris\r\n")
            .unwrap();
        c.raw_writer().flush().unwrap();
        stalled.push(c); // keep open, never finish the head
    }

    let t0 = std::time::Instant::now();
    let r = client::get(addr, "/healthz").unwrap();
    assert_eq!(r.status, 200);
    assert!(
        t0.elapsed() < Duration::from_secs(3),
        "healthy request took {:?} behind stalled connections",
        t0.elapsed()
    );
    drop(stalled);
    handle.shutdown();
}

#[test]
fn corpus_endpoints_without_a_corpus_are_503() {
    let handle = start(test_config());
    let addr = handle.local_addr();
    let r = client::get(addr, "/corpus").unwrap();
    assert_eq!(r.status, 503);
    let r = client::post(addr, &client::query_doc_target(PERSON_NAMES, "x"), &[]).unwrap();
    assert_eq!(r.status, 503);
    // /metrics omits the corpus gauge entirely.
    let text = client::get(addr, "/metrics").unwrap().text();
    assert!(!text.contains("foxq_corpus_docs"));
    handle.shutdown();
}

// ---------------------------------------------------------------------------
// Earliest-emission streaming: /query?stream=1
// ---------------------------------------------------------------------------

/// A streamed response carries the same bytes as the buffered one, framed as
/// chunks, with the run statistics moved from headers into trailers — and the
/// connection stays reusable afterwards.
#[test]
fn streamed_query_matches_buffered_and_moves_stats_to_trailers() {
    let handle = start(test_config());
    let addr = handle.local_addr();
    let body = doc(&["Jim", "Li", "Ada", "Mina"]);
    let target = client::query_target(PERSON_NAMES);
    let streamed_target = format!("{target}&stream=1");

    let mut c = Client::connect(addr).unwrap();
    let buffered = c.request("POST", &target, &[], &body).unwrap();
    let streamed = c.request("POST", &streamed_target, &[], &body).unwrap();
    assert_eq!(buffered.status, 200);
    assert_eq!(streamed.status, 200);
    assert_eq!(streamed.header("transfer-encoding"), Some("chunked"));
    assert!(streamed.header("content-length").is_none());
    assert_eq!(streamed.body, buffered.body, "streamed bytes diverge");
    assert!(streamed.chunks >= 1);

    // Peak stats ride as headers on buffered responses, trailers on streamed
    // ones. The engine run is deterministic, so the values agree.
    assert!(buffered.header("x-foxq-peak-pending-calls").is_some());
    assert!(buffered.trailers.is_empty());
    assert!(streamed.header("x-foxq-peak-pending-calls").is_none());
    assert!(streamed.header("x-foxq-peak-live-bytes").is_none());
    assert_eq!(
        streamed.trailer("x-foxq-peak-pending-calls"),
        buffered.header("x-foxq-peak-pending-calls")
    );
    assert_eq!(
        streamed.trailer("x-foxq-peak-live-bytes"),
        buffered.header("x-foxq-peak-live-bytes")
    );
    let flushes: u64 = streamed
        .trailer("x-foxq-emit-flushes")
        .unwrap()
        .parse()
        .unwrap();
    assert!(flushes >= 1, "no emitting flushes recorded");
    let first: u64 = streamed
        .trailer("x-foxq-first-emit-events")
        .unwrap()
        .parse()
        .unwrap();
    assert!(first >= 1, "first emit event not recorded");

    // A streamed request without a body is rejected before any chunk is
    // written: a plain buffered 400.
    let r = c.request("POST", &streamed_target, &[], &[]).unwrap();
    assert_eq!(r.status, 400);
    assert!(r.header("content-length").is_some());

    // The new metric families move.
    let metrics = c.request("GET", "/metrics", &[], &[]).unwrap().text();
    assert_eq!(metric(&metrics, "foxq_streamed_responses_total"), 1);
    assert!(metric(&metrics, "foxq_first_emit_events_count") >= 1);
    assert!(metric(&metrics, "foxq_emit_flushes_per_request_count") >= 1);
    handle.shutdown();
}

/// The point of the subsystem: the response head and first chunks are on the
/// wire while the request body is still being uploaded. The client holds the
/// chunked upload open, reads a 200 status line, and only then finishes the
/// document.
#[test]
fn streamed_head_arrives_before_request_body_ends() {
    use std::io::{BufRead, BufReader, Read, Write};
    use std::net::TcpStream;
    let handle = start(test_config());
    let addr = handle.local_addr();
    let target = format!("{}&stream=1", client::query_target(PERSON_NAMES));

    let mut stream = TcpStream::connect(addr).unwrap();
    stream
        .set_read_timeout(Some(Duration::from_secs(10)))
        .unwrap();
    stream.set_nodelay(true).ok();
    write!(
        stream,
        "POST {target} HTTP/1.1\r\nhost: foxq\r\nconnection: close\r\ntransfer-encoding: chunked\r\n\r\n"
    )
    .unwrap();
    // First request chunk: an unterminated document holding plenty of
    // already-final output.
    let mut prefix = String::from("<site><people>");
    for i in 0..500 {
        prefix.push_str(&format!("<person><name>p{i}</name></person>"));
    }
    write!(stream, "{:x}\r\n{prefix}\r\n", prefix.len()).unwrap();
    stream.flush().unwrap();

    // Earliest emission in action: the status line must arrive while the
    // upload is still open.
    let mut reader = BufReader::new(stream.try_clone().unwrap());
    let mut status = String::new();
    reader.read_line(&mut status).unwrap();
    assert!(
        status.starts_with("HTTP/1.1 200"),
        "bad status line before body end: {status:?}"
    );

    // Now close the document and the chunked request body, and drain the
    // rest of the response.
    let tail = "</people></site>";
    write!(stream, "{:x}\r\n{tail}\r\n0\r\n\r\n", tail.len()).unwrap();
    stream.flush().unwrap();
    let mut rest = Vec::new();
    reader.read_to_end(&mut rest).unwrap();
    let rest = String::from_utf8_lossy(&rest);
    assert!(rest.contains("transfer-encoding: chunked"), "{rest}");
    assert!(rest.contains("p0") && rest.contains("p499"), "{rest}");
    assert!(rest.contains("x-foxq-peak-pending-calls"), "{rest}");
    assert!(rest.ends_with("\r\n\r\n"), "trailer section unterminated");
    handle.shutdown();
}

/// Streaming over a stored corpus tape: same bytes as the buffered doc
/// query, with the tape skip counters appearing as trailers.
#[test]
fn streamed_doc_query_serves_from_corpus_tape() {
    let dir = std::env::temp_dir().join(format!("foxq-server-stream-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let handle = start(ServerConfig {
        corpus_dir: Some(dir.to_string_lossy().into_owned()),
        ..test_config()
    });
    let addr = handle.local_addr();
    let mut c = Client::connect(addr).unwrap();
    let r = c
        .request("POST", "/corpus/alpha", &[], &doc(&["Jim", "Li"]))
        .unwrap();
    assert_eq!(r.status, 200);

    let target = client::query_doc_target(PERSON_NAMES, "alpha");
    let buffered = c.request("POST", &target, &[], &[]).unwrap();
    let streamed = c
        .request("POST", &format!("{target}&stream=1"), &[], &[])
        .unwrap();
    assert_eq!(streamed.status, 200);
    assert_eq!(streamed.header("transfer-encoding"), Some("chunked"));
    assert_eq!(streamed.body, buffered.body);
    assert_eq!(streamed.text(), "<o>JimLi</o>");
    // FET2 tapes ride the label skip index even when streaming.
    let index: u64 = streamed
        .trailer("x-foxq-index-skipped-bytes")
        .unwrap()
        .parse()
        .unwrap();
    assert!(index > 0, "regions subtree was not index-skipped");

    // Unknown doc on the streamed path: a plain buffered 404.
    let r = c
        .request(
            "POST",
            &format!(
                "{}&stream=1",
                client::query_doc_target(PERSON_NAMES, "nope")
            ),
            &[],
            &[],
        )
        .unwrap();
    assert_eq!(r.status, 404);
    handle.shutdown();
    let _ = std::fs::remove_dir_all(&dir);
}

/// A run that fails after the head is on the wire cannot be un-sent: the
/// server truncates the chunked body (no terminating zero chunk) and closes,
/// which a conforming client must treat as an incomplete response.
#[test]
fn streamed_mid_run_failure_truncates_the_chunked_body() {
    let handle = start(test_config());
    let addr = handle.local_addr();
    let target = format!("{}&stream=1", client::query_target(PERSON_NAMES));
    let mut c = Client::connect(addr).unwrap();
    // Well-formed prefix (so the head and first chunks go out), then a
    // parse error at end of input.
    let body = b"<site><people><person><name>Jim</name></person><broken".to_vec();
    let err = c
        .request("POST", &target, &[], &body)
        .expect_err("truncated stream decoded as a complete response");
    assert!(
        matches!(
            err.kind(),
            std::io::ErrorKind::InvalidData | std::io::ErrorKind::UnexpectedEof
        ),
        "unexpected error: {err}"
    );
    let text = client::get(addr, "/metrics").unwrap().text();
    assert!(metric(&text, "foxq_lane_failures_total") >= 1);
    handle.shutdown();
}
