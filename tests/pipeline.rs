//! End-to-end pipeline tests: XML bytes in, XML bytes out, through the real
//! parser (entities, attributes, CDATA, whitespace) and the full
//! parse → translate → optimize → stream stack.

use foxq::core::opt::optimize;
use foxq::core::stream::{run_streaming, run_streaming_to_string};
use foxq::core::translate::translate;
use foxq::xml::{parse_document, WriterSink, XmlReader};
use foxq::xquery::{eval_query, parse_query};

fn pipeline(query: &str, xml: &str) -> String {
    let q = parse_query(query).unwrap();
    let m = optimize(translate(&q).unwrap());
    run_streaming_to_string(&m, xml.as_bytes()).unwrap().output
}

fn reference(query: &str, xml: &str) -> String {
    let q = parse_query(query).unwrap();
    let f = parse_document(xml.as_bytes()).unwrap();
    foxq::xml::forest_to_xml_string(&eval_query(&q, &f).unwrap())
}

#[test]
fn attributes_are_queryable_as_children() {
    // <book isbn="123"> — the attribute is an element child in the model.
    let xml = r#"<lib><book isbn="123"><t>A</t></book><book isbn="456"><t>B</t></book></lib>"#;
    let q = r#"<hit>{ for $b in $input/lib/book[./isbn/text()="456"] return $b/t/text() }</hit>"#;
    assert_eq!(pipeline(q, xml), "<hit>B</hit>");
    assert_eq!(pipeline(q, xml), reference(q, xml));
}

#[test]
fn entities_compare_correctly() {
    let xml = "<r><p><id>a&amp;b</id><n>X</n></p><p><id>ab</id><n>Y</n></p></r>";
    let q = r#"<o>{ for $p in $input/r/p[./id/text()="a&b"] return $p/n/text() }</o>"#;
    // The query string contains the raw characters; the document the
    // entity-encoded form. They must meet in the data model.
    let parsed = parse_query(q).unwrap();
    let m = optimize(translate(&parsed).unwrap());
    let out = run_streaming_to_string(&m, xml.as_bytes()).unwrap().output;
    assert_eq!(out, "<o>X</o>");
}

#[test]
fn output_is_escaped() {
    let xml = "<r><v>1 &lt; 2 &amp; 3</v></r>";
    let q = "<o>{$input/r/v/text()}</o>";
    assert_eq!(pipeline(q, xml), "<o>1 &lt; 2 &amp; 3</o>");
}

#[test]
fn cdata_and_comments_flow_through() {
    let xml = "<r><!-- ignored --><v><![CDATA[<raw>]]></v></r>";
    let q = "<o>{$input/r/v}</o>";
    assert_eq!(pipeline(q, xml), "<o><v>&lt;raw&gt;</v></o>");
}

#[test]
fn streaming_into_a_writer_sink_matches_string_driver() {
    let xml = "<site><a><b>x</b></a><a><b>y</b></a></site>";
    let q = "<o>{$input//b}</o>";
    let parsed = parse_query(q).unwrap();
    let m = optimize(translate(&parsed).unwrap());
    let (sink, stats) = run_streaming(
        &m,
        XmlReader::new(xml.as_bytes()),
        WriterSink::new(Vec::new()),
    )
    .unwrap();
    let bytes = sink.finish().unwrap();
    assert_eq!(String::from_utf8(bytes).unwrap(), "<o><b>x</b><b>y</b></o>");
    assert!(stats.events > 0 && stats.output_events > 0);
}

#[test]
fn all_benchmark_queries_run_through_real_xml() {
    // Serialize a generated XMark document and run the full byte pipeline.
    let forest = foxq::gen::generate(foxq::gen::Dataset::Xmark, 30_000, 9);
    let xml = foxq::xml::forest_to_xml_string(&forest);
    for (name, src) in foxq_bench::QUERIES {
        let q = parse_query(src).unwrap();
        let m = optimize(translate(&q).unwrap());
        let streamed = run_streaming_to_string(&m, xml.as_bytes()).unwrap().output;
        let expect = foxq::xml::forest_to_xml_string(&eval_query(&q, &forest).unwrap());
        assert_eq!(streamed, expect, "{name} through the byte pipeline");
    }
}

#[test]
fn malformed_xml_surfaces_as_an_error() {
    let q = parse_query("<o>{$input/a}</o>").unwrap();
    let m = optimize(translate(&q).unwrap());
    assert!(foxq::core::stream::run_streaming_to_string(&m, b"<a><b></a>").is_err());
    assert!(foxq::core::stream::run_streaming_to_string(&m, b"<a>").is_err());
}
