//! Properties of the MFT representation itself, exercised over transducers
//! obtained by translating random MinXQuery programs (a richer family than
//! hand-written samples: predicate CPS states, qcopy, scan subsets, …).

use foxq::core::opt::{optimize_with_stats, OptStats};
use foxq::core::translate::translate;
use foxq::core::{parse_mft, print_mft, run_mft};
use foxq::forest::term::parse_forest;
use foxq::forest::Forest;
use foxq::xquery::ast::{Axis, NodeTest, Path, Pred, Query, RelPath, Step};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

const NAMES: [&str; 4] = ["a", "b", "c", "d"];

fn random_query(rng: &mut SmallRng, nearest: &str, depth: usize) -> Query {
    let step = |rng: &mut SmallRng| {
        let mut preds = Vec::new();
        if rng.gen_bool(0.3) {
            let rel = RelPath {
                steps: vec![Step {
                    axis: Axis::Child,
                    test: NodeTest::Name(NAMES[rng.gen_range(0..4)].into()),
                    preds: vec![],
                }],
            };
            preds.push(if rng.gen_bool(0.5) {
                Pred::Exists(rel)
            } else {
                Pred::Eq(
                    RelPath {
                        steps: vec![Step {
                            axis: Axis::Child,
                            test: NodeTest::Text,
                            preds: vec![],
                        }],
                    },
                    "t1".into(),
                )
            });
        }
        Step {
            axis: if rng.gen_bool(0.7) {
                Axis::Child
            } else {
                Axis::Descendant
            },
            test: NodeTest::Name(NAMES[rng.gen_range(0..4)].into()),
            preds,
        }
    };
    let path = |rng: &mut SmallRng, start: &str| Path {
        start: start.into(),
        steps: (0..rng.gen_range(1..3)).map(|_| step(rng)).collect(),
    };
    if depth >= 2 {
        return Query::Path(path(rng, nearest));
    }
    match rng.gen_range(0..3) {
        0 => Query::Element {
            name: NAMES[rng.gen_range(0..4)].into(),
            content: vec![random_query(rng, nearest, depth + 1)],
        },
        1 => {
            let var = format!("v{depth}");
            let body = random_query(rng, &var, depth + 1);
            Query::For {
                var,
                path: path(rng, nearest),
                body: Box::new(body),
            }
        }
        _ => Query::Path(path(rng, nearest)),
    }
}

fn random_docs(rng: &mut SmallRng) -> Vec<Forest> {
    let mut docs = vec![
        parse_forest(r#"a(b("t1") c(d)) b(a("t2"))"#).unwrap(),
        parse_forest("").unwrap(),
    ];
    let names = ["a", "b", "c", "d"];
    for _ in 0..2 {
        let mut term = String::new();
        for _ in 0..rng.gen_range(1..4) {
            term.push_str(&format!(
                "{}({}(\"t{}\") {}) ",
                names[rng.gen_range(0..4)],
                names[rng.gen_range(0..4)],
                rng.gen_range(1..3),
                names[rng.gen_range(0..4)],
            ));
        }
        docs.push(parse_forest(&term).unwrap());
    }
    docs
}

/// print_mft / parse_mft round-trips behaviourally on translated queries.
#[test]
fn text_format_roundtrips_translated_transducers() {
    for seed in 0..150u64 {
        let mut rng = SmallRng::seed_from_u64(seed);
        let q = random_query(&mut rng, "input", 0);
        let m = translate(&q).unwrap();
        let printed = print_mft(&m);
        let back = parse_mft(&printed)
            .unwrap_or_else(|e| panic!("reparse failed (seed {seed}): {e}\n{printed}"));
        assert_eq!(m.state_count(), back.state_count(), "seed {seed}");
        for doc in random_docs(&mut rng) {
            assert_eq!(
                run_mft(&m, &doc).unwrap(),
                run_mft(&back, &doc).unwrap(),
                "seed {seed} on {doc:?}"
            );
        }
    }
}

/// Optimization reaches a fixpoint: a second run changes nothing.
#[test]
fn optimization_is_idempotent_on_random_queries() {
    for seed in 0..150u64 {
        let mut rng = SmallRng::seed_from_u64(seed);
        let q = random_query(&mut rng, "input", 0);
        let (m1, _) = optimize_with_stats(translate(&q).unwrap());
        let (m2, stats) = optimize_with_stats(m1.clone());
        assert_eq!(m1.state_count(), m2.state_count(), "seed {seed}");
        assert_eq!(
            stats,
            OptStats {
                rounds: stats.rounds,
                // A budget-kept candidate is re-skipped every run; that is a
                // diagnostic, not a rewrite.
                inline_budget_skips: stats.inline_budget_skips,
                ..OptStats::default()
            },
            "seed {seed}: second optimization still changed something"
        );
    }
}

/// Optimization never increases the size metric and never breaks validity.
#[test]
fn optimization_shrinks_and_stays_valid() {
    for seed in 0..150u64 {
        let mut rng = SmallRng::seed_from_u64(seed);
        let q = random_query(&mut rng, "input", 0);
        let m0 = translate(&q).unwrap();
        let (m1, _) = optimize_with_stats(m0.clone());
        m1.validate().unwrap();
        assert!(
            m1.size() <= m0.size(),
            "seed {seed}: {} > {}",
            m1.size(),
            m0.size()
        );
        assert!(m1.state_count() <= m0.state_count(), "seed {seed}");
    }
}
