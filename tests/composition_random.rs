//! Randomized equivalence tests for the §4.2 composition constructions:
//! `[[compose(M1,M2)]](t) = [[M2]]([[M1]](t))` on random transducers and
//! random inputs.

use foxq::core::mft::{OutLabel, StateId, XVar};
use foxq::forest::fcns::fcns;
use foxq::forest::{BinTree, Forest};
use foxq::tt::{compose_ft_ft, compose_tt_tt, compose_tt_tt_naive, Mtt, TNode};
use proptest::prelude::*;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

const SYMS: [&str; 3] = ["a", "b", "c"];

/// Random total deterministic TT without stay moves (guaranteed to
/// terminate) over the {a,b,c} alphabet.
fn random_tt(rng: &mut SmallRng) -> Mtt {
    let mut m = Mtt::new();
    for s in SYMS {
        m.alphabet.intern_elem(s);
    }
    let nstates = rng.gen_range(1..=3);
    for i in 0..nstates {
        m.add_state(format!("q{i}"), 0);
    }
    m.initial = StateId(0);
    for q in 0..nstates {
        let nsym = rng.gen_range(0..=SYMS.len());
        for s in 0..nsym {
            let rhs = random_rhs(rng, nstates, 0, true);
            m.rules[q].by_sym.insert(foxq::forest::SymId(s as u32), rhs);
        }
        m.rules[q].default = random_rhs(rng, nstates, 0, true);
        // ε-rules: ground output only (no x0 — keeps everything terminating).
        m.rules[q].eps = random_rhs(rng, nstates, 0, false);
    }
    m.validate().unwrap();
    m
}

fn random_rhs(rng: &mut SmallRng, nstates: usize, depth: usize, calls: bool) -> TNode {
    let choice = if depth >= 3 {
        rng.gen_range(0..2)
    } else {
        rng.gen_range(0..4)
    };
    match choice {
        0 => TNode::Eps,
        1 => {
            let label = if rng.gen_bool(0.8) {
                OutLabel::Sym(foxq::forest::SymId(rng.gen_range(0..SYMS.len()) as u32))
            } else {
                OutLabel::Current
            };
            // %t is invalid in ε-rules; fall back to a symbol there.
            let label = if !calls && label == OutLabel::Current {
                OutLabel::Sym(foxq::forest::SymId(0))
            } else {
                label
            };
            TNode::out(
                label,
                random_rhs(rng, nstates, depth + 1, calls),
                random_rhs(rng, nstates, depth + 1, calls),
            )
        }
        _ if calls => {
            let x = if rng.gen_bool(0.5) {
                XVar::X1
            } else {
                XVar::X2
            };
            TNode::call(StateId(rng.gen_range(0..nstates) as u32), x, vec![])
        }
        _ => TNode::Eps,
    }
}

fn random_input(rng: &mut SmallRng) -> BinTree {
    fn tree(rng: &mut SmallRng, budget: &mut usize, depth: usize) -> Forest {
        let mut out = Vec::new();
        while *budget > 0 && out.len() < 3 && rng.gen_bool(0.7) {
            *budget -= 1;
            let children = if depth < 4 {
                tree(rng, budget, depth + 1)
            } else {
                vec![]
            };
            out.push(foxq::forest::Tree {
                label: foxq::forest::Label::elem(SYMS[rng.gen_range(0..SYMS.len())]),
                children,
            });
        }
        out
    }
    let mut budget = rng.gen_range(1..12usize);
    fcns(&tree(rng, &mut budget, 0))
}

/// Random TTs can have exponential size increase, and a composition squares
/// it — bound the interpreter and run on a large stack so pathological
/// seeds are skipped instead of exhausting memory.
fn check_tt_composition(seed: u64) {
    use foxq::tt::run_mtt_with_limit;
    let mut rng = SmallRng::seed_from_u64(seed);
    let m1 = random_tt(&mut rng);
    let m2 = random_tt(&mut rng);
    let stay = compose_tt_tt(&m1, &m2);
    let naive = compose_tt_tt_naive(&m1, &m2, 1_000_000);
    for _ in 0..5 {
        let t = random_input(&mut rng);
        // Skip samples whose sequential output is already huge.
        let Ok(mid) = run_mtt_with_limit(&m1, &t, 100_000) else {
            continue;
        };
        let Ok(expected) = run_mtt_with_limit(&m2, &mid, 100_000) else {
            continue;
        };
        // The composed run takes more steps (stay chains); generous margin.
        let got = run_mtt_with_limit(&stay, &t, 50_000_000).unwrap();
        assert_eq!(
            got, expected,
            "stay composition differs (seed {seed}) on {t:?}"
        );
        if let Some(n) = &naive {
            let got_naive = run_mtt_with_limit(n, &t, 50_000_000).unwrap();
            assert_eq!(
                got_naive, expected,
                "naive composition differs (seed {seed})"
            );
        }
    }
}

/// Run `f` on a thread with a large stack (deep output trees recurse in the
/// interpreter and in `Drop`).
fn with_big_stack(f: impl FnOnce() + Send + 'static) {
    std::thread::Builder::new()
        .stack_size(512 << 20)
        .spawn(f)
        .unwrap()
        .join()
        .unwrap();
}

#[test]
fn tt_composition_agrees_on_fixed_seeds() {
    with_big_stack(|| {
        for seed in 0..200u64 {
            check_tt_composition(seed);
        }
    });
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]
    #[test]
    fn tt_composition_agrees_on_random_seeds(seed in any::<u64>()) {
        with_big_stack(move || check_tt_composition(seed));
    }
}

/// FT ∘ FT → MFT on random *forest* transducers derived from random TTs
/// via the decoding direction of Lemma 1.
#[test]
fn ft_composition_agrees_on_fixed_seeds() {
    with_big_stack(ft_composition_body);
}

fn ft_composition_body() {
    use foxq::core::RunLimits;
    use foxq::core::{run_mft_naive_with_limits, run_mft_with_limits};
    for seed in 0..100u64 {
        let mut rng = SmallRng::seed_from_u64(seed);
        let f1 = foxq::tt::mtt_to_mft(&random_tt(&mut rng));
        let f2 = foxq::tt::mtt_to_mft(&random_tt(&mut rng));
        let composed = compose_ft_ft(&f1, &f2);
        let limits = RunLimits::with_max_steps(5_000_000);
        for _ in 0..4 {
            let input = foxq::forest::fcns::unfcns(&random_input(&mut rng));
            let Ok(mid) = run_mft_with_limits(&f1, &input, limits) else {
                continue;
            };
            let Ok(expected) = run_mft_with_limits(&f2, &mid, limits) else {
                continue;
            };
            let got = run_mft_with_limits(&composed, &input, limits).unwrap();
            assert_eq!(got, expected, "FT∘FT differs (seed {seed})");
            // The accumulator-encoded composition is exactly the shape the
            // memoizing evaluator accelerates; the naive reference must
            // still agree wherever it terminates within its step budget.
            if let Ok(naive) = run_mft_naive_with_limits(&composed, &input, limits) {
                assert_eq!(naive, expected, "naive vs composed differs (seed {seed})");
            }
        }
    }
}
