//! Integration tests for the foxq-store tape subsystem: event-stream
//! round-trips against the XML parser on every generated dataset, seek-path
//! vs scan-path vs prefilter-off agreement, and corrupt-tape error paths
//! surfaced through the serving layer.

use foxq::core::stream::StreamLimits;
use foxq::forest::Label;
use foxq::gen::Dataset;
use foxq::service::{
    run_multi, run_multi_on_tape, run_multi_on_tape_scan, BatchDriver, MultiQueryEngine,
    PreparedQuery, QuerySetPlan,
};
use foxq::store::{ingest_xml_to_tape, ingest_xml_to_tape_v1, Corpus, TapeReader};
use foxq::xml::{forest_to_xml_string, ForestSink, XmlEvent, XmlReader};
use proptest::prelude::*;
use std::io::Cursor;
use std::path::PathBuf;
use std::sync::Arc;

fn scratch(test: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("foxq-store-it-{test}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

/// Parse `xml` directly, collecting the event stream.
fn parse_events(xml: &[u8]) -> Vec<XmlEvent> {
    let mut reader = XmlReader::new(xml);
    let mut events = Vec::new();
    loop {
        let ev = reader.next_event().unwrap();
        let done = ev == XmlEvent::Eof;
        events.push(ev);
        if done {
            return events;
        }
    }
}

/// Write `xml` to an in-memory tape, then replay it.
fn tape_events(xml: &[u8]) -> Vec<XmlEvent> {
    let (out, info, source_bytes) = ingest_xml_to_tape(xml, Cursor::new(Vec::new())).unwrap();
    assert_eq!(source_bytes, xml.len() as u64);
    let mut tape = TapeReader::new(Cursor::new(out.into_inner())).unwrap();
    assert_eq!(tape.info(), &info);
    let mut events = Vec::new();
    loop {
        let ev = tape.next_event().unwrap();
        let done = ev == XmlEvent::Eof;
        events.push(ev);
        if done {
            return events;
        }
    }
}

#[test]
fn tape_roundtrips_every_generated_dataset() {
    for dataset in Dataset::ALL {
        let forest = foxq::gen::generate(dataset, 60_000, 0xBEEF);
        let xml = forest_to_xml_string(&forest);
        let direct = parse_events(xml.as_bytes());
        let replayed = tape_events(xml.as_bytes());
        assert_eq!(
            replayed.len(),
            direct.len(),
            "{}: event count mismatch",
            dataset.name()
        );
        assert_eq!(replayed, direct, "{}: event stream drifted", dataset.name());
    }
}

proptest! {
    /// parse → TapeWriter → TapeReader equals direct XmlReader parsing on
    /// seeded random documents from all four generators at random sizes.
    #[test]
    fn tape_roundtrip_randomized(seed in any::<u64>()) {
        let dataset = Dataset::ALL[(seed % 4) as usize];
        let size = 2_000 + (seed >> 3) as usize % 38_000;
        let xml = forest_to_xml_string(&foxq::gen::generate(dataset, size, seed));
        prop_assert_eq!(tape_events(xml.as_bytes()), parse_events(xml.as_bytes()));
    }
}

/// A prefilter-eligible XMark navigator.
const NAMES_QUERY: &str = "<o>{$input/site/people/person/name/text()}</o>";

#[test]
fn prefilter_on_and_off_agree_on_the_tape_path() {
    let prepared = PreparedQuery::compile(NAMES_QUERY).unwrap();
    let mft = prepared.mft();
    let xml = forest_to_xml_string(&foxq::gen::generate(Dataset::Xmark, 120_000, 7));
    let (out, _, _) = ingest_xml_to_tape(xml.as_bytes(), Cursor::new(Vec::new())).unwrap();
    let tape_bytes = out.into_inner();

    // (a) reparse the XML text.
    let reparse = run_multi(
        &[mft],
        XmlReader::new(xml.as_bytes()),
        vec![ForestSink::new()],
    )
    .unwrap();
    // (b) full tape replay through the generic event-source driver (the
    // scan-mode prefilter still runs, but nothing is seeked).
    let replay = run_multi(
        &[mft],
        TapeReader::new(Cursor::new(tape_bytes.clone())).unwrap(),
        vec![ForestSink::new()],
    )
    .unwrap();
    // (c) tape replay through the auto-dispatched path: the plan prefilters
    // the whole set and the tape is FET2, so this takes the merged index
    // cursor.
    let plan = QuerySetPlan::new([mft]);
    let indexed = run_multi_on_tape(
        &[mft],
        TapeReader::new(Cursor::new(tape_bytes.clone())).unwrap(),
        vec![ForestSink::new()],
        StreamLimits::default(),
        &plan,
    )
    .unwrap();
    // (c') the same replay with the index path forced off: linear scan with
    // seek-based subtree skipping.
    let seek = run_multi_on_tape_scan(
        &[mft],
        TapeReader::new(Cursor::new(tape_bytes.clone())).unwrap(),
        vec![ForestSink::new()],
        StreamLimits::default(),
        &plan,
    )
    .unwrap();
    // (d) tape replay with the prefilter disabled entirely.
    let mut off_engine = MultiQueryEngine::new(vec![(mft, ForestSink::new())]);
    off_engine.disable_prefilter();
    let mut tape = TapeReader::new(Cursor::new(tape_bytes)).unwrap();
    loop {
        match tape.next_event().unwrap() {
            XmlEvent::Open(label) => off_engine.open(&label),
            XmlEvent::Close(_) => off_engine.close(),
            XmlEvent::Eof => break,
        }
    }
    let off = off_engine.finish();

    let output = |sink: ForestSink| forest_to_xml_string(&sink.into_forest());
    let (a, a_stats) = reparse.results.into_iter().next().unwrap().unwrap();
    let (b, b_stats) = replay.results.into_iter().next().unwrap().unwrap();
    let (c, c_stats) = indexed.results.into_iter().next().unwrap().unwrap();
    let (c2, c2_stats) = seek.results.into_iter().next().unwrap().unwrap();
    let (d, d_stats) = off.into_iter().next().unwrap().unwrap();
    let expected = output(a);
    assert!(expected.contains("<o>"), "query produced no output");
    assert_eq!(output(b), expected, "full replay drifted from reparse");
    assert_eq!(output(c), expected, "index replay drifted from reparse");
    assert_eq!(output(c2), expected, "seek replay drifted from reparse");
    assert_eq!(output(d), expected, "prefilter-off replay drifted");

    // Accounting: the same events are withheld on every prefiltered path —
    // the merged cursor must agree with the scan prefilter exactly; the off
    // path sees everything.
    assert!(a_stats.prefiltered_events > 0, "query was not prefiltered");
    assert_eq!(b_stats.prefiltered_events, a_stats.prefiltered_events);
    assert_eq!(c_stats.prefiltered_events, a_stats.prefiltered_events);
    assert_eq!(c2_stats.prefiltered_events, a_stats.prefiltered_events);
    assert_eq!(c_stats.events, c2_stats.events, "delivered events differ");
    assert_eq!(
        d_stats.events,
        a_stats.events + a_stats.prefiltered_events,
        "off path must see every event"
    );
    // The index path jumps bytes without decoding and never seeks; the scan
    // path seeks over skipped subtrees and never consults the index. The
    // index skips at least as much as the scan path seeks (it also jumps
    // over frames the scan has to decode just to test the label).
    assert!(c_stats.index_skipped_bytes > 0, "index path never skipped");
    assert_eq!(c_stats.seek_skipped_bytes, 0);
    assert_eq!(indexed.index_skipped_bytes, c_stats.index_skipped_bytes);
    assert_eq!(indexed.seek_skipped_bytes, 0);
    assert!(c2_stats.seek_skipped_bytes > 0, "seek path never seeked");
    assert_eq!(c2_stats.index_skipped_bytes, 0);
    assert_eq!(seek.seek_skipped_bytes, c2_stats.seek_skipped_bytes);
    assert!(c_stats.index_skipped_bytes >= c2_stats.seek_skipped_bytes);
    assert_eq!(a_stats.seek_skipped_bytes, 0);
    assert_eq!(b_stats.seek_skipped_bytes, 0);
}

#[test]
fn corrupt_tapes_fail_cleanly_through_the_batch_driver() {
    let dir = scratch("corrupt");
    let mut corpus = Corpus::open(&dir).unwrap();
    corpus
        .add_xml(
            "good",
            &b"<site><people><person><name>ok</name></person></people></site>"[..],
        )
        .unwrap();
    corpus
        .add_xml(
            "bad",
            &b"<site><people><person><name>tampered</name></person></people></site>"[..],
        )
        .unwrap();

    // Flip one payload byte of the "bad" tape on disk (checksum breaks).
    let path = corpus.tape_path("bad").unwrap();
    let mut bytes = std::fs::read(&path).unwrap();
    let pos = bytes
        .windows(b"tampered".len())
        .position(|w| w == b"tampered")
        .expect("payload not found on tape");
    bytes[pos] ^= 0x01;
    std::fs::write(&path, &bytes).unwrap();

    // Truncate a third tape mid-frame.
    corpus
        .add_xml("cut", &b"<site><a>some longer content here</a></site>"[..])
        .unwrap();
    let cut_path = corpus.tape_path("cut").unwrap();
    let full = std::fs::read(&cut_path).unwrap();
    std::fs::write(&cut_path, &full[..full.len() / 2]).unwrap();

    let queries = vec![Arc::new(
        PreparedQuery::compile("<o>{$input//name}</o>").unwrap(),
    )];
    let run = BatchDriver::new(2).run_corpus(&corpus, &queries);
    assert_eq!(run.doc_ids, vec!["bad", "cut", "good"]);
    assert_eq!(run.report.failures, 2);
    let err = run.report.output(0, 0).as_ref().unwrap_err();
    assert!(err.contains("checksum"), "unexpected error: {err}");
    let err = run.report.output(1, 0).as_ref().unwrap_err();
    assert!(
        err.contains("corrupt") || err.contains("FET1"),
        "unexpected error: {err}"
    );
    assert_eq!(
        run.report.output(2, 0).as_ref().unwrap(),
        "<o><name>ok</name></o>"
    );
    let _ = std::fs::remove_dir_all(&dir);
}

/// Replay every event of `tape` (any version, any input).
fn drain<R: std::io::BufRead + std::io::Seek>(mut tape: TapeReader<R>) -> Vec<XmlEvent> {
    let mut events = Vec::new();
    loop {
        let ev = tape.next_event().unwrap();
        let done = ev == XmlEvent::Eof;
        events.push(ev);
        if done {
            return events;
        }
    }
}

#[test]
fn fet1_and_fet2_tapes_agree_and_index_only_runs_on_fet2() {
    let xml = forest_to_xml_string(&foxq::gen::generate(Dataset::Xmark, 80_000, 3));
    let (v1, v1_info, _) = ingest_xml_to_tape_v1(xml.as_bytes(), Cursor::new(Vec::new())).unwrap();
    let (v2, v2_info, _) = ingest_xml_to_tape(xml.as_bytes(), Cursor::new(Vec::new())).unwrap();
    assert_eq!(v1_info.version, 1);
    assert_eq!(v2_info.version, 2);
    assert_eq!(v1_info.events, v2_info.events);
    let (v1, v2) = (v1.into_inner(), v2.into_inner());

    // Identical event streams from both formats.
    assert_eq!(
        drain(TapeReader::new(Cursor::new(v1.clone())).unwrap()),
        drain(TapeReader::new(Cursor::new(v2.clone())).unwrap()),
        "FET1 and FET2 replays drifted"
    );

    // The same query answered from both: FET1 falls back to seek-based
    // scanning, FET2 goes through the index — same output either way.
    let prepared = PreparedQuery::compile(NAMES_QUERY).unwrap();
    let mft = prepared.mft();
    let plan = QuerySetPlan::new([mft]);
    let run = |bytes: Vec<u8>| {
        run_multi_on_tape(
            &[mft],
            TapeReader::new(Cursor::new(bytes)).unwrap(),
            vec![ForestSink::new()],
            StreamLimits::default(),
            &plan,
        )
        .unwrap()
    };
    let r1 = run(v1);
    let r2 = run(v2);
    assert!(r1.seek_skipped_bytes > 0, "FET1 run must scan and seek");
    assert_eq!(r1.index_skipped_bytes, 0);
    assert!(r2.index_skipped_bytes > 0, "FET2 run must use the index");
    assert_eq!(r2.seek_skipped_bytes, 0);
    let out = |run: foxq::service::MultiRun<ForestSink>| {
        let (sink, _) = run.results.into_iter().next().unwrap().unwrap();
        forest_to_xml_string(&sink.into_forest())
    };
    let (o1, o2) = (out(r1), out(r2));
    assert!(o1.contains("<o>"), "query produced no output");
    assert_eq!(o1, o2, "FET1 and FET2 answers drifted");
}

#[test]
fn corrupt_posting_list_fails_cleanly_on_the_index_path() {
    let dir = scratch("postings");
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("doc.fet");
    let xml = forest_to_xml_string(&foxq::gen::generate(Dataset::Xmark, 60_000, 11));
    ingest_xml_to_tape(xml.as_bytes(), std::fs::File::create(&path).unwrap()).unwrap();

    // Locate <name>'s posting list via the footer directory and overwrite
    // its first offset delta with a varint pointing far past the frames.
    let tape = TapeReader::open_file(&path).unwrap();
    let name_id = tape
        .labels()
        .iter()
        .position(|l| *l == Label::elem("name"))
        .expect("XMark has <name> elements");
    let entry = tape.posting_dir()[name_id];
    assert!(
        entry.count > 0 && entry.bytes >= 5,
        "list too small to smash"
    );
    drop(tape);
    let mut bytes = std::fs::read(&path).unwrap();
    let at = entry.offset as usize;
    bytes[at..at + 5].copy_from_slice(&[0xFF, 0xFF, 0xFF, 0xFF, 0x7F]);
    std::fs::write(&path, &bytes).unwrap();

    let prepared = PreparedQuery::compile(NAMES_QUERY).unwrap();
    let mft = prepared.mft();
    let plan = QuerySetPlan::new([mft]);
    let tape = TapeReader::open_file(&path).unwrap();
    let err = run_multi_on_tape(
        &[mft],
        tape,
        vec![ForestSink::new()],
        StreamLimits::default(),
        &plan,
    )
    .map(|_| ())
    .expect_err("smashed posting list must not answer queries")
    .to_string();
    assert!(
        err.contains("posting") || err.contains("corrupt"),
        "unexpected error: {err}"
    );
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn index_path_catches_a_flipped_text_byte_at_the_subtree_close() {
    let dir = scratch("subtree-sum");
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("doc.fet");
    let xml = "<site><people><person><name>somename</name></person></people></site>";
    ingest_xml_to_tape(xml.as_bytes(), std::fs::File::create(&path).unwrap()).unwrap();

    // Short texts are stored raw, so the payload is findable on disk.
    let mut bytes = std::fs::read(&path).unwrap();
    let pos = bytes
        .windows(b"somename".len())
        .position(|w| w == b"somename")
        .expect("payload not found on tape");
    bytes[pos] ^= 0x01;
    std::fs::write(&path, &bytes).unwrap();

    let prepared = PreparedQuery::compile(NAMES_QUERY).unwrap();
    let mft = prepared.mft();
    let plan = QuerySetPlan::new([mft]);
    let err = run_multi_on_tape(
        &[mft],
        TapeReader::open_file(&path).unwrap(),
        vec![ForestSink::new()],
        StreamLimits::default(),
        &plan,
    )
    .map(|_| ())
    .expect_err("the delivered subtree's checksum must catch the flip")
    .to_string();
    assert!(err.contains("checksum"), "unexpected error: {err}");
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn corrupt_compressed_text_fails_cleanly() {
    let dir = scratch("lz");
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("doc.fet");
    // Long repetitive text: stored LZ-compressed (asserted below).
    let text = "the quick brown fox jumps over the lazy dog; ".repeat(128);
    let xml = format!("<site><doc>{text}</doc></site>");
    let (_, info, _) =
        ingest_xml_to_tape(xml.as_bytes(), std::fs::File::create(&path).unwrap()).unwrap();
    assert!(
        info.enc_text_bytes < info.raw_text_bytes,
        "text did not compress ({} stored vs {} raw)",
        info.enc_text_bytes,
        info.raw_text_bytes
    );

    // Zero a run of bytes inside the compressed payload. The frame layout
    // puts the text payload within a few bytes of the two open frames, and
    // the encoding is far longer than the smashed range, so offsets 40..56
    // land inside it.
    let mut bytes = std::fs::read(&path).unwrap();
    for b in &mut bytes[40..56] {
        *b = 0;
    }
    std::fs::write(&path, &bytes).unwrap();

    // The decoder either fails to reconstruct raw_len bytes (corrupt) or
    // reconstructs the wrong bytes (subtree checksum) — both are errors.
    let prepared = PreparedQuery::compile("<o>{$input/site/doc/text()}</o>").unwrap();
    let mft = prepared.mft();
    let plan = QuerySetPlan::new([mft]);
    let err = run_multi_on_tape(
        &[mft],
        TapeReader::open_file(&path).unwrap(),
        vec![ForestSink::new()],
        StreamLimits::default(),
        &plan,
    )
    .map(|_| ())
    .expect_err("corrupted compressed text must not decode silently")
    .to_string();
    assert!(
        err.contains("corrupt") || err.contains("checksum") || err.contains("text"),
        "unexpected error: {err}"
    );
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn corpus_round_trip_over_all_datasets() {
    let dir = scratch("datasets");
    let mut corpus = Corpus::open(&dir).unwrap();
    for (i, dataset) in Dataset::ALL.iter().enumerate() {
        let xml = forest_to_xml_string(&foxq::gen::generate(*dataset, 30_000, i as u64));
        let id = format!("ds{i}");
        let meta = corpus.add_xml(&id, xml.as_bytes()).unwrap();
        assert_eq!(meta.source_bytes, xml.len() as u64);
        // The stored event count equals what a direct parse yields.
        assert_eq!(meta.events, (parse_events(xml.as_bytes()).len() - 1) as u64);
    }
    // An identity-ish query over every stored doc succeeds on all four.
    let queries = vec![Arc::new(
        PreparedQuery::compile("<all>{$input/*}</all>").unwrap(),
    )];
    let run = BatchDriver::new(2).run_corpus(&corpus, &queries);
    assert_eq!(run.report.failures, 0);
    for row in &run.report.cells {
        assert!(row[0].output.as_ref().unwrap().starts_with("<all>"));
    }
    let _ = std::fs::remove_dir_all(&dir);
}
