//! Release-mode perf guard for the epoll reactor's core promise: slow-loris
//! connections must not starve healthy clients.
//!
//! 64 connections each send a partial request head and then trickle
//! ~1 byte/s, never completing it. Under the pre-reactor worker pool each
//! of those parked a worker inside a blocking read for the full read
//! timeout, so 64 stalled connections wedged the whole pool and this guard
//! timed out. Under the reactor they are 64 idle buffers.
//!
//! The bound: healthy keep-alive `/query` throughput with the 64 stalled
//! connections held open must stay within 35% of the unloaded baseline.
//! The ISSUE-level target is ~10%; the extra margin absorbs shared-CI
//! scheduler noise (the regression being guarded is not a percentage — a
//! wedged pool loses ~100% — so the margin costs no sensitivity). Best-of-3
//! sampling on both sides further damps outliers.
//!
//! Self-skips in debug builds like `perf_smoke`; CI runs it with
//! `--release`.

use foxq::server::client::{self, Client};
use foxq::server::{Server, ServerConfig};
use std::io::Write;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

const QUERY: &str = "<o>{$input/site/people/person/name/text()}</o>";
const DOC: &[u8] = b"<site><regions><africa><item/></africa></regions>\
    <people><person><name>Jim</name></person><person><name>Li</name></person></people></site>";

const STALLED: usize = 64;
const ROUNDTRIPS: u64 = 150;
const SAMPLES: usize = 3;

/// Best-of-N healthy keep-alive throughput in requests/second.
fn healthy_rps(addr: std::net::SocketAddr) -> f64 {
    let target = client::query_target(QUERY);
    let mut best = Duration::MAX;
    let mut c = Client::connect(addr).expect("connect");
    for _ in 0..SAMPLES {
        let start = Instant::now();
        for _ in 0..ROUNDTRIPS {
            let r = c.request("POST", &target, &[], DOC).expect("request");
            assert_eq!(r.status, 200);
        }
        best = best.min(start.elapsed());
    }
    ROUNDTRIPS as f64 / best.as_secs_f64()
}

#[test]
fn healthy_throughput_survives_64_stalled_connections() {
    if cfg!(debug_assertions) {
        eprintln!("slow_loris: skipped (debug build; run with --release)");
        return;
    }
    let handle = Server::bind(ServerConfig {
        addr: "127.0.0.1:0".to_string(),
        // The stalled connections must outlive the measurement; the head
        // deadline reaping them early is the *other* defense, not this one.
        read_timeout: Duration::from_secs(60),
        write_timeout: Duration::from_secs(10),
        ..ServerConfig::default()
    })
    .expect("bind")
    .start()
    .expect("start");
    let addr = handle.local_addr();

    let baseline = healthy_rps(addr);

    // Hold 64 slow-loris connections: partial head, then a trickle.
    let mut stalled = Vec::with_capacity(STALLED);
    for _ in 0..STALLED {
        let mut c = Client::connect(addr).expect("loris connect");
        c.raw_writer()
            .write_all(b"GET /healthz HTTP/1.1\r\nhost: loris\r\nx-drip: ")
            .expect("loris head");
        c.raw_writer().flush().ok();
        stalled.push(c);
    }
    let stop = Arc::new(AtomicBool::new(false));
    let feeder = {
        let stop = stop.clone();
        std::thread::spawn(move || {
            while !stop.load(Ordering::Relaxed) {
                std::thread::sleep(Duration::from_millis(1000));
                for c in &mut stalled {
                    let _ = c.raw_writer().write_all(b"a"); // ~1 byte/s each
                }
            }
        })
    };

    let loaded = healthy_rps(addr);
    stop.store(true, Ordering::Relaxed);
    feeder.join().unwrap();

    eprintln!(
        "slow_loris: baseline {baseline:.0} req/s, with {STALLED} stalled {loaded:.0} req/s \
         ({:.0}%)",
        100.0 * loaded / baseline
    );
    assert!(
        loaded >= 0.65 * baseline,
        "64 stalled connections cut healthy throughput from {baseline:.0} to {loaded:.0} req/s \
         (> 35% loss; the worker pool is being starved)"
    );

    handle.shutdown();
}
