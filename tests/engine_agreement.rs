//! The central correctness property of the reproduction: **all engines
//! agree with the reference semantics** on randomly generated MinXQuery
//! programs and documents.
//!
//! For every sampled (query, document) pair:
//!
//! * `eval_query`           — the reference DOM evaluator;
//! * `run_mft ∘ translate`  — Theorem 1 (the translation is semantics-
//!   preserving);
//! * `run_mft ∘ optimize`   — §4.1 (optimizations are semantics-preserving);
//! * streaming engine       — on both the optimized and unoptimized MFT;
//! * the GCX baseline       — when it supports the query.
//!
//! Queries are generated respecting the §2.1 scope discipline (paths start
//! at the nearest enclosing for-variable or `$input`), so translation never
//! rejects them.

use foxq::core::stream::run_streaming_on_forest;
use foxq::forest::{elem, text, Forest, Tree};
use foxq::gcx::{run_gcx_on_forest, GcxError};
use foxq::service::QueryCache;
use foxq::xml::{forest_to_xml_string, ForestSink};
use foxq::xquery::ast::{Axis, NodeTest, Path, Pred, Query, RelPath, Step};
use foxq::xquery::eval_query;
use proptest::prelude::*;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use std::sync::{Mutex, OnceLock};

const NAMES: [&str; 5] = ["a", "b", "c", "d", "e"];
const TEXTS: [&str; 3] = ["t1", "t2", "t3"];

fn random_doc(rng: &mut SmallRng, size_budget: usize) -> Forest {
    fn tree(rng: &mut SmallRng, budget: &mut usize, depth: usize) -> Tree {
        *budget = budget.saturating_sub(1);
        if depth >= 5 || *budget == 0 || rng.gen_bool(0.3) {
            if rng.gen_bool(0.4) {
                return text(TEXTS[rng.gen_range(0..TEXTS.len())]);
            }
            return elem(NAMES[rng.gen_range(0..NAMES.len())], vec![]);
        }
        let n = rng.gen_range(0..4usize);
        let children = (0..n).map(|_| tree(rng, budget, depth + 1)).collect();
        elem(NAMES[rng.gen_range(0..NAMES.len())], children)
    }
    let mut budget = size_budget;
    let mut out = Vec::new();
    while budget > 0 {
        out.push(tree(rng, &mut budget, 0));
        if rng.gen_bool(0.5) {
            break;
        }
    }
    out
}

fn random_step(rng: &mut SmallRng, allow_preds: bool) -> Step {
    let axis = match rng.gen_range(0..10) {
        0..=5 => Axis::Child,
        6..=7 => Axis::Descendant,
        _ => Axis::FollowingSibling,
    };
    let test = match rng.gen_range(0..10) {
        0..=5 => NodeTest::Name(NAMES[rng.gen_range(0..NAMES.len())].to_string()),
        6..=7 => NodeTest::AnyElem,
        8 => NodeTest::Text,
        _ => NodeTest::AnyNode,
    };
    let mut preds = Vec::new();
    if allow_preds && rng.gen_bool(0.35) && test != NodeTest::Text {
        let rel = RelPath {
            steps: vec![Step {
                axis: if rng.gen_bool(0.7) {
                    Axis::Child
                } else {
                    Axis::Descendant
                },
                test: if rng.gen_bool(0.5) {
                    NodeTest::Name(NAMES[rng.gen_range(0..NAMES.len())].to_string())
                } else {
                    NodeTest::Text
                },
                preds: vec![],
            }],
        };
        let t = TEXTS[rng.gen_range(0..TEXTS.len())].to_string();
        preds.push(match rng.gen_range(0..4) {
            0 => Pred::Exists(rel),
            1 => Pred::Empty(rel),
            // Comparisons must end in text() for exact engine agreement
            // (the MFT desugaring is text-child based):
            2 => Pred::Eq(
                RelPath {
                    steps: vec![Step {
                        axis: Axis::Child,
                        test: NodeTest::Text,
                        preds: vec![],
                    }],
                },
                t,
            ),
            _ => Pred::Neq(
                RelPath {
                    steps: vec![Step {
                        axis: Axis::Child,
                        test: NodeTest::Text,
                        preds: vec![],
                    }],
                },
                t,
            ),
        });
    }
    Step { axis, test, preds }
}

fn random_path(rng: &mut SmallRng, start: &str) -> Path {
    let n = rng.gen_range(1..=3);
    Path {
        start: start.to_string(),
        steps: (0..n).map(|_| random_step(rng, true)).collect(),
    }
}

/// Random query respecting the scope discipline. `nearest` is the nearest
/// for-variable (or `input`); `outs` are variables usable as outputs.
fn random_query(rng: &mut SmallRng, nearest: &str, outs: &[String], depth: usize) -> Query {
    random_query_in(rng, nearest, outs, depth, false)
}

/// `in_content`: literal text is only grammatical as direct element content.
fn random_query_in(
    rng: &mut SmallRng,
    nearest: &str,
    outs: &[String],
    depth: usize,
    in_content: bool,
) -> Query {
    let choice = if depth >= 3 {
        rng.gen_range(0..4)
    } else {
        rng.gen_range(0..7)
    };
    match choice {
        0 if in_content => Query::Text(TEXTS[rng.gen_range(0..TEXTS.len())].to_string()),
        0 => Query::Path(random_path(rng, nearest)),
        1 => Query::Path(random_path(rng, nearest)),
        2 if !outs.is_empty() => {
            let v = &outs[rng.gen_range(0..outs.len())];
            Query::Path(Path {
                start: v.clone(),
                steps: vec![],
            })
        }
        2 => Query::Path(random_path(rng, nearest)),
        3 => {
            let raw: Vec<Query> = (0..rng.gen_range(0..3usize))
                .map(|_| random_query_in(rng, nearest, outs, depth + 1, true))
                .collect();
            // Adjacent literal text merges when reparsed; normalize now so
            // the printer/parser round-trip is exact.
            let mut content: Vec<Query> = Vec::new();
            for q in raw {
                match (content.last_mut(), q) {
                    (Some(Query::Text(prev)), Query::Text(next)) => prev.push_str(&next),
                    (_, q) => content.push(q),
                }
            }
            Query::Element {
                name: NAMES[rng.gen_range(0..NAMES.len())].to_string(),
                content,
            }
        }
        4 => {
            let var = format!("v{}", rng.gen_range(0..100));
            let body = {
                let mut outs2 = outs.to_vec();
                outs2.push(var.clone());
                random_query_in(rng, &var, &outs2, depth + 1, false)
            };
            Query::For {
                var: var.clone(),
                path: random_path(rng, nearest),
                body: Box::new(body),
            }
        }
        5 => {
            let var = format!("w{}", rng.gen_range(0..100));
            let value = random_query_in(rng, nearest, outs, depth + 1, false);
            let body = {
                let mut outs2 = outs.to_vec();
                outs2.push(var.clone());
                random_query_in(rng, nearest, &outs2, depth + 1, false)
            };
            Query::Let {
                var,
                value: Box::new(value),
                body: Box::new(body),
            }
        }
        _ => Query::Seq(
            (0..rng.gen_range(2..4usize))
                .map(|_| random_query_in(rng, nearest, outs, depth + 1, false))
                .collect(),
        ),
    }
}

/// Prepared-query cache shared by the fixed-seed and property suites: the
/// small grammar repeats query texts often, so most samples skip the parse →
/// translate → optimize pipeline entirely (the dominant cost of this file).
fn shared_cache() -> &'static Mutex<QueryCache> {
    static CACHE: OnceLock<Mutex<QueryCache>> = OnceLock::new();
    CACHE.get_or_init(|| Mutex::new(QueryCache::new(512)))
}

/// Run one (query, doc) sample through every engine and compare.
fn check_sample(seed: u64) {
    let mut rng = SmallRng::seed_from_u64(seed);
    let query = random_query(&mut rng, "input", &[], 0);
    let doc = random_doc(&mut rng, 40);

    let expected = forest_to_xml_string(&eval_query(&query, &doc).unwrap());

    let prepared = shared_cache()
        .lock()
        .unwrap()
        .get_or_compile(&query.to_string())
        .unwrap_or_else(|e| panic!("prepare failed (seed {seed}): {e}\nquery: {query}"));
    // The cache key is the printed query; the prepared AST must round-trip.
    assert_eq!(
        prepared.query(),
        &query,
        "printer/parser mismatch (seed {seed})"
    );
    let (unopt, opt) = (prepared.unoptimized(), prepared.mft());
    for (label, m) in [("unopt", unopt), ("opt", opt)] {
        let interp = forest_to_xml_string(&foxq::core::run_mft(m, &doc).unwrap());
        assert_eq!(
            interp, expected,
            "{label} interp (seed {seed})\nquery: {query}"
        );
        let (sink, _) = run_streaming_on_forest(m, &doc, ForestSink::new()).unwrap();
        let streamed = forest_to_xml_string(&sink.into_forest());
        assert_eq!(
            streamed, expected,
            "{label} stream (seed {seed})\nquery: {query}"
        );
    }
    match run_gcx_on_forest(&query, &doc, ForestSink::new()) {
        Ok((sink, _)) => {
            let out = forest_to_xml_string(&sink.into_forest());
            assert_eq!(out, expected, "gcx (seed {seed})\nquery: {query}");
        }
        Err(GcxError::Unsupported(_)) => {} // fine — smaller fragment
        Err(e) => panic!("gcx error (seed {seed}): {e}\nquery: {query}"),
    }
}

#[test]
fn engines_agree_on_fixed_seeds() {
    for seed in 0..400u64 {
        check_sample(seed);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]
    #[test]
    fn engines_agree_on_random_seeds(seed in any::<u64>()) {
        check_sample(seed);
    }
}
