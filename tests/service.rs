//! Integration suite for the `foxq::service` serving layer.
//!
//! The two acceptance properties of the subsystem:
//!
//! 1. **Single-pass fan-out** — running 1 vs 4 prepared queries over the
//!    same document consumes the *identical* number of XML events from the
//!    reader, and every query's multi-run output equals its solo-run output.
//! 2. **Deterministic parallel batching** — a [`BatchDriver`] with ≥ 2
//!    threads produces byte-for-byte the same report as a single thread.
//!
//! Plus: multi-query agreement against the ground-truth DOM evaluator and
//! cache hit/eviction behaviour observable through compile counts.

use foxq::forest::Forest;
use foxq::gen::Dataset;
use foxq::service::{BatchDriver, MultiQueryEngine, PreparedQuery, QueryCache};
use foxq::xml::{forest_to_xml_string, ForestSink, XmlEvent, XmlReader};
use foxq::xquery::eval_query;
use proptest::prelude::*;
use std::sync::Arc;

/// Queries with distinct shapes: child/descendant paths, predicates,
/// nesting, following-sibling, and the buffering `double` corner case.
const POOL: [&str; 6] = [
    "<o>{ for $p in $input/site/people/person return <n>{$p/name/text()}</n> }</o>",
    r#"<o>{ for $p in $input/site/people/person[./p_id/text() = "person0"]
         return $p/name/text() }</o>"#,
    "<o>{$input//keyword}</o>",
    "<o>{ for $a in $input/site/open_auctions/open_auction return
       <b>{ for $i in $a/bidder/increase return <i>{$i/text()}</i> }</b> }</o>",
    "<double><r1>{$input/site/regions/*}</r1>{$input/site/regions/*}</double>",
    "<o>{$input/site/people/person/following-sibling::person}</o>",
];

fn prepared_pool() -> Vec<Arc<PreparedQuery>> {
    let mut cache = QueryCache::new(POOL.len());
    POOL.iter()
        .map(|q| cache.get_or_compile(q).unwrap())
        .collect()
}

fn xmark(bytes: usize, seed: u64) -> Forest {
    foxq::gen::generate(Dataset::Xmark, bytes, seed)
}

fn xmark_xml(bytes: usize, seed: u64) -> Vec<u8> {
    forest_to_xml_string(&xmark(bytes, seed)).into_bytes()
}

/// Drive a `MultiQueryEngine` from a reader, returning per-query outputs and
/// the number of events the *reader* produced (the single-pass measure).
fn drive(queries: &[Arc<PreparedQuery>], doc: &[u8]) -> (Vec<String>, u64) {
    let mut reader = XmlReader::new(doc);
    let mut engine = MultiQueryEngine::new(
        queries
            .iter()
            .map(|q| (q.mft(), foxq::xml::WriterSink::new(Vec::new()))),
    );
    loop {
        match reader.next_event().unwrap() {
            XmlEvent::Open(label) => engine.open(&label),
            XmlEvent::Close(_) => engine.close(),
            XmlEvent::Eof => break,
        }
    }
    let events = reader.events_read();
    let outputs = engine
        .finish()
        .into_iter()
        .map(|r| {
            let (sink, _) = r.unwrap();
            String::from_utf8(sink.finish().unwrap()).unwrap()
        })
        .collect();
    (outputs, events)
}

#[test]
fn single_pass_fanout_consumes_identical_events() {
    let doc = xmark_xml(30_000, 0xF0E5);
    let queries = prepared_pool();

    let (solo_outputs, events_for_1) = drive(&queries[..1], &doc);
    let (multi_outputs, events_for_4) = drive(&queries[..4], &doc);

    // The reader is consumed exactly once however many queries fan out.
    assert_eq!(events_for_1, events_for_4, "fan-out re-read the input");
    assert!(events_for_1 > 0);

    // Every query's multi-run output equals its solo run.
    assert_eq!(multi_outputs[0], solo_outputs[0]);
    for (q, out) in queries[..4].iter().zip(&multi_outputs) {
        let solo = q.run_to_string(&doc).unwrap();
        assert_eq!(&solo.output, out, "multi vs solo for {}", q.source());
    }
}

#[test]
fn engine_event_counters_match_the_reader() {
    let doc = xmark_xml(10_000, 3);
    let queries = prepared_pool();
    let mut reader = XmlReader::new(&doc[..]);
    let mut engine = MultiQueryEngine::new(queries.iter().map(|q| (q.mft(), foxq::xml::NullSink)));
    loop {
        match reader.next_event().unwrap() {
            XmlEvent::Open(label) => engine.open(&label),
            XmlEvent::Close(_) => engine.close(),
            XmlEvent::Eof => break,
        }
    }
    assert_eq!(engine.input_events(), reader.events_read());
    for r in engine.finish() {
        let (_, stats) = r.unwrap();
        // Each lane consumed every reader event exactly once, split evenly
        // between opens and closes (plus the eof tick).
        assert_eq!(stats.open_events + stats.close_events, reader.events_read());
        assert_eq!(stats.open_events, stats.close_events);
        assert_eq!(stats.events, reader.events_read() + 1);
    }
}

#[test]
fn multi_query_agrees_with_reference_evaluator() {
    let queries = prepared_pool();
    for seed in [1u64, 7, 42] {
        let input = xmark(15_000, seed);
        let mfts: Vec<_> = queries.iter().map(|q| q.mft()).collect();
        let sinks: Vec<_> = queries.iter().map(|_| ForestSink::new()).collect();
        let run = foxq::service::run_multi_on_forest(&mfts, &input, sinks);
        for (q, r) in queries.iter().zip(run.results) {
            let (sink, _) = r.unwrap();
            let expected = eval_query(q.query(), &input).unwrap();
            assert_eq!(
                forest_to_xml_string(&sink.into_forest()),
                forest_to_xml_string(&expected),
                "seed {seed}, query {}",
                q.source()
            );
        }
    }
}

#[test]
fn cache_hit_avoids_retranslation() {
    let mut cache = QueryCache::new(2);
    cache.get_or_compile(POOL[0]).unwrap();
    assert_eq!(cache.stats().compiles, 1);
    // Hit: the compile count is unchanged — no re-translation happened.
    cache.get_or_compile(POOL[0]).unwrap();
    assert_eq!(cache.stats().compiles, 1);
    assert_eq!(cache.stats().hits, 1);
    // Fill past capacity: the least-recently-used entry is evicted and
    // compiles again on the next lookup.
    cache.get_or_compile(POOL[1]).unwrap();
    cache.get_or_compile(POOL[2]).unwrap();
    assert_eq!(cache.stats().evictions, 1);
    cache.get_or_compile(POOL[0]).unwrap();
    assert_eq!(cache.stats().compiles, 4);
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]
    #[test]
    fn batch_driver_is_deterministic_across_thread_counts(seed in any::<u64>()) {
        let queries = prepared_pool();
        let docs: Vec<Vec<u8>> = (0..5)
            .map(|i| xmark_xml(4_000 + 2_000 * i, seed.wrapping_add(i as u64)))
            .collect();
        let serial = BatchDriver::new(1).run(&docs, &queries);
        let parallel = BatchDriver::new(4).run(&docs, &queries);
        prop_assert_eq!(serial.cells.len(), parallel.cells.len());
        for (s, p) in serial.cells.iter().zip(&parallel.cells) {
            for (sc, pc) in s.iter().zip(p) {
                prop_assert_eq!(&sc.output, &pc.output);
            }
        }
        prop_assert_eq!(serial.input_events, parallel.input_events);
        prop_assert_eq!(serial.output_events, parallel.output_events);
        prop_assert_eq!(serial.failures, 0);
    }
}
