//! Integration suite for the `foxq::service` serving layer.
//!
//! The two acceptance properties of the subsystem:
//!
//! 1. **Single-pass fan-out** — running 1 vs 4 prepared queries over the
//!    same document consumes the *identical* number of XML events from the
//!    reader, and every query's multi-run output equals its solo-run output.
//! 2. **Deterministic parallel batching** — a [`BatchDriver`] with ≥ 2
//!    threads produces byte-for-byte the same report as a single thread.
//!
//! Plus: multi-query agreement against the ground-truth DOM evaluator and
//! cache hit/eviction behaviour observable through compile counts.

use foxq::forest::Forest;
use foxq::gen::Dataset;
use foxq::service::{BatchDriver, MultiQueryEngine, PreparedQuery, QueryCache};
use foxq::xml::{forest_to_xml_string, ForestSink, XmlEvent, XmlReader};
use foxq::xquery::eval_query;
use proptest::prelude::*;
use std::sync::Arc;

/// Queries with distinct shapes: child/descendant paths, predicates,
/// nesting, following-sibling, and the buffering `double` corner case.
const POOL: [&str; 6] = [
    "<o>{ for $p in $input/site/people/person return <n>{$p/name/text()}</n> }</o>",
    r#"<o>{ for $p in $input/site/people/person[./p_id/text() = "person0"]
         return $p/name/text() }</o>"#,
    "<o>{$input//keyword}</o>",
    "<o>{ for $a in $input/site/open_auctions/open_auction return
       <b>{ for $i in $a/bidder/increase return <i>{$i/text()}</i> }</b> }</o>",
    "<double><r1>{$input/site/regions/*}</r1>{$input/site/regions/*}</double>",
    "<o>{$input/site/people/person/following-sibling::person}</o>",
];

fn prepared_pool() -> Vec<Arc<PreparedQuery>> {
    let mut cache = QueryCache::new(POOL.len());
    POOL.iter()
        .map(|q| cache.get_or_compile(q).unwrap())
        .collect()
}

fn xmark(bytes: usize, seed: u64) -> Forest {
    foxq::gen::generate(Dataset::Xmark, bytes, seed)
}

fn xmark_xml(bytes: usize, seed: u64) -> Vec<u8> {
    forest_to_xml_string(&xmark(bytes, seed)).into_bytes()
}

/// Drive a `MultiQueryEngine` from a reader, returning per-query outputs and
/// the number of events the *reader* produced (the single-pass measure).
fn drive(queries: &[Arc<PreparedQuery>], doc: &[u8]) -> (Vec<String>, u64) {
    let mut reader = XmlReader::new(doc);
    let mut engine = MultiQueryEngine::new(
        queries
            .iter()
            .map(|q| (q.mft(), foxq::xml::WriterSink::new(Vec::new()))),
    );
    loop {
        match reader.next_event().unwrap() {
            XmlEvent::Open(label) => engine.open(&label),
            XmlEvent::Close(_) => engine.close(),
            XmlEvent::Eof => break,
        }
    }
    let events = reader.events_read();
    let outputs = engine
        .finish()
        .into_iter()
        .map(|r| {
            let (sink, _) = r.unwrap();
            String::from_utf8(sink.finish().unwrap()).unwrap()
        })
        .collect();
    (outputs, events)
}

#[test]
fn single_pass_fanout_consumes_identical_events() {
    let doc = xmark_xml(30_000, 0xF0E5);
    let queries = prepared_pool();

    let (solo_outputs, events_for_1) = drive(&queries[..1], &doc);
    let (multi_outputs, events_for_4) = drive(&queries[..4], &doc);

    // The reader is consumed exactly once however many queries fan out.
    assert_eq!(events_for_1, events_for_4, "fan-out re-read the input");
    assert!(events_for_1 > 0);

    // Every query's multi-run output equals its solo run.
    assert_eq!(multi_outputs[0], solo_outputs[0]);
    for (q, out) in queries[..4].iter().zip(&multi_outputs) {
        let solo = q.run_to_string(&doc).unwrap();
        assert_eq!(&solo.output, out, "multi vs solo for {}", q.source());
    }
}

#[test]
fn engine_event_counters_match_the_reader() {
    let doc = xmark_xml(10_000, 3);
    let queries = prepared_pool();
    let mut reader = XmlReader::new(&doc[..]);
    let mut engine = MultiQueryEngine::new(queries.iter().map(|q| (q.mft(), foxq::xml::NullSink)));
    loop {
        match reader.next_event().unwrap() {
            XmlEvent::Open(label) => engine.open(&label),
            XmlEvent::Close(_) => engine.close(),
            XmlEvent::Eof => break,
        }
    }
    assert_eq!(engine.input_events(), reader.events_read());
    let mut prefiltered_lanes = 0;
    for r in engine.finish() {
        let (_, stats) = r.unwrap();
        // Each lane accounts for every reader event exactly once: either
        // delivered (split evenly between opens and closes) or withheld by
        // the shared label prefilter — never both, never neither.
        assert_eq!(
            stats.open_events + stats.close_events + stats.prefiltered_events,
            reader.events_read()
        );
        assert_eq!(stats.open_events, stats.close_events);
        assert_eq!(stats.events, stats.open_events + stats.close_events + 1);
        prefiltered_lanes += usize::from(stats.prefiltered_events > 0);
    }
    // The pool mixes shapes on purpose: child-path lanes are prefiltered,
    // while descendant/copying lanes pass through.
    assert!(prefiltered_lanes > 0, "no lane used the prefilter");
    assert!(prefiltered_lanes < POOL.len(), "every lane was prefiltered");
}

#[test]
fn multi_query_agrees_with_reference_evaluator() {
    let queries = prepared_pool();
    for seed in [1u64, 7, 42] {
        let input = xmark(15_000, seed);
        let mfts: Vec<_> = queries.iter().map(|q| q.mft()).collect();
        let sinks: Vec<_> = queries.iter().map(|_| ForestSink::new()).collect();
        let run = foxq::service::run_multi_on_forest(&mfts, &input, sinks);
        for (q, r) in queries.iter().zip(run.results) {
            let (sink, _) = r.unwrap();
            let expected = eval_query(q.query(), &input).unwrap();
            assert_eq!(
                forest_to_xml_string(&sink.into_forest()),
                forest_to_xml_string(&expected),
                "seed {seed}, query {}",
                q.source()
            );
        }
    }
}

#[test]
fn cache_hit_avoids_retranslation() {
    let mut cache = QueryCache::new(2);
    cache.get_or_compile(POOL[0]).unwrap();
    assert_eq!(cache.stats().compiles, 1);
    // Hit: the compile count is unchanged — no re-translation happened.
    cache.get_or_compile(POOL[0]).unwrap();
    assert_eq!(cache.stats().compiles, 1);
    assert_eq!(cache.stats().hits, 1);
    // Fill past capacity: the least-recently-used entry is evicted and
    // compiles again on the next lookup.
    cache.get_or_compile(POOL[1]).unwrap();
    cache.get_or_compile(POOL[2]).unwrap();
    assert_eq!(cache.stats().evictions, 1);
    cache.get_or_compile(POOL[0]).unwrap();
    assert_eq!(cache.stats().compiles, 4);
}

// ---------------------------------------------------------------------------
// Prefilter soundness: randomized on-vs-off agreement
// ---------------------------------------------------------------------------
//
// `Mft::projection()` is a conservative static analysis; its one obligation
// is that withholding unmatched events from an "eligible" lane never changes
// that lane's output. These proptests generate transducers *biased toward
// the eligible shapes* (pure-skip defaults, acyclic stay states, optional
// text rules) plus general ones, run every document twice — prefilter on
// and off — and require identical per-lane outcomes.

mod prefilter_agreement {
    use super::*;
    use foxq::core::mft::{rhs, Mft, StateId, XVar};
    use foxq::core::stream::StreamLimits;
    use foxq::forest::{Forest, Label, SymId, Tree};
    use foxq::xml::{forest_to_xml_string, ForestSink};
    use rand::rngs::SmallRng;
    use rand::{Rng, SeedableRng};

    /// Symbols the transducer knows (interned) …
    const KNOWN: [&str; 3] = ["a", "b", "c"];
    /// … and extra document labels it has never heard of (prefilter bait).
    const UNKNOWN: [&str; 3] = ["d", "e", "f"];

    fn general_rhs(rng: &mut SmallRng, params: &[usize], own: usize, depth: usize) -> Vec<RhsNode> {
        let len = if depth >= 3 {
            rng.gen_range(0..=1)
        } else {
            rng.gen_range(0..=3)
        };
        (0..len)
            .map(|_| match rng.gen_range(0..6) {
                0 | 1 => rhs::out(
                    SymId(rng.gen_range(0..KNOWN.len()) as u32),
                    general_rhs(rng, params, own, depth + 1),
                ),
                2 => rhs::out_current(general_rhs(rng, params, own, depth + 1)),
                3 if own > 0 => rhs::param(rng.gen_range(0..own)),
                4 | 5 => {
                    let callee = rng.gen_range(0..params.len());
                    let x = if rng.gen_bool(0.5) {
                        XVar::X1
                    } else {
                        XVar::X2
                    };
                    let args = (0..params[callee])
                        .map(|_| general_rhs(rng, params, own, depth + 1))
                        .collect();
                    rhs::call(StateId(callee as u32), x, args)
                }
                _ => rhs::out(SymId(0), vec![]),
            })
            .collect()
    }

    use foxq::core::RhsNode;

    /// `q(%t(x1)x2, ȳ) → q(x2, ȳ)` — the shape the projection rewards.
    fn pure_skip(q: usize, own: usize) -> Vec<RhsNode> {
        vec![rhs::call(
            StateId(q as u32),
            XVar::X2,
            (0..own).map(|i| vec![rhs::param(i)]).collect(),
        )]
    }

    /// A stay-state rhs: output nodes, params, and `x0` calls restricted to
    /// *lower-numbered* states (acyclic, so no stay loops).
    fn stay_rhs(
        rng: &mut SmallRng,
        params: &[usize],
        own: usize,
        q: usize,
        depth: usize,
    ) -> Vec<RhsNode> {
        let len = rng.gen_range(0..=2);
        (0..len)
            .map(|_| match rng.gen_range(0..4) {
                0 | 1 => rhs::out(
                    SymId(rng.gen_range(0..KNOWN.len()) as u32),
                    if depth < 2 {
                        stay_rhs(rng, params, own, q, depth + 1)
                    } else {
                        vec![]
                    },
                ),
                2 if own > 0 => rhs::param(rng.gen_range(0..own)),
                3 if q > 0 => {
                    let callee = rng.gen_range(0..q);
                    let args = (0..params[callee])
                        .map(|_| {
                            if depth < 2 {
                                stay_rhs(rng, params, own, q, depth + 1)
                            } else {
                                vec![]
                            }
                        })
                        .collect();
                    rhs::call(StateId(callee as u32), XVar::X0, args)
                }
                _ => rhs::out(SymId(0), vec![]),
            })
            .collect()
    }

    /// A random MFT biased so that a good fraction is prefilter-eligible.
    fn random_mft(rng: &mut SmallRng) -> Mft {
        let mut m = Mft::new();
        for s in KNOWN {
            m.alphabet.intern_elem(s);
        }
        let nstates = rng.gen_range(1..=3);
        let params: Vec<usize> = (0..nstates)
            .map(|i| if i == 0 { 0 } else { rng.gen_range(0..=2) })
            .collect();
        for (i, &p) in params.iter().enumerate() {
            m.add_state(format!("q{i}"), p);
        }
        m.initial = StateId(0);
        for q in 0..nstates {
            let own = params[q];
            let sid = StateId(q as u32);
            for s in 0..rng.gen_range(0..=KNOWN.len()) {
                m.set_sym_rule(sid, SymId(s as u32), general_rhs(rng, &params, own, 0));
            }
            match rng.gen_range(0..4) {
                // Half the states: the skippable child-path shape.
                0 | 1 => m.set_default_rule(sid, pure_skip(q, own)),
                // A quarter: `%`-shorthand stay states (no symbol rules).
                2 => {
                    let body = stay_rhs(rng, &params, own, q, 0);
                    m.rules[q].by_sym.clear();
                    m.rules[q].text_default = None;
                    m.set_stay_rule(sid, body);
                }
                // The rest: arbitrary (these lanes go pass-through).
                _ => m.set_default_rule(sid, general_rhs(rng, &params, own, 0)),
            }
            if !m.is_stay_state(sid) {
                if rng.gen_bool(0.4) {
                    let body = if rng.gen_bool(0.5) {
                        pure_skip(q, own)
                    } else {
                        general_rhs(rng, &params, own, 0)
                    };
                    m.set_text_rule(sid, body);
                }
                if m.rules[q].default != m.rules[q].eps {
                    m.set_eps_rule(sid, general_rhs_eps(rng, own));
                }
            }
        }
        m.validate().unwrap();
        m
    }

    /// A call-free ε-rhs (ε-rules may only use x0; keep them ground).
    fn general_rhs_eps(rng: &mut SmallRng, own: usize) -> Vec<RhsNode> {
        (0..rng.gen_range(0..=2))
            .map(|_| {
                if own > 0 && rng.gen_bool(0.3) {
                    rhs::param(rng.gen_range(0..own))
                } else {
                    rhs::out(SymId(rng.gen_range(0..KNOWN.len()) as u32), vec![])
                }
            })
            .collect()
    }

    /// Random forest mixing known labels, unknown labels, and text leaves.
    fn random_input(rng: &mut SmallRng) -> Forest {
        fn forest(rng: &mut SmallRng, budget: &mut usize, depth: usize) -> Forest {
            let mut out = Vec::new();
            while *budget > 0 && out.len() < 3 && rng.gen_bool(0.7) {
                *budget -= 1;
                let label = match rng.gen_range(0..5) {
                    0 => Label::text("t"),
                    1 | 2 => Label::elem(UNKNOWN[rng.gen_range(0..UNKNOWN.len())]),
                    _ => Label::elem(KNOWN[rng.gen_range(0..KNOWN.len())]),
                };
                let children = if depth < 4 && !label.is_text() {
                    forest(rng, budget, depth + 1)
                } else {
                    vec![]
                };
                out.push(Tree { label, children });
            }
            out
        }
        let mut budget = rng.gen_range(1..16usize);
        forest(rng, &mut budget, 0)
    }

    /// Run `mfts` over `doc` through a `MultiQueryEngine`, with or without
    /// the prefilter; per-lane serialized output or error string.
    fn run(mfts: &[&Mft], doc: &Forest, prefilter: bool) -> (Vec<Result<String, String>>, u64) {
        let limits = StreamLimits {
            max_output_events: 200_000,
            ..StreamLimits::default()
        };
        let mut engine =
            MultiQueryEngine::with_limits(mfts.iter().map(|m| (*m, ForestSink::new())), limits);
        if !prefilter {
            engine.disable_prefilter();
        }
        fn feed<S: foxq::xml::XmlSink>(e: &mut MultiQueryEngine<'_, S>, t: &Tree) {
            e.open(&t.label);
            for c in &t.children {
                feed(e, c);
            }
            e.close();
        }
        for t in doc {
            feed(&mut engine, t);
        }
        let skipped = engine.prefiltered_events();
        let results = engine
            .finish()
            .into_iter()
            .map(|r| {
                r.map(|(sink, _)| forest_to_xml_string(&sink.into_forest()))
                    .map_err(|e| e.to_string())
            })
            .collect();
        (results, skipped)
    }

    pub fn check_agreement(seed: u64) -> u64 {
        let mut rng = SmallRng::seed_from_u64(seed);
        let mfts: Vec<Mft> = (0..rng.gen_range(1..=3))
            .map(|_| random_mft(&mut rng))
            .collect();
        let refs: Vec<&Mft> = mfts.iter().collect();
        let mut skipped_total = 0;
        for _ in 0..3 {
            let doc = random_input(&mut rng);
            let (filtered, skipped) = run(&refs, &doc, true);
            let (unfiltered, zero) = run(&refs, &doc, false);
            assert_eq!(zero, 0);
            for (lane, (f, u)) in filtered.iter().zip(&unfiltered).enumerate() {
                assert_eq!(
                    f,
                    u,
                    "seed {seed}: lane {lane} diverged under the prefilter\n\
                     mft:\n{:?}\ndoc: {}",
                    mfts[lane],
                    forest_to_xml_string(&doc)
                );
            }
            skipped_total += skipped;
        }
        skipped_total
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]
    #[test]
    fn prefilter_on_and_off_agree_on_random_transducers(seed in any::<u64>()) {
        prefilter_agreement::check_agreement(seed);
    }
}

#[test]
fn prefilter_agreement_seeds_actually_exercise_skipping() {
    // Guard against the generator drifting into never-eligible shapes: over
    // a fixed seed range, a healthy share of runs must skip something.
    let skipped: u64 = (0..64).map(prefilter_agreement::check_agreement).sum();
    assert!(skipped > 0, "no random case ever engaged the prefilter");
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]
    #[test]
    fn batch_driver_is_deterministic_across_thread_counts(seed in any::<u64>()) {
        let queries = prepared_pool();
        let docs: Vec<Vec<u8>> = (0..5)
            .map(|i| xmark_xml(4_000 + 2_000 * i, seed.wrapping_add(i as u64)))
            .collect();
        let serial = BatchDriver::new(1).run(&docs, &queries);
        let parallel = BatchDriver::new(4).run(&docs, &queries);
        prop_assert_eq!(serial.cells.len(), parallel.cells.len());
        for (s, p) in serial.cells.iter().zip(&parallel.cells) {
            for (sc, pc) in s.iter().zip(p) {
                prop_assert_eq!(&sc.output, &pc.output);
            }
        }
        prop_assert_eq!(serial.input_events, parallel.input_events);
        prop_assert_eq!(serial.output_events, parallel.output_events);
        prop_assert_eq!(serial.failures, 0);
    }
}
