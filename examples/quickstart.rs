//! Quickstart: compile a MinXQuery program to a macro forest transducer,
//! optimize it, and stream a document through it.
//!
//! ```text
//! cargo run --example quickstart
//! ```

use foxq::core::opt::optimize_with_stats;
use foxq::core::print_mft;
use foxq::core::stream::run_streaming_to_string;
use foxq::core::translate::translate;
use foxq::xquery::parse_query;

fn main() {
    // The paper's running example P_person (§2.2): select the text of all
    // name-children of persons whose p_id is "person0".
    let src = r#"<out>{ for $b in $input/person[./p_id/text() = "person0"]
                  return let $r := $b/name/text() return $r }</out>"#;
    let query = parse_query(src).expect("MinXQuery parses");
    println!("query:\n  {query}\n");

    // §3: translate to an MFT; §4.1: optimize.
    let unopt = translate(&query).expect("translation succeeds");
    let (opt, stats) = optimize_with_stats(unopt.clone());
    println!(
        "translated: {} states (size {}), optimized: {} states (size {})",
        unopt.state_count(),
        unopt.size(),
        opt.state_count(),
        opt.size()
    );
    println!(
        "optimizer: {} unused + {} constant parameters removed, {} stay states inlined, \
         {} states unreachable\n",
        stats.unused_params_removed,
        stats.const_params_removed,
        stats.stay_states_inlined,
        stats.states_removed
    );
    println!("optimized transducer rules:\n{}", print_mft(&opt));

    // Stream the paper's example document through it.
    let doc = "<person><p_id><a/>person0</p_id><name>Jim</name><c/><name>Li</name></person>";
    let run = run_streaming_to_string(&opt, doc.as_bytes()).expect("streaming run");
    println!("input:  {doc}");
    println!("output: {}", run.output);
    println!(
        "stats: {} events, {} rule expansions, peak {} live nodes ({} bytes)",
        run.stats.events,
        run.stats.expansions,
        run.stats.peak_live_nodes,
        run.stats.peak_live_bytes
    );
    assert_eq!(run.output, "<out>JimLi</out>"); // the paper's result
}
