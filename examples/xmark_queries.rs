//! Run all nine benchmark queries of the paper's Fig. 3 on a generated
//! XMark-like document, with all engines, and compare results.
//!
//! ```text
//! cargo run --release --example xmark_queries [-- <target-KiB>]
//! ```

use foxq::core::opt::optimize;
use foxq::core::stream::run_streaming_on_forest;
use foxq::core::translate::translate;
use foxq::forest::ForestStats;
use foxq::gcx::{run_gcx_on_forest, GcxError};
use foxq::gen::{generate, Dataset};
use foxq::xml::{forest_to_xml_string, CountingSink, ForestSink};
use foxq::xquery::{eval_query, parse_query};
use std::time::Instant;

const QUERIES: [(&str, &str); 9] = [
    ("Q1", include_str!("../crates/bench/queries/query01.xq")),
    ("Q2", include_str!("../crates/bench/queries/query02.xq")),
    ("Q4", include_str!("../crates/bench/queries/query04.xq")),
    ("Q13", include_str!("../crates/bench/queries/query13.xq")),
    ("Q16", include_str!("../crates/bench/queries/query16.xq")),
    ("Q17", include_str!("../crates/bench/queries/query17.xq")),
    ("double", include_str!("../crates/bench/queries/double.xq")),
    (
        "fourstar",
        include_str!("../crates/bench/queries/fourstar.xq"),
    ),
    (
        "deepdup",
        include_str!("../crates/bench/queries/deepdup.xq"),
    ),
];

fn main() {
    let kib: usize = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(256);
    let input = generate(Dataset::Xmark, kib << 10, 42);
    let stats = ForestStats::of_forest(&input);
    println!("input: XMark-like, {stats}\n");
    println!(
        "{:<9} {:>9} {:>9} {:>10} {:>10} {:>8}",
        "query", "opt.ms", "gcx.ms", "opt.mem", "gcx.mem", "agree"
    );

    for (name, src) in QUERIES {
        let query = parse_query(src).unwrap();
        let mft = optimize(translate(&query).unwrap());
        let expected = forest_to_xml_string(&eval_query(&query, &input).unwrap());

        let t0 = Instant::now();
        let (sink, sstats) = run_streaming_on_forest(&mft, &input, ForestSink::new()).unwrap();
        let mft_ms = t0.elapsed().as_secs_f64() * 1e3;
        let mft_out = forest_to_xml_string(&sink.into_forest());
        assert_eq!(mft_out, expected, "MFT output differs on {name}");

        let t1 = Instant::now();
        let gcx = run_gcx_on_forest(&query, &input, ForestSink::new());
        match gcx {
            Ok((gsink, gstats)) => {
                let gcx_ms = t1.elapsed().as_secs_f64() * 1e3;
                let gcx_out = forest_to_xml_string(&gsink.into_forest());
                let agree = gcx_out == expected;
                println!(
                    "{:<9} {:>9.1} {:>9.1} {:>10} {:>10} {:>8}",
                    name,
                    mft_ms,
                    gcx_ms,
                    sstats.peak_live_nodes,
                    gstats.peak_buffered_nodes,
                    if agree { "yes" } else { "NO" }
                );
                assert!(agree, "GCX output differs on {name}");
            }
            Err(GcxError::Unsupported(why)) => {
                println!(
                    "{:<9} {:>9.1} {:>9} {:>10} {:>10} {:>8}",
                    name, mft_ms, "N/A", sstats.peak_live_nodes, "N/A", "-"
                );
                println!("          (gcx: {why} — the paper's Fig. 4(c) N/A)");
            }
            Err(e) => panic!("gcx failed on {name}: {e}"),
        }
        // Throughput check: counting sink avoids materialization cost.
        let (_, _) = run_streaming_on_forest(&mft, &input, CountingSink::default()).unwrap();
    }
    println!("\nall supported engines agree with the reference semantics ✓");
}
