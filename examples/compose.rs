//! Transducer composition (§4.2): deforestation without intermediate trees.
//!
//! Demonstrates (1) the quadratic stay-move composition of Lemma 2 against
//! the classical exponential construction, and (2) the paper's headline
//! result that two forest transducers compose into one MFT (Theorem 3 via
//! the accumulator encoding).
//!
//! ```text
//! cargo run --release --example compose [-- <max-k>]
//! ```
//!
//! The optional argument caps the chain length k (default 12; the naive
//! construction is exponential in k, so small caps keep debug runs fast).

use foxq::core::interp::run_mft;
use foxq::core::mft::XVar;
use foxq::core::parse_mft;
use foxq::forest::term::parse_forest;
use foxq::tt::{compose_ft_ft, compose_tt_tt, compose_tt_tt_naive, run_mtt, Mtt, TNode};

fn main() {
    let max_k: usize = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(12);
    // --- Lemma 2: size of the composed TT, stay vs naive -----------------
    println!("Lemma 2 — composing a→b^k with the b→c(·,·) spawner:");
    println!("{:>4} {:>12} {:>12}", "k", "stay size", "naive size");
    for k in [2usize, 4, 8, 12].into_iter().filter(|&k| k <= max_k) {
        let (m1, m2) = chain_pair(k);
        let stay = compose_tt_tt(&m1, &m2);
        let naive = compose_tt_tt_naive(&m1, &m2, 50_000_000).unwrap();
        println!("{k:>4} {:>12} {:>12}", stay.size(), naive.size());
        // Both are equivalent. The composed output has 2^(k·depth) nodes, so
        // use the nested input only while that stays small.
        let doc = if k <= 8 { "a(a)" } else { "a" };
        let input = foxq::forest::fcns::fcns(&parse_forest(doc).unwrap());
        assert_eq!(
            run_mtt(&stay, &input).unwrap(),
            run_mtt(&naive, &input).unwrap()
        );
    }

    // --- FT ∘ FT = MFT ----------------------------------------------------
    // The doubling FT: a forest of n trees becomes 2^n `a`-leaves.
    let doubler = parse_mft(
        "q(%t(x1) x2) -> q(x2) q(x2);
         q(eps) -> a();",
    )
    .unwrap();
    let composed = compose_ft_ft(&doubler, &doubler);
    println!(
        "\nFT∘FT → MFT: doubling twice composed into one MFT with {} states, is_ft={}",
        composed.state_count(),
        composed.is_ft()
    );
    let f = parse_forest("w x y z").unwrap(); // 4 trees → 16 → 65536
    let once = run_mft(&doubler, &f).unwrap();
    let twice = run_mft(&doubler, &once).unwrap();
    let direct = run_mft(&composed, &f).unwrap();
    println!(
        "|input| = 4, |once| = {}, |twice| = {}, |composed(input)| = {}",
        once.len(),
        twice.len(),
        direct.len()
    );
    assert_eq!(direct, twice);
    println!("single-pass composition avoids materializing the intermediate forest ✓");
}

fn chain_pair(k: usize) -> (Mtt, Mtt) {
    let mut m1 = Mtt::new();
    let a = m1.alphabet.intern_elem("a");
    let b = m1.alphabet.intern_elem("b");
    let q0 = m1.add_state("q0", 0);
    m1.initial = q0;
    let mut rhs = TNode::call(q0, XVar::X1, vec![]);
    for _ in 0..k {
        rhs = TNode::sym(b, rhs, TNode::Eps);
    }
    m1.rules[q0.idx()].by_sym.insert(a, rhs);
    let mut m2 = Mtt::new();
    let b2 = m2.alphabet.intern_elem("b");
    let c = m2.alphabet.intern_elem("c");
    let p0 = m2.add_state("p0", 0);
    m2.initial = p0;
    m2.rules[p0.idx()].by_sym.insert(
        b2,
        TNode::sym(
            c,
            TNode::call(p0, XVar::X1, vec![]),
            TNode::call(p0, XVar::X1, vec![]),
        ),
    );
    (m1, m2)
}
