//! The paper's §2.2 walkthrough, executed literally.
//!
//! Builds the hand-written transducer `Mperson` from its rule notation,
//! runs it on both documents discussed in the paper — including the
//! `perso7` document that exercises the if-then-else parameter trick — and
//! shows that our systematic translation of `P_person` agrees with it.
//!
//! ```text
//! cargo run --example paper_person
//! ```

use foxq::core::interp::run_mft;
use foxq::core::opt::optimize;
use foxq::core::text::{parse_mft, MPERSON};
use foxq::core::translate::translate;
use foxq::forest::term::forest_to_term;
use foxq::xml::parse_document;
use foxq::xquery::parse_query;

fn main() {
    let mperson = parse_mft(MPERSON).expect("the paper's rules parse");
    println!(
        "Mperson: {} states, size {}\n",
        mperson.state_count(),
        mperson.size()
    );

    // Document 1 (§2.2): the filter holds at the first p_id.
    let doc1 = "<person><p_id><a/>person0</p_id><name>Jim</name><c/><name>Li</name></person>";
    // Document 2: the first p_id is \"perso7\" — the filter is false there,
    // and state q3 must select its *second* parameter (the else branch,
    // which keeps scanning the remaining p_id siblings).
    let doc2 = "<person><p_id><a/>perso7</p_id><name>Jim</name><c/><p_id>person0</p_id></person>";

    for (i, doc) in [doc1, doc2].into_iter().enumerate() {
        let forest = parse_document(doc.as_bytes()).expect("valid XML");
        let out = run_mft(&mperson, &forest).expect("terminating run");
        println!("document {}: {doc}", i + 1);
        println!("  Mperson output: {}", forest_to_term(&out));
    }

    // Now the same via the compiler: P_person → MFT → optimize.
    let pperson = parse_query(
        r#"<out>{ for $b in $input/person[./p_id/text() = "person0"]
           return let $r := $b/name/text() return $r }</out>"#,
    )
    .unwrap();
    let translated = optimize(translate(&pperson).unwrap());
    println!(
        "\ntranslated P_person: {} states (paper's hand-written Mperson: {})",
        translated.state_count(),
        mperson.state_count()
    );
    for doc in [doc1, doc2] {
        let forest = parse_document(doc.as_bytes()).unwrap();
        let ours = run_mft(&translated, &forest).unwrap();
        let theirs = run_mft(&mperson, &forest).unwrap();
        assert_eq!(forest_to_term(&ours), forest_to_term(&theirs));
    }
    println!("translation agrees with the paper's hand-written transducer on both documents ✓");
}
