//! `foxq` — command-line XQuery streaming by forest transducers.
//!
//! ```text
//! foxq run   <query.xq> [input.xml|.fet]  # stream input (or stdin) through the query
//! foxq compile <query.xq>                 # print the optimized MFT rules
//! foxq compile --no-opt <query.xq>        # print the raw §3 translation
//! foxq stats <query.xq> [input.xml|.fet]  # run and report engine statistics
//! foxq stats <tape.fet>                   # inspect a tape without running a query
//! foxq batch -q a.xq -q b.xq [in.xml …]   # N queries, one pass per document
//! foxq store add|ls|rm|query --dir DIR …  # the persistent tape corpus
//! foxq serve --addr 127.0.0.1:8080        # long-running HTTP server
//! ```
//!
//! Output goes to stdout; diagnostics to stderr. Exit code 1 on any error.

use foxq::core::opt::optimize_with_stats;
use foxq::core::profile::{StreamProfile, StreamProfiler};
use foxq::core::stream::{
    run_streaming_emit, run_streaming_with_limits, run_streaming_with_observer, StreamLimits,
    StreamStats, DEFAULT_MAX_OUTPUT_EVENTS,
};
use foxq::core::translate::translate;
use foxq::core::{print_mft, EmissionAnalysis, EmitWriter, Mft};
use foxq::obs::{Stage, StageTimes};
use foxq::service::{
    run_multi_on_tape, run_multi_on_tape_emit, run_multi_on_tape_observed, run_multi_with_limits,
    BatchDriver, QueryCache, QuerySetPlan,
};
use foxq::store::{Corpus, TapeReader};
use foxq::xml::{WriterSink, XmlReader};
use foxq::xquery::parse_query;
use std::io::{BufReader, Read, Write};
use std::process::ExitCode;
use std::time::Instant;

fn main() -> ExitCode {
    match real_main() {
        Ok(()) => ExitCode::SUCCESS,
        Err(msg) => {
            eprintln!("foxq: {msg}");
            ExitCode::FAILURE
        }
    }
}

fn real_main() -> Result<(), String> {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match args.first().map(String::as_str) {
        Some("run") => cmd_run(&args[1..], false),
        Some("stats") => cmd_run(&args[1..], true),
        Some("compile") => cmd_compile(&args[1..]),
        Some("batch") => cmd_batch(&args[1..]),
        Some("store") => cmd_store(&args[1..]),
        Some("serve") => cmd_serve(&args[1..]),
        Some("--help") | Some("-h") | None => {
            eprint!("{}", USAGE);
            Ok(())
        }
        Some(other) => Err(format!("unknown command {other:?}\n{USAGE}")),
    }
}

const USAGE: &str = "\
usage:
  foxq run [--stream] <query.xq> [input.xml|input.fet]
      stream input (default stdin) through the query; a .fet input replays
      the pre-parsed event tape (no XML tokenization) and seeks over
      subtrees the query's label prefilter withholds. --stream flushes
      stdout at every emission boundary: each irrevocable output prefix
      appears as soon as the engine proves it final, not when the output
      buffer fills or the input ends
  foxq stats [--timing] [--profile] <query.xq> [input.xml|input.fet]
      run and report engine statistics to stderr, including an earliest
      emission summary (early-emitting states, streamed output fraction,
      emitting flushes, events to first emit); --timing adds a
      per-stage wall-time table (parse/translate/optimize/execute/...);
      --profile adds the per-state hot-state table and a sparkline
      buffer timeline (live bytes / pending calls over the input)
  foxq stats <tape.fet>                 inspect a tape: events, labels, depth;
      FET2 tapes also report text compression and per-label skip-index sizes
  foxq compile [--no-opt] <query.xq>    print the (optimized) MFT in rule notation
  foxq batch [-q <query.xq>]... [--threads N] [--stats] [input.xml ...]
      answer all queries over each input in a single pass per document;
      with no inputs, one pass over stdin; with several, documents are
      sharded across worker threads. Outputs are labeled '### doc query'.

  foxq store add --dir DIR [--id ID] <input.xml>...
      parse each document once into the corpus at DIR (FET2 tapes + manifest);
      ids default to the file stem (--id only with a single input)
  foxq store ls --dir DIR               list the corpus manifest
  foxq store rm --dir DIR <id>...       remove stored documents
  foxq store migrate --dir DIR [id ...] rewrite FET1 tapes as FET2 in place
      (all documents, or just the given ids); FET2 tapes are left untouched
  foxq store query --dir DIR [-q <query.xq>]... [--threads N] [--stats]
      [--max-output N] [id ...]
      run the query set over every stored document (or just the given ids),
      replaying tapes via the label skip index (FET2) or seek-based subtree
      skipping (FET1) — no XML re-parsing either way

  foxq serve --addr HOST:PORT [--threads N] [--max-body-bytes N]
      [--cache-capacity N] [--read-timeout-ms N] [--write-timeout-ms N]
      [--max-connections N] [--corpus DIR] [--slow-ms N] [--trace-log FILE]
      [--trace-log-max-bytes N] [--profile]
      long-running HTTP/1.1 server: POST /query?q=<urlencoded query> and
      POST /batch?q=..&q=.. stream the request body through prepared
      queries; add &stream=1 to /query for a chunked response whose
      chunks are the engine's irrevocable output prefixes (run statistics
      arrive as HTTP trailers); with --corpus, POST /corpus/{id} ingests
      documents, GET /corpus lists them, and POST /query?q=..&doc=<id>
      answers from the stored tape; GET /metrics (Prometheus),
      GET /healthz, POST /shutdown (graceful drain). Runs until shut down.
      Observability: every response carries X-Foxq-Request-Id and
      Server-Timing headers; requests at or over --slow-ms (default 500;
      0 = all) land in GET /debug/requests (append ?format=json for
      JSONL); --trace-log appends every request as one JSON line to
      FILE, rotating it to FILE.1 past --trace-log-max-bytes (default
      64 MiB; 0 = never); --profile attaches the engine resource
      profiler to every /query lane and serves per-query aggregates at
      GET /debug/profile.

  run/stats/batch/store-query also accept --max-output <events>: abort a run
  (batch: its cell) once its output exceeds that many events (default
  1000000000; 0 = unlimited) — a transducer can emit output exponential in
  its input, this bounds a run on hostile pairs.
";

/// Compile a query file, timing each stage (for `foxq stats --timing`).
fn load_query_timed(path: &str) -> Result<(Mft, StageTimes), String> {
    let src =
        std::fs::read_to_string(path).map_err(|e| format!("cannot read query {path}: {e}"))?;
    let mut times = StageTimes::default();
    let t = Instant::now();
    let query = parse_query(&src).map_err(|e| e.to_string())?;
    times.add(Stage::Parse, micros_since(t));
    let t = Instant::now();
    let unopt = translate(&query).map_err(|e| e.to_string())?;
    times.add(Stage::Translate, micros_since(t));
    let t = Instant::now();
    let (opt, _) = optimize_with_stats(unopt);
    times.add(Stage::Optimize, micros_since(t));
    Ok((opt, times))
}

/// Elapsed whole microseconds since `start`.
fn micros_since(start: Instant) -> u64 {
    start.elapsed().as_micros().min(u64::MAX as u128) as u64
}

fn cmd_run(args: &[String], report: bool) -> Result<(), String> {
    let mut positional: Vec<&String> = Vec::new();
    let mut max_output = DEFAULT_MAX_OUTPUT_EVENTS;
    let mut timing = false;
    let mut profile = false;
    let mut stream = false;
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--stream" => {
                if report {
                    return Err("--stream only applies to foxq run".to_string());
                }
                stream = true;
            }
            "--max-output" => {
                i += 1;
                let n: u64 = args
                    .get(i)
                    .ok_or("--max-output needs a number")?
                    .parse()
                    .map_err(|_| "--max-output needs a number".to_string())?;
                max_output = if n == 0 { u64::MAX } else { n };
            }
            "--timing" => {
                if !report {
                    return Err("--timing only applies to foxq stats".to_string());
                }
                timing = true;
            }
            "--profile" => {
                if !report {
                    return Err("--profile only applies to foxq stats".to_string());
                }
                profile = true;
            }
            other if other.starts_with('-') => {
                return Err(format!("unknown flag {other:?}\n{USAGE}"));
            }
            _ => positional.push(&args[i]),
        }
        i += 1;
    }
    // `foxq stats <tape.fet>`: inspect the tape, no query involved.
    if report && positional.len() == 1 && positional[0].ends_with(".fet") {
        return cmd_tape_stats(positional[0]);
    }
    let query_path = positional.first().ok_or("missing query file")?;
    let (mft, mut times) = load_query_timed(query_path)?;
    let limits = StreamLimits {
        max_output_events: max_output,
        ..StreamLimits::default()
    };
    // A `.fet` input replays the pre-parsed tape, seeking over prefiltered
    // subtrees, instead of re-tokenizing XML.
    if let Some(path) = positional.get(1).filter(|p| p.ends_with(".fet")) {
        if stream {
            return run_streaming_on_tape(&mft, path, limits);
        }
        let t = Instant::now();
        let (stats, seek_micros, profiled) = run_query_on_tape(&mft, path, limits, profile)?;
        let replay = micros_since(t);
        times.add(Stage::TapeSeek, seek_micros);
        times.add(Stage::TapeReplay, replay.saturating_sub(seek_micros));
        if report {
            report_stats(&mft, &stats);
            if timing {
                report_timing(&times);
            }
            if let Some(p) = profiled {
                eprint!("{}", p.render());
            }
        }
        return Ok(());
    }
    let stdin;
    let input: Box<dyn Read> = match positional.get(1) {
        Some(path) => {
            Box::new(std::fs::File::open(path).map_err(|e| format!("cannot open {path}: {e}"))?)
        }
        None => {
            stdin = std::io::stdin();
            Box::new(stdin.lock())
        }
    };
    let reader = XmlReader::new(BufReader::new(input));
    let stdout = std::io::stdout();
    if stream {
        // Earliest emission to a pipe: every irrevocable prefix is
        // flushed the moment the engine proves it final, so a consumer
        // sees results while the document is still arriving.
        let mut out = stdout.lock();
        let sink = EmitWriter::new(|chunk: &[u8]| out.write_all(chunk).and_then(|_| out.flush()));
        let (sink, _stats) =
            run_streaming_emit(&mft, reader, sink, limits).map_err(|e| e.to_string())?;
        sink.finish().map_err(|e| e.to_string())?;
        return out
            .write_all(b"\n")
            .and_then(|_| out.flush())
            .map_err(|e| e.to_string());
    }
    let sink = WriterSink::new(std::io::BufWriter::new(stdout.lock()));
    let t = Instant::now();
    let (sink, stats, profiled) = if profile {
        let obs = StreamProfiler::for_mft(&mft);
        let (sink, stats, obs) = run_streaming_with_observer(&mft, reader, sink, limits, obs)
            .map_err(|e| e.to_string())?;
        (sink, stats, Some(obs.into_profile(&mft)))
    } else {
        let (sink, stats) =
            run_streaming_with_limits(&mft, reader, sink, limits).map_err(|e| e.to_string())?;
        (sink, stats, None)
    };
    times.add(Stage::Execute, micros_since(t));
    let t = Instant::now();
    let mut out = sink.finish().map_err(|e| e.to_string())?;
    out.write_all(b"\n")
        .and_then(|_| out.flush())
        .map_err(|e| e.to_string())?;
    times.add(Stage::Serialize, micros_since(t));
    if report {
        report_stats(&mft, &stats);
        if timing {
            report_timing(&times);
        }
        if let Some(p) = profiled {
            eprint!("{}", p.render());
        }
    }
    Ok(())
}

/// `foxq run --stream` over a `.fet` tape: replay with per-event emission
/// boundaries, flushing each irrevocable prefix to stdout.
fn run_streaming_on_tape(mft: &Mft, path: &str, limits: StreamLimits) -> Result<(), String> {
    let tape = TapeReader::open_file(std::path::Path::new(path))
        .map_err(|e| format!("cannot open tape {path}: {e}"))?;
    let plan = QuerySetPlan::new([mft]);
    let stdout = std::io::stdout();
    let mut out = stdout.lock();
    let sink = EmitWriter::new(|chunk: &[u8]| out.write_all(chunk).and_then(|_| out.flush()));
    let run = run_multi_on_tape_emit(&[mft], tape, vec![sink], limits, &plan)
        .map_err(|e| format!("{path}: {e}"))?;
    let (sink, _stats) = run
        .results
        .into_iter()
        .next()
        .expect("one lane")
        .map_err(|e| e.to_string())?;
    sink.finish().map_err(|e| e.to_string())?;
    out.write_all(b"\n")
        .and_then(|_| out.flush())
        .map_err(|e| e.to_string())
}

/// One query over one tape file, with seek-based subtree skipping.
/// Returns the lane stats, the microseconds spent seeking, and (with
/// `--profile`) the finished resource profile.
fn run_query_on_tape(
    mft: &Mft,
    path: &str,
    limits: StreamLimits,
    profile: bool,
) -> Result<(StreamStats, u64, Option<StreamProfile>), String> {
    let tape = TapeReader::open_file(std::path::Path::new(path))
        .map_err(|e| format!("cannot open tape {path}: {e}"))?;
    let plan = QuerySetPlan::new([mft]);
    let stdout = std::io::stdout();
    let sink = WriterSink::new(std::io::BufWriter::new(stdout.lock()));
    let finish = |sink: WriterSink<std::io::BufWriter<std::io::StdoutLock<'_>>>| {
        let mut out = sink.finish().map_err(|e| e.to_string())?;
        out.write_all(b"\n")
            .and_then(|_| out.flush())
            .map_err(|e| e.to_string())
    };
    if profile {
        let lane = vec![(sink, StreamProfiler::for_mft(mft))];
        let run = run_multi_on_tape_observed(&[mft], tape, lane, limits, &plan)
            .map_err(|e| format!("{path}: {e}"))?;
        let seek_micros = run.tape_seek_micros;
        let (sink, stats, obs) = run
            .results
            .into_iter()
            .next()
            .expect("one lane")
            .map_err(|e| e.to_string())?;
        finish(sink)?;
        Ok((stats, seek_micros, Some(obs.into_profile(mft))))
    } else {
        let run = run_multi_on_tape(&[mft], tape, vec![sink], limits, &plan)
            .map_err(|e| format!("{path}: {e}"))?;
        let seek_micros = run.tape_seek_micros;
        let (sink, stats) = run
            .results
            .into_iter()
            .next()
            .expect("one lane")
            .map_err(|e| e.to_string())?;
        finish(sink)?;
        Ok((stats, seek_micros, None))
    }
}

/// `foxq stats <tape.fet>`: footer facts, no replay. FET2 tapes get the
/// index and compression sections on top of the shared counters.
fn cmd_tape_stats(path: &str) -> Result<(), String> {
    let tape = TapeReader::open_file(std::path::Path::new(path))
        .map_err(|e| format!("cannot inspect {path}: {e}"))?;
    let info = *tape.info();
    println!(
        "format:            {} v{}",
        if info.version == 1 { "FET1" } else { "FET2" },
        info.version
    );
    println!("events:            {}", info.events);
    println!(
        "  open / close:    {} / {}",
        info.events / 2,
        info.events / 2
    );
    println!("label table:       {} element name(s)", info.label_count);
    println!("max depth:         {}", info.max_depth);
    println!(
        "tape bytes:        {} (file: {})",
        info.tape_bytes, info.file_bytes
    );
    println!("checksum:          {:016x}", info.checksum);
    if info.version >= 2 {
        let pct = |part: u64, whole: u64| {
            if whole == 0 {
                0.0
            } else {
                part as f64 * 100.0 / whole as f64
            }
        };
        println!(
            "text bytes:        {} raw, {} stored ({:.1}% of raw)",
            info.raw_text_bytes,
            info.enc_text_bytes,
            pct(info.enc_text_bytes, info.raw_text_bytes.max(1))
        );
        println!(
            "skip index:        {} posting(s), {} bytes ({:.1}% of tape)",
            info.postings,
            info.index_bytes,
            pct(info.index_bytes, info.tape_bytes)
        );
        if !tape.index_usable() {
            println!("  (index disabled: flags {:#04x})", info.flags);
        }
        // Per-label posting-list sizes: element lists in label-id order,
        // then the per-parent text buckets. Empty text buckets (most
        // parents never hold a text) are elided.
        let labels = tape.labels();
        for (i, dir) in tape.posting_dir().iter().enumerate() {
            let name = if let Some(label) = labels.get(i) {
                format!("<{}>", label.name)
            } else if i == labels.len() {
                "#text (root)".to_string()
            } else {
                let parent = &labels[i - labels.len() - 1];
                format!("#text in <{}>", parent.name)
            };
            if labels.get(i).is_none() && dir.count == 0 {
                continue;
            }
            println!(
                "  {:<16} {:>8} posting(s) {:>10} bytes",
                name, dir.count, dir.bytes
            );
        }
    }
    Ok(())
}

fn report_stats(mft: &Mft, stats: &StreamStats) {
    eprintln!("events:            {}", stats.events);
    eprintln!(
        "  open / close:    {} / {}",
        stats.open_events, stats.close_events
    );
    eprintln!("rule expansions:   {}", stats.expansions);
    eprintln!("peak live nodes:   {}", stats.peak_live_nodes);
    eprintln!("peak live bytes:   {}", stats.peak_live_bytes);
    eprintln!("peak pending:      {} calls", stats.peak_pending_calls);
    eprintln!("max input depth:   {}", stats.max_depth);
    eprintln!("output events:     {}", stats.output_events);
    let analysis = EmissionAnalysis::analyze(mft);
    eprintln!("earliest emission:");
    eprintln!(
        "  early states:    {} of {}{}",
        analysis.early_count(),
        analysis.state_count(),
        if analysis.streams_early(mft) {
            ""
        } else {
            " (output held until end of input)"
        }
    );
    eprintln!(
        "  streamed:        {} of {} output events ({:.1}%)",
        stats.streamed_output_events,
        stats.output_events,
        stats.streamed_fraction() * 100.0
    );
    eprintln!("  flushes:         {} emitting", stats.emit_flushes);
    if stats.first_emit_events > 0 {
        eprintln!("  first emit:      at event {}", stats.first_emit_events);
    }
    if stats.prefiltered_events > 0 || stats.seek_skipped_bytes > 0 {
        eprintln!("prefiltered:       {} events", stats.prefiltered_events);
        eprintln!("seek-skipped:      {} bytes", stats.seek_skipped_bytes);
    }
    if stats.index_skipped_bytes > 0 {
        eprintln!("index-skipped:     {} bytes", stats.index_skipped_bytes);
    }
}

/// `foxq stats --timing`: the per-stage wall-time table.
fn report_timing(times: &StageTimes) {
    eprintln!("stage timing:");
    for (stage, micros) in times.iter() {
        eprintln!("  {:<12} {:>12.3} ms", stage.name(), micros as f64 / 1000.0);
    }
    eprintln!(
        "  {:<12} {:>12.3} ms",
        "total",
        times.total_micros() as f64 / 1000.0
    );
}

/// `foxq batch`: N prepared queries, one pass over each input document.
fn cmd_batch(args: &[String]) -> Result<(), String> {
    let mut query_files: Vec<String> = Vec::new();
    let mut inputs: Vec<String> = Vec::new();
    let mut threads: usize = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    let mut report_stats = false;
    let mut max_output = DEFAULT_MAX_OUTPUT_EVENTS;
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "-q" | "--query-file" => {
                i += 1;
                query_files.push(
                    args.get(i)
                        .ok_or("-q/--query-file needs a file argument")?
                        .clone(),
                );
            }
            "--threads" => {
                i += 1;
                threads = args
                    .get(i)
                    .ok_or("--threads needs a number")?
                    .parse()
                    .map_err(|_| "--threads needs a number".to_string())?;
            }
            "--stats" => report_stats = true,
            "--max-output" => {
                i += 1;
                let n: u64 = args
                    .get(i)
                    .ok_or("--max-output needs a number")?
                    .parse()
                    .map_err(|_| "--max-output needs a number".to_string())?;
                max_output = if n == 0 { u64::MAX } else { n };
            }
            other if other.starts_with('-') => {
                return Err(format!("unknown batch flag {other:?}\n{USAGE}"));
            }
            other => inputs.push(other.to_string()),
        }
        i += 1;
    }
    let limits = StreamLimits {
        max_output_events: max_output,
        ..StreamLimits::default()
    };
    if query_files.is_empty() {
        return Err(format!("batch needs at least one -q <query.xq>\n{USAGE}"));
    }

    // Compile through the cache: passing the same query file twice (or two
    // files with identical text) translates it once.
    let mut cache = QueryCache::new(query_files.len().max(1));
    let mut queries = Vec::with_capacity(query_files.len());
    for path in &query_files {
        let src =
            std::fs::read_to_string(path).map_err(|e| format!("cannot read query {path}: {e}"))?;
        let prepared = cache
            .get_or_compile(&src)
            .map_err(|e| format!("{path}: {e}"))?;
        queries.push(prepared);
    }
    if report_stats {
        let cs = cache.stats();
        eprintln!(
            "queries:           {} ({} compiled, {} cache hits)",
            queries.len(),
            cs.compiles,
            cs.hits
        );
    }

    let stdout = std::io::stdout();
    let mut out = std::io::BufWriter::new(stdout.lock());
    let mut failures = 0usize;

    if inputs.len() <= 1 {
        // Single document: stream it (stdin or a file) in one pass.
        let doc_name = inputs.first().map(String::as_str).unwrap_or("stdin");
        let stdin;
        let input: Box<dyn Read> = match inputs.first() {
            Some(path) => {
                Box::new(std::fs::File::open(path).map_err(|e| format!("cannot open {path}: {e}"))?)
            }
            None => {
                stdin = std::io::stdin();
                Box::new(stdin.lock())
            }
        };
        let mfts: Vec<&Mft> = queries.iter().map(|q| q.mft()).collect();
        let sinks: Vec<_> = queries
            .iter()
            .map(|_| WriterSink::new(Vec::new()))
            .collect();
        match run_multi_with_limits(&mfts, XmlReader::new(BufReader::new(input)), sinks, limits) {
            Ok(run) => {
                if report_stats {
                    eprintln!("input events:      {} (one pass)", run.input_events);
                }
                for (qfile, result) in query_files.iter().zip(run.results) {
                    writeln!(out, "### {doc_name} {qfile}").map_err(|e| e.to_string())?;
                    match result {
                        Ok((sink, stats)) => {
                            let buf = sink.finish().map_err(|e| e.to_string())?;
                            out.write_all(&buf)
                                .and_then(|_| out.write_all(b"\n"))
                                .map_err(|e| e.to_string())?;
                            if report_stats {
                                eprintln!(
                                    "{qfile}: {} output events, peak {} nodes / {} bytes",
                                    stats.output_events,
                                    stats.peak_live_nodes,
                                    stats.peak_live_bytes
                                );
                            }
                        }
                        Err(e) => {
                            failures += 1;
                            writeln!(out, "error: {e}").map_err(|e| e.to_string())?;
                            eprintln!("foxq: {qfile} on {doc_name}: {e}");
                        }
                    }
                }
            }
            // Same labeled-row contract as the multi-document path: a bad
            // document fails every query's block, not the whole command
            // format.
            Err(e) => {
                for qfile in &query_files {
                    writeln!(out, "### {doc_name} {qfile}").map_err(|e| e.to_string())?;
                    writeln!(out, "error: {e}").map_err(|e| e.to_string())?;
                    eprintln!("foxq: {qfile} on {doc_name}: {e}");
                    failures += 1;
                }
            }
        }
    } else {
        // Several documents: shard them across worker threads. Each worker
        // opens and streams the files it claims, so peak memory does not
        // scale with the corpus size.
        let report = BatchDriver::new(threads)
            .with_limits(limits)
            .run_files(&inputs, &queries);
        if report_stats {
            eprintln!(
                "documents:         {} over {} threads",
                inputs.len(),
                threads.max(1)
            );
            eprintln!(
                "input events:      {} (one pass per document)",
                report.input_events
            );
            eprintln!("output events:     {}", report.output_events);
        }
        failures += report.failures;
        for (doc_name, row) in inputs.iter().zip(&report.cells) {
            for (qfile, cell) in query_files.iter().zip(row) {
                writeln!(out, "### {doc_name} {qfile}").map_err(|e| e.to_string())?;
                if report_stats {
                    if let Some(stats) = &cell.stats {
                        eprintln!(
                            "{doc_name} {qfile}: {} output events, peak {} nodes / {} bytes",
                            stats.output_events, stats.peak_live_nodes, stats.peak_live_bytes
                        );
                    }
                }
                match &cell.output {
                    Ok(text) => writeln!(out, "{text}").map_err(|e| e.to_string())?,
                    Err(e) => {
                        writeln!(out, "error: {e}").map_err(|e| e.to_string())?;
                        eprintln!("foxq: {qfile} on {doc_name}: {e}");
                    }
                }
            }
        }
    }
    out.flush().map_err(|e| e.to_string())?;
    if failures > 0 {
        return Err(format!("{failures} query run(s) failed"));
    }
    Ok(())
}

/// `foxq store`: manage and query the persistent tape corpus.
fn cmd_store(args: &[String]) -> Result<(), String> {
    let sub = args.first().map(String::as_str);
    let rest = &args[1..];
    match sub {
        Some("add") => store_add(rest),
        Some("ls") => store_ls(rest),
        Some("rm") => store_rm(rest),
        Some("query") => store_query(rest),
        Some("migrate") => store_migrate(rest),
        _ => Err(format!("store needs add|ls|rm|query|migrate\n{USAGE}")),
    }
}

/// Parse `--dir DIR` plus flags out of a store subcommand's arguments;
/// returns (dir, flag values in declaration order, positionals).
struct StoreArgs {
    dir: String,
    positional: Vec<String>,
    id: Option<String>,
    query_files: Vec<String>,
    threads: usize,
    report_stats: bool,
    max_output: u64,
}

fn parse_store_args(args: &[String]) -> Result<StoreArgs, String> {
    let mut parsed = StoreArgs {
        dir: String::new(),
        positional: Vec::new(),
        id: None,
        query_files: Vec::new(),
        threads: std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1),
        report_stats: false,
        max_output: DEFAULT_MAX_OUTPUT_EVENTS,
    };
    let mut i = 0;
    while i < args.len() {
        let flag = args[i].as_str();
        let mut value = |what: &str| -> Result<String, String> {
            i += 1;
            args.get(i).cloned().ok_or(format!("{flag} needs {what}"))
        };
        match flag {
            "--dir" => parsed.dir = value("a directory")?,
            "--id" => parsed.id = Some(value("an id")?),
            "-q" | "--query-file" => {
                let v = value("a file argument")?;
                parsed.query_files.push(v);
            }
            "--threads" => {
                parsed.threads = value("a number")?
                    .parse()
                    .map_err(|_| "--threads needs a number".to_string())?;
            }
            "--stats" => parsed.report_stats = true,
            "--max-output" => {
                let n: u64 = value("a number")?
                    .parse()
                    .map_err(|_| "--max-output needs a number".to_string())?;
                parsed.max_output = if n == 0 { u64::MAX } else { n };
            }
            other if other.starts_with('-') => {
                return Err(format!("unknown store flag {other:?}\n{USAGE}"));
            }
            other => parsed.positional.push(other.to_string()),
        }
        i += 1;
    }
    if parsed.dir.is_empty() {
        return Err(format!("store needs --dir DIR\n{USAGE}"));
    }
    Ok(parsed)
}

fn open_corpus(dir: &str) -> Result<Corpus, String> {
    Corpus::open(dir).map_err(|e| format!("corpus {dir}: {e}"))
}

fn store_add(args: &[String]) -> Result<(), String> {
    let parsed = parse_store_args(args)?;
    if parsed.positional.is_empty() {
        return Err("store add needs at least one input file".to_string());
    }
    if parsed.id.is_some() && parsed.positional.len() > 1 {
        return Err("--id only works with a single input file".to_string());
    }
    let mut corpus = open_corpus(&parsed.dir)?;
    for path in &parsed.positional {
        let id = match &parsed.id {
            Some(id) => id.clone(),
            None => std::path::Path::new(path)
                .file_stem()
                .and_then(|s| s.to_str())
                .ok_or_else(|| format!("cannot derive an id from {path:?}; use --id"))?
                .to_string(),
        };
        let file = std::fs::File::open(path).map_err(|e| format!("cannot open {path}: {e}"))?;
        let meta = corpus
            .add_xml(&id, BufReader::new(file))
            .map_err(|e| format!("{path}: {e}"))?;
        println!(
            "stored {}: {} events, {} tape bytes (from {} XML bytes)",
            meta.id, meta.events, meta.tape_bytes, meta.source_bytes
        );
    }
    Ok(())
}

fn store_ls(args: &[String]) -> Result<(), String> {
    let parsed = parse_store_args(args)?;
    let corpus = open_corpus(&parsed.dir)?;
    println!(
        "{:<24} {:>4} {:>12} {:>12} {:>12}  checksum",
        "id", "fmt", "events", "xml.bytes", "tape.bytes"
    );
    for meta in corpus.docs() {
        println!(
            "{:<24} {:>4} {:>12} {:>12} {:>12}  {:016x}",
            meta.id,
            format!("FET{}", meta.version),
            meta.events,
            meta.source_bytes,
            meta.tape_bytes,
            meta.checksum
        );
    }
    println!(
        "({} document(s), {} events, {} tape bytes)",
        corpus.len(),
        corpus.total_events(),
        corpus.total_tape_bytes()
    );
    Ok(())
}

fn store_rm(args: &[String]) -> Result<(), String> {
    let parsed = parse_store_args(args)?;
    if parsed.positional.is_empty() {
        return Err("store rm needs at least one document id".to_string());
    }
    let mut corpus = open_corpus(&parsed.dir)?;
    for id in &parsed.positional {
        let meta = corpus.remove(id).map_err(|e| e.to_string())?;
        println!("removed {} ({} events)", meta.id, meta.events);
    }
    Ok(())
}

fn store_migrate(args: &[String]) -> Result<(), String> {
    let parsed = parse_store_args(args)?;
    let mut corpus = open_corpus(&parsed.dir)?;
    if parsed.positional.is_empty() {
        let rewritten = corpus.migrate_all().map_err(|e| e.to_string())?;
        println!(
            "migrated {} tape(s) to FET2 ({} document(s) total)",
            rewritten,
            corpus.len()
        );
    } else {
        for id in &parsed.positional {
            let meta = corpus.migrate(id).map_err(|e| format!("{id}: {e}"))?;
            println!(
                "{}: FET{} — {} events, {} tape bytes",
                meta.id, meta.version, meta.events, meta.tape_bytes
            );
        }
    }
    Ok(())
}

fn store_query(args: &[String]) -> Result<(), String> {
    let parsed = parse_store_args(args)?;
    if parsed.query_files.is_empty() {
        return Err(format!(
            "store query needs at least one -q <query.xq>\n{USAGE}"
        ));
    }
    let corpus = open_corpus(&parsed.dir)?;
    let mut cache = QueryCache::new(parsed.query_files.len().max(1));
    let mut queries = Vec::with_capacity(parsed.query_files.len());
    for path in &parsed.query_files {
        let src =
            std::fs::read_to_string(path).map_err(|e| format!("cannot read query {path}: {e}"))?;
        queries.push(
            cache
                .get_or_compile(&src)
                .map_err(|e| format!("{path}: {e}"))?,
        );
    }
    let limits = StreamLimits {
        max_output_events: parsed.max_output,
        ..StreamLimits::default()
    };
    let driver = BatchDriver::new(parsed.threads).with_limits(limits);
    let report = if parsed.positional.is_empty() {
        driver.run_corpus(&corpus, &queries)
    } else {
        driver.run_corpus_subset(&corpus, parsed.positional.clone(), &queries)
    };
    if parsed.report_stats {
        eprintln!(
            "documents:         {} over {} threads (tape replay, no re-parse)",
            report.doc_ids.len(),
            parsed.threads.max(1)
        );
        eprintln!("input events:      {}", report.report.input_events);
        eprintln!("output events:     {}", report.report.output_events);
        eprintln!(
            "seek-skipped:      {} bytes",
            report.report.seek_skipped_bytes
        );
        eprintln!(
            "index-skipped:     {} bytes",
            report.report.index_skipped_bytes
        );
    }
    let stdout = std::io::stdout();
    let mut out = std::io::BufWriter::new(stdout.lock());
    let mut failures = 0usize;
    for (doc_id, row) in report.doc_ids.iter().zip(&report.report.cells) {
        for (qfile, cell) in parsed.query_files.iter().zip(row) {
            writeln!(out, "### {doc_id} {qfile}").map_err(|e| e.to_string())?;
            if parsed.report_stats {
                if let Some(stats) = &cell.stats {
                    eprintln!(
                        "{doc_id} {qfile}: {} output events, peak {} nodes / {} bytes",
                        stats.output_events, stats.peak_live_nodes, stats.peak_live_bytes
                    );
                }
            }
            match &cell.output {
                Ok(text) => writeln!(out, "{text}").map_err(|e| e.to_string())?,
                Err(e) => {
                    failures += 1;
                    writeln!(out, "error: {e}").map_err(|e| e.to_string())?;
                    eprintln!("foxq: {qfile} on {doc_id}: {e}");
                }
            }
        }
    }
    out.flush().map_err(|e| e.to_string())?;
    if failures > 0 {
        return Err(format!("{failures} query run(s) failed"));
    }
    Ok(())
}

/// `foxq serve`: the long-running HTTP front-end.
fn cmd_serve(args: &[String]) -> Result<(), String> {
    use foxq::server::{Server, ServerConfig};
    let mut config = ServerConfig {
        addr: "127.0.0.1:8080".to_string(),
        ..ServerConfig::default()
    };
    let mut i = 0;
    while i < args.len() {
        let flag = args[i].as_str();
        let mut value = |what: &str| -> Result<&String, String> {
            i += 1;
            args.get(i).ok_or(format!("{flag} needs {what}"))
        };
        match flag {
            "--addr" => config.addr = value("HOST:PORT")?.clone(),
            "--corpus" => config.corpus_dir = Some(value("a directory")?.clone()),
            "--threads" => {
                config.threads = value("a number")?
                    .parse()
                    .map_err(|_| "--threads needs a number".to_string())?;
            }
            "--max-body-bytes" => {
                config.max_body_bytes = value("a number")?
                    .parse()
                    .map_err(|_| "--max-body-bytes needs a number".to_string())?;
            }
            "--cache-capacity" => {
                config.cache_capacity = value("a number")?
                    .parse()
                    .map_err(|_| "--cache-capacity needs a number".to_string())?;
            }
            "--read-timeout-ms" => {
                let ms: u64 = value("milliseconds")?
                    .parse()
                    .map_err(|_| "--read-timeout-ms needs a number".to_string())?;
                config.read_timeout = std::time::Duration::from_millis(ms);
            }
            "--write-timeout-ms" => {
                let ms: u64 = value("milliseconds")?
                    .parse()
                    .map_err(|_| "--write-timeout-ms needs a number".to_string())?;
                config.write_timeout = std::time::Duration::from_millis(ms);
            }
            "--max-connections" => {
                config.max_connections = value("a number")?
                    .parse()
                    .map_err(|_| "--max-connections needs a number".to_string())?;
            }
            "--slow-ms" => {
                config.slow_ms = value("milliseconds")?
                    .parse()
                    .map_err(|_| "--slow-ms needs a number".to_string())?;
            }
            "--trace-log" => config.trace_log = Some(value("a file path")?.clone()),
            "--trace-log-max-bytes" => {
                config.trace_log_max_bytes = value("a number")?
                    .parse()
                    .map_err(|_| "--trace-log-max-bytes needs a number".to_string())?;
            }
            "--profile" => config.profile = true,
            other => return Err(format!("unknown serve flag {other:?}\n{USAGE}")),
        }
        i += 1;
    }
    let server = Server::bind(config).map_err(|e| format!("cannot bind: {e}"))?;
    let addr = server.local_addr().map_err(|e| e.to_string())?;
    let handle = server.start().map_err(|e| format!("cannot start: {e}"))?;
    eprintln!("foxq-server listening on http://{addr} (POST /shutdown to stop)");
    handle.join();
    eprintln!("foxq-server drained and stopped");
    Ok(())
}

fn cmd_compile(args: &[String]) -> Result<(), String> {
    let (no_opt, path) = match args {
        [flag, path] if flag == "--no-opt" => (true, path),
        [path] => (false, path),
        _ => return Err("usage: foxq compile [--no-opt] <query.xq>".to_string()),
    };
    let src =
        std::fs::read_to_string(path).map_err(|e| format!("cannot read query {path}: {e}"))?;
    let query = parse_query(&src).map_err(|e| e.to_string())?;
    let unopt = translate(&query).map_err(|e| e.to_string())?;
    let m = if no_opt {
        unopt
    } else {
        let (opt, stats) = optimize_with_stats(unopt);
        eprintln!(
            "// optimized: {} states, size {}; removed {} unused + {} constant parameters, \
             inlined {} stay states, dropped {} unreachable states",
            opt.state_count(),
            opt.size(),
            stats.unused_params_removed,
            stats.const_params_removed,
            stats.stay_states_inlined,
            stats.states_removed
        );
        opt
    };
    print!("{}", print_mft(&m));
    Ok(())
}
