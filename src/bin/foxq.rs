//! `foxq` — command-line XQuery streaming by forest transducers.
//!
//! ```text
//! foxq run   <query.xq> [input.xml]     # stream input (or stdin) through the query
//! foxq compile <query.xq>               # print the optimized MFT rules
//! foxq compile --no-opt <query.xq>      # print the raw §3 translation
//! foxq stats <query.xq> [input.xml]     # run and report engine statistics
//! ```
//!
//! Output goes to stdout; diagnostics to stderr. Exit code 1 on any error.

use foxq::core::opt::optimize_with_stats;
use foxq::core::stream::{run_streaming, StreamStats};
use foxq::core::translate::translate;
use foxq::core::{print_mft, Mft};
use foxq::xml::{WriterSink, XmlReader};
use foxq::xquery::parse_query;
use std::io::{BufReader, Read, Write};
use std::process::ExitCode;

fn main() -> ExitCode {
    match real_main() {
        Ok(()) => ExitCode::SUCCESS,
        Err(msg) => {
            eprintln!("foxq: {msg}");
            ExitCode::FAILURE
        }
    }
}

fn real_main() -> Result<(), String> {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match args.first().map(String::as_str) {
        Some("run") => cmd_run(&args[1..], false),
        Some("stats") => cmd_run(&args[1..], true),
        Some("compile") => cmd_compile(&args[1..]),
        Some("--help") | Some("-h") | None => {
            eprint!("{}", USAGE);
            Ok(())
        }
        Some(other) => Err(format!("unknown command {other:?}\n{USAGE}")),
    }
}

const USAGE: &str = "\
usage:
  foxq run <query.xq> [input.xml]       stream input (default stdin) through the query
  foxq stats <query.xq> [input.xml]     run and report engine statistics to stderr
  foxq compile [--no-opt] <query.xq>    print the (optimized) MFT in rule notation
";

fn load_query(path: &str) -> Result<Mft, String> {
    let src =
        std::fs::read_to_string(path).map_err(|e| format!("cannot read query {path}: {e}"))?;
    let query = parse_query(&src).map_err(|e| e.to_string())?;
    let unopt = translate(&query).map_err(|e| e.to_string())?;
    let (opt, _) = optimize_with_stats(unopt);
    Ok(opt)
}

fn cmd_run(args: &[String], report: bool) -> Result<(), String> {
    let query_path = args.first().ok_or("missing query file")?;
    let mft = load_query(query_path)?;
    let stdin;
    let input: Box<dyn Read> = match args.get(1) {
        Some(path) => {
            Box::new(std::fs::File::open(path).map_err(|e| format!("cannot open {path}: {e}"))?)
        }
        None => {
            stdin = std::io::stdin();
            Box::new(stdin.lock())
        }
    };
    let reader = XmlReader::new(BufReader::new(input));
    let stdout = std::io::stdout();
    let sink = WriterSink::new(std::io::BufWriter::new(stdout.lock()));
    let (sink, stats) = run_streaming(&mft, reader, sink).map_err(|e| e.to_string())?;
    let mut out = sink.finish().map_err(|e| e.to_string())?;
    out.write_all(b"\n")
        .and_then(|_| out.flush())
        .map_err(|e| e.to_string())?;
    if report {
        report_stats(&stats);
    }
    Ok(())
}

fn report_stats(stats: &StreamStats) {
    eprintln!("events:            {}", stats.events);
    eprintln!("rule expansions:   {}", stats.expansions);
    eprintln!("peak live nodes:   {}", stats.peak_live_nodes);
    eprintln!("peak live bytes:   {}", stats.peak_live_bytes);
    eprintln!("max input depth:   {}", stats.max_depth);
    eprintln!("output events:     {}", stats.output_events);
}

fn cmd_compile(args: &[String]) -> Result<(), String> {
    let (no_opt, path) = match args {
        [flag, path] if flag == "--no-opt" => (true, path),
        [path] => (false, path),
        _ => return Err("usage: foxq compile [--no-opt] <query.xq>".to_string()),
    };
    let src =
        std::fs::read_to_string(path).map_err(|e| format!("cannot read query {path}: {e}"))?;
    let query = parse_query(&src).map_err(|e| e.to_string())?;
    let unopt = translate(&query).map_err(|e| e.to_string())?;
    let m = if no_opt {
        unopt
    } else {
        let (opt, stats) = optimize_with_stats(unopt);
        eprintln!(
            "// optimized: {} states, size {}; removed {} unused + {} constant parameters, \
             inlined {} stay states, dropped {} unreachable states",
            opt.state_count(),
            opt.size(),
            stats.unused_params_removed,
            stats.const_params_removed,
            stats.stay_states_inlined,
            stats.states_removed
        );
        opt
    };
    print!("{}", print_mft(&m));
    Ok(())
}
