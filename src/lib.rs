//! # foxq — Streaming XQuery by Forest Transducers
//!
//! A from-scratch Rust reproduction of *"XQuery Streaming by Forest
//! Transducers"* (Hakuta, Maneth, Nakano, Iwasaki; ICDE 2014).
//!
//! The pipeline, end to end:
//!
//! 1. Parse a **MinXQuery** program ([`xquery::parse_query`]).
//! 2. Translate it to a **macro forest transducer** ([`core::translate`],
//!    Section 3 of the paper, Theorem 1).
//! 3. Optimize the transducer ([`core::opt::optimize`], Section 4.1:
//!    unused/constant parameter reduction, stay-move removal, unreachable
//!    state removal).
//! 4. Run it over an XML event stream with constant-factor buffering
//!    ([`core::stream`], the Nakano–Mu style engine).
//!
//! The crates are re-exported here under short names:
//!
//! * [`forest`] — unranked forests, labels, term notation, fcns encoding;
//! * [`xml`] — streaming XML parser / serializer;
//! * [`core`] — MFT model, interpreter, streaming engine, translation,
//!   optimizations;
//! * [`xquery`] — MinXQuery AST, parser, ground-truth evaluator;
//! * [`tt`] — binary-tree transducers and the composition constructions of
//!   Section 4.2 (Lemmas 1–3, Theorems 3–5);
//! * [`gcx`] — the GCX-substitute streaming baseline used in the evaluation;
//! * [`gen`] — deterministic XMark/TreeBank/Medline/Protein-like generators;
//! * [`service`] — the serving layer: prepared-query cache, multi-query
//!   single-pass engine, parallel batch driver (the `foxq batch` command);
//! * [`store`] — the document store: FET1 event tapes with O(1) subtree
//!   seeks, plus the corpus manifest (the `foxq store` commands);
//! * [`server`] — the network front-end: a hand-rolled HTTP/1.1 server with
//!   streaming request bodies and Prometheus metrics (`foxq serve`);
//! * [`obs`] — the observability core shared by the CLI and the server:
//!   latency histograms, per-stage spans, trace sinks.
//!
//! ## Quick start
//!
//! ```
//! use foxq::prelude::*;
//!
//! // A MinXQuery program: all name-texts of persons with p_id "person0".
//! let q = r#"<out>{ for $b in $input/person[./p_id/text() = "person0"]
//!            return let $r := $b/name/text() return $r }</out>"#;
//! let program = foxq::xquery::parse_query(q).unwrap();
//! let mft = foxq::core::translate::translate(&program).unwrap();
//! let mft = foxq::core::opt::optimize(mft);
//!
//! let doc = "<person><p_id>person0</p_id><name>Jim</name><name>Li</name></person>";
//! let out = foxq::core::stream::run_streaming_to_string(&mft, doc.as_bytes()).unwrap();
//! assert_eq!(out.output, "<out>JimLi</out>");
//! ```

pub use foxq_core as core;
pub use foxq_forest as forest;
pub use foxq_gcx as gcx;
pub use foxq_gen as gen;
pub use foxq_obs as obs;
pub use foxq_server as server;
pub use foxq_service as service;
pub use foxq_store as store;
pub use foxq_tt as tt;
pub use foxq_xml as xml;
pub use foxq_xquery as xquery;

/// Convenient glob-import surface for examples and tests.
pub mod prelude {
    pub use foxq_core::interp::run_mft;
    pub use foxq_core::mft::Mft;
    pub use foxq_core::opt::optimize;
    pub use foxq_core::stream::{run_streaming_to_string, StreamStats};
    pub use foxq_core::translate::translate;
    pub use foxq_forest::{Forest, Label, NodeKind, Tree};
    pub use foxq_service::{BatchDriver, MultiQueryEngine, PreparedQuery, QueryCache};
    pub use foxq_xml::{parse_document, write_forest};
    pub use foxq_xquery::parse_query;
}
