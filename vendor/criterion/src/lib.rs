//! Offline stand-in for the [`criterion`](https://crates.io/crates/criterion)
//! benchmark harness, implementing the surface the foxq benches use:
//! [`criterion_group!`]/[`criterion_main!`], [`Criterion::benchmark_group`],
//! `sample_size`, `bench_with_input`/`bench_function`, [`BenchmarkId`], and
//! `Bencher::iter`.
//!
//! Measurement is intentionally simple — per sample one timed call, median
//! and mean over `sample_size` samples, printed to stdout — with none of
//! criterion's statistics, plotting, or baseline storage. Respect the
//! standard libtest arguments enough to be driveable: a positional filter
//! selects benchmarks by substring and `--test`/`--list` do no timing.

pub use std::hint::black_box;
use std::time::{Duration, Instant};

/// Benchmark identifier: `function/parameter`.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    pub fn new(function: impl std::fmt::Display, parameter: impl std::fmt::Display) -> Self {
        BenchmarkId {
            id: format!("{function}/{parameter}"),
        }
    }

    pub fn from_parameter(parameter: impl std::fmt::Display) -> Self {
        BenchmarkId {
            id: parameter.to_string(),
        }
    }
}

/// Timing driver passed to the measured closure.
pub struct Bencher {
    samples: usize,
    durations: Vec<Duration>,
}

impl Bencher {
    /// Time `f`, one call per sample.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        black_box(f()); // warm-up, untimed
        for _ in 0..self.samples {
            let start = Instant::now();
            black_box(f());
            self.durations.push(start.elapsed());
        }
    }
}

/// Top-level harness state.
pub struct Criterion {
    filter: Option<String>,
    compile_only: bool,
}

impl Default for Criterion {
    fn default() -> Self {
        // Under `cargo bench -- <filter>` the binary receives libtest-ish
        // arguments; honour the positional filter and the no-run modes.
        let mut filter = None;
        let mut compile_only = false;
        for arg in std::env::args().skip(1) {
            match arg.as_str() {
                "--bench" | "--nocapture" | "--quiet" | "-q" => {}
                "--test" | "--list" => compile_only = true,
                a if a.starts_with("--") => {}
                a => filter = Some(a.to_string()),
            }
        }
        Criterion {
            filter,
            compile_only,
        }
    }
}

impl Criterion {
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.into(),
            sample_size: 10,
        }
    }

    fn runs(&self, full_id: &str) -> bool {
        !self.compile_only && self.filter.as_deref().is_none_or(|f| full_id.contains(f))
    }
}

/// A named group of related benchmarks.
pub struct BenchmarkGroup<'c> {
    criterion: &'c mut Criterion,
    name: String,
    sample_size: usize,
}

impl BenchmarkGroup<'_> {
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        assert!(n > 0, "sample_size must be positive");
        self.sample_size = n;
        self
    }

    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = id.into();
        self.run(&id.id.clone(), |b| f(b));
        self
    }

    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        self.run(&id.id.clone(), |b| f(b, input));
        self
    }

    fn run(&mut self, id: &str, f: impl FnOnce(&mut Bencher)) {
        let full_id = format!("{}/{}", self.name, id);
        if !self.criterion.runs(&full_id) {
            return;
        }
        let mut bencher = Bencher {
            samples: self.sample_size,
            durations: Vec::new(),
        };
        f(&mut bencher);
        let mut sorted = bencher.durations.clone();
        sorted.sort();
        // The closure may never call `iter` (e.g. an engine skipping an
        // unsupported query): report, don't panic.
        if sorted.is_empty() {
            println!("{full_id:<48} no samples (Bencher::iter never called)");
            return;
        }
        let median = sorted[sorted.len() / 2];
        let mean = sorted.iter().sum::<Duration>() / sorted.len() as u32;
        println!(
            "{full_id:<48} median {:>12} mean {:>12} ({} samples)",
            fmt_duration(median),
            fmt_duration(mean),
            sorted.len()
        );
    }

    pub fn finish(self) {}
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> Self {
        BenchmarkId { id: s.to_string() }
    }
}

fn fmt_duration(d: Duration) -> String {
    let ns = d.as_nanos();
    if ns < 1_000 {
        format!("{ns} ns")
    } else if ns < 1_000_000 {
        format!("{:.2} µs", ns as f64 / 1e3)
    } else if ns < 1_000_000_000 {
        format!("{:.2} ms", ns as f64 / 1e6)
    } else {
        format!("{:.2} s", ns as f64 / 1e9)
    }
}

/// Define a function running a sequence of benchmark functions.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Define `main` for a `harness = false` bench target.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_bench(criterion: &mut Criterion) {
        let mut group = criterion.benchmark_group("shim");
        group.sample_size(3);
        for k in [1u64, 2] {
            group.bench_with_input(BenchmarkId::new("sum", k), &k, |b, &k| {
                b.iter(|| (0..k * 1000).sum::<u64>())
            });
        }
        group.finish();
    }

    criterion_group!(benches, sample_bench);

    #[test]
    fn group_runs_and_reports() {
        benches(); // must not panic; prints two lines
    }

    #[test]
    fn ids_format() {
        assert_eq!(BenchmarkId::new("f", 3).id, "f/3");
        assert_eq!(BenchmarkId::from_parameter("gcx").id, "gcx");
    }
}
