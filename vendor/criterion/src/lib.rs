//! Offline stand-in for the [`criterion`](https://crates.io/crates/criterion)
//! benchmark harness, implementing the surface the foxq benches use:
//! [`criterion_group!`]/[`criterion_main!`], [`Criterion::benchmark_group`],
//! `sample_size`, `bench_with_input`/`bench_function`, [`BenchmarkId`], and
//! `Bencher::iter`.
//!
//! Measurement is per sample one timed call over `sample_size` samples,
//! reported through [`Summary`]: median, a median-absolute-deviation (MAD)
//! outlier cut, and mean ± standard deviation over the surviving samples —
//! none of criterion's plotting or baseline storage. Respect the standard
//! libtest arguments enough to be driveable: a positional filter selects
//! benchmarks by substring and `--test`/`--list` do no timing.

pub use std::hint::black_box;
use std::time::{Duration, Instant};

/// Robust statistics over one benchmark's samples.
///
/// The outlier cut is the classical MAD filter: a sample is dropped when
/// `|x − median| > 3.5 · MAD` (and MAD > 0); mean and standard deviation are
/// computed over the survivors, so one descheduled sample cannot poison the
/// reported mean.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Summary {
    /// Samples measured (before the outlier cut).
    pub samples: usize,
    /// Median over all samples.
    pub median: Duration,
    /// Median absolute deviation over all samples.
    pub mad: Duration,
    /// Samples dropped by the MAD cut.
    pub outliers_dropped: usize,
    /// Mean over the surviving samples.
    pub mean: Duration,
    /// Standard deviation over the surviving samples.
    pub std_dev: Duration,
}

/// Summarize a sample set; `None` when empty.
pub fn summarize(durations: &[Duration]) -> Option<Summary> {
    if durations.is_empty() {
        return None;
    }
    let mut sorted = durations.to_vec();
    sorted.sort();
    let median = sorted[sorted.len() / 2];
    let mut deviations: Vec<Duration> = sorted.iter().map(|&d| d.abs_diff(median)).collect();
    deviations.sort();
    let mad = deviations[deviations.len() / 2];
    // The cut applies uniformly: when MAD is 0 (a zero-spread majority —
    // common under timer quantization), any sample off the median is an
    // outlier relative to that majority, so a single wild sample can never
    // poison the mean.
    let cutoff = 3.5 * mad.as_secs_f64();
    let kept: Vec<Duration> = sorted
        .iter()
        .copied()
        .filter(|&d| d.abs_diff(median).as_secs_f64() <= cutoff)
        .collect();
    let outliers_dropped = sorted.len() - kept.len();
    let mean_s = kept.iter().map(Duration::as_secs_f64).sum::<f64>() / kept.len() as f64;
    let var = kept
        .iter()
        .map(|d| (d.as_secs_f64() - mean_s).powi(2))
        .sum::<f64>()
        / kept.len() as f64;
    Some(Summary {
        samples: sorted.len(),
        median,
        mad,
        outliers_dropped,
        mean: Duration::from_secs_f64(mean_s),
        std_dev: Duration::from_secs_f64(var.sqrt()),
    })
}

/// Benchmark identifier: `function/parameter`.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    pub fn new(function: impl std::fmt::Display, parameter: impl std::fmt::Display) -> Self {
        BenchmarkId {
            id: format!("{function}/{parameter}"),
        }
    }

    pub fn from_parameter(parameter: impl std::fmt::Display) -> Self {
        BenchmarkId {
            id: parameter.to_string(),
        }
    }
}

/// Timing driver passed to the measured closure.
pub struct Bencher {
    samples: usize,
    durations: Vec<Duration>,
}

impl Bencher {
    /// Time `f`, one call per sample.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        black_box(f()); // warm-up, untimed
        for _ in 0..self.samples {
            let start = Instant::now();
            black_box(f());
            self.durations.push(start.elapsed());
        }
    }
}

/// Top-level harness state.
pub struct Criterion {
    filter: Option<String>,
    compile_only: bool,
}

impl Default for Criterion {
    fn default() -> Self {
        // Under `cargo bench -- <filter>` the binary receives libtest-ish
        // arguments; honour the positional filter and the no-run modes.
        let mut filter = None;
        let mut compile_only = false;
        for arg in std::env::args().skip(1) {
            match arg.as_str() {
                "--bench" | "--nocapture" | "--quiet" | "-q" => {}
                "--test" | "--list" => compile_only = true,
                a if a.starts_with("--") => {}
                a => filter = Some(a.to_string()),
            }
        }
        Criterion {
            filter,
            compile_only,
        }
    }
}

impl Criterion {
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.into(),
            sample_size: 10,
        }
    }

    fn runs(&self, full_id: &str) -> bool {
        !self.compile_only && self.filter.as_deref().is_none_or(|f| full_id.contains(f))
    }
}

/// A named group of related benchmarks.
pub struct BenchmarkGroup<'c> {
    criterion: &'c mut Criterion,
    name: String,
    sample_size: usize,
}

impl BenchmarkGroup<'_> {
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        assert!(n > 0, "sample_size must be positive");
        self.sample_size = n;
        self
    }

    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = id.into();
        self.run(&id.id.clone(), |b| f(b));
        self
    }

    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        self.run(&id.id.clone(), |b| f(b, input));
        self
    }

    fn run(&mut self, id: &str, f: impl FnOnce(&mut Bencher)) {
        let full_id = format!("{}/{}", self.name, id);
        if !self.criterion.runs(&full_id) {
            return;
        }
        let mut bencher = Bencher {
            samples: self.sample_size,
            durations: Vec::new(),
        };
        f(&mut bencher);
        // The closure may never call `iter` (e.g. an engine skipping an
        // unsupported query): report, don't panic.
        let Some(s) = summarize(&bencher.durations) else {
            println!("{full_id:<48} no samples (Bencher::iter never called)");
            return;
        };
        println!(
            "{full_id:<48} median {:>12} mean {:>12} ± {:>10} ({} samples, {} outliers)",
            fmt_duration(s.median),
            fmt_duration(s.mean),
            fmt_duration(s.std_dev),
            s.samples,
            s.outliers_dropped
        );
    }

    pub fn finish(self) {}
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> Self {
        BenchmarkId { id: s.to_string() }
    }
}

fn fmt_duration(d: Duration) -> String {
    let ns = d.as_nanos();
    if ns < 1_000 {
        format!("{ns} ns")
    } else if ns < 1_000_000 {
        format!("{:.2} µs", ns as f64 / 1e3)
    } else if ns < 1_000_000_000 {
        format!("{:.2} ms", ns as f64 / 1e6)
    } else {
        format!("{:.2} s", ns as f64 / 1e9)
    }
}

/// Define a function running a sequence of benchmark functions.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Define `main` for a `harness = false` bench target.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_bench(criterion: &mut Criterion) {
        let mut group = criterion.benchmark_group("shim");
        group.sample_size(3);
        for k in [1u64, 2] {
            group.bench_with_input(BenchmarkId::new("sum", k), &k, |b, &k| {
                b.iter(|| (0..k * 1000).sum::<u64>())
            });
        }
        group.finish();
    }

    criterion_group!(benches, sample_bench);

    #[test]
    fn group_runs_and_reports() {
        benches(); // must not panic; prints two lines
    }

    #[test]
    fn ids_format() {
        assert_eq!(BenchmarkId::new("f", 3).id, "f/3");
        assert_eq!(BenchmarkId::from_parameter("gcx").id, "gcx");
    }

    #[test]
    fn summarize_computes_robust_statistics() {
        let ms = Duration::from_millis;
        // 10, 11, 12, 13, 14 ms and one wild 500 ms outlier.
        let s = summarize(&[ms(10), ms(11), ms(12), ms(13), ms(14), ms(500)]).unwrap();
        assert_eq!(s.samples, 6);
        assert_eq!(s.median, ms(13)); // sorted[3]
        assert_eq!(s.outliers_dropped, 1);
        assert!(s.mean < ms(15), "outlier not filtered: mean {:?}", s.mean);
        assert!(s.std_dev < ms(3));
        assert!(s.mad <= ms(2));
    }

    #[test]
    fn summarize_handles_degenerate_inputs() {
        assert!(summarize(&[]).is_none());
        let one = summarize(&[Duration::from_micros(7)]).unwrap();
        assert_eq!(one.samples, 1);
        assert_eq!(one.outliers_dropped, 0);
        assert_eq!(one.mean, Duration::from_micros(7));
        // All-equal samples: MAD 0 ⇒ nothing dropped.
        let eq = summarize(&[Duration::from_millis(5); 4]).unwrap();
        assert_eq!(eq.outliers_dropped, 0);
        assert_eq!(eq.std_dev, Duration::ZERO);
    }

    #[test]
    fn zero_mad_majority_still_rejects_a_wild_sample() {
        // Timer quantization: three identical samples plus one descheduled
        // one. MAD is 0, yet the wild sample must not poison the mean.
        let ms = Duration::from_millis;
        let s = summarize(&[ms(5), ms(5), ms(5), ms(500)]).unwrap();
        assert_eq!(s.median, ms(5));
        assert_eq!(s.outliers_dropped, 1);
        assert_eq!(s.mean, ms(5));
    }
}
