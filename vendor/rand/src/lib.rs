//! Offline stand-in for the [`rand`](https://crates.io/crates/rand) crate.
//!
//! The build environment has no registry access, so this vendored crate
//! implements exactly the API surface foxq uses — `rngs::SmallRng`,
//! [`SeedableRng::seed_from_u64`], [`Rng::gen_range`] over integer ranges,
//! and [`Rng::gen_bool`] — with the same method signatures as rand 0.8.
//! The generator is xoshiro256** seeded via SplitMix64: deterministic
//! across platforms and runs, which the foxq test suite and the dataset
//! generators rely on. The value *sequences* differ from the real rand
//! crate; nothing in foxq depends on rand's exact streams.

use std::ops::{Range, RangeInclusive};

/// Core trait: a source of random 64-bit words.
pub trait RngCore {
    fn next_u64(&mut self) -> u64;

    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// Seedable generators (only the `seed_from_u64` entry point is provided).
pub trait SeedableRng: Sized {
    fn seed_from_u64(state: u64) -> Self;
}

/// User-facing sampling methods, as in rand 0.8.
pub trait Rng: RngCore {
    fn gen_range<T, R>(&mut self, range: R) -> T
    where
        R: SampleRange<T>,
        Self: Sized,
    {
        range.sample_single(self)
    }

    /// Bernoulli sample: `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        assert!((0.0..=1.0).contains(&p), "gen_bool: p={p} out of [0,1]");
        // 53 uniform mantissa bits, as rand does.
        ((self.next_u64() >> 11) as f64) * (1.0 / (1u64 << 53) as f64) < p
    }
}

impl<R: RngCore> Rng for R {}

/// Ranges that can be sampled uniformly.
///
/// Mirrors rand's structure: one blanket impl per range shape over a
/// [`SampleUniform`] element type, so integer-literal inference behaves
/// exactly as with the real crate (`slice[rng.gen_range(0..n)]` infers
/// `usize`).
pub trait SampleRange<T> {
    fn sample_single<R: RngCore>(self, rng: &mut R) -> T;
}

/// Integer types uniformly sampleable from a range.
pub trait SampleUniform: Copy + PartialOrd {
    fn to_i128(self) -> i128;
    fn from_i128(v: i128) -> Self;
}

macro_rules! impl_sample_uniform {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn to_i128(self) -> i128 {
                self as i128
            }
            fn from_i128(v: i128) -> Self {
                v as $t
            }
        }
    )*};
}

impl_sample_uniform!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl<T: SampleUniform> SampleRange<T> for Range<T> {
    fn sample_single<R: RngCore>(self, rng: &mut R) -> T {
        let (start, end) = (self.start.to_i128(), self.end.to_i128());
        assert!(start < end, "gen_range: empty range");
        let span = (end - start) as u128;
        T::from_i128(start + ((rng.next_u64() as u128) % span) as i128)
    }
}

impl<T: SampleUniform> SampleRange<T> for RangeInclusive<T> {
    fn sample_single<R: RngCore>(self, rng: &mut R) -> T {
        let (start, end) = (self.start().to_i128(), self.end().to_i128());
        assert!(start <= end, "gen_range: empty range");
        let span = (end - start) as u128 + 1;
        T::from_i128(start + ((rng.next_u64() as u128) % span) as i128)
    }
}

/// Small, fast generators.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// xoshiro256** (Blackman & Vigna), seeded via SplitMix64 — the same
    /// construction rand's `SmallRng` uses on 64-bit targets.
    #[derive(Debug, Clone)]
    pub struct SmallRng {
        s: [u64; 4],
    }

    impl SeedableRng for SmallRng {
        fn seed_from_u64(mut state: u64) -> Self {
            let mut split = || {
                state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
                let mut z = state;
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
                z ^ (z >> 31)
            };
            SmallRng {
                s: [split(), split(), split(), split()],
            }
        }
    }

    impl RngCore for SmallRng {
        fn next_u64(&mut self) -> u64 {
            let result = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::SmallRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = SmallRng::seed_from_u64(42);
        let mut b = SmallRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.gen_range(0..1_000_000u64), b.gen_range(0..1_000_000u64));
        }
        let mut c = SmallRng::seed_from_u64(43);
        let same = (0..100).all(|_| {
            SmallRng::seed_from_u64(42).gen_range(0..u64::MAX) == c.gen_range(0..u64::MAX)
        });
        assert!(!same);
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = SmallRng::seed_from_u64(7);
        for _ in 0..10_000 {
            let v = rng.gen_range(3..17usize);
            assert!((3..17).contains(&v));
            let w = rng.gen_range(-5..=5i32);
            assert!((-5..=5).contains(&w));
        }
    }

    #[test]
    fn gen_bool_is_roughly_fair() {
        let mut rng = SmallRng::seed_from_u64(1);
        let hits = (0..10_000).filter(|_| rng.gen_bool(0.3)).count();
        assert!((2_500..3_500).contains(&hits), "{hits}");
    }
}
