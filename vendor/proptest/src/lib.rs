//! Offline stand-in for the [`proptest`](https://crates.io/crates/proptest)
//! crate, implementing the surface the foxq test suite uses:
//!
//! * the [`Strategy`] trait with `prop_map`, `prop_recursive`, `boxed`;
//! * tuple strategies, [`sample::select`], [`collection::vec`], [`any`];
//! * the [`proptest!`] macro with `#![proptest_config(...)]`,
//!   [`prop_assert!`]/[`prop_assert_eq!`], and [`ProptestConfig`].
//!
//! Differences from real proptest, by design:
//!
//! * **No shrinking.** A failing case reports its deterministic case index;
//!   re-running reproduces it exactly.
//! * **Deterministic by default.** The per-test RNG seed derives from the
//!   test's name, so runs are reproducible in CI. Set `PROPTEST_RNG_SEED`
//!   to explore a different stream and `PROPTEST_CASES` to change the case
//!   count (both are plain integers).

use rand::rngs::SmallRng;
use rand::{RngCore, SeedableRng};
use std::rc::Rc;

// ---------------------------------------------------------------------------
// RNG (the vendored rand crate's SmallRng, under a deterministic seed)
// ---------------------------------------------------------------------------

/// Deterministic RNG driving value generation.
#[derive(Debug, Clone)]
pub struct TestRng(SmallRng);

impl TestRng {
    pub fn from_seed(state: u64) -> Self {
        TestRng(SmallRng::seed_from_u64(state))
    }

    /// Seed for a named test: FNV-1a of the name, XORed with the optional
    /// `PROPTEST_RNG_SEED` environment override.
    pub fn for_test(name: &str) -> Self {
        let mut h: u64 = 0xCBF2_9CE4_8422_2325;
        for b in name.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x1_0000_01B3);
        }
        let user: u64 = std::env::var("PROPTEST_RNG_SEED")
            .ok()
            .and_then(|s| s.parse().ok())
            .unwrap_or(0);
        TestRng::from_seed(h ^ user)
    }

    pub fn next_u64(&mut self) -> u64 {
        self.0.next_u64()
    }

    pub fn below(&mut self, n: usize) -> usize {
        assert!(n > 0);
        (self.next_u64() % n as u64) as usize
    }
}

// ---------------------------------------------------------------------------
// Configuration
// ---------------------------------------------------------------------------

/// Runner configuration (`cases` only).
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    pub cases: u32,
}

impl ProptestConfig {
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }

    /// Case count after the `PROPTEST_CASES` environment override.
    pub fn effective_cases(&self) -> u32 {
        std::env::var("PROPTEST_CASES")
            .ok()
            .and_then(|s| s.parse().ok())
            .unwrap_or(self.cases)
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 256 }
    }
}

// ---------------------------------------------------------------------------
// Strategy
// ---------------------------------------------------------------------------

/// A generator of values of type `Self::Value`.
pub trait Strategy {
    type Value;

    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { inner: self, f }
    }

    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        BoxedStrategy(Rc::new(self))
    }

    /// Recursive strategies. `depth` bounds the recursion; the size hints
    /// (`_desired_size`, `_expected_branch_size`) are accepted for API
    /// compatibility but unused — collection strategies bound growth on
    /// their own.
    fn prop_recursive<S, F>(
        self,
        depth: u32,
        _desired_size: u32,
        _expected_branch_size: u32,
        f: F,
    ) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
        S: Strategy<Value = Self::Value> + 'static,
        F: Fn(BoxedStrategy<Self::Value>) -> S,
    {
        let leaf: BoxedStrategy<Self::Value> = self.boxed();
        let mut cur = leaf.clone();
        for _ in 0..depth {
            let mixed = Union {
                arms: vec![leaf.clone(), cur],
            }
            .boxed();
            cur = f(mixed).boxed();
        }
        cur
    }
}

/// Type-erased, cheaply clonable strategy.
pub struct BoxedStrategy<T>(Rc<dyn Strategy<Value = T>>);

impl<T> Clone for BoxedStrategy<T> {
    fn clone(&self) -> Self {
        BoxedStrategy(Rc::clone(&self.0))
    }
}

impl<T> Strategy for BoxedStrategy<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        self.0.generate(rng)
    }
}

/// [`Strategy::prop_map`] adapter.
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, O, F> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> O,
{
    type Value = O;

    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.generate(rng))
    }
}

/// Uniform choice between strategies of the same value type (backs
/// [`prop_oneof!`] and `prop_recursive`).
pub struct Union<T> {
    pub arms: Vec<BoxedStrategy<T>>,
}

impl<T> Union<T> {
    pub fn new(arms: Vec<BoxedStrategy<T>>) -> Self {
        assert!(!arms.is_empty(), "prop_oneof! needs at least one arm");
        Union { arms }
    }
}

impl<T> Strategy for Union<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        let i = rng.below(self.arms.len());
        self.arms[i].generate(rng)
    }
}

/// A strategy that always yields a clone of one value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

macro_rules! impl_tuple_strategy {
    ($($s:ident/$v:ident),+) => {
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);

            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                #[allow(non_snake_case)]
                let ($($s,)+) = self;
                ($($s.generate(rng),)+)
            }
        }
    };
}

impl_tuple_strategy!(A / a);
impl_tuple_strategy!(A / a, B / b);
impl_tuple_strategy!(A / a, B / b, C / c);
impl_tuple_strategy!(A / a, B / b, C / c, D / d);

// ---------------------------------------------------------------------------
// Arbitrary / any
// ---------------------------------------------------------------------------

/// Types with a canonical whole-domain strategy.
pub trait Arbitrary: Sized {
    fn arbitrary(rng: &mut TestRng) -> Self;
}

macro_rules! impl_arbitrary_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}

impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> Self {
        rng.next_u64() & 1 == 1
    }
}

/// Strategy over a type's whole domain, as `any::<T>()`.
pub struct Any<T>(std::marker::PhantomData<T>);

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

pub fn any<T: Arbitrary>() -> Any<T> {
    Any(std::marker::PhantomData)
}

// ---------------------------------------------------------------------------
// sample / collection
// ---------------------------------------------------------------------------

pub mod sample {
    use super::{Strategy, TestRng};

    /// Uniform choice from a fixed list.
    pub struct Select<T: Clone>(Vec<T>);

    impl<T: Clone> Strategy for Select<T> {
        type Value = T;

        fn generate(&self, rng: &mut TestRng) -> T {
            self.0[rng.below(self.0.len())].clone()
        }
    }

    pub fn select<T: Clone>(options: Vec<T>) -> Select<T> {
        assert!(!options.is_empty(), "sample::select needs options");
        Select(options)
    }
}

pub mod collection {
    use super::{Strategy, TestRng};
    use std::ops::Range;

    /// `Vec` of values with a length drawn from `range`.
    pub struct VecStrategy<S> {
        element: S,
        len: Range<usize>,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let span = self.len.end - self.len.start;
            let n = self.len.start + if span == 0 { 0 } else { rng.below(span) };
            (0..n).map(|_| self.element.generate(rng)).collect()
        }
    }

    pub fn vec<S: Strategy>(element: S, len: Range<usize>) -> VecStrategy<S> {
        VecStrategy { element, len }
    }
}

// ---------------------------------------------------------------------------
// Macros
// ---------------------------------------------------------------------------

/// Uniform choice between strategy expressions (no weights).
#[macro_export]
macro_rules! prop_oneof {
    ($($arm:expr),+ $(,)?) => {
        $crate::Union::new(vec![$($crate::Strategy::boxed($arm)),+])
    };
}

#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => { assert!($cond) };
    ($cond:expr, $($fmt:tt)*) => { assert!($cond, $($fmt)*) };
}

#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr) => { assert_eq!($a, $b) };
    ($a:expr, $b:expr, $($fmt:tt)*) => { assert_eq!($a, $b, $($fmt)*) };
}

#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr) => { assert_ne!($a, $b) };
    ($a:expr, $b:expr, $($fmt:tt)*) => { assert_ne!($a, $b, $($fmt)*) };
}

/// The test-definition macro. Each `#[test] fn name(pat in strategy, ...)`
/// becomes a `#[test]` that runs the body over `cases` generated inputs
/// with a deterministic per-test RNG.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { ($cfg); $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! { ($crate::ProptestConfig::default()); $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    (($cfg:expr); $(
        $(#[$meta:meta])+
        fn $name:ident($($arg:pat in $strat:expr),+ $(,)?) $body:block
    )*) => {$(
        $(#[$meta])+
        fn $name() {
            let __config: $crate::ProptestConfig = $cfg;
            let __cases = __config.effective_cases();
            let mut __rng = $crate::TestRng::for_test(concat!(module_path!(), "::", stringify!($name)));
            for __case in 0..__cases {
                let __run = || {
                    $(let $arg = {
                        let __s = $strat;
                        $crate::Strategy::generate(&__s, &mut __rng)
                    };)+
                    $body
                };
                // The case index pinpoints a failure without shrinking:
                // every run regenerates the identical sequence.
                let __result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(__run));
                if let Err(payload) = __result {
                    eprintln!(
                        "proptest case {__case}/{__cases} of {} failed (deterministic; \
                         re-run reproduces it, PROPTEST_RNG_SEED varies the stream)",
                        stringify!($name),
                    );
                    std::panic::resume_unwind(payload);
                }
            }
        }
    )*};
}

// ---------------------------------------------------------------------------
// Prelude
// ---------------------------------------------------------------------------

pub mod prelude {
    pub use crate as prop;
    pub use crate::{
        any, prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest, Arbitrary,
        BoxedStrategy, Just, ProptestConfig, Strategy,
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    fn small_tree() -> impl Strategy<Value = usize> {
        prop::sample::select(vec![1usize, 2, 3]).prop_recursive(3, 16, 4, |inner| {
            prop::collection::vec(inner, 0..3).prop_map(|v| v.iter().sum::<usize>().max(1))
        })
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]
        #[test]
        fn oneof_and_map_compose(v in prop_oneof![
            prop::sample::select(vec![1u32, 2, 3]).prop_map(|x| x * 2),
            prop::sample::select(vec![10u32, 20]),
        ]) {
            prop_assert!(matches!(v, 2 | 4 | 6 | 10 | 20));
        }

        #[test]
        fn tuples_and_collections(pair in (any::<bool>(), prop::collection::vec(any::<u8>(), 0..5))) {
            prop_assert!(pair.1.len() < 5);
        }

        #[test]
        fn recursion_terminates(n in small_tree()) {
            prop_assert!(n >= 1);
        }
    }

    #[test]
    fn deterministic_across_runs() {
        let mut a = TestRng::for_test("x");
        let mut b = TestRng::for_test("x");
        for _ in 0..64 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    use crate::{Strategy, TestRng};

    #[test]
    fn select_is_uniform_enough() {
        let s = crate::sample::select(vec![0usize, 1]);
        let mut rng = TestRng::from_seed(9);
        let ones: usize = (0..1000).map(|_| s.generate(&mut rng)).sum();
        assert!((350..650).contains(&ones), "{ones}");
    }
}
