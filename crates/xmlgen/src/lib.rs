//! Deterministic XML dataset generators for the paper's evaluation (§5).
//!
//! The paper benchmarks on XMark documents (100 MB – 100 GB) plus three
//! real datasets characterized only by size and depth (Table 1): TreeBank
//! (very deep, depth 37), Medline (flat, depth 8) and the Protein Sequence
//! DB (flat, depth 8). This crate generates shape-matched synthetic
//! equivalents, seeded and fully deterministic, with size targeting.
//!
//! All attribute-like data is generated as element children, matching the
//! paper's adapted data ("All attribute nodes are encoded as element
//! nodes").

use foxq_forest::{elem, text, Forest, ForestStats, Tree};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// Which synthetic dataset to generate.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Dataset {
    /// XMark-like auction site (the element vocabulary used by Fig. 3).
    Xmark,
    /// TreeBank-like: small tags, very deep skewed trees (depth ≈ 37).
    Treebank,
    /// Medline-like: large flat sequence of citation records (depth 8).
    Medline,
    /// Protein-Sequence-like: flat records with long sequence text (depth 8).
    Protein,
}

impl Dataset {
    pub const ALL: [Dataset; 4] = [
        Dataset::Xmark,
        Dataset::Treebank,
        Dataset::Medline,
        Dataset::Protein,
    ];

    pub fn name(self) -> &'static str {
        match self {
            Dataset::Xmark => "XMark",
            Dataset::Treebank => "TreeBank",
            Dataset::Medline => "Medline DB",
            Dataset::Protein => "Protein Sequence DB",
        }
    }
}

/// Generate a dataset of approximately `target_bytes` serialized size.
pub fn generate(kind: Dataset, target_bytes: usize, seed: u64) -> Forest {
    match kind {
        Dataset::Xmark => xmark_bytes(target_bytes, seed),
        Dataset::Treebank => treebank_bytes(target_bytes, seed),
        Dataset::Medline => medline_bytes(target_bytes, seed),
        Dataset::Protein => protein_bytes(target_bytes, seed),
    }
}

// ---------------------------------------------------------------------------
// Shared text machinery
// ---------------------------------------------------------------------------

const WORDS: &[&str] = &[
    "stream", "forest", "auction", "gold", "green", "query", "river", "market", "quiet", "silver",
    "tree", "node", "paper", "winter", "maple", "harbor", "stone", "cloud", "amber", "raven",
    "delta", "spark", "crest", "violet", "meadow", "north", "ember",
];

fn words(rng: &mut SmallRng, n: usize) -> String {
    let mut s = String::new();
    for i in 0..n {
        if i > 0 {
            s.push(' ');
        }
        s.push_str(WORDS[rng.gen_range(0..WORDS.len())]);
    }
    s
}

fn wtext(rng: &mut SmallRng, n: usize) -> Tree {
    text(&words(rng, n))
}

// ---------------------------------------------------------------------------
// XMark-like
// ---------------------------------------------------------------------------

/// Size knobs for the XMark-like generator.
#[derive(Debug, Clone, Copy)]
pub struct XmarkConfig {
    pub persons: usize,
    pub open_auctions: usize,
    pub closed_auctions: usize,
    pub items_per_region: usize,
    pub seed: u64,
}

impl XmarkConfig {
    /// Roughly `n` "units"; ratios follow the XMark schema proportions.
    pub fn with_scale(n: usize, seed: u64) -> Self {
        XmarkConfig {
            persons: n.max(1),
            open_auctions: (n / 2).max(1),
            closed_auctions: (n / 2).max(1),
            items_per_region: (n / 4).max(1),
            seed,
        }
    }
}

/// Generate an XMark-like document (root element `site`).
pub fn xmark(config: &XmarkConfig) -> Forest {
    let mut rng = SmallRng::seed_from_u64(config.seed);
    let regions = [
        "africa",
        "asia",
        "australia",
        "europe",
        "namerica",
        "samerica",
    ];
    let region_nodes: Vec<Tree> = regions
        .iter()
        .map(|r| {
            let items = (0..config.items_per_region)
                .map(|i| item(&mut rng, r, i))
                .collect();
            elem(r, items)
        })
        .collect();
    let people = (0..config.persons).map(|i| person(&mut rng, i)).collect();
    let opens = (0..config.open_auctions)
        .map(|i| open_auction(&mut rng, i, config.persons))
        .collect();
    let closed = (0..config.closed_auctions)
        .map(|i| closed_auction(&mut rng, i, config.persons))
        .collect();
    vec![elem(
        "site",
        vec![
            elem("regions", region_nodes),
            elem("people", people),
            elem("open_auctions", opens),
            elem("closed_auctions", closed),
        ],
    )]
}

/// XMark-like document of approximately `target_bytes`.
pub fn xmark_bytes(target_bytes: usize, seed: u64) -> Forest {
    calibrated(target_bytes, seed, |n, s| {
        xmark(&XmarkConfig::with_scale(n, s))
    })
}

fn person(rng: &mut SmallRng, i: usize) -> Tree {
    let mut kids = vec![
        elem("person_id", vec![text(&format!("person{i}"))]),
        elem("name", vec![wtext(rng, 2)]),
        elem(
            "emailaddress",
            vec![text(&format!("mailto:{}@example.org", i))],
        ),
    ];
    if rng.gen_bool(0.5) {
        kids.push(elem(
            "homepage",
            vec![text(&format!("http://example.org/~p{i}"))],
        ));
    }
    if rng.gen_bool(0.3) {
        kids.push(elem(
            "creditcard",
            vec![text(&format!("{:04} 9999", i % 10_000))],
        ));
    }
    kids.push(elem(
        "profile",
        vec![
            elem(
                "interest",
                vec![elem("interest_category", vec![wtext(rng, 1)])],
            ),
            elem(
                "income",
                vec![text(&format!("{}", 20_000 + (i * 97) % 80_000))],
            ),
        ],
    ));
    elem("person", kids)
}

fn open_auction(rng: &mut SmallRng, i: usize, persons: usize) -> Tree {
    let nbidders = rng.gen_range(1..=4);
    let mut kids = vec![elem(
        "initial",
        vec![text(&format!("{}.{:02}", i % 300, i % 100))],
    )];
    for b in 0..nbidders {
        kids.push(elem(
            "bidder",
            vec![
                elem(
                    "date",
                    vec![text(&format!("0{}/1{}/2001", b % 9 + 1, b % 9))],
                ),
                elem(
                    "personref",
                    vec![elem(
                        "personref_person",
                        vec![text(&format!("person{}", rng.gen_range(0..persons.max(1))))],
                    )],
                ),
                elem("increase", vec![text(&format!("{}.00", (b + 1) * 3))]),
            ],
        ));
    }
    if rng.gen_bool(0.6) {
        kids.push(elem(
            "reserve",
            vec![text(&format!("{}.00", 100 + i % 900))],
        ));
    }
    kids.push(elem("current", vec![text(&format!("{}.00", 10 + i % 90))]));
    kids.push(elem(
        "seller",
        vec![elem(
            "seller_person",
            vec![text(&format!("person{}", i % persons.max(1)))],
        )],
    ));
    kids.push(elem("quantity", vec![text("1")]));
    elem("open_auction", kids)
}

fn closed_auction(rng: &mut SmallRng, i: usize, persons: usize) -> Tree {
    // ~40% carry the deep annotation chain Q16 looks for.
    let description = if rng.gen_bool(0.4) {
        elem(
            "description",
            vec![elem(
                "parlist",
                vec![elem(
                    "listitem",
                    vec![elem(
                        "parlist",
                        vec![elem(
                            "listitem",
                            vec![elem(
                                "text",
                                vec![elem("emph", vec![elem("keyword", vec![wtext(rng, 1)])])],
                            )],
                        )],
                    )],
                )],
            )],
        )
    } else {
        elem(
            "description",
            vec![elem("parlist", vec![elem("listitem", vec![wtext(rng, 4)])])],
        )
    };
    elem(
        "closed_auction",
        vec![
            elem(
                "seller",
                vec![elem(
                    "seller_person",
                    vec![text(&format!("person{}", i % persons.max(1)))],
                )],
            ),
            elem(
                "buyer",
                vec![elem(
                    "buyer_person",
                    vec![text(&format!("person{}", (i + 1) % persons.max(1)))],
                )],
            ),
            elem("price", vec![text(&format!("{}.00", 40 + i % 200))]),
            elem("date", vec![text("10/12/2001")]),
            elem("quantity", vec![text("1")]),
            elem(
                "annotation",
                vec![elem("author", vec![wtext(rng, 2)]), description],
            ),
        ],
    )
}

fn item(rng: &mut SmallRng, region: &str, i: usize) -> Tree {
    elem(
        "item",
        vec![
            elem("item_id", vec![text(&format!("item_{region}_{i}"))]),
            elem("location", vec![wtext(rng, 1)]),
            elem("name", vec![wtext(rng, 2)]),
            elem("payment", vec![text("Creditcard")]),
            elem(
                "description",
                vec![elem(
                    "parlist",
                    vec![
                        elem("listitem", vec![wtext(rng, 6)]),
                        elem("listitem", vec![elem("text", vec![wtext(rng, 4)])]),
                    ],
                )],
            ),
            elem("quantity", vec![text("1")]),
        ],
    )
}

// ---------------------------------------------------------------------------
// TreeBank-like (deep)
// ---------------------------------------------------------------------------

const TB_TAGS: &[&str] = &[
    "S", "NP", "VP", "PP", "DT", "NN", "VB", "IN", "JJ", "SBAR", "ADJP",
];

/// TreeBank-like: sentences as deeply nested phrase-structure trees;
/// target depth ≈ 37 like the paper's Table 1.
pub fn treebank(sentences: usize, seed: u64) -> Forest {
    let mut rng = SmallRng::seed_from_u64(seed);
    let trees = (0..sentences)
        .map(|_| {
            let depth = rng.gen_range(20..=36);
            tb_tree(&mut rng, depth)
        })
        .collect();
    vec![elem("FILE", vec![elem("EMPTY", trees)])]
}

fn tb_tree(rng: &mut SmallRng, depth: usize) -> Tree {
    let tag = TB_TAGS[rng.gen_range(0..TB_TAGS.len())];
    if depth == 0 {
        return elem(tag, vec![wtext(rng, 1)]);
    }
    let mut kids = Vec::new();
    // One deep spine child plus a few shallow ones — skewed like parse trees.
    kids.push(tb_tree(rng, depth - 1));
    for _ in 0..rng.gen_range(0..2) {
        let shallow = depth.saturating_sub(rng.gen_range(3..8)).min(3);
        kids.push(tb_tree(rng, shallow));
    }
    elem(TB_TAGS[rng.gen_range(0..TB_TAGS.len())], kids)
}

/// TreeBank-like document of approximately `target_bytes`.
pub fn treebank_bytes(target_bytes: usize, seed: u64) -> Forest {
    calibrated(target_bytes, seed, treebank)
}

// ---------------------------------------------------------------------------
// Medline-like (flat)
// ---------------------------------------------------------------------------

/// Medline-like: many flat citation records, depth 8.
pub fn medline(records: usize, seed: u64) -> Forest {
    let mut rng = SmallRng::seed_from_u64(seed);
    let recs = (0..records)
        .map(|i| {
            elem(
                "MedlineCitation",
                vec![
                    elem("PMID", vec![text(&format!("{}", 10_000_000 + i))]),
                    elem(
                        "DateCreated",
                        vec![
                            elem("Year", vec![text("2001")]),
                            elem("Month", vec![text(&format!("{:02}", i % 12 + 1))]),
                        ],
                    ),
                    elem(
                        "Article",
                        vec![
                            elem("ArticleTitle", vec![wtext(&mut rng, 8)]),
                            elem(
                                "Abstract",
                                vec![elem("AbstractText", vec![wtext(&mut rng, 40)])],
                            ),
                            elem(
                                "AuthorList",
                                (0..rng.gen_range(1..=4))
                                    .map(|_| {
                                        elem(
                                            "Author",
                                            vec![
                                                elem("LastName", vec![wtext(&mut rng, 1)]),
                                                elem("ForeName", vec![wtext(&mut rng, 1)]),
                                            ],
                                        )
                                    })
                                    .collect(),
                            ),
                        ],
                    ),
                    elem(
                        "MeshHeadingList",
                        (0..rng.gen_range(2..=6))
                            .map(|_| {
                                elem(
                                    "MeshHeading",
                                    vec![elem("DescriptorName", vec![wtext(&mut rng, 2)])],
                                )
                            })
                            .collect(),
                    ),
                ],
            )
        })
        .collect();
    vec![elem("MedlineCitationSet", recs)]
}

/// Medline-like document of approximately `target_bytes`.
pub fn medline_bytes(target_bytes: usize, seed: u64) -> Forest {
    calibrated(target_bytes, seed, medline)
}

// ---------------------------------------------------------------------------
// Protein-Sequence-like (flat, text-heavy)
// ---------------------------------------------------------------------------

/// Protein-Sequence-DB-like: flat records with long sequence text, depth 8.
pub fn protein(entries: usize, seed: u64) -> Forest {
    let mut rng = SmallRng::seed_from_u64(seed);
    let recs = (0..entries)
        .map(|i| {
            let seq: String = (0..rng.gen_range(120..400))
                .map(|_| b"ACDEFGHIKLMNPQRSTVWY"[rng.gen_range(0..20)] as char)
                .collect();
            elem(
                "ProteinEntry",
                vec![
                    elem(
                        "header",
                        vec![
                            elem("uid", vec![text(&format!("PRF{i:07}"))]),
                            elem("accession", vec![text(&format!("A{i:06}"))]),
                        ],
                    ),
                    elem("protein", vec![elem("name", vec![wtext(&mut rng, 3)])]),
                    elem("organism", vec![elem("source", vec![wtext(&mut rng, 2)])]),
                    elem(
                        "reference",
                        vec![elem(
                            "refinfo",
                            vec![
                                elem(
                                    "authors",
                                    (0..rng.gen_range(1..=3))
                                        .map(|_| elem("author", vec![wtext(&mut rng, 1)]))
                                        .collect(),
                                ),
                                elem("year", vec![text("1999")]),
                            ],
                        )],
                    ),
                    elem("sequence", vec![text(&seq)]),
                ],
            )
        })
        .collect();
    vec![elem("ProteinDatabase", recs)]
}

/// Protein-like document of approximately `target_bytes`.
pub fn protein_bytes(target_bytes: usize, seed: u64) -> Forest {
    calibrated(target_bytes, seed, protein)
}

// ---------------------------------------------------------------------------
// Size calibration
// ---------------------------------------------------------------------------

/// Generate with a unit count calibrated so the serialized size approaches
/// `target_bytes` (within ~20% for non-trivial targets).
fn calibrated(target_bytes: usize, seed: u64, gen: impl Fn(usize, u64) -> Forest) -> Forest {
    const PROBE: usize = 8;
    let sample = gen(PROBE, seed);
    let per_unit = (ForestStats::of_forest(&sample).xml_bytes / PROBE).max(1);
    let n = (target_bytes / per_unit).max(1);
    gen(n, seed)
}

#[cfg(test)]
mod tests {
    use super::*;
    use foxq_forest::ForestStats;

    #[test]
    fn generators_are_deterministic() {
        for kind in Dataset::ALL {
            let a = generate(kind, 40_000, 42);
            let b = generate(kind, 40_000, 42);
            assert_eq!(a, b, "{kind:?} not deterministic");
            let c = generate(kind, 40_000, 43);
            assert_ne!(a, c, "{kind:?} ignores the seed");
        }
    }

    #[test]
    fn size_targeting_is_roughly_right() {
        for kind in Dataset::ALL {
            for target in [50_000usize, 400_000] {
                let f = generate(kind, target, 7);
                let got = ForestStats::of_forest(&f).xml_bytes;
                let ratio = got as f64 / target as f64;
                assert!(
                    (0.5..2.0).contains(&ratio),
                    "{kind:?} target {target} got {got}"
                );
            }
        }
    }

    #[test]
    fn depth_profile_matches_table1() {
        // Table 1: TreeBank depth 37 (deep), Medline/Protein depth 8 (flat).
        let tb = ForestStats::of_forest(&treebank(20, 1));
        assert!(tb.depth >= 20, "treebank too shallow: {}", tb.depth);
        let ml = ForestStats::of_forest(&medline(50, 1));
        assert!(ml.depth <= 9, "medline too deep: {}", ml.depth);
        let pr = ForestStats::of_forest(&protein(50, 1));
        assert!(pr.depth <= 9, "protein too deep: {}", pr.depth);
        let xm = ForestStats::of_forest(&xmark(&XmarkConfig::with_scale(20, 1)));
        assert!((6..=13).contains(&xm.depth), "xmark depth {}", xm.depth);
    }

    #[test]
    fn xmark_supports_the_benchmark_queries() {
        use foxq_xquery_check::*;
        let f = xmark(&XmarkConfig::with_scale(40, 3));
        // Q1: person0 must exist and have a name.
        assert!(has(
            &f,
            &["site", "people", "person", "person_id"],
            Some("person0")
        ));
        // Q2: bidder increases exist.
        assert!(has(
            &f,
            &[
                "site",
                "open_auctions",
                "open_auction",
                "bidder",
                "increase"
            ],
            None
        ));
        // Q4: personref path and reserve exist.
        assert!(has(
            &f,
            &[
                "site",
                "open_auctions",
                "open_auction",
                "bidder",
                "personref",
                "personref_person"
            ],
            None
        ));
        // Q13: australia items with name and description.
        assert!(has(
            &f,
            &["site", "regions", "australia", "item", "name"],
            None
        ));
        // Q16: the deep keyword chain appears.
        assert!(has(
            &f,
            &[
                "site",
                "closed_auctions",
                "closed_auction",
                "annotation",
                "description",
                "parlist",
                "listitem",
                "parlist",
                "listitem",
                "text",
                "emph",
                "keyword"
            ],
            None
        ));
        // Q17: some person lacks a homepage.
        let people = find_all(&f, &["site", "people", "person"]);
        assert!(people
            .iter()
            .any(|p| !p.children.iter().any(|c| &*c.label.name == "homepage")));
    }

    /// Minimal path probing used by the test above (kept out of the public
    /// API; the real engines are tested elsewhere).
    mod foxq_xquery_check {
        use foxq_forest::Tree;

        pub fn find_all<'t>(f: &'t [Tree], path: &[&str]) -> Vec<&'t Tree> {
            let mut cur: Vec<&Tree> = f.iter().filter(|t| &*t.label.name == path[0]).collect();
            for name in &path[1..] {
                cur = cur
                    .iter()
                    .flat_map(|t| t.children.iter())
                    .filter(|c| &*c.label.name == *name)
                    .collect();
            }
            cur
        }

        pub fn has(f: &[Tree], path: &[&str], text_eq: Option<&str>) -> bool {
            // Roots must match path[0].
            let roots: Vec<&Tree> = f.iter().filter(|t| &*t.label.name == path[0]).collect();
            let mut cur = roots;
            for name in &path[1..] {
                cur = cur
                    .iter()
                    .flat_map(|t| t.children.iter())
                    .filter(|c| &*c.label.name == *name)
                    .collect();
            }
            match text_eq {
                None => !cur.is_empty(),
                Some(s) => cur.iter().any(|t| t.string_value() == s),
            }
        }
    }
}
