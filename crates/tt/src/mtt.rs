//! Macro tree transducers over binary trees (§4.2, "Expressive Power").
//!
//! An MTT here is, as in the paper, an MFT whose right-hand sides are
//! *trees* with binary output nodes; inputs and outputs are binary XML trees
//! ([`BinTree`], the fcns encoding of forests). Rules follow the same
//! pattern discipline as MFTs — `(q,σ)`-rules, an optional text-default, a
//! `%t` default, an ε-rule — including **stay moves** (`x0`), which are what
//! make the quadratic composition constructions possible.
//!
//! A **TT** (top-down tree transducer) is an MTT whose states have no
//! parameters ([`Mtt::is_tt`]).
//!
//! The concatenation symbol `@` of the `mft = mtt ∘ eval` decomposition
//! (Lemma 1) is an ordinary binary symbol with the reserved label
//! [`cat_label`] (`@` cannot occur in XML names, so there is no collision).

use foxq_core::mft::{OutLabel, StateId, StateInfo, XVar};
use foxq_forest::{Alphabet, BinTree, FxHashMap, Label, SymId};
use std::rc::Rc;

/// The reserved label of the `@` concatenation symbol.
pub fn cat_label() -> Label {
    Label::elem("@")
}

/// One node of an MTT right-hand side (a binary tree term).
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum TNode {
    /// The leaf ε.
    Eps,
    /// A binary output node.
    Out {
        label: OutLabel,
        left: Box<TNode>,
        right: Box<TNode>,
    },
    /// A state call `q(xi, t1, …, tm)`.
    Call {
        state: StateId,
        input: XVar,
        args: Vec<TNode>,
    },
    /// A context parameter `y_{i+1}` (0-based).
    Param(usize),
}

impl TNode {
    pub fn out(label: OutLabel, left: TNode, right: TNode) -> TNode {
        TNode::Out {
            label,
            left: Box::new(left),
            right: Box::new(right),
        }
    }

    pub fn sym(sym: SymId, left: TNode, right: TNode) -> TNode {
        TNode::out(OutLabel::Sym(sym), left, right)
    }

    pub fn call(state: StateId, input: XVar, args: Vec<TNode>) -> TNode {
        TNode::Call { state, input, args }
    }

    /// Number of nodes (calls count their x-argument as in the MFT metric).
    pub fn size(&self) -> usize {
        match self {
            TNode::Eps => 1,
            TNode::Param(_) => 1,
            TNode::Out { left, right, .. } => 1 + left.size() + right.size(),
            TNode::Call { args, .. } => 2 + args.iter().map(TNode::size).sum::<usize>(),
        }
    }
}

/// Rule set of one state.
#[derive(Clone, Debug, PartialEq)]
pub struct TtRules {
    pub by_sym: FxHashMap<SymId, TNode>,
    /// Optional `%ttext` rule: any text node without a symbol rule.
    pub text_default: Option<TNode>,
    /// `%t` rule: any remaining node.
    pub default: TNode,
    /// ε-rule.
    pub eps: TNode,
}

impl Default for TtRules {
    fn default() -> Self {
        TtRules {
            by_sym: FxHashMap::default(),
            text_default: None,
            default: TNode::Eps,
            eps: TNode::Eps,
        }
    }
}

/// Which rule of a state (used to address rules in compositions).
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum RuleKey {
    Sym(SymId),
    TextDefault,
    Default,
    Eps,
}

/// A macro tree transducer over binary trees.
#[derive(Clone, Default)]
pub struct Mtt {
    pub alphabet: Alphabet,
    pub states: Vec<StateInfo>,
    pub rules: Vec<TtRules>,
    pub initial: StateId,
}

impl Mtt {
    pub fn new() -> Self {
        Mtt::default()
    }

    pub fn add_state(&mut self, name: impl Into<String>, params: usize) -> StateId {
        let id = StateId(self.states.len() as u32);
        self.states.push(StateInfo {
            name: name.into(),
            params,
        });
        self.rules.push(TtRules::default());
        id
    }

    pub fn params_of(&self, q: StateId) -> usize {
        self.states[q.idx()].params
    }

    pub fn name_of(&self, q: StateId) -> &str {
        &self.states[q.idx()].name
    }

    pub fn state_count(&self) -> usize {
        self.states.len()
    }

    /// A top-down tree transducer: no parameters anywhere.
    pub fn is_tt(&self) -> bool {
        self.states.iter().all(|s| s.params == 0)
    }

    /// Size |M|: |Σ| plus rule sizes (lhs + rhs), as for MFTs.
    pub fn size(&self) -> usize {
        let mut n = self.alphabet.len();
        for (info, rules) in self.states.iter().zip(&self.rules) {
            let m = info.params;
            let mut count = rules.by_sym.len() + 1;
            if rules.text_default.is_some() {
                count += 1;
            }
            n += count * (4 + m) + (2 + m);
            n += rules.by_sym.values().map(TNode::size).sum::<usize>();
            n += rules.text_default.as_ref().map(TNode::size).unwrap_or(0);
            n += rules.default.size() + rules.eps.size();
        }
        n
    }

    pub fn rule(&self, q: StateId, key: RuleKey) -> &TNode {
        let r = &self.rules[q.idx()];
        match key {
            RuleKey::Sym(s) => &r.by_sym[&s],
            RuleKey::TextDefault => r.text_default.as_ref().unwrap(),
            RuleKey::Default => &r.default,
            RuleKey::Eps => &r.eps,
        }
    }

    /// Which rule of `q` fires on a node labelled `label`?
    pub fn key_for_label(&self, q: StateId, label: &Label) -> RuleKey {
        let rules = &self.rules[q.idx()];
        match self.alphabet.lookup(label) {
            Some(sym) if rules.by_sym.contains_key(&sym) => RuleKey::Sym(sym),
            _ if label.is_text() && rules.text_default.is_some() => RuleKey::TextDefault,
            _ => RuleKey::Default,
        }
    }

    /// Structural validation (mirrors `Mft::validate`).
    pub fn validate(&self) -> Result<(), String> {
        if self.states.is_empty() {
            return Err("no states".into());
        }
        if self.params_of(self.initial) != 0 {
            return Err("initial state must have rank 1".into());
        }
        for (i, rules) in self.rules.iter().enumerate() {
            let q = StateId(i as u32);
            let m = self.params_of(q);
            let check = |t: &TNode, is_eps: bool| self.validate_node(q, m, t, is_eps);
            for t in rules.by_sym.values() {
                check(t, false)?;
            }
            if let Some(t) = &rules.text_default {
                check(t, false)?;
            }
            check(&rules.default, false)?;
            check(&rules.eps, true)?;
        }
        Ok(())
    }

    fn validate_node(&self, q: StateId, m: usize, t: &TNode, is_eps: bool) -> Result<(), String> {
        match t {
            TNode::Eps => Ok(()),
            TNode::Param(i) => {
                if *i >= m {
                    Err(format!(
                        "{}: parameter y{} out of range",
                        self.name_of(q),
                        i + 1
                    ))
                } else {
                    Ok(())
                }
            }
            TNode::Out { label, left, right } => {
                if is_eps && *label == OutLabel::Current {
                    return Err(format!("{}: %t in ε-rule", self.name_of(q)));
                }
                self.validate_node(q, m, left, is_eps)?;
                self.validate_node(q, m, right, is_eps)
            }
            TNode::Call { state, input, args } => {
                if state.idx() >= self.states.len() {
                    return Err(format!("{}: call to undefined state", self.name_of(q)));
                }
                if is_eps && *input != XVar::X0 {
                    return Err(format!("{}: x1/x2 in ε-rule", self.name_of(q)));
                }
                if args.len() != self.params_of(*state) {
                    return Err(format!(
                        "{}: call to {} with {} args, expected {}",
                        self.name_of(q),
                        self.name_of(*state),
                        args.len(),
                        self.params_of(*state)
                    ));
                }
                args.iter()
                    .try_for_each(|a| self.validate_node(q, m, a, is_eps))
            }
        }
    }
}

impl std::fmt::Debug for Mtt {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        for (i, info) in self.states.iter().enumerate() {
            writeln!(f, "state {} (params {})", info.name, info.params)?;
            let _ = i;
        }
        Ok(())
    }
}

// ---------------------------------------------------------------------------
// Interpreter
// ---------------------------------------------------------------------------

/// Runtime error (step budget, as for MFTs).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MttRunError {
    pub msg: String,
}

impl std::fmt::Display for MttRunError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.msg)
    }
}

impl std::error::Error for MttRunError {}

/// Run an MTT on a binary tree.
pub fn run_mtt(m: &Mtt, input: &BinTree) -> Result<BinTree, MttRunError> {
    run_mtt_with_limit(m, input, 200_000_000)
}

/// [`run_mtt`] with an explicit step budget.
pub fn run_mtt_with_limit(
    m: &Mtt,
    input: &BinTree,
    max_steps: u64,
) -> Result<BinTree, MttRunError> {
    let mut ctx = Ctx {
        m,
        steps: 0,
        max_steps,
    };
    ctx.eval(m.initial, input, &[])
}

struct Ctx<'a> {
    m: &'a Mtt,
    steps: u64,
    max_steps: u64,
}

impl<'a> Ctx<'a> {
    fn eval(
        &mut self,
        q: StateId,
        t: &BinTree,
        params: &[Rc<BinTree>],
    ) -> Result<BinTree, MttRunError> {
        self.steps += 1;
        if self.steps > self.max_steps {
            return Err(MttRunError {
                msg: format!("step limit {} exceeded", self.max_steps),
            });
        }
        match t {
            BinTree::Leaf => {
                let rhs = &self.m.rules[q.idx()].eps;
                self.eval_rhs(rhs, t, None, params)
            }
            BinTree::Node(label, l, r) => {
                let key = self.m.key_for_label(q, label);
                let rhs = self.m.rule(q, key);
                self.eval_rhs(rhs, t, Some((label, l, r)), params)
            }
        }
    }

    fn eval_rhs(
        &mut self,
        rhs: &TNode,
        x0: &BinTree,
        node: Option<(&Label, &BinTree, &BinTree)>,
        params: &[Rc<BinTree>],
    ) -> Result<BinTree, MttRunError> {
        match rhs {
            TNode::Eps => Ok(BinTree::Leaf),
            TNode::Param(i) => Ok((*params[*i]).clone()),
            TNode::Out { label, left, right } => {
                let label = match label {
                    OutLabel::Sym(s) => self.m.alphabet.label(*s).clone(),
                    OutLabel::Current => match node {
                        Some((l, _, _)) => l.clone(),
                        None => {
                            return Err(MttRunError {
                                msg: "%t at ε".into(),
                            });
                        }
                    },
                };
                Ok(BinTree::node(
                    label,
                    self.eval_rhs(left, x0, node, params)?,
                    self.eval_rhs(right, x0, node, params)?,
                ))
            }
            TNode::Call { state, input, args } => {
                let target = match input {
                    XVar::X0 => x0,
                    XVar::X1 => node.map(|(_, l, _)| l).unwrap_or(&BinTree::Leaf),
                    XVar::X2 => node.map(|(_, _, r)| r).unwrap_or(&BinTree::Leaf),
                };
                let mut vals = Vec::with_capacity(args.len());
                for a in args {
                    vals.push(Rc::new(self.eval_rhs(a, x0, node, params)?));
                }
                self.eval(*state, target, &vals)
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use foxq_forest::fcns::{fcns, unfcns};
    use foxq_forest::term::{forest_to_term, parse_forest};

    /// The height-doubling TT of §4.2: q0(a(x1)) → b(b(b(b(q0(x1))))) in
    /// binary form: a-rule rewrites to a chain of b's over x1.
    fn chain_tt(k: usize) -> Mtt {
        let mut m = Mtt::new();
        let a = m.alphabet.intern_elem("a");
        let b = m.alphabet.intern_elem("b");
        let q = m.add_state("q0", 0);
        m.initial = q;
        let mut rhs = TNode::call(q, XVar::X1, vec![]);
        for _ in 0..k {
            rhs = TNode::sym(b, rhs, TNode::Eps);
        }
        m.rules[q.idx()].by_sym.insert(a, rhs);
        m.validate().unwrap();
        m
    }

    #[test]
    fn chain_tt_rewrites_a_to_bk() {
        let m = chain_tt(4);
        let input = fcns(&parse_forest("a(a)").unwrap());
        let out = run_mtt(&m, &input).unwrap();
        // a(a) → b(b(b(b( b(b(b(b(ε)))) )))) : 8 b's in a chain.
        assert_eq!(out.size(), 8);
        let f = unfcns(&out);
        assert_eq!(forest_to_term(&f), "b(b(b(b(b(b(b(b())))))))");
    }

    #[test]
    fn spawning_tt_duplicates() {
        // p0(b(x1)) → c(p0(x1), p0(x1)): 2^k leaves on a b-chain of length k.
        let mut m = Mtt::new();
        let b = m.alphabet.intern_elem("b");
        let c = m.alphabet.intern_elem("c");
        let p = m.add_state("p0", 0);
        m.initial = p;
        m.rules[p.idx()].by_sym.insert(
            b,
            TNode::sym(
                c,
                TNode::call(p, XVar::X1, vec![]),
                TNode::call(p, XVar::X1, vec![]),
            ),
        );
        m.validate().unwrap();
        let input = fcns(&parse_forest("b(b(b()))").unwrap());
        let out = run_mtt(&m, &input).unwrap();
        assert_eq!(out.size(), 1 + 2 + 4); // complete binary tree of height 3
    }

    #[test]
    fn params_accumulate() {
        // Reverse a right spine using an accumulator.
        let mut m = Mtt::new();
        let q0 = m.add_state("q0", 0);
        let rev = m.add_state("rev", 1);
        m.initial = q0;
        m.rules[q0.idx()].default = TNode::call(rev, XVar::X0, vec![TNode::Eps]);
        m.rules[q0.idx()].eps = TNode::call(rev, XVar::X0, vec![TNode::Eps]);
        m.rules[rev.idx()].default = TNode::call(
            rev,
            XVar::X2,
            vec![TNode::out(OutLabel::Current, TNode::Eps, TNode::Param(0))],
        );
        m.rules[rev.idx()].eps = TNode::Param(0);
        m.validate().unwrap();
        let input = fcns(&parse_forest("a b c").unwrap());
        let out = run_mtt(&m, &input).unwrap();
        assert_eq!(forest_to_term(&unfcns(&out)), "c() b() a()");
    }

    #[test]
    fn stay_loop_hits_limit() {
        let mut m = Mtt::new();
        let q = m.add_state("q", 0);
        m.initial = q;
        m.rules[q.idx()].eps = TNode::call(q, XVar::X0, vec![]);
        assert!(run_mtt_with_limit(&m, &BinTree::Leaf, 100).is_err());
    }

    #[test]
    fn validation_catches_errors() {
        let mut m = Mtt::new();
        let q = m.add_state("q", 0);
        m.initial = q;
        m.rules[q.idx()].default = TNode::Param(0);
        assert!(m.validate().is_err());

        let mut m2 = Mtt::new();
        let q2 = m2.add_state("q", 0);
        m2.initial = q2;
        m2.rules[q2.idx()].eps = TNode::call(q2, XVar::X1, vec![]);
        assert!(m2.validate().is_err());
    }

    #[test]
    fn text_default_dispatch() {
        let mut m = Mtt::new();
        let t = m.alphabet.intern_elem("t");
        let e = m.alphabet.intern_elem("e");
        let q = m.add_state("q", 0);
        m.initial = q;
        m.rules[q.idx()].text_default =
            Some(TNode::sym(t, TNode::Eps, TNode::call(q, XVar::X2, vec![])));
        m.rules[q.idx()].default = TNode::sym(e, TNode::Eps, TNode::call(q, XVar::X2, vec![]));
        m.validate().unwrap();
        let input = fcns(&parse_forest(r#"x() "hello" y()"#).unwrap());
        let out = run_mtt(&m, &input).unwrap();
        assert_eq!(forest_to_term(&unfcns(&out)), "e() t() e()");
    }
}
