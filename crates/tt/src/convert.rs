//! Lemma 1: `mft = mtt ∘ eval` — conversions between forest transducers and
//! binary-tree transducers.
//!
//! * [`mft_to_mtt`] replaces every concatenation in the right-hand sides by
//!   the binary symbol `@` (e.g. `q(x1) y1 b(ε)` becomes
//!   `@(q(x1), @(y1, b(ε,ε)))`), yielding an MTT whose outputs denote
//!   fcns-encoded forests under [`eval_btree`];
//! * [`eval_btree`] / [`eval_mtt`] interpret `@` as forest concatenation —
//!   the *evaluation mapping* `eval`, which is itself realizable as a
//!   one-parameter MTT (Lemma 1(3));
//! * [`mtt_to_mft`] is the converse direction: `@`-symbols are removed
//!   syntactically, turning an MTT-plus-eval back into an MFT.
//!
//! Together these give, for every MFT `M` and forest `f`:
//!
//! ```text
//! fcns([[M]](f)) = eval([[mft_to_mtt(M)]](fcns(f)))
//! [[mtt_to_mft(N)]](f) = unfcns(eval([[N]](fcns(f))))
//! ```

use crate::mtt::{cat_label, Mtt, TNode};
use foxq_core::mft::{Mft, OutLabel, Rhs, RhsNode, XVar};
use foxq_forest::{BinTree, SymId};

/// Encode an MFT as an MTT over `Σ ∪ {@}` (Lemma 1, ⊆ direction).
///
/// States, ranks and rule structure are preserved; only right-hand sides are
/// re-bracketed. Runs in linear time.
pub fn mft_to_mtt(m: &Mft) -> Mtt {
    let mut out = Mtt::new();
    out.alphabet = m.alphabet.clone();
    let cat = out.alphabet.intern(cat_label());
    for info in &m.states {
        out.add_state(info.name.clone(), info.params);
    }
    out.initial = m.initial;
    for (q, rules) in m.rules.iter().enumerate() {
        let tr = &mut out.rules[q];
        for (sym, rhs) in &rules.by_sym {
            tr.by_sym.insert(*sym, enc_forest(rhs, cat));
        }
        tr.text_default = rules.text_default.as_ref().map(|r| enc_forest(r, cat));
        tr.default = enc_forest(&rules.default, cat);
        tr.eps = enc_forest(&rules.eps, cat);
    }
    debug_assert!(out.validate().is_ok(), "{:?}", out.validate());
    out
}

fn enc_forest(rhs: &Rhs, cat: SymId) -> TNode {
    match rhs.split_first() {
        None => TNode::Eps,
        Some((n, [])) => enc_node(n, cat),
        Some((n, rest)) => TNode::sym(cat, enc_node(n, cat), enc_forest(&rest.to_vec(), cat)),
    }
}

fn enc_node(n: &RhsNode, cat: SymId) -> TNode {
    match n {
        RhsNode::Param(i) => TNode::Param(*i),
        RhsNode::Out { label, children } => {
            TNode::out(*label, enc_forest(children, cat), TNode::Eps)
        }
        RhsNode::Call { state, input, args } => TNode::Call {
            state: *state,
            input: *input,
            args: args.iter().map(|a| enc_forest(a, cat)).collect(),
        },
    }
}

/// Decode an MTT back into an MFT by interpreting `@` as concatenation
/// (Lemma 1, ⊇ direction). Linear time.
pub fn mtt_to_mft(m: &Mtt) -> Mft {
    let mut out = Mft::new();
    out.alphabet = m.alphabet.clone();
    let cat = out.alphabet.lookup(&cat_label());
    for info in &m.states {
        out.add_state(info.name.clone(), info.params);
    }
    out.initial = m.initial;
    for (q, rules) in m.rules.iter().enumerate() {
        let fr = &mut out.rules[q];
        for (sym, rhs) in &rules.by_sym {
            fr.by_sym.insert(*sym, dec(rhs, cat));
        }
        fr.text_default = rules.text_default.as_ref().map(|r| dec(r, cat));
        fr.default = dec(&rules.default, cat);
        fr.eps = dec(&rules.eps, cat);
    }
    debug_assert!(out.validate().is_ok(), "{:?}", out.validate());
    out
}

fn dec(t: &TNode, cat: Option<SymId>) -> Rhs {
    let mut out = Vec::new();
    dec_into(t, cat, &mut out);
    out
}

fn dec_into(t: &TNode, cat: Option<SymId>, out: &mut Rhs) {
    match t {
        TNode::Eps => {}
        TNode::Param(i) => out.push(RhsNode::Param(*i)),
        TNode::Out {
            label: OutLabel::Sym(s),
            left,
            right,
        } if Some(*s) == cat => {
            dec_into(left, cat, out);
            dec_into(right, cat, out);
        }
        TNode::Out { label, left, right } => {
            out.push(RhsNode::Out {
                label: *label,
                children: dec(left, cat),
            });
            dec_into(right, cat, out);
        }
        TNode::Call { state, input, args } => {
            out.push(RhsNode::Call {
                state: *state,
                input: *input,
                args: args.iter().map(|a| dec(a, cat)).collect(),
            });
        }
    }
}

/// Turn a forest transducer (an MFT without parameters) into an *equivalent,
/// `@`-free* MTT — the paper's "any FT can be turned in linear time into an
/// equivalent MTT" (§4.2, before Theorem 3).
///
/// Each state receives one accumulating parameter holding the fcns-encoded
/// continuation: `[[q̂]](t, y)` is `fcns([[q]](t))` with `y` grafted onto the
/// rightmost spine. Concatenation in right-hand sides becomes continuation
/// passing, so outputs are proper binary trees with no `@` symbols — which
/// is what lets an FT act as the *first* transducer of Theorem 3.
pub fn ft_to_mtt_acc(m: &Mft) -> Mtt {
    assert!(m.is_ft(), "ft_to_mtt_acc requires a parameterless MFT");
    let mut out = Mtt::new();
    out.alphabet = m.alphabet.clone();
    for info in &m.states {
        out.add_state(format!("{}^", info.name), 1);
    }
    for (q, rules) in m.rules.iter().enumerate() {
        let tr = &mut out.rules[q];
        for (sym, rhs) in &rules.by_sym {
            tr.by_sym.insert(*sym, acc_forest(rhs, TNode::Param(0)));
        }
        tr.text_default = rules
            .text_default
            .as_ref()
            .map(|r| acc_forest(r, TNode::Param(0)));
        tr.default = acc_forest(&rules.default, TNode::Param(0));
        tr.eps = acc_forest(&rules.eps, TNode::Param(0));
    }
    // Fresh rank-1 initial state: q̂0 with an empty continuation.
    let init = out.add_state("init^", 0);
    let call = TNode::call(StateId(m.initial.0), XVar::X0, vec![TNode::Eps]);
    out.rules[init.idx()].default = call.clone();
    out.rules[init.idx()].eps = call;
    out.initial = init;
    debug_assert!(out.validate().is_ok(), "{:?}", out.validate());
    out
}

use foxq_core::mft::StateId;

fn acc_forest(rhs: &[RhsNode], k: TNode) -> TNode {
    match rhs.split_first() {
        None => k,
        Some((n, rest)) => {
            let cont = acc_forest(rest, k);
            match n {
                RhsNode::Param(_) => unreachable!("FTs have no parameters"),
                RhsNode::Out { label, children } => {
                    TNode::out(*label, acc_forest(children, TNode::Eps), cont)
                }
                RhsNode::Call { state, input, .. } => TNode::call(*state, *input, vec![cont]),
            }
        }
    }
}

/// The paper's headline FT composition: two forest transducers compose into
/// one **MFT** (via `ft_to_mtt_acc` + Theorem 3).
pub fn compose_ft_ft(m1: &Mft, m2: &Mft) -> Mft {
    assert!(m1.is_ft() && m2.is_ft());
    let m1_acc = ft_to_mtt_acc(m1);
    crate::compose::compose_mtt_then_ft(&m1_acc, m2)
}

/// Evaluate `@`-symbols in a binary tree: `eval(@(t1,t2)) = eval(t1)eval(t2)`
/// (grafting onto the rightmost spine), identity on other labels.
pub fn eval_btree(b: &BinTree) -> BinTree {
    let cat = cat_label();
    ev(b, BinTree::Leaf, &cat)
}

fn ev(b: &BinTree, k: BinTree, cat: &foxq_forest::Label) -> BinTree {
    match b {
        BinTree::Leaf => k,
        BinTree::Node(l, x, y) if l == cat => {
            let rest = ev(y, k, cat);
            ev(x, rest, cat)
        }
        BinTree::Node(l, x, y) => {
            BinTree::node(l.clone(), ev(x, BinTree::Leaf, cat), ev(y, k, cat))
        }
    }
}

/// The evaluation mapping as a one-parameter MTT (Lemma 1(3): eval ⊊ mtt).
///
/// ```text
/// e0(%)            → e(x0, ε)
/// e(@(x1,x2), y)   → e(x1, e(x2, y))
/// e(%t(x1,x2), y)  → %t(e(x1,ε), e(x2,y))
/// e(ε, y)          → y
/// ```
pub fn eval_mtt(alphabet: &foxq_forest::Alphabet) -> Mtt {
    let mut m = Mtt::new();
    m.alphabet = alphabet.clone();
    let cat = m.alphabet.intern(cat_label());
    let e0 = m.add_state("e0", 0);
    let e = m.add_state("e", 1);
    m.initial = e0;
    let stay = TNode::call(e, XVar::X0, vec![TNode::Eps]);
    m.rules[e0.idx()].default = stay.clone();
    m.rules[e0.idx()].eps = stay;
    m.rules[e.idx()].by_sym.insert(
        cat,
        TNode::call(
            e,
            XVar::X1,
            vec![TNode::call(e, XVar::X2, vec![TNode::Param(0)])],
        ),
    );
    m.rules[e.idx()].default = TNode::out(
        OutLabel::Current,
        TNode::call(e, XVar::X1, vec![TNode::Eps]),
        TNode::call(e, XVar::X2, vec![TNode::Param(0)]),
    );
    m.rules[e.idx()].eps = TNode::Param(0);
    debug_assert!(m.validate().is_ok());
    m
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::mtt::run_mtt;
    use foxq_core::interp::run_mft;
    use foxq_core::text::parse_mft;
    use foxq_forest::fcns::{fcns, unfcns};
    use foxq_forest::term::{forest_to_term, parse_forest};

    fn check_lemma1(mft_src: &str, docs: &[&str]) {
        let m = parse_mft(mft_src).unwrap();
        let n = mft_to_mtt(&m);
        let back = mtt_to_mft(&n);
        for doc in docs {
            let f = parse_forest(doc).unwrap();
            let expected = fcns(&run_mft(&m, &f).unwrap());
            // fcns([[M]](f)) = eval([[mft_to_mtt(M)]](fcns f))
            let via_mtt = eval_btree(&run_mtt(&n, &fcns(&f)).unwrap());
            assert_eq!(via_mtt, expected, "Lemma 1 ⊆ on {doc}");
            // and the decoded transducer agrees with the original.
            let back_out = fcns(&run_mft(&back, &f).unwrap());
            assert_eq!(back_out, expected, "Lemma 1 ⊇ on {doc}");
        }
    }

    #[test]
    fn lemma1_on_identity() {
        check_lemma1(
            "qcopy(%t(x1) x2) -> %t(qcopy(x1)) qcopy(x2); qcopy(eps) -> eps;",
            &["", "a", r#"a(b("t") c) d(e)"#],
        );
    }

    #[test]
    fn lemma1_on_mperson() {
        check_lemma1(
            foxq_core::text::MPERSON,
            &[
                r#"person(p_id(a() "person0") name("Jim") c() name("Li"))"#,
                r#"person(p_id("x") name("Jim"))"#,
            ],
        );
    }

    #[test]
    fn lemma1_with_parameters_and_concatenation() {
        // Accumulating reversal — heavy concatenation in parameter position.
        check_lemma1(
            "q0(%) -> rev(x0, eps);
             rev(%t(x1) x2, y1) -> rev(x2, %t(rev(x1, eps)) y1);
             rev(eps, y1) -> y1;",
            &["", "a b c", "a(b c(d)) e"],
        );
    }

    #[test]
    fn eval_btree_concatenates() {
        let f1 = parse_forest("a(b)").unwrap();
        let f2 = parse_forest("c d").unwrap();
        let cat = cat_label();
        let b = BinTree::node(cat, fcns(&f1), fcns(&f2));
        let joined = unfcns(&eval_btree(&b));
        assert_eq!(forest_to_term(&joined), "a(b()) c() d()");
    }

    #[test]
    fn eval_btree_handles_nested_cats() {
        let cat = cat_label();
        let a = fcns(&parse_forest("a").unwrap());
        let b = fcns(&parse_forest("b").unwrap());
        let c = fcns(&parse_forest("c").unwrap());
        // @(@(a,b),c) and @(a,@(b,c)) both flatten to a b c.
        let left = BinTree::node(
            cat.clone(),
            BinTree::node(cat.clone(), a.clone(), b.clone()),
            c.clone(),
        );
        let right = BinTree::node(cat.clone(), a, BinTree::node(cat, b, c));
        assert_eq!(eval_btree(&left), eval_btree(&right));
        assert_eq!(forest_to_term(&unfcns(&eval_btree(&left))), "a() b() c()");
    }

    #[test]
    fn eval_mtt_agrees_with_eval_btree() {
        let mut alpha = foxq_forest::Alphabet::new();
        for n in ["a", "b", "c"] {
            alpha.intern_elem(n);
        }
        let e = eval_mtt(&alpha);
        let cat = cat_label();
        let cases = [
            BinTree::Leaf,
            fcns(&parse_forest("a(b) c").unwrap()),
            BinTree::node(
                cat.clone(),
                fcns(&parse_forest("a(b)").unwrap()),
                fcns(&parse_forest("c").unwrap()),
            ),
            BinTree::node(
                cat.clone(),
                BinTree::node(
                    cat.clone(),
                    fcns(&parse_forest("a").unwrap()),
                    BinTree::Leaf,
                ),
                BinTree::node(
                    cat,
                    fcns(&parse_forest("b(c)").unwrap()),
                    fcns(&parse_forest("a c").unwrap()),
                ),
            ),
        ];
        for b in &cases {
            assert_eq!(run_mtt(&e, b).unwrap(), eval_btree(b), "on {b:?}");
        }
    }

    #[test]
    fn conversion_preserves_state_structure() {
        let m = parse_mft(foxq_core::text::MPERSON).unwrap();
        let n = mft_to_mtt(&m);
        assert_eq!(n.state_count(), m.state_count());
        assert!(!n.is_tt()); // q3 has parameters
        let ft = parse_mft("q(%t(x1) x2) -> %t(q(x1)) q(x2); q(eps) -> eps;").unwrap();
        assert!(mft_to_mtt(&ft).is_tt());
    }
}
