//! Composition constructions of §4.2 (Lemmas 2–3, Theorems 3–5).
//!
//! The key idea the paper proves: **stay moves make composition quadratic**.
//! The classical product constructions (Rounds, Baker) translate the whole
//! right-hand side of the first transducer through the second — a rhs of
//! height h can blow up to 2^h. With stay moves we instead create one state
//! `⟨r,u,p⟩` per (rule of M1, node of its rhs, state of M2) that translates
//! *one node at a time*, chaining through `x0`-calls; every composed rhs is
//! node-local, so the result has size (and construction time)
//! `O(|Σ| · |M1| · |M2|)` — Lemma 2. The same scheme lifts to one macro side
//! (Lemma 3): parameters of a macro M1 are carried in n copies, one per
//! state of M2; parameters of a macro M2 pass through unchanged.
//!
//! Before composing, the first transducer is *specialized* (the proof's
//! first step): for every symbol `a` on which M2 has an explicit rule, every
//! M1-state receives an explicit `(q,a)`-rule (a copy of its default rule
//! with `%t` replaced by `a`), so rule choice in M2 is static.
//!
//! Provided constructions:
//!
//! | function | paper | first | second | result |
//! |---|---|---|---|---|
//! | [`compose_tt_tt`] | Lemma 2 | TT | TT | TT |
//! | [`compose_tt_tt_naive`] | Rounds/Baker baseline | TT | TT | TT (exponential) |
//! | [`compose_mtt_then_tt`] | Lemma 3 (M) | MTT | TT | MTT |
//! | [`compose_tt_then_mtt`] | Lemma 3 (M′) | TT | MTT | MTT |
//! | [`compose_mtt_then_ft`] | Theorem 3 | MTT | FT | MFT |
//! | [`compose_tt_then_ft`] | Theorem 4 | TT | FT | FT |
//! | [`compose_ft_then_tt`] | Theorem 5 | FT | TT | MTT |

use crate::convert::{eval_mtt, mft_to_mtt, mtt_to_mft};
use crate::mtt::{Mtt, RuleKey, TNode};
use foxq_core::mft::{Mft, OutLabel, StateId, XVar};
use foxq_forest::{FxHashMap, Label, NodeKind};

/// How parameters flow through the composition.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
enum ParamMode {
    /// Both transducers are TTs (Lemma 2).
    None,
    /// M1 is a macro transducer, M2 a TT: each M1-parameter is carried in
    /// |Q2| copies, one per M2 state (Lemma 3, construction of `M`).
    FirstMacro,
    /// M1 is a TT, M2 a macro transducer: M2's parameters pass through
    /// (Lemma 3, construction of `M'`).
    SecondMacro,
}

/// Composed-state key: either a pair ⟨q,p⟩ or a rule-node state ⟨r,u,p⟩.
#[derive(Clone, PartialEq, Eq, Hash)]
enum CKey {
    Pair(StateId, StateId),
    Node(StateId, RuleKey, usize, StateId),
}

struct Composer<'a> {
    m1: &'a Mtt,
    m2: &'a Mtt,
    mode: ParamMode,
    out: Mtt,
    map: FxHashMap<CKey, StateId>,
    work: Vec<CKey>,
}

/// Lemma 2: compose two TTs into one TT in time `O(|Σ||M1||M2|)`.
///
/// Panics if either transducer has parameters.
pub fn compose_tt_tt(m1: &Mtt, m2: &Mtt) -> Mtt {
    assert!(m1.is_tt() && m2.is_tt(), "compose_tt_tt requires TTs");
    compose(m1, m2, ParamMode::None)
}

/// Lemma 3, construction `M`: MTT followed by TT.
pub fn compose_mtt_then_tt(m1: &Mtt, m2: &Mtt) -> Mtt {
    assert!(m2.is_tt(), "second transducer must be a TT");
    compose(m1, m2, ParamMode::FirstMacro)
}

/// Lemma 3, construction `M'`: TT followed by MTT.
pub fn compose_tt_then_mtt(m1: &Mtt, m2: &Mtt) -> Mtt {
    assert!(m1.is_tt(), "first transducer must be a TT");
    compose(m1, m2, ParamMode::SecondMacro)
}

/// Theorem 3: MTT followed by a forest transducer (an MFT without
/// parameters) composes into one MFT.
pub fn compose_mtt_then_ft(m1: &Mtt, m2: &Mft) -> Mft {
    assert!(m2.is_ft(), "second transducer must be an FT");
    let t2 = mft_to_mtt(m2);
    let composed = compose_mtt_then_tt(m1, &t2);
    mtt_to_mft(&composed)
}

/// Theorem 4: TT followed by FT composes into one FT.
pub fn compose_tt_then_ft(m1: &Mtt, m2: &Mft) -> Mft {
    assert!(m1.is_tt() && m2.is_ft());
    let t2 = mft_to_mtt(m2);
    let composed = compose_tt_tt(m1, &t2);
    let out = mtt_to_mft(&composed);
    debug_assert!(out.is_ft());
    out
}

/// Theorem 5: FT followed by TT composes into one MTT.
pub fn compose_ft_then_tt(m1: &Mft, m2: &Mtt) -> Mtt {
    assert!(m1.is_ft() && m2.is_tt());
    let t1 = mft_to_mtt(m1);
    // t1's outputs contain @; evaluate them with the eval MTT, then feed the
    // proper fcns trees to m2.
    let mut alpha = t1.alphabet.clone();
    for (_, label) in m2.alphabet.iter() {
        alpha.intern(label.clone());
    }
    let e = eval_mtt(&alpha);
    let m_prime = compose_tt_then_mtt(&t1, &e); // fcns ∘ [[m1]]
    compose_mtt_then_tt(&m_prime, m2)
}

// ---------------------------------------------------------------------------
// The stay-move product construction
// ---------------------------------------------------------------------------

fn compose(m1: &Mtt, m2: &Mtt, mode: ParamMode) -> Mtt {
    let m1s = specialize_first(m1, m2);
    let mut c = Composer {
        m1: &m1s,
        m2,
        mode,
        out: Mtt::new(),
        map: FxHashMap::default(),
        work: Vec::new(),
    };
    c.out.alphabet = m1s.alphabet.clone();
    for (_, label) in m2.alphabet.iter() {
        c.out.alphabet.intern(label.clone());
    }
    let init = c.state(CKey::Pair(m1s.initial, m2.initial));
    c.out.initial = init;
    while let Some(key) = c.work.pop() {
        c.build(key);
    }
    debug_assert!(c.out.validate().is_ok(), "{:?}", c.out.validate());
    c.out
}

impl<'a> Composer<'a> {
    fn n2(&self) -> usize {
        self.m2.state_count()
    }

    /// Rank of a composed state.
    fn rank(&self, key: &CKey) -> usize {
        let (q, p) = match key {
            CKey::Pair(q, p) => (*q, *p),
            CKey::Node(q, _, _, p) => (*q, *p),
        };
        match self.mode {
            ParamMode::None => 0,
            ParamMode::FirstMacro => self.m1.params_of(q) * self.n2(),
            ParamMode::SecondMacro => self.m2.params_of(p),
        }
    }

    fn state(&mut self, key: CKey) -> StateId {
        if let Some(&id) = self.map.get(&key) {
            return id;
        }
        let name = match &key {
            CKey::Pair(q, p) => format!("<{},{}>", self.m1.name_of(*q), self.m2.name_of(*p)),
            CKey::Node(q, k, u, p) => format!(
                "<{}.{:?}.{},{}>",
                self.m1.name_of(*q),
                k,
                u,
                self.m2.name_of(*p)
            ),
        };
        let rank = self.rank(&key);
        let id = self.out.add_state(name, rank);
        self.map.insert(key.clone(), id);
        self.work.push(key);
        id
    }

    /// Pass-through arguments of the composed rank.
    fn passthrough(&self, key: &CKey) -> Vec<TNode> {
        (0..self.rank(key)).map(TNode::Param).collect()
    }

    fn build(&mut self, key: CKey) {
        match key {
            CKey::Pair(q, p) => self.build_pair(q, p),
            CKey::Node(q, rk, u, p) => self.build_node(q, rk, u, p),
        }
    }

    /// ⟨q,p⟩: on every input case, hand off to the node state at the root of
    /// the applicable rule of M1, via a stay move.
    fn build_pair(&mut self, q: StateId, p: StateId) {
        let id = self.map[&CKey::Pair(q, p)];
        let keys: Vec<RuleKey> = {
            let r = &self.m1.rules[q.idx()];
            r.by_sym
                .keys()
                .map(|s| RuleKey::Sym(*s))
                .chain(r.text_default.is_some().then_some(RuleKey::TextDefault))
                .chain([RuleKey::Default, RuleKey::Eps])
                .collect()
        };
        for rk in keys {
            let pass = self.passthrough(&CKey::Pair(q, p));
            let target = self.state(CKey::Node(q, rk, 0, p));
            let rhs = TNode::call(target, XVar::X0, pass);
            match rk {
                RuleKey::Sym(s) => {
                    self.out.rules[id.idx()].by_sym.insert(s, rhs);
                }
                RuleKey::TextDefault => self.out.rules[id.idx()].text_default = Some(rhs),
                RuleKey::Default => self.out.rules[id.idx()].default = rhs,
                RuleKey::Eps => self.out.rules[id.idx()].eps = rhs,
            }
        }
    }

    /// ⟨r,u,p⟩: translate the single rhs node at preorder index `u` of
    /// M1-rule `r` through M2-state `p`.
    fn build_node(&mut self, q: StateId, rk: RuleKey, u: usize, p: StateId) {
        let id = self.map[&CKey::Node(q, rk, u, p)];
        let node = node_at(self.m1.rule(q, rk), u).clone();
        let is_eps_rule = rk == RuleKey::Eps;
        let rhs = match &node {
            TNode::Call {
                state: q1,
                input,
                args,
            } => {
                // u = q'(xi,…): switch to the pair state on the same input.
                let pair = self.state(CKey::Pair(*q1, p));
                let new_args = match self.mode {
                    ParamMode::None => Vec::new(),
                    ParamMode::SecondMacro => self.passthrough(&CKey::Node(q, rk, u, p)),
                    ParamMode::FirstMacro => {
                        // Each M1-argument a_l contributes n2 translated
                        // copies: ⟨r, pos(a_l), p_i⟩(x0, ys).
                        let mut v = Vec::with_capacity(args.len() * self.n2());
                        let mut arg_pos = u + 1;
                        for a in args {
                            for i in 0..self.n2() as u32 {
                                let st = self.state(CKey::Node(q, rk, arg_pos, StateId(i)));
                                let pass = self.passthrough(&CKey::Node(q, rk, u, p));
                                v.push(TNode::call(st, XVar::X0, pass));
                            }
                            arg_pos += count_nodes(a);
                        }
                        v
                    }
                };
                TNode::call(pair, *input, new_args)
            }
            TNode::Param(j) => {
                // Only possible when M1 is the macro side: output the
                // p-translation of parameter j.
                debug_assert_eq!(self.mode, ParamMode::FirstMacro);
                TNode::Param(j * self.n2() + p.idx())
            }
            TNode::Out { label, left, .. } => {
                // Translate via the M2 rule selected by the (static) label.
                let known = self.static_label(q, rk, label);
                let rule2 = match &known {
                    Some(l) => self.m2.key_for_label(p, l),
                    // %t in a default rule: after specialization, M2 must use
                    // its default (or text-default, for %t in a text-default
                    // rule of M1).
                    None if rk == RuleKey::TextDefault
                        && self.m2.rules[p.idx()].text_default.is_some() =>
                    {
                        RuleKey::TextDefault
                    }
                    None => RuleKey::Default,
                };
                let t2 = self.m2.rule(p, rule2).clone();
                let left_size = count_nodes(left);
                self.translate_m2(&t2, q, rk, u, u + 1, u + 1 + left_size, &known)
            }
            TNode::Eps => {
                // u = ε leaf: M2 processes ε with its ε-rule.
                let t2 = self.m2.rules[p.idx()].eps.clone();
                self.translate_m2(&t2, q, rk, u, u, u, &None)
            }
        };
        // Install: these states fire at the node where rule r applied (via
        // stay chains), so at a real node for symbol/default rules and at ε
        // for ε-rules.
        let rules = &mut self.out.rules[id.idx()];
        if is_eps_rule {
            rules.eps = rhs.clone();
            rules.default = rhs;
        } else {
            // The ε-rule of such a state never fires; keep it total with ε.
            rules.default = rhs;
            rules.eps = TNode::Eps;
        }
    }

    /// The statically-known label of an output node, if any: a symbol label
    /// directly, or the rule's own symbol for `%t` inside a `(q,σ)`-rule.
    fn static_label(&self, _q: StateId, rk: RuleKey, label: &OutLabel) -> Option<Label> {
        match label {
            OutLabel::Sym(s) => Some(self.m1.alphabet.label(*s).clone()),
            OutLabel::Current => match rk {
                RuleKey::Sym(s) => Some(self.m1.alphabet.label(s).clone()),
                _ => None,
            },
        }
    }

    /// Translate an M2 rhs at M1-rhs node `u` (with children at preorder
    /// indices `left`/`right`; `u` itself for x0).
    #[allow(clippy::too_many_arguments)]
    fn translate_m2(
        &mut self,
        t2: &TNode,
        q: StateId,
        rk: RuleKey,
        u: usize,
        left: usize,
        right: usize,
        known: &Option<Label>,
    ) -> TNode {
        match t2 {
            TNode::Eps => TNode::Eps,
            TNode::Param(j) => {
                debug_assert_eq!(self.mode, ParamMode::SecondMacro);
                TNode::Param(*j)
            }
            TNode::Out {
                label,
                left: a,
                right: b,
            } => {
                let label = match label {
                    OutLabel::Sym(s) => {
                        OutLabel::Sym(self.out.alphabet.intern(self.m2.alphabet.label(*s).clone()))
                    }
                    // %t of M2 refers to its input node = the M1 output node:
                    // resolve statically if known, else keep %t (same label).
                    OutLabel::Current => match known {
                        Some(l) => OutLabel::Sym(self.out.alphabet.intern(l.clone())),
                        None => OutLabel::Current,
                    },
                };
                TNode::Out {
                    label,
                    left: Box::new(self.translate_m2(a, q, rk, u, left, right, known)),
                    right: Box::new(self.translate_m2(b, q, rk, u, left, right, known)),
                }
            }
            TNode::Call {
                state: p1,
                input,
                args,
            } => {
                let target_u = match input {
                    XVar::X0 => u,
                    XVar::X1 => left,
                    XVar::X2 => right,
                };
                let st = self.state(CKey::Node(q, rk, target_u, *p1));
                let new_args: Vec<TNode> = match self.mode {
                    ParamMode::SecondMacro => args
                        .iter()
                        .map(|a| self.translate_m2(a, q, rk, u, left, right, known))
                        .collect(),
                    ParamMode::FirstMacro => self.passthrough(&CKey::Node(q, rk, u, *p1)),
                    ParamMode::None => Vec::new(),
                };
                TNode::call(st, XVar::X0, new_args)
            }
        }
    }
}

/// Number of nodes of a rhs tree in preorder (args included).
fn count_nodes(t: &TNode) -> usize {
    match t {
        TNode::Eps | TNode::Param(_) => 1,
        TNode::Out { left, right, .. } => 1 + count_nodes(left) + count_nodes(right),
        TNode::Call { args, .. } => 1 + args.iter().map(count_nodes).sum::<usize>(),
    }
}

/// The rhs node at preorder index `u`.
fn node_at(t: &TNode, u: usize) -> &TNode {
    fn walk<'t>(t: &'t TNode, u: usize, pos: &mut usize) -> Option<&'t TNode> {
        if *pos == u {
            return Some(t);
        }
        *pos += 1;
        match t {
            TNode::Eps | TNode::Param(_) => None,
            TNode::Out { left, right, .. } => walk(left, u, pos).or_else(|| walk(right, u, pos)),
            TNode::Call { args, .. } => args.iter().find_map(|a| walk(a, u, pos)),
        }
    }
    let mut pos = 0;
    walk(t, u, &mut pos).expect("node index in range")
}

/// Specialization step of the proofs: give M1 explicit rules for every
/// symbol on which M2 dispatches, so that M2's rule choice becomes static.
fn specialize_first(m1: &Mtt, m2: &Mtt) -> Mtt {
    let mut out = m1.clone();
    // If M2 distinguishes text nodes, M1 needs an explicit text-default.
    let m2_text_sensitive = m2.rules.iter().any(|r| r.text_default.is_some())
        || m2.alphabet.iter().any(|(s, l)| {
            l.kind == NodeKind::Text && m2.rules.iter().any(|r| r.by_sym.contains_key(&s))
        });
    if m2_text_sensitive {
        for q in 0..out.states.len() {
            if out.rules[q].text_default.is_none() {
                out.rules[q].text_default = Some(out.rules[q].default.clone());
            }
        }
    }
    // Symbols with explicit rules anywhere in M2.
    let mut labels: Vec<Label> = Vec::new();
    for (s, label) in m2.alphabet.iter() {
        if m2.rules.iter().any(|r| r.by_sym.contains_key(&s)) {
            labels.push(label.clone());
        }
    }
    for label in labels {
        let sym = out.alphabet.intern(label.clone());
        for q in 0..out.states.len() {
            if out.rules[q].by_sym.contains_key(&sym) {
                continue;
            }
            let base = if label.kind == NodeKind::Text {
                out.rules[q]
                    .text_default
                    .clone()
                    .unwrap_or_else(|| out.rules[q].default.clone())
            } else {
                out.rules[q].default.clone()
            };
            let specialized = replace_current(&base, sym);
            out.rules[q].by_sym.insert(sym, specialized);
        }
    }
    out
}

/// Replace `%t` output labels by a concrete symbol.
fn replace_current(t: &TNode, sym: foxq_forest::SymId) -> TNode {
    match t {
        TNode::Eps => TNode::Eps,
        TNode::Param(i) => TNode::Param(*i),
        TNode::Out { label, left, right } => TNode::Out {
            label: match label {
                OutLabel::Current => OutLabel::Sym(sym),
                l => *l,
            },
            left: Box::new(replace_current(left, sym)),
            right: Box::new(replace_current(right, sym)),
        },
        TNode::Call { state, input, args } => TNode::Call {
            state: *state,
            input: *input,
            args: args.iter().map(|a| replace_current(a, sym)).collect(),
        },
    }
}

// ---------------------------------------------------------------------------
// Classical (exponential) composition, for the complexity comparison
// ---------------------------------------------------------------------------

/// Rounds/Baker-style product construction for TTs: right-hand sides of M1
/// are translated through M2 *inline*, without stay states. Worst-case
/// exponential in |M1| (the paper's `a→b⁴` / `b→c(·,·)` example); used as
/// the baseline in the composition benchmarks.
///
/// `fuel` bounds the total number of inlining steps (stay loops in M2 would
/// otherwise diverge); returns `None` when exhausted.
pub fn compose_tt_tt_naive(m1: &Mtt, m2: &Mtt, fuel: u64) -> Option<Mtt> {
    assert!(m1.is_tt() && m2.is_tt());
    let m1s = specialize_first(m1, m2);
    let mut out = Mtt::new();
    out.alphabet = m1s.alphabet.clone();
    for (_, label) in m2.alphabet.iter() {
        out.alphabet.intern(label.clone());
    }
    let mut map: FxHashMap<(StateId, StateId), StateId> = FxHashMap::default();
    let mut work: Vec<(StateId, StateId)> = Vec::new();
    let mut fuel = fuel;
    let state = |c: &mut Mtt,
                 map: &mut FxHashMap<(StateId, StateId), StateId>,
                 work: &mut Vec<_>,
                 q: StateId,
                 p: StateId| {
        *map.entry((q, p)).or_insert_with(|| {
            let id = c.add_state(format!("<{},{}>", m1s.name_of(q), m2.name_of(p)), 0);
            work.push((q, p));
            id
        })
    };
    let init = state(&mut out, &mut map, &mut work, m1s.initial, m2.initial);
    out.initial = init;
    while let Some((q, p)) = work.pop() {
        let id = map[&(q, p)];
        let keys: Vec<RuleKey> = {
            let r = &m1s.rules[q.idx()];
            r.by_sym
                .keys()
                .map(|s| RuleKey::Sym(*s))
                .chain(r.text_default.is_some().then_some(RuleKey::TextDefault))
                .chain([RuleKey::Default, RuleKey::Eps])
                .collect()
        };
        for rk in keys {
            let t = m1s.rule(q, rk).clone();
            let rhs = trans_naive(
                &m1s, m2, &mut out, &mut map, &mut work, &t, p, rk, &mut fuel,
            )?;
            let rules = &mut out.rules[id.idx()];
            match rk {
                RuleKey::Sym(s) => {
                    rules.by_sym.insert(s, rhs);
                }
                RuleKey::TextDefault => rules.text_default = Some(rhs),
                RuleKey::Default => rules.default = rhs,
                RuleKey::Eps => rules.eps = rhs,
            }
        }
    }
    debug_assert!(out.validate().is_ok());
    Some(out)
}

#[allow(clippy::too_many_arguments)]
fn trans_naive(
    m1s: &Mtt,
    m2: &Mtt,
    out: &mut Mtt,
    map: &mut FxHashMap<(StateId, StateId), StateId>,
    work: &mut Vec<(StateId, StateId)>,
    t: &TNode,
    p: StateId,
    rk: RuleKey,
    fuel: &mut u64,
) -> Option<TNode> {
    if *fuel == 0 {
        return None;
    }
    *fuel -= 1;
    Some(match t {
        TNode::Call {
            state: q1, input, ..
        } => {
            let id = *map.entry((*q1, p)).or_insert_with(|| {
                let id = out.add_state(format!("<{},{}>", m1s.name_of(*q1), m2.name_of(p)), 0);
                work.push((*q1, p));
                id
            });
            TNode::call(id, *input, Vec::new())
        }
        TNode::Param(_) => unreachable!("TTs have no parameters"),
        TNode::Eps => {
            let t2 = m2.rules[p.idx()].eps.clone();
            subst_naive(m1s, m2, out, map, work, &t2, t, t, t, rk, &None, fuel)?
        }
        TNode::Out { label, left, right } => {
            let known = match label {
                OutLabel::Sym(s) => Some(m1s.alphabet.label(*s).clone()),
                OutLabel::Current => match rk {
                    RuleKey::Sym(s) => Some(m1s.alphabet.label(s).clone()),
                    _ => None,
                },
            };
            let rule2 = match &known {
                Some(l) => m2.key_for_label(p, l),
                None if rk == RuleKey::TextDefault && m2.rules[p.idx()].text_default.is_some() => {
                    RuleKey::TextDefault
                }
                None => RuleKey::Default,
            };
            let t2 = m2.rule(p, rule2).clone();
            subst_naive(
                m1s, m2, out, map, work, &t2, t, left, right, rk, &known, fuel,
            )?
        }
    })
}

/// Substitute M2-rhs `t2`, translating x0/x1/x2 into recursive translations
/// of the M1-rhs nodes `whole`/`left`/`right`.
#[allow(clippy::too_many_arguments)]
fn subst_naive(
    m1s: &Mtt,
    m2: &Mtt,
    out: &mut Mtt,
    map: &mut FxHashMap<(StateId, StateId), StateId>,
    work: &mut Vec<(StateId, StateId)>,
    t2: &TNode,
    whole: &TNode,
    left: &TNode,
    right: &TNode,
    rk: RuleKey,
    known: &Option<Label>,
    fuel: &mut u64,
) -> Option<TNode> {
    Some(match t2 {
        TNode::Eps => TNode::Eps,
        TNode::Param(_) => unreachable!("TTs have no parameters"),
        TNode::Out {
            label,
            left: a,
            right: b,
        } => {
            let label = match label {
                OutLabel::Sym(s) => {
                    OutLabel::Sym(out.alphabet.intern(m2.alphabet.label(*s).clone()))
                }
                OutLabel::Current => match known {
                    Some(l) => OutLabel::Sym(out.alphabet.intern(l.clone())),
                    None => OutLabel::Current,
                },
            };
            TNode::Out {
                label,
                left: Box::new(subst_naive(
                    m1s, m2, out, map, work, a, whole, left, right, rk, known, fuel,
                )?),
                right: Box::new(subst_naive(
                    m1s, m2, out, map, work, b, whole, left, right, rk, known, fuel,
                )?),
            }
        }
        TNode::Call {
            state: p1, input, ..
        } => {
            let target = match input {
                XVar::X0 => whole,
                XVar::X1 => left,
                XVar::X2 => right,
            };
            trans_naive(m1s, m2, out, map, work, target, *p1, rk, fuel)?
        }
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::convert::eval_btree;
    use crate::mtt::{run_mtt, Mtt, TNode};
    use foxq_core::interp::run_mft;
    use foxq_core::mft::XVar;
    use foxq_core::text::parse_mft;
    use foxq_forest::fcns::{fcns, unfcns};
    use foxq_forest::term::parse_forest;
    use foxq_forest::BinTree;

    /// The paper's example pair: M1 rewrites each `a` into 2^h `b`s … here
    /// k b's per a (chain), M2 spawns two `c`-copies per `b`.
    fn paper_pair(k: usize) -> (Mtt, Mtt) {
        let mut m1 = Mtt::new();
        let a = m1.alphabet.intern_elem("a");
        let _b = m1.alphabet.intern_elem("b");
        let q0 = m1.add_state("q0", 0);
        m1.initial = q0;
        let b = m1.alphabet.intern_elem("b");
        let mut rhs = TNode::call(q0, XVar::X1, vec![]);
        for _ in 0..k {
            rhs = TNode::sym(b, rhs, TNode::Eps);
        }
        m1.rules[q0.idx()].by_sym.insert(a, rhs);

        let mut m2 = Mtt::new();
        let b2 = m2.alphabet.intern_elem("b");
        let c = m2.alphabet.intern_elem("c");
        let p0 = m2.add_state("p0", 0);
        m2.initial = p0;
        m2.rules[p0.idx()].by_sym.insert(
            b2,
            TNode::sym(
                c,
                TNode::call(p0, XVar::X1, vec![]),
                TNode::call(p0, XVar::X1, vec![]),
            ),
        );
        (m1, m2)
    }

    fn check_equiv(composed: &Mtt, m1: &Mtt, m2: &Mtt, inputs: &[BinTree]) {
        for t in inputs {
            let expected = run_mtt(m2, &run_mtt(m1, t).unwrap()).unwrap();
            let got = run_mtt(composed, t).unwrap();
            assert_eq!(got, expected, "composition differs on {t:?}");
        }
    }

    fn sample_inputs() -> Vec<BinTree> {
        ["", "a", "a(a)", "a(a(a)) a", "x(a(b) y) a"]
            .iter()
            .map(|s| fcns(&parse_forest(s).unwrap()))
            .collect()
    }

    #[test]
    fn lemma2_composes_the_paper_example() {
        let (m1, m2) = paper_pair(4);
        let c = compose_tt_tt(&m1, &m2);
        check_equiv(&c, &m1, &m2, &sample_inputs());
    }

    #[test]
    fn lemma2_grows_linearly_but_naive_grows_exponentially() {
        let mut stay_sizes = Vec::new();
        let mut naive_sizes = Vec::new();
        for k in [2, 4, 6, 8] {
            let (m1, m2) = paper_pair(k);
            let stay = compose_tt_tt(&m1, &m2);
            let naive = compose_tt_tt_naive(&m1, &m2, 10_000_000).unwrap();
            // Outputs are exponential in k × input depth, so check deep
            // inputs only for small k and flat inputs for large k.
            let inputs = if k <= 4 {
                sample_inputs()
            } else {
                ["", "a", "a a"]
                    .iter()
                    .map(|s| fcns(&parse_forest(s).unwrap()))
                    .collect()
            };
            check_equiv(&stay, &m1, &m2, &inputs);
            check_equiv(&naive, &m1, &m2, &inputs);
            stay_sizes.push(stay.size());
            naive_sizes.push(naive.size());
        }
        // Stay-based: roughly linear in k — the ratio of consecutive sizes
        // stays small. Naive: doubles with each k+2 (rhs is a complete
        // binary tree of height k).
        let stay_growth = stay_sizes[3] as f64 / stay_sizes[0] as f64;
        let naive_growth = naive_sizes[3] as f64 / naive_sizes[0] as f64;
        assert!(stay_growth < 6.0, "stay sizes {stay_sizes:?}");
        assert!(naive_growth > 10.0, "naive sizes {naive_sizes:?}");
    }

    #[test]
    fn lemma2_with_default_rules_and_text() {
        // M1 copies; M2 renames text nodes' parents via %t dispatch.
        let m1f = parse_mft("qc(%t(x1) x2) -> %t(qc(x1)) qc(x2); qc(eps) -> eps;").unwrap();
        let m1 = crate::convert::mft_to_mtt(&m1f);
        // m1 outputs contain no @ for identity? enc of %t(qc(x1)) qc(x2) is
        // @(…); so m1 is not @-free — compose with a TT that treats @ like
        // any label works, but equivalence must be stated modulo eval.
        // Simpler: use a hand-built binary identity TT.
        let mut id = Mtt::new();
        let q = id.add_state("id", 0);
        id.initial = q;
        id.rules[q.idx()].default = TNode::out(
            foxq_core::mft::OutLabel::Current,
            TNode::call(q, XVar::X1, vec![]),
            TNode::call(q, XVar::X2, vec![]),
        );
        let mut m2 = Mtt::new();
        let hit = m2.alphabet.intern_text("magic");
        let yes = m2.alphabet.intern_elem("yes");
        let p = m2.add_state("p", 0);
        m2.initial = p;
        m2.rules[p.idx()].by_sym.insert(
            hit,
            TNode::sym(yes, TNode::Eps, TNode::call(p, XVar::X2, vec![])),
        );
        m2.rules[p.idx()].default = TNode::out(
            foxq_core::mft::OutLabel::Current,
            TNode::call(p, XVar::X1, vec![]),
            TNode::call(p, XVar::X2, vec![]),
        );
        let c = compose_tt_tt(&id, &m2);
        let inputs: Vec<BinTree> = [r#"a("magic" b) "magic""#, "a(b)", r#"x("other")"#]
            .iter()
            .map(|s| fcns(&parse_forest(s).unwrap()))
            .collect();
        check_equiv(&c, &id, &m2, &inputs);
        let _ = m1;
    }

    #[test]
    fn lemma3_mtt_then_tt() {
        // M1: reversal MTT (uses a parameter); M2: relabel b→c TT.
        let m1f = parse_mft(
            "q0(%) -> rev(x0, eps);
             rev(%t(x1) x2, y1) -> rev(x2, %t(rev(x1, eps)) y1);
             rev(eps, y1) -> y1;",
        )
        .unwrap();
        let m1 = crate::convert::mft_to_mtt(&m1f);
        // m1's outputs contain @, so M2 must treat @ transparently: use an
        // identity-with-relabel TT that includes an @-copy default rule.
        let mut m2 = Mtt::new();
        let b = m2.alphabet.intern_elem("b");
        let c = m2.alphabet.intern_elem("c");
        let p = m2.add_state("p", 0);
        m2.initial = p;
        m2.rules[p.idx()].by_sym.insert(
            b,
            TNode::sym(
                c,
                TNode::call(p, XVar::X1, vec![]),
                TNode::call(p, XVar::X2, vec![]),
            ),
        );
        m2.rules[p.idx()].default = TNode::out(
            foxq_core::mft::OutLabel::Current,
            TNode::call(p, XVar::X1, vec![]),
            TNode::call(p, XVar::X2, vec![]),
        );
        let composed = compose_mtt_then_tt(&m1, &m2);
        for src in ["", "a", "a b", "b(a b) c"] {
            let t = fcns(&parse_forest(src).unwrap());
            let expected = run_mtt(&m2, &run_mtt(&m1, &t).unwrap()).unwrap();
            let got = run_mtt(&composed, &t).unwrap();
            assert_eq!(
                eval_btree(&got),
                eval_btree(&expected),
                "lemma3(M) differs on {src}"
            );
        }
    }

    #[test]
    fn lemma3_tt_then_mtt() {
        // M1: relabel a→b TT; M2: reversal MTT.
        let mut m1 = Mtt::new();
        let a = m1.alphabet.intern_elem("a");
        let b = m1.alphabet.intern_elem("b");
        let q = m1.add_state("q", 0);
        m1.initial = q;
        m1.rules[q.idx()].by_sym.insert(
            a,
            TNode::sym(
                b,
                TNode::call(q, XVar::X1, vec![]),
                TNode::call(q, XVar::X2, vec![]),
            ),
        );
        m1.rules[q.idx()].default = TNode::out(
            foxq_core::mft::OutLabel::Current,
            TNode::call(q, XVar::X1, vec![]),
            TNode::call(q, XVar::X2, vec![]),
        );
        // Binary reversal MTT (top-level spine).
        let mut m2 = Mtt::new();
        let p0 = m2.add_state("p0", 0);
        let rev = m2.add_state("rev", 1);
        m2.initial = p0;
        m2.rules[p0.idx()].default = TNode::call(rev, XVar::X0, vec![TNode::Eps]);
        m2.rules[p0.idx()].eps = TNode::call(rev, XVar::X0, vec![TNode::Eps]);
        m2.rules[rev.idx()].default = TNode::call(
            rev,
            XVar::X2,
            vec![TNode::out(
                foxq_core::mft::OutLabel::Current,
                TNode::call(p0, XVar::X1, vec![]),
                TNode::Param(0),
            )],
        );
        m2.rules[rev.idx()].eps = TNode::Param(0);
        let composed = compose_tt_then_mtt(&m1, &m2);
        for src in ["", "a", "a x(a) b", "a(a b) c a"] {
            let t = fcns(&parse_forest(src).unwrap());
            let expected = run_mtt(&m2, &run_mtt(&m1, &t).unwrap()).unwrap();
            let got = run_mtt(&composed, &t).unwrap();
            assert_eq!(got, expected, "lemma3(M') differs on {src}");
        }
    }

    #[test]
    fn theorem4_tt_then_ft() {
        // M1: binary TT relabel a→b; M2: forest doubling FT (§4.2).
        let mut m1 = Mtt::new();
        let a = m1.alphabet.intern_elem("a");
        let b = m1.alphabet.intern_elem("b");
        let q = m1.add_state("q", 0);
        m1.initial = q;
        m1.rules[q.idx()].by_sym.insert(
            a,
            TNode::sym(
                b,
                TNode::call(q, XVar::X1, vec![]),
                TNode::call(q, XVar::X2, vec![]),
            ),
        );
        m1.rules[q.idx()].default = TNode::out(
            foxq_core::mft::OutLabel::Current,
            TNode::call(q, XVar::X1, vec![]),
            TNode::call(q, XVar::X2, vec![]),
        );
        let m2 = parse_mft(
            "d(b(x1) x2) -> d(x2) d(x2);
             d(%t(x1) x2) -> %t(d(x1)) d(x2);
             d(eps) -> b();",
        )
        .unwrap();
        let composed = compose_tt_then_ft(&m1, &m2);
        assert!(composed.is_ft());
        for src in ["", "a", "a a", "x(a a) a"] {
            let f = parse_forest(src).unwrap();
            let mid = unfcns(&run_mtt(&m1, &fcns(&f)).unwrap());
            let expected = run_mft(&m2, &mid).unwrap();
            let got = run_mft(&composed, &f).unwrap();
            assert_eq!(got, expected, "theorem 4 differs on {src}");
        }
    }

    #[test]
    fn theorem3_mtt_then_ft() {
        // M1 must be a *pure* MTT (its outputs are final binary trees, no @)
        // — build the top-level spine reversal with an accumulator. M2: FT
        // that doubles top-level trees.
        let mut m1 = Mtt::new();
        let p0 = m1.add_state("p0", 0);
        let rev = m1.add_state("rev", 1);
        m1.initial = p0;
        m1.rules[p0.idx()].default = TNode::call(rev, XVar::X0, vec![TNode::Eps]);
        m1.rules[p0.idx()].eps = TNode::call(rev, XVar::X0, vec![TNode::Eps]);
        m1.rules[rev.idx()].default = TNode::call(
            rev,
            XVar::X2,
            vec![TNode::out(
                foxq_core::mft::OutLabel::Current,
                TNode::call(p0, XVar::X1, vec![]),
                TNode::Param(0),
            )],
        );
        m1.rules[rev.idx()].eps = TNode::Param(0);
        let m2 = parse_mft(
            "d(%t(x1) x2) -> %t(d(x1)) %t(d(x1)) d(x2);
             d(eps) -> eps;",
        )
        .unwrap();
        let composed = compose_mtt_then_ft(&m1, &m2);
        for src in ["", "a", "a b", "a(b c) d"] {
            let f = parse_forest(src).unwrap();
            let mid = unfcns(&run_mtt(&m1, &fcns(&f)).unwrap());
            let expected = run_mft(&m2, &mid).unwrap();
            let got = run_mft(&composed, &f).unwrap();
            assert_eq!(got, expected, "theorem 3 differs on {src}");
        }
    }

    #[test]
    fn ft_to_mtt_acc_is_equivalent_and_pure() {
        let d = parse_mft(
            "q(a(x1) x2) -> q(x2) q(x2);
             q(%t(x1) x2) -> %t(q(x1)) q(x2);
             q(eps) -> a();",
        )
        .unwrap();
        let acc = crate::convert::ft_to_mtt_acc(&d);
        for src in ["", "a", "a a", "x(a a) a"] {
            let f = parse_forest(src).unwrap();
            let expected = fcns(&run_mft(&d, &f).unwrap());
            let got = run_mtt(&acc, &fcns(&f)).unwrap();
            assert_eq!(got, expected, "ft_to_mtt_acc differs on {src}");
        }
    }

    #[test]
    fn theorem5_ft_then_tt() {
        // M1: FT doubling top-level trees; M2: TT relabeling a→b.
        let m1 = parse_mft(
            "d(%t(x1) x2) -> %t(d(x1)) %t(d(x1)) d(x2);
             d(eps) -> eps;",
        )
        .unwrap();
        let mut m2 = Mtt::new();
        let a = m2.alphabet.intern_elem("a");
        let b = m2.alphabet.intern_elem("b");
        let p = m2.add_state("p", 0);
        m2.initial = p;
        m2.rules[p.idx()].by_sym.insert(
            a,
            TNode::sym(
                b,
                TNode::call(p, XVar::X1, vec![]),
                TNode::call(p, XVar::X2, vec![]),
            ),
        );
        m2.rules[p.idx()].default = TNode::out(
            foxq_core::mft::OutLabel::Current,
            TNode::call(p, XVar::X1, vec![]),
            TNode::call(p, XVar::X2, vec![]),
        );
        let composed = compose_ft_then_tt(&m1, &m2);
        for src in ["", "a", "a x(a)", "x(a(b)) a"] {
            let f = parse_forest(src).unwrap();
            let mid = run_mft(&m1, &f).unwrap();
            let expected = run_mtt(&m2, &fcns(&mid)).unwrap();
            let got = run_mtt(&composed, &fcns(&f)).unwrap();
            assert_eq!(got, expected, "theorem 5 differs on {src}");
        }
    }

    #[test]
    fn two_fts_compose_into_one_mft() {
        // The paper's §4.2 motivation: FTs are not closed under composition
        // (double-exponential height increase), but FT ∘ FT fits in one MFT
        // — via ft_to_mtt_acc + Theorem 3.
        let d = parse_mft(
            "q(a(x1) x2) -> q(x2) q(x2);
             q(%t(x1) x2) -> q(x2) q(x2);
             q(eps) -> a();",
        )
        .unwrap();
        let composed = crate::convert::compose_ft_ft(&d, &d);
        assert!(
            !composed.is_ft(),
            "the composition genuinely needs parameters"
        );
        let f = parse_forest("a a").unwrap();
        let once = run_mft(&d, &f).unwrap();
        assert_eq!(once.len(), 4);
        let expected = run_mft(&d, &once).unwrap();
        assert_eq!(expected.len(), 16);
        let got = run_mft(&composed, &f).unwrap();
        assert_eq!(got, expected);
        for src in ["", "a", "b(a)"] {
            let f = parse_forest(src).unwrap();
            let expected = run_mft(&d, &run_mft(&d, &f).unwrap()).unwrap();
            assert_eq!(run_mft(&composed, &f).unwrap(), expected, "on {src}");
        }
        // 4 input trees ⇒ 2^16 output trees. Feasible only because the
        // memoizing shared-value evaluator runs the accumulator encoding in
        // steps linear in the shared graph (the naive evaluator needs
        // minutes here; see tests/perf_smoke.rs for the release guard).
        let f = parse_forest("a a a a").unwrap();
        let expected = run_mft(&d, &run_mft(&d, &f).unwrap()).unwrap();
        assert_eq!(expected.len(), 1 << 16);
        assert_eq!(run_mft(&composed, &f).unwrap(), expected);
    }
}
