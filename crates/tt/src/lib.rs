//! Binary-tree transducers and the composition theory of §4.2.
//!
//! * [`mtt`] — macro tree transducers (MTT) and top-down tree transducers
//!   (TT) over binary XML trees, with stay moves and default rules;
//! * [`convert`] — Lemma 1: `mft = mtt ∘ eval` in both directions, plus the
//!   evaluation mapping as a one-parameter MTT;
//! * [`compose`] — the stay-move product constructions: Lemma 2 (TT∘TT,
//!   quadratic), Lemma 3 (MTT/TT both orders), Theorems 3–5 (compositions
//!   with forest transducers), and the classical exponential construction
//!   as a baseline for the complexity experiments.

pub mod compose;
pub mod convert;
pub mod mtt;

pub use compose::{
    compose_ft_then_tt, compose_mtt_then_ft, compose_mtt_then_tt, compose_tt_then_ft,
    compose_tt_then_mtt, compose_tt_tt, compose_tt_tt_naive,
};
pub use convert::{compose_ft_ft, eval_btree, eval_mtt, ft_to_mtt_acc, mft_to_mtt, mtt_to_mft};
pub use mtt::{cat_label, run_mtt, run_mtt_with_limit, Mtt, RuleKey, TNode, TtRules};
