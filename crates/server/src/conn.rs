//! Per-connection state for the epoll reactor.
//!
//! Each accepted socket is a small resumable machine instead of a parked
//! worker thread — Koch-style buffer minimization applied to the transport.
//! The phases and their transitions:
//!
//! ```text
//!           accept
//!             │
//!             ▼
//!   ┌──────► Idle ─── first byte ──► ReadHead ─── head complete ───┐
//!   │                                   │                          ▼
//!   │                             (head > cap: 400)           RouteBody
//!   │                                   │                    (in a worker:
//!   │                                   │                     body streams
//!   │                                   ▼                     through the
//!   └── keep-alive ────────────── WriteResponse ◄──────────── engine)
//!       (pipelined head already        │
//!        buffered? dispatch now)       ├── close ──► (drop)
//!                                      └── unread body ──► Linger ──► (drop)
//! ```
//!
//! `Idle`/`ReadHead`/`WriteResponse`/`Linger` live on the reactor thread
//! and are resumable across `WouldBlock`; `RouteBody` is the one blocking
//! phase, and it runs on a worker with the socket temporarily switched back
//! to blocking mode (the engine consumes the request body *while* it runs —
//! suspending mid-evaluation is not worth coroutine-izing the transducers).
//! Bytes read past the current request (a pipelined next request) ride
//! along in [`Conn::buf`] across phase changes and worker handoffs.

use crate::http::MAX_HEAD_BYTES;
use crate::metrics::Endpoint;
use std::net::TcpStream;
use std::time::Instant;

/// What to do with the connection once its response is fully flushed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum After {
    /// Body consumed to its framed end and keep-alive agreed: back to
    /// [`Phase::Idle`] (or straight to dispatch if the next head is already
    /// buffered).
    Reuse,
    /// Close immediately (clean end: nothing unread on the wire).
    Close,
    /// Unread request bytes remain on the wire: send FIN, then discard the
    /// peer's tail for a bounded time so the kernel cannot RST the response
    /// away (see [`Phase::Linger`]).
    Linger,
}

/// Where a connection is in its request/response cycle.
#[derive(Debug)]
pub enum Phase {
    /// Between requests: registered for read, nothing buffered yet.
    Idle,
    /// Accumulating request-head bytes in [`Conn::buf`].
    ReadHead,
    /// Handed to a worker: request routing, body streaming, engine
    /// execution. The fd is deregistered from the poller while here.
    RouteBody,
    /// Flushing the serialized response; resumable across `WouldBlock`.
    WriteResponse {
        out: Vec<u8>,
        written: usize,
        after: After,
    },
    /// FIN sent; discarding up to [`Conn::LINGER_CAP`] tail bytes.
    Linger { drained: usize },
}

/// One connection owned by the reactor (or, during `RouteBody`, by a
/// worker).
pub struct Conn {
    pub stream: TcpStream,
    pub token: u64,
    /// Bytes read off the socket but not yet consumed by request
    /// processing, in wire order.
    pub buf: Vec<u8>,
    /// How far [`head_end`] has already scanned `buf` (avoids re-scanning
    /// the prefix as a slow head trickles in).
    pub scanned: usize,
    pub phase: Phase,
    /// When the current phase times out: idle/head deadline in
    /// `Idle`/`ReadHead`, write deadline in `WriteResponse`, drain deadline
    /// in `Linger`.
    pub deadline: Instant,
    /// Whether the fd is currently registered in the poller, and with what
    /// interest (`EPOLLIN`/`EPOLLOUT`); `None` while in a worker.
    pub interest: Option<u32>,
    /// When the current request's head completed (set at dispatch); the
    /// anchor for the TTFB and request-latency histograms. Taken when the
    /// response is fully flushed.
    pub req_start: Option<Instant>,
    /// Whether time-to-first-byte was already observed for the current
    /// response (only the first written chunk counts).
    pub ttfb_recorded: bool,
    /// Endpoint that served the current request (stamped by the worker),
    /// attributing the flush-complete latency to the right histogram.
    pub endpoint: Option<Endpoint>,
}

impl Conn {
    /// Upper bound on tail bytes discarded during a lingering close.
    pub const LINGER_CAP: usize = 1 << 20;

    /// Hard cap on buffered head bytes before the peer is answered 400 and
    /// cut off. Slightly above the parser's own budget so the parser (which
    /// produces the proper error message) is what rejects a maximal head.
    pub const HEAD_BUF_CAP: usize = MAX_HEAD_BYTES + 1024;

    pub fn new(stream: TcpStream, token: u64, deadline: Instant) -> Conn {
        Conn {
            stream,
            token,
            buf: Vec::new(),
            scanned: 0,
            phase: Phase::Idle,
            deadline,
            interest: None,
            req_start: None,
            ttfb_recorded: false,
            endpoint: None,
        }
    }

    /// Offset one past the end of the first complete request head in
    /// `buf`, if any — the position after the blank line that terminates
    /// the head. Resumes scanning where the last call stopped.
    pub fn head_end(&mut self) -> Option<usize> {
        let end = head_end_from(&self.buf, self.scanned);
        // Re-scan the last 2 bytes next time: a terminator can straddle
        // this read and the next ("…\r\n\r" + "\n").
        self.scanned = self.buf.len().saturating_sub(2);
        end
    }
}

/// Find the end of an HTTP head in `buf` starting the scan at `from`:
/// the byte offset just past `\n\n`, `\n\r\n` (LF line endings are accepted
/// everywhere the parser accepts them). Scanning must start at or before
/// any candidate terminator's *second-to-last* byte.
fn head_end_from(buf: &[u8], from: usize) -> Option<usize> {
    let start = from.min(buf.len());
    for i in start..buf.len() {
        if buf[i] != b'\n' {
            continue;
        }
        match buf.get(i + 1) {
            Some(b'\n') => return Some(i + 2),
            Some(b'\r') if buf.get(i + 2) == Some(&b'\n') => return Some(i + 3),
            _ => {}
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;

    fn conn_with(buf: &[u8]) -> Conn {
        // A loopback socket pair just to satisfy the struct; the tests only
        // exercise the buffer scanning.
        let listener = std::net::TcpListener::bind("127.0.0.1:0").unwrap();
        let stream = std::net::TcpStream::connect(listener.local_addr().unwrap()).unwrap();
        let mut c = Conn::new(stream, 9, Instant::now());
        c.buf = buf.to_vec();
        c
    }

    #[test]
    fn detects_complete_heads() {
        assert_eq!(
            conn_with(b"GET / HTTP/1.1\r\nhost: x\r\n\r\n").head_end(),
            Some(27)
        );
        assert_eq!(conn_with(b"GET / HTTP/1.1\n\n").head_end(), Some(16));
        assert_eq!(conn_with(b"GET / HTTP/1.1\n\r\n").head_end(), Some(17));
        // Body bytes after the head do not move the boundary.
        assert_eq!(
            conn_with(b"POST / HTTP/1.1\r\ncontent-length: 4\r\n\r\n<a/>").head_end(),
            Some(38)
        );
    }

    #[test]
    fn incomplete_heads_are_not_detected() {
        for partial in [
            &b""[..],
            b"GET / HTTP/1.1",
            b"GET / HTTP/1.1\r\n",
            b"GET / HTTP/1.1\r\nhost: x\r\n",
            b"GET / HTTP/1.1\r\nhost: x\r\n\r",
        ] {
            assert_eq!(conn_with(partial).head_end(), None, "{partial:?}");
        }
    }

    #[test]
    fn incremental_scans_find_a_straddled_terminator() {
        let wire = b"GET / HTTP/1.1\r\nhost: x\r\n\r\n";
        let mut c = conn_with(&wire[..26]); // up to "…\r\n\r"
        assert_eq!(c.head_end(), None);
        c.buf.push(b'\n');
        assert_eq!(c.head_end(), Some(27));
    }

    #[test]
    fn scan_restart_is_conservative_for_lf_only_heads() {
        let mut c = conn_with(b"GET / HTTP/1.1\n");
        assert_eq!(c.head_end(), None);
        c.buf.push(b'\n');
        assert_eq!(c.head_end(), Some(16));
    }
}
