//! Readiness notification over raw `epoll`, with no `libc` crate.
//!
//! The build environment has no registry access, so the three syscalls the
//! reactor needs — `epoll_create1`, `epoll_ctl`, `epoll_wait` — are bound
//! here directly with `extern "C"` declarations against the libc that std
//! already links, plus `eventfd` for the cross-thread waker the workers use
//! to hand finished connections back to the reactor. This is the whole
//! platform layer: everything above it ([`crate::serve`]) speaks
//! [`Poller`]/[`Waker`] and `std::net`.
//!
//! Linux-only by construction (`epoll` is a Linux API); the crate targets
//! the Linux containers this system deploys into.

use std::io::{Error, ErrorKind};
use std::os::fd::{AsRawFd, RawFd};

// ---------------------------------------------------------------------------
// Syscall bindings
// ---------------------------------------------------------------------------

/// `struct epoll_event`. The kernel ABI packs it on x86-64 (12 bytes);
/// other architectures use natural alignment.
#[repr(C)]
#[cfg_attr(target_arch = "x86_64", repr(packed))]
#[derive(Clone, Copy)]
pub struct EpollEvent {
    pub events: u32,
    /// Caller-chosen token identifying the registered fd.
    pub data: u64,
}

pub const EPOLLIN: u32 = 0x001;
pub const EPOLLOUT: u32 = 0x004;
pub const EPOLLERR: u32 = 0x008;
pub const EPOLLHUP: u32 = 0x010;
/// Peer shut down its write half (half-close shows up as readable EOF).
pub const EPOLLRDHUP: u32 = 0x2000;

const EPOLL_CTL_ADD: i32 = 1;
const EPOLL_CTL_DEL: i32 = 2;
const EPOLL_CTL_MOD: i32 = 3;

const EPOLL_CLOEXEC: i32 = 0o2000000;
const EFD_CLOEXEC: i32 = 0o2000000;
const EFD_NONBLOCK: i32 = 0o0004000;

extern "C" {
    fn epoll_create1(flags: i32) -> i32;
    fn epoll_ctl(epfd: i32, op: i32, fd: i32, event: *mut EpollEvent) -> i32;
    fn epoll_wait(epfd: i32, events: *mut EpollEvent, maxevents: i32, timeout_ms: i32) -> i32;
    fn eventfd(initval: u32, flags: i32) -> i32;
    fn read(fd: i32, buf: *mut u8, count: usize) -> isize;
    fn write(fd: i32, buf: *const u8, count: usize) -> isize;
    fn close(fd: i32) -> i32;
}

fn cvt(ret: i32) -> std::io::Result<i32> {
    if ret < 0 {
        Err(Error::last_os_error())
    } else {
        Ok(ret)
    }
}

// ---------------------------------------------------------------------------
// Poller
// ---------------------------------------------------------------------------

/// An `epoll` instance plus the event buffer for [`Poller::wait`].
pub struct Poller {
    epfd: RawFd,
    events: Vec<EpollEvent>,
}

impl Poller {
    pub fn new() -> std::io::Result<Poller> {
        let epfd = cvt(unsafe { epoll_create1(EPOLL_CLOEXEC) })?;
        Ok(Poller {
            epfd,
            events: vec![EpollEvent { events: 0, data: 0 }; 256],
        })
    }

    /// Register `fd` under `token` for `interest` (level-triggered).
    pub fn add(&self, fd: RawFd, token: u64, interest: u32) -> std::io::Result<()> {
        self.ctl(EPOLL_CTL_ADD, fd, token, interest)
    }

    /// Change the interest set of an already-registered fd.
    pub fn modify(&self, fd: RawFd, token: u64, interest: u32) -> std::io::Result<()> {
        self.ctl(EPOLL_CTL_MOD, fd, token, interest)
    }

    /// Deregister an fd. Safe to call on an fd the kernel already dropped
    /// (closing a socket deregisters it implicitly).
    pub fn delete(&self, fd: RawFd) -> std::io::Result<()> {
        match self.ctl(EPOLL_CTL_DEL, fd, 0, 0) {
            Err(e) if e.kind() == ErrorKind::NotFound => Ok(()),
            other => other,
        }
    }

    fn ctl(&self, op: i32, fd: RawFd, token: u64, interest: u32) -> std::io::Result<()> {
        let mut ev = EpollEvent {
            events: interest,
            data: token,
        };
        cvt(unsafe { epoll_ctl(self.epfd, op, fd, &mut ev) }).map(|_| ())
    }

    /// Block until at least one registered fd is ready or `timeout_ms`
    /// elapses (`-1` = forever). Returns `(token, events)` pairs; `EINTR`
    /// is retried internally.
    pub fn wait(&mut self, timeout_ms: i32) -> std::io::Result<Vec<(u64, u32)>> {
        loop {
            let n = unsafe {
                epoll_wait(
                    self.epfd,
                    self.events.as_mut_ptr(),
                    self.events.len() as i32,
                    timeout_ms,
                )
            };
            if n >= 0 {
                return Ok(self.events[..n as usize]
                    .iter()
                    .map(|ev| ({ ev.data }, { ev.events }))
                    .collect());
            }
            let err = Error::last_os_error();
            if err.kind() != ErrorKind::Interrupted {
                return Err(err);
            }
        }
    }
}

impl Drop for Poller {
    fn drop(&mut self) {
        unsafe { close(self.epfd) };
    }
}

// ---------------------------------------------------------------------------
// Waker
// ---------------------------------------------------------------------------

/// A cross-thread wakeup channel: an `eventfd` registered in the [`Poller`].
/// Worker threads [`Waker::wake`] after queueing a finished connection; the
/// reactor drains it with [`Waker::drain`] and checks its return queue.
/// Clone-free sharing: wrap in `Arc`.
pub struct Waker {
    fd: RawFd,
}

impl Waker {
    pub fn new() -> std::io::Result<Waker> {
        let fd = cvt(unsafe { eventfd(0, EFD_CLOEXEC | EFD_NONBLOCK) })?;
        Ok(Waker { fd })
    }

    /// Make the next (or current) [`Poller::wait`] return. Async-safe,
    /// never blocks: an eventfd write only fails if the counter would
    /// overflow, which still leaves it readable.
    pub fn wake(&self) {
        let one: u64 = 1;
        unsafe { write(self.fd, (&one as *const u64).cast(), 8) };
    }

    /// Reset the wakeup counter (reactor side).
    pub fn drain(&self) {
        let mut buf = [0u8; 8];
        unsafe { read(self.fd, buf.as_mut_ptr(), 8) };
    }
}

impl AsRawFd for Waker {
    fn as_raw_fd(&self) -> RawFd {
        self.fd
    }
}

impl Drop for Waker {
    fn drop(&mut self) {
        unsafe { close(self.fd) };
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Write as _;
    use std::os::fd::AsRawFd;

    #[test]
    fn poller_reports_readiness_and_waker_wakes() {
        let mut poller = Poller::new().unwrap();
        let waker = Waker::new().unwrap();
        poller.add(waker.as_raw_fd(), 7, EPOLLIN).unwrap();

        // Nothing ready: a zero-timeout wait returns empty.
        assert!(poller.wait(0).unwrap().is_empty());

        waker.wake();
        let ready = poller.wait(1000).unwrap();
        assert_eq!(ready.len(), 1);
        assert_eq!(ready[0].0, 7);
        assert!(ready[0].1 & EPOLLIN != 0);
        waker.drain();
        assert!(poller.wait(0).unwrap().is_empty());
    }

    #[test]
    fn poller_sees_a_connected_socket_become_readable() {
        let listener = std::net::TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let mut poller = Poller::new().unwrap();
        poller.add(listener.as_raw_fd(), 1, EPOLLIN).unwrap();

        let mut client = std::net::TcpStream::connect(addr).unwrap();
        let ready = poller.wait(2000).unwrap();
        assert!(ready.iter().any(|&(t, e)| t == 1 && e & EPOLLIN != 0));

        let (server_side, _) = listener.accept().unwrap();
        server_side.set_nonblocking(true).unwrap();
        poller
            .add(server_side.as_raw_fd(), 2, EPOLLIN | EPOLLRDHUP)
            .unwrap();
        assert!(poller.wait(0).unwrap().iter().all(|&(t, _)| t != 2));

        client.write_all(b"x").unwrap();
        let ready = poller.wait(2000).unwrap();
        assert!(ready.iter().any(|&(t, e)| t == 2 && e & EPOLLIN != 0));

        // Deleting stops reports even though data is still pending.
        poller.delete(server_side.as_raw_fd()).unwrap();
        assert!(poller.wait(0).unwrap().is_empty());
    }
}
