//! A tiny HTTP/1.1 client for exercising `foxq-server`.
//!
//! Deliberately minimal — enough for integration tests, benchmarks, and CI
//! round-trips: `Content-Length` and chunked request bodies, keep-alive
//! reuse, and response parsing of the server's own wire format — both
//! `Content-Length`-framed and chunked streamed responses (chunk
//! boundaries and trailer fields captured). Not a general-purpose client.

use crate::http::urlencode;
use std::io::{BufRead, BufReader, Read, Write};
use std::net::{TcpStream, ToSocketAddrs};
use std::time::Duration;

/// A parsed response.
#[derive(Debug)]
pub struct Response {
    pub status: u16,
    /// Header `(name, value)` pairs, names lowercased.
    pub headers: Vec<(String, String)>,
    pub body: Vec<u8>,
    /// Trailer `(name, value)` pairs of a chunked response, names
    /// lowercased (empty for `Content-Length`-framed responses).
    pub trailers: Vec<(String, String)>,
    /// Number of body chunks a chunked response arrived in (0 for
    /// `Content-Length`-framed responses).
    pub chunks: usize,
}

impl Response {
    /// First value of a header, by lowercase name.
    pub fn header(&self, name: &str) -> Option<&str> {
        self.headers
            .iter()
            .find(|(n, _)| n == name)
            .map(|(_, v)| v.as_str())
    }

    /// First value of a trailer field, by lowercase name.
    pub fn trailer(&self, name: &str) -> Option<&str> {
        self.trailers
            .iter()
            .find(|(n, _)| n == name)
            .map(|(_, v)| v.as_str())
    }

    /// The body as UTF-8 (lossy).
    pub fn text(&self) -> String {
        String::from_utf8_lossy(&self.body).into_owned()
    }
}

/// A persistent (keep-alive) connection to a server.
pub struct Client {
    reader: BufReader<TcpStream>,
    writer: TcpStream,
}

impl Client {
    /// Connect, with generous default timeouts (tests override the server
    /// side; the client side only guards against hangs).
    pub fn connect(addr: impl ToSocketAddrs) -> std::io::Result<Client> {
        let stream = TcpStream::connect(addr)?;
        stream.set_read_timeout(Some(Duration::from_secs(30)))?;
        stream.set_write_timeout(Some(Duration::from_secs(30)))?;
        stream.set_nodelay(true).ok();
        let writer = stream.try_clone()?;
        Ok(Client {
            reader: BufReader::new(stream),
            writer,
        })
    }

    /// Send one request with an optional `Content-Length` body and read the
    /// response.
    pub fn request(
        &mut self,
        method: &str,
        target: &str,
        headers: &[(&str, &str)],
        body: &[u8],
    ) -> std::io::Result<Response> {
        write!(self.writer, "{method} {target} HTTP/1.1\r\nhost: foxq\r\n")?;
        for (name, value) in headers {
            write!(self.writer, "{name}: {value}\r\n")?;
        }
        if !body.is_empty() || method == "POST" {
            write!(self.writer, "content-length: {}\r\n", body.len())?;
        }
        self.writer.write_all(b"\r\n")?;
        self.writer.write_all(body)?;
        self.writer.flush()?;
        self.read_response()
    }

    /// Send one request with a `Transfer-Encoding: chunked` body (one chunk
    /// per slice) and read the response.
    pub fn request_chunked<'a>(
        &mut self,
        method: &str,
        target: &str,
        chunks: impl IntoIterator<Item = &'a [u8]>,
    ) -> std::io::Result<Response> {
        write!(
            self.writer,
            "{method} {target} HTTP/1.1\r\nhost: foxq\r\ntransfer-encoding: chunked\r\n\r\n"
        )?;
        for chunk in chunks {
            if chunk.is_empty() {
                continue;
            }
            write!(self.writer, "{:x}\r\n", chunk.len())?;
            self.writer.write_all(chunk)?;
            self.writer.write_all(b"\r\n")?;
        }
        self.writer.write_all(b"0\r\n\r\n")?;
        self.writer.flush()?;
        self.read_response()
    }

    /// Like [`Client::request_chunked`], but tolerates the server replying
    /// (and resetting the connection) *before* the whole body is sent —
    /// the expected shape of an over-limit 413. Returns the response and
    /// the number of body-payload bytes successfully written.
    pub fn request_chunked_expecting_early_reply<'a>(
        &mut self,
        method: &str,
        target: &str,
        chunks: impl IntoIterator<Item = &'a [u8]>,
    ) -> std::io::Result<(Response, u64)> {
        write!(
            self.writer,
            "{method} {target} HTTP/1.1\r\nhost: foxq\r\ntransfer-encoding: chunked\r\n\r\n"
        )?;
        let mut sent = 0u64;
        let mut send_failed = false;
        for chunk in chunks {
            if chunk.is_empty() {
                continue;
            }
            let framed = format!("{:x}\r\n", chunk.len());
            let r = self
                .writer
                .write_all(framed.as_bytes())
                .and_then(|_| self.writer.write_all(chunk))
                .and_then(|_| self.writer.write_all(b"\r\n"));
            match r {
                Ok(()) => sent += chunk.len() as u64,
                Err(_) => {
                    // The server already answered and stopped reading.
                    send_failed = true;
                    break;
                }
            }
        }
        if !send_failed {
            let _ = self.writer.write_all(b"0\r\n\r\n");
        }
        let _ = self.writer.flush();
        Ok((self.read_response()?, sent))
    }

    /// Low-level access to the write half, for tests that need to send a
    /// deliberately partial or hand-framed request.
    pub fn raw_writer(&mut self) -> &mut TcpStream {
        &mut self.writer
    }

    /// Read one response off the connection (pairs with [`Client::raw_writer`]).
    pub fn read_response(&mut self) -> std::io::Result<Response> {
        let mut line = String::new();
        self.reader.read_line(&mut line)?;
        let mut parts = line.split_ascii_whitespace();
        let _version = parts.next();
        let status: u16 = parts.next().and_then(|s| s.parse().ok()).ok_or_else(|| {
            std::io::Error::new(std::io::ErrorKind::InvalidData, "bad status line")
        })?;
        let mut headers = Vec::new();
        loop {
            let mut line = String::new();
            self.reader.read_line(&mut line)?;
            let line = line.trim_end();
            if line.is_empty() {
                break;
            }
            if let Some((name, value)) = line.split_once(':') {
                headers.push((name.trim().to_ascii_lowercase(), value.trim().to_string()));
            }
        }
        let chunked = headers
            .iter()
            .any(|(n, v)| n == "transfer-encoding" && v.eq_ignore_ascii_case("chunked"));
        if chunked {
            let (body, trailers, chunks) = self.read_chunked_body()?;
            return Ok(Response {
                status,
                headers,
                body,
                trailers,
                chunks,
            });
        }
        let length: usize = headers
            .iter()
            .find(|(n, _)| n == "content-length")
            .and_then(|(_, v)| v.parse().ok())
            .unwrap_or(0);
        let mut body = vec![0u8; length];
        self.reader.read_exact(&mut body)?;
        Ok(Response {
            status,
            headers,
            body,
            trailers: Vec::new(),
            chunks: 0,
        })
    }

    /// Decode a chunked response body: concatenated chunk payloads, the
    /// trailer fields after the zero-size last chunk, and how many chunks
    /// the body arrived in.
    #[allow(clippy::type_complexity)]
    fn read_chunked_body(&mut self) -> std::io::Result<(Vec<u8>, Vec<(String, String)>, usize)> {
        let mut body = Vec::new();
        let mut chunks = 0usize;
        loop {
            let mut line = String::new();
            self.reader.read_line(&mut line)?;
            let size = usize::from_str_radix(line.trim(), 16).map_err(|_| {
                std::io::Error::new(std::io::ErrorKind::InvalidData, "bad chunk size")
            })?;
            if size == 0 {
                break;
            }
            chunks += 1;
            let start = body.len();
            body.resize(start + size, 0);
            self.reader.read_exact(&mut body[start..])?;
            let mut crlf = [0u8; 2];
            self.reader.read_exact(&mut crlf)?;
        }
        let mut trailers = Vec::new();
        loop {
            let mut line = String::new();
            self.reader.read_line(&mut line)?;
            let line = line.trim_end();
            if line.is_empty() {
                break;
            }
            if let Some((name, value)) = line.split_once(':') {
                trailers.push((name.trim().to_ascii_lowercase(), value.trim().to_string()));
            }
        }
        Ok((body, trailers, chunks))
    }
}

/// One-shot `GET`.
pub fn get(addr: impl ToSocketAddrs, target: &str) -> std::io::Result<Response> {
    Client::connect(addr)?.request("GET", target, &[], &[])
}

/// One-shot `POST` with a body.
pub fn post(addr: impl ToSocketAddrs, target: &str, body: &[u8]) -> std::io::Result<Response> {
    Client::connect(addr)?.request("POST", target, &[], body)
}

/// Build a `/query` target for a query text.
pub fn query_target(query: &str) -> String {
    format!("/query?q={}", urlencode(query))
}

/// Build a `/query` target that runs over a stored corpus document.
pub fn query_doc_target(query: &str, doc: &str) -> String {
    format!("/query?q={}&doc={}", urlencode(query), urlencode(doc))
}

/// Build a `/batch` target for a set of query texts.
pub fn batch_target<'a>(queries: impl IntoIterator<Item = &'a str>) -> String {
    let params: Vec<String> = queries
        .into_iter()
        .map(|q| format!("q={}", urlencode(q)))
        .collect();
    format!("/batch?{}", params.join("&"))
}
