//! A hand-rolled HTTP/1.1 subset over any `BufRead`/`Write` transport.
//!
//! The build environment has no registry access, so there is no hyper and no
//! tokio; this module implements exactly the slice of RFC 9112 the serving
//! layer needs — request line, headers, `Content-Length` and `chunked`
//! bodies, keep-alive — with hard bounds on every buffer it allocates
//! (request-line/header bytes, header count, chunk-size line length), since
//! the peer is untrusted by definition.
//!
//! The one design rule: **bodies are never buffered**. [`BodyReader`]
//! implements `BufRead` *borrowing* the connection, so a request body flows
//! straight through `foxq_xml::XmlReader` into the transducer engines while
//! the socket is still receiving it.

use std::io::{BufRead, Error, ErrorKind, Read, Write};

/// Upper bound on the request line plus all header bytes.
pub const MAX_HEAD_BYTES: usize = 16 * 1024;
/// Upper bound on the number of request headers.
pub const MAX_HEADERS: usize = 100;

/// A parse-level failure; mapped to `400 Bad Request` (or `431`) upstream.
#[derive(Debug)]
pub struct HttpError(pub String);

impl std::fmt::Display for HttpError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.0)
    }
}

impl std::error::Error for HttpError {}

fn bad(msg: impl Into<String>) -> Error {
    Error::new(ErrorKind::InvalidData, HttpError(msg.into()))
}

/// How a request frames its body.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BodyKind {
    /// No body (GET and friends, or `Content-Length: 0`).
    Empty,
    /// `Content-Length: n`.
    Sized(u64),
    /// `Transfer-Encoding: chunked`.
    Chunked,
}

/// A parsed request head. The body stays on the wire — take it with
/// [`BodyReader::new`].
#[derive(Debug)]
pub struct Request {
    pub method: String,
    /// Decoded path component (no query string).
    pub path: String,
    /// Decoded `key=value` pairs of the query string, in order.
    pub query: Vec<(String, String)>,
    /// Header `(name, value)` pairs; names lowercased.
    pub headers: Vec<(String, String)>,
    /// False for `HTTP/1.0` (connections then default to close).
    pub http11: bool,
}

impl Request {
    /// First value of a header, by lowercase name.
    pub fn header(&self, name: &str) -> Option<&str> {
        self.headers
            .iter()
            .find(|(n, _)| n == name)
            .map(|(_, v)| v.as_str())
    }

    /// All values of a header, by lowercase name, in order.
    pub fn header_values<'a>(&'a self, name: &'a str) -> impl Iterator<Item = &'a str> {
        self.headers
            .iter()
            .filter(move |(n, _)| n == name)
            .map(|(_, v)| v.as_str())
    }

    /// All values of the query parameter `name`, in order.
    pub fn params<'a>(&'a self, name: &'a str) -> impl Iterator<Item = &'a str> {
        self.query
            .iter()
            .filter(move |(k, _)| k == name)
            .map(|(_, v)| v.as_str())
    }

    /// The request's body framing, per RFC 9112 §6.3. Ambiguous framing is
    /// rejected outright — these are the request-smuggling shapes:
    ///
    /// * `Transfer-Encoding` alongside any `Content-Length` (a front proxy
    ///   honoring one and this server the other would desynchronize);
    /// * more than one `Content-Length` header, even with equal values;
    /// * a `Content-Length` list value (`"5, 5"`) or any non-digit byte.
    ///
    /// Callers must treat `Err` as 400 *and* close the connection: the body
    /// length is unknowable, so the next request's start is too.
    pub fn body_kind(&self) -> Result<BodyKind, Error> {
        let te: Vec<&str> = self.header_values("transfer-encoding").collect();
        let cl: Vec<&str> = self.header_values("content-length").collect();
        if !te.is_empty() {
            if !cl.is_empty() {
                return Err(bad(
                    "both transfer-encoding and content-length present (ambiguous framing)",
                ));
            }
            if let [one] = te.as_slice() {
                if one.eq_ignore_ascii_case("chunked") {
                    return Ok(BodyKind::Chunked);
                }
            }
            return Err(bad(format!("unsupported transfer-encoding {te:?}")));
        }
        match cl.as_slice() {
            [] => Ok(BodyKind::Empty),
            [v] => {
                let v = v.trim();
                // Strict digits only: no sign, no list value ("5, 5"), no
                // leading-'+' — anything a lenient front proxy might read
                // differently than we do.
                if v.is_empty() || !v.bytes().all(|b| b.is_ascii_digit()) {
                    return Err(bad(format!("bad content-length {v:?}")));
                }
                let n: u64 = v
                    .parse()
                    .map_err(|_| bad(format!("bad content-length {v:?}")))?;
                Ok(if n == 0 {
                    BodyKind::Empty
                } else {
                    BodyKind::Sized(n)
                })
            }
            many => Err(bad(format!(
                "{} content-length headers (ambiguous framing)",
                many.len()
            ))),
        }
    }

    /// Whether the connection may be reused after this exchange.
    pub fn keep_alive(&self) -> bool {
        match self.header("connection") {
            Some(v) if v.eq_ignore_ascii_case("close") => false,
            Some(v) if v.eq_ignore_ascii_case("keep-alive") => true,
            _ => self.http11,
        }
    }
}

/// Read one head line (request line or header), CRLF- or LF-terminated,
/// within the shared head budget. `Ok(None)` = clean EOF before any byte.
fn read_line<R: BufRead>(r: &mut R, budget: &mut usize) -> Result<Option<String>, Error> {
    let mut line: Vec<u8> = Vec::new();
    loop {
        let buf = r.fill_buf()?;
        if buf.is_empty() {
            if line.is_empty() {
                return Ok(None);
            }
            return Err(bad("connection closed mid-line"));
        }
        let nl = buf.iter().position(|&b| b == b'\n');
        let take = nl.map(|i| i + 1).unwrap_or(buf.len());
        if take > *budget {
            return Err(bad("request head too large"));
        }
        *budget -= take;
        line.extend_from_slice(&buf[..take]);
        r.consume(take);
        if nl.is_some() {
            while matches!(line.last(), Some(b'\n') | Some(b'\r')) {
                line.pop();
            }
            return String::from_utf8(line)
                .map(Some)
                .map_err(|_| bad("non-UTF-8 head"));
        }
    }
}

/// Parse one request head off the connection. `Ok(None)` when the peer
/// closed the connection cleanly between requests (keep-alive end).
pub fn read_request<R: BufRead>(r: &mut R) -> Result<Option<Request>, Error> {
    let mut budget = MAX_HEAD_BYTES;
    let Some(request_line) = read_line(r, &mut budget)? else {
        return Ok(None);
    };
    let mut parts = request_line.split_ascii_whitespace();
    let method = parts.next().ok_or_else(|| bad("empty request line"))?;
    let target = parts.next().ok_or_else(|| bad("missing request target"))?;
    let version = parts.next().ok_or_else(|| bad("missing HTTP version"))?;
    let http11 = match version {
        "HTTP/1.1" => true,
        "HTTP/1.0" => false,
        v => return Err(bad(format!("unsupported version {v:?}"))),
    };
    if parts.next().is_some() {
        return Err(bad("malformed request line"));
    }

    let (raw_path, raw_query) = match target.split_once('?') {
        Some((p, q)) => (p, Some(q)),
        None => (target, None),
    };
    let path = percent_decode(raw_path).ok_or_else(|| bad("bad percent-encoding in path"))?;
    let mut query = Vec::new();
    if let Some(raw) = raw_query {
        for pair in raw.split('&').filter(|p| !p.is_empty()) {
            let (k, v) = pair.split_once('=').unwrap_or((pair, ""));
            let k = form_decode(k).ok_or_else(|| bad("bad percent-encoding in query"))?;
            let v = form_decode(v).ok_or_else(|| bad("bad percent-encoding in query"))?;
            query.push((k, v));
        }
    }

    let mut headers = Vec::new();
    loop {
        let line = read_line(r, &mut budget)?.ok_or_else(|| bad("EOF inside headers"))?;
        if line.is_empty() {
            break;
        }
        if headers.len() >= MAX_HEADERS {
            return Err(bad("too many headers"));
        }
        let (name, value) = line
            .split_once(':')
            .ok_or_else(|| bad(format!("malformed header {line:?}")))?;
        headers.push((name.trim().to_ascii_lowercase(), value.trim().to_string()));
    }

    Ok(Some(Request {
        method: method.to_string(),
        path,
        query,
        headers,
        http11,
    }))
}

/// Decode `%XX` escapes (strict: a lone `%` is an error → `None`).
pub fn percent_decode(s: &str) -> Option<String> {
    let mut out = Vec::with_capacity(s.len());
    let bytes = s.as_bytes();
    let mut i = 0;
    while i < bytes.len() {
        match bytes[i] {
            b'%' => {
                let hi = char::from(*bytes.get(i + 1)?).to_digit(16)?;
                let lo = char::from(*bytes.get(i + 2)?).to_digit(16)?;
                out.push((hi * 16 + lo) as u8);
                i += 3;
            }
            b => {
                out.push(b);
                i += 1;
            }
        }
    }
    String::from_utf8(out).ok()
}

/// Decode an `application/x-www-form-urlencoded` component (`+` = space).
pub fn form_decode(s: &str) -> Option<String> {
    percent_decode(&s.replace('+', " "))
}

/// Percent-encode a string for use inside a query-string value.
pub fn urlencode(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for &b in s.as_bytes() {
        match b {
            b'A'..=b'Z' | b'a'..=b'z' | b'0'..=b'9' | b'-' | b'_' | b'.' | b'~' => {
                out.push(b as char)
            }
            _ => out.push_str(&format!("%{b:02X}")),
        }
    }
    out
}

// ---------------------------------------------------------------------------
// Streaming bodies
// ---------------------------------------------------------------------------

enum BodyState {
    /// Bytes left of a sized body.
    Sized(u64),
    /// Chunked: bytes left in the current chunk; `first` until the first
    /// size line has been read.
    Chunked { in_chunk: u64, first: bool },
    /// Fully consumed (or empty from the start).
    Done,
}

/// Streams a request body off the connection without ever buffering it.
///
/// Implements `BufRead` so `XmlReader` can parse straight off the socket
/// buffer; reports clean EOF at the body's end, leaving the transport
/// positioned at the next request (keep-alive safe). Chunk-size lines are
/// bounded; `Transfer-Encoding: chunked` trailers are consumed and dropped.
pub struct BodyReader<'a, R: BufRead> {
    inner: &'a mut R,
    state: BodyState,
}

impl<'a, R: BufRead> BodyReader<'a, R> {
    pub fn new(inner: &'a mut R, kind: BodyKind) -> Self {
        let state = match kind {
            BodyKind::Empty => BodyState::Done,
            BodyKind::Sized(n) => BodyState::Sized(n),
            BodyKind::Chunked => BodyState::Chunked {
                in_chunk: 0,
                first: true,
            },
        };
        BodyReader { inner, state }
    }

    /// Whether the body has been consumed to its framed end (safe to reuse
    /// the connection).
    pub fn exhausted(&self) -> bool {
        matches!(self.state, BodyState::Done)
    }

    /// Read one CRLF/LF-terminated chunk-framing line (bounded).
    fn framing_line(&mut self) -> Result<String, Error> {
        let mut budget = 256usize;
        read_line(self.inner, &mut budget)?.ok_or_else(|| bad("EOF inside chunked framing"))
    }

    /// Advance chunked state until data is available or the body ends.
    fn next_chunk(&mut self) -> Result<(), Error> {
        let BodyState::Chunked { in_chunk: 0, first } = self.state else {
            return Ok(());
        };
        if !first {
            // Consume the CRLF that terminates the previous chunk.
            let sep = self.framing_line()?;
            if !sep.is_empty() {
                return Err(bad("missing CRLF after chunk"));
            }
        }
        let line = self.framing_line()?;
        let size_hex = line.split(';').next().unwrap_or("").trim();
        let size = u64::from_str_radix(size_hex, 16)
            .map_err(|_| bad(format!("bad chunk size {size_hex:?}")))?;
        if size == 0 {
            // Trailer section: header lines then an empty line. Bounded
            // like the request head — endless trailers must not wedge a
            // worker (the framing bytes bypass the body byte budget).
            for _ in 0..MAX_HEADERS {
                if self.framing_line()?.is_empty() {
                    self.state = BodyState::Done;
                    return Ok(());
                }
            }
            return Err(bad("too many chunked trailers"));
        }
        self.state = BodyState::Chunked {
            in_chunk: size,
            first: false,
        };
        Ok(())
    }
}

impl<R: BufRead> Read for BodyReader<'_, R> {
    fn read(&mut self, buf: &mut [u8]) -> std::io::Result<usize> {
        let available = self.fill_buf()?;
        let n = available.len().min(buf.len());
        buf[..n].copy_from_slice(&available[..n]);
        self.consume(n);
        Ok(n)
    }
}

impl<R: BufRead> BufRead for BodyReader<'_, R> {
    fn fill_buf(&mut self) -> std::io::Result<&[u8]> {
        self.next_chunk()?;
        let limit = match self.state {
            BodyState::Done => return Ok(&[]),
            BodyState::Sized(n) => n,
            BodyState::Chunked { in_chunk, .. } => in_chunk,
        };
        let buf = self.inner.fill_buf()?;
        if buf.is_empty() {
            return Err(Error::new(
                ErrorKind::UnexpectedEof,
                HttpError("connection closed mid-body".into()),
            ));
        }
        let n = buf.len().min(usize::try_from(limit).unwrap_or(usize::MAX));
        Ok(&buf[..n])
    }

    fn consume(&mut self, amt: usize) {
        if amt == 0 {
            return;
        }
        self.inner.consume(amt);
        match &mut self.state {
            BodyState::Sized(n) => {
                *n -= amt as u64;
                if *n == 0 {
                    self.state = BodyState::Done;
                }
            }
            BodyState::Chunked { in_chunk, .. } => *in_chunk -= amt as u64,
            BodyState::Done => unreachable!("consume on finished body"),
        }
    }
}

// ---------------------------------------------------------------------------
// Responses
// ---------------------------------------------------------------------------

/// Standard reason phrase for the status codes the server emits.
pub fn reason(status: u16) -> &'static str {
    match status {
        200 => "OK",
        400 => "Bad Request",
        404 => "Not Found",
        405 => "Method Not Allowed",
        408 => "Request Timeout",
        413 => "Content Too Large",
        422 => "Unprocessable Content",
        500 => "Internal Server Error",
        503 => "Service Unavailable",
        _ => "Unknown",
    }
}

/// Write a complete response with `Content-Length` framing.
pub fn write_response(
    w: &mut impl Write,
    status: u16,
    content_type: &str,
    extra_headers: &[(&str, String)],
    body: &[u8],
    keep_alive: bool,
) -> std::io::Result<()> {
    write!(
        w,
        "HTTP/1.1 {status} {}\r\ncontent-type: {content_type}\r\ncontent-length: {}\r\nconnection: {}\r\n",
        reason(status),
        body.len(),
        if keep_alive { "keep-alive" } else { "close" },
    )?;
    for (name, value) in extra_headers {
        write!(w, "{name}: {value}\r\n")?;
    }
    w.write_all(b"\r\n")?;
    w.write_all(body)?;
    w.flush()
}

/// Write a chunked-response head: status line, `transfer-encoding:
/// chunked`, and a `trailer:` declaration naming the fields that will
/// follow the final chunk. No `content-length` — the body's extent is
/// framed per chunk, which is what lets the server start answering
/// before the engine has finished (earliest emission).
pub fn write_chunked_head(
    w: &mut impl Write,
    status: u16,
    content_type: &str,
    extra_headers: &[(&str, String)],
    trailer_names: &[&str],
    keep_alive: bool,
) -> std::io::Result<()> {
    write!(
        w,
        "HTTP/1.1 {status} {}\r\ncontent-type: {content_type}\r\ntransfer-encoding: chunked\r\nconnection: {}\r\n",
        reason(status),
        if keep_alive { "keep-alive" } else { "close" },
    )?;
    if !trailer_names.is_empty() {
        write!(w, "trailer: {}\r\n", trailer_names.join(", "))?;
    }
    for (name, value) in extra_headers {
        write!(w, "{name}: {value}\r\n")?;
    }
    w.write_all(b"\r\n")?;
    w.flush()
}

/// Write one body chunk and flush it to the wire. Empty data is a no-op:
/// a zero-size chunk would terminate the body.
pub fn write_chunk(w: &mut impl Write, data: &[u8]) -> std::io::Result<()> {
    if data.is_empty() {
        return Ok(());
    }
    write!(w, "{:x}\r\n", data.len())?;
    w.write_all(data)?;
    w.write_all(b"\r\n")?;
    w.flush()
}

/// The bytes that terminate a chunked body: the zero-size last chunk, the
/// trailer fields (computed only after the run — e.g. peak-memory marks),
/// and the final empty line. Returned as a buffer rather than written so
/// the reactor's resumable `WriteResponse` phase can flush it under
/// backpressure.
pub fn chunked_tail(trailers: &[(&str, String)]) -> Vec<u8> {
    let mut out = b"0\r\n".to_vec();
    for (name, value) in trailers {
        out.extend_from_slice(name.as_bytes());
        out.extend_from_slice(b": ");
        out.extend_from_slice(value.as_bytes());
        out.extend_from_slice(b"\r\n");
    }
    out.extend_from_slice(b"\r\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::BufReader;

    fn parse(head: &str) -> Request {
        read_request(&mut BufReader::new(head.as_bytes()))
            .unwrap()
            .unwrap()
    }

    #[test]
    fn request_line_and_headers() {
        let r = parse("POST /query?q=%3Co%2F%3E&q=two+words HTTP/1.1\r\nHost: x\r\nContent-Length: 5\r\n\r\nhello");
        assert_eq!(r.method, "POST");
        assert_eq!(r.path, "/query");
        assert_eq!(r.params("q").collect::<Vec<_>>(), vec!["<o/>", "two words"]);
        assert_eq!(r.header("host"), Some("x"));
        assert_eq!(r.body_kind().unwrap(), BodyKind::Sized(5));
        assert!(r.keep_alive());
    }

    #[test]
    fn ambiguous_body_framing_is_rejected() {
        // Two Content-Length headers, conflicting values.
        let r = parse("POST /q HTTP/1.1\r\nContent-Length: 5\r\nContent-Length: 0\r\n\r\n");
        assert!(r.body_kind().unwrap_err().to_string().contains("ambiguous"));
        // Two Content-Length headers, *equal* values: still rejected (a
        // front proxy may merge or drop one).
        let r = parse("POST /q HTTP/1.1\r\nContent-Length: 5\r\nContent-Length: 5\r\n\r\n");
        assert!(r.body_kind().is_err());
        // A list value smuggled in one header line.
        let r = parse("POST /q HTTP/1.1\r\nContent-Length: 5, 5\r\n\r\n");
        assert!(r.body_kind().is_err());
        // Signs and garbage.
        for v in ["+5", "-1", "5x", ""] {
            let r = parse(&format!("POST /q HTTP/1.1\r\nContent-Length: {v}\r\n\r\n"));
            assert!(r.body_kind().is_err(), "content-length {v:?} accepted");
        }
        // Transfer-Encoding together with Content-Length.
        let r =
            parse("POST /q HTTP/1.1\r\nTransfer-Encoding: chunked\r\nContent-Length: 4\r\n\r\n");
        assert!(r.body_kind().unwrap_err().to_string().contains("ambiguous"));
        // Doubled Transfer-Encoding headers.
        let r = parse(
            "POST /q HTTP/1.1\r\nTransfer-Encoding: chunked\r\nTransfer-Encoding: chunked\r\n\r\n",
        );
        assert!(r.body_kind().is_err());
        // The well-formed shapes still parse.
        let r = parse("POST /q HTTP/1.1\r\nContent-Length: 7\r\n\r\n");
        assert_eq!(r.body_kind().unwrap(), BodyKind::Sized(7));
        let r = parse("POST /q HTTP/1.1\r\nTransfer-Encoding: chunked\r\n\r\n");
        assert_eq!(r.body_kind().unwrap(), BodyKind::Chunked);
    }

    #[test]
    fn clean_eof_between_requests_is_none() {
        assert!(read_request(&mut BufReader::new(&b""[..]))
            .unwrap()
            .is_none());
    }

    #[test]
    fn oversized_head_is_rejected() {
        let huge = format!("GET /{} HTTP/1.1\r\n\r\n", "a".repeat(MAX_HEAD_BYTES));
        let err = read_request(&mut BufReader::new(huge.as_bytes())).unwrap_err();
        assert!(err.to_string().contains("too large"), "{err}");
    }

    #[test]
    fn sized_body_reads_to_clean_eof() {
        let mut conn = BufReader::new(&b"hello rest-of-stream"[..]);
        let mut body = BodyReader::new(&mut conn, BodyKind::Sized(5));
        let mut out = String::new();
        body.read_to_string(&mut out).unwrap();
        assert_eq!(out, "hello");
        assert!(body.exhausted());
        // The transport is positioned exactly after the body.
        let mut rest = String::new();
        conn.read_to_string(&mut rest).unwrap();
        assert_eq!(rest, " rest-of-stream");
    }

    #[test]
    fn chunked_body_decodes_and_leaves_the_stream_positioned() {
        let wire = b"5\r\nhello\r\n8;ext=1\r\n, chunks\r\n0\r\nTrailer: x\r\n\r\nNEXT";
        let mut conn = BufReader::new(&wire[..]);
        let mut body = BodyReader::new(&mut conn, BodyKind::Chunked);
        let mut out = String::new();
        body.read_to_string(&mut out).unwrap();
        assert_eq!(out, "hello, chunks");
        assert!(body.exhausted());
        let mut rest = String::new();
        conn.read_to_string(&mut rest).unwrap();
        assert_eq!(rest, "NEXT");
    }

    #[test]
    fn truncated_sized_body_is_an_error() {
        let mut conn = BufReader::new(&b"hel"[..]);
        let mut body = BodyReader::new(&mut conn, BodyKind::Sized(5));
        let mut out = Vec::new();
        let err = body.read_to_end(&mut out).unwrap_err();
        assert_eq!(err.kind(), ErrorKind::UnexpectedEof);
    }

    #[test]
    fn bad_chunk_size_is_an_error() {
        let mut conn = BufReader::new(&b"zz\r\nhello"[..]);
        let mut body = BodyReader::new(&mut conn, BodyKind::Chunked);
        let mut out = Vec::new();
        assert!(body.read_to_end(&mut out).is_err());
    }

    #[test]
    fn chunked_response_wire_format() {
        let mut out = Vec::new();
        write_chunked_head(
            &mut out,
            200,
            "application/xml",
            &[("x-req", "abc".to_string())],
            &["x-peak"],
            true,
        )
        .unwrap();
        write_chunk(&mut out, b"<o>").unwrap();
        write_chunk(&mut out, b"").unwrap(); // must not terminate the body
        write_chunk(&mut out, b"hello</o>").unwrap();
        out.extend_from_slice(&chunked_tail(&[("x-peak", "7".to_string())]));
        let text = String::from_utf8(out).unwrap();
        assert!(text.starts_with("HTTP/1.1 200 OK\r\n"), "{text}");
        assert!(text.contains("transfer-encoding: chunked\r\n"));
        assert!(!text.contains("content-length"));
        assert!(text.contains("trailer: x-peak\r\n"));
        let body_at = text.find("\r\n\r\n").unwrap() + 4;
        assert_eq!(
            &text[body_at..],
            "3\r\n<o>\r\n9\r\nhello</o>\r\n0\r\nx-peak: 7\r\n\r\n"
        );
        // Our own BodyReader decodes it (trailers consumed and dropped).
        let mut conn = BufReader::new(&text.as_bytes()[body_at..]);
        let mut body = BodyReader::new(&mut conn, BodyKind::Chunked);
        let mut decoded = String::new();
        body.read_to_string(&mut decoded).unwrap();
        assert_eq!(decoded, "<o>hello</o>");
        assert!(body.exhausted());
    }

    #[test]
    fn urlencode_roundtrips_through_form_decode() {
        let q = r#"<o>{$input/site[@id = "x y"]}</o>"#;
        assert_eq!(form_decode(&urlencode(q)).unwrap(), q);
    }

    #[test]
    fn response_wire_format() {
        let mut out = Vec::new();
        write_response(
            &mut out,
            200,
            "text/plain",
            &[("x-test", "1".to_string())],
            b"ok",
            true,
        )
        .unwrap();
        let text = String::from_utf8(out).unwrap();
        assert!(text.starts_with("HTTP/1.1 200 OK\r\n"), "{text}");
        assert!(text.contains("content-length: 2\r\n"));
        assert!(text.contains("connection: keep-alive\r\n"));
        assert!(text.contains("x-test: 1\r\n"));
        assert!(text.ends_with("\r\n\r\nok"));
    }
}
