//! Process-wide serving metrics, rendered in the Prometheus text format.
//!
//! Plain `AtomicU64` counters and [`foxq_obs::Histogram`]s behind an
//! `Arc`: workers record with `Relaxed` ordering (monotone counters need
//! no synchronization beyond atomicity), `GET /metrics` renders a
//! snapshot. Cache statistics are not duplicated here — the render pulls
//! them live from the shared [`foxq_service::SharedQueryCache`] so the
//! two views can never drift.

use foxq_obs::{Histogram, Stage};
use foxq_service::CacheStats;
use std::sync::atomic::{AtomicU64, Ordering};

/// The endpoints broken out in `foxq_requests_total`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Endpoint {
    Healthz,
    Metrics,
    Query,
    Batch,
    /// `GET /corpus` (manifest) and `POST /corpus/{id}` (ingest).
    Corpus,
    Shutdown,
    /// `GET /debug/requests` (the slow-query ring).
    Debug,
    Other,
}

impl Endpoint {
    const ALL: [Endpoint; 8] = [
        Endpoint::Healthz,
        Endpoint::Metrics,
        Endpoint::Query,
        Endpoint::Batch,
        Endpoint::Corpus,
        Endpoint::Shutdown,
        Endpoint::Debug,
        Endpoint::Other,
    ];

    pub(crate) fn name(self) -> &'static str {
        match self {
            Endpoint::Healthz => "healthz",
            Endpoint::Metrics => "metrics",
            Endpoint::Query => "query",
            Endpoint::Batch => "batch",
            Endpoint::Corpus => "corpus",
            Endpoint::Shutdown => "shutdown",
            Endpoint::Debug => "debug",
            Endpoint::Other => "other",
        }
    }

    fn idx(self) -> usize {
        Self::ALL.iter().position(|e| *e == self).unwrap()
    }
}

/// Status codes the server can emit (see [`crate::http::reason`]).
const CODES: [u16; 9] = [200, 400, 404, 405, 408, 413, 422, 500, 503];

/// Live corpus gauges spliced into a render (see [`Metrics::render`]).
#[derive(Debug, Clone, Copy, Default)]
pub struct CorpusGauges {
    /// Stored documents.
    pub docs: u64,
    /// Stored tapes still on the legacy FET1 format.
    pub fet1_tapes: u64,
    /// Stored tapes on the current FET2 format.
    pub fet2_tapes: u64,
}

/// Counter registry shared by every worker.
pub struct Metrics {
    /// Connections accepted over the process lifetime.
    pub connections_total: AtomicU64,
    /// Connections currently being served (gauge).
    pub connections_active: AtomicU64,
    /// Connections draining in the Linger phase (gauge).
    pub connections_lingering: AtomicU64,
    /// Requests dispatched to workers but not yet picked up (gauge).
    pub worker_queue_depth: AtomicU64,
    /// Times the accept gate closed because `max_connections` was reached.
    pub accept_gate_rejections_total: AtomicU64,
    /// Requests received, by endpoint.
    requests: [AtomicU64; 8],
    /// Responses sent, by status code.
    responses: [AtomicU64; 9],
    /// Error responses sent, by status class (4xx / 5xx).
    http_errors_4xx: AtomicU64,
    http_errors_5xx: AtomicU64,
    /// Request bytes delivered to request processing (heads and bodies; a
    /// lingering close's discarded tail is excluded by design).
    pub bytes_in_total: AtomicU64,
    /// Response bytes written to sockets.
    pub bytes_out_total: AtomicU64,
    /// XML input events parsed across /query and /batch runs.
    pub input_events_total: AtomicU64,
    /// Output events produced by successful lanes.
    pub output_events_total: AtomicU64,
    /// Query lanes run (one per query per request).
    pub lane_runs_total: AtomicU64,
    /// Lanes that ended in a per-lane error (fuel, output budget).
    pub lane_failures_total: AtomicU64,
    /// Input events the shared label prefilter withheld from eligible lanes.
    pub prefilter_skipped_total: AtomicU64,
    /// Tape bytes seeked over (never decoded) on corpus query runs.
    pub seek_skipped_bytes_total: AtomicU64,
    /// Tape bytes the FET2 label skip index jumped over on corpus query
    /// runs (no frame inside was decoded).
    pub index_skipped_bytes_total: AtomicU64,
    /// Responses streamed with chunked transfer-encoding (`?stream=1`).
    pub streamed_responses_total: AtomicU64,
    /// Queries answered from a stored tape (`/query?doc=` hits).
    pub corpus_hits_total: AtomicU64,
    /// Documents ingested into the corpus (`POST /corpus/{id}`).
    pub corpus_ingests_total: AtomicU64,
    /// Head-completion to full-flush latency, by endpoint.
    request_latency: [Histogram; 8],
    /// Head-completion to first response byte on the socket.
    pub ttfb: Histogram,
    /// Per-request engine time, by pipeline stage.
    engine_stage: [Histogram; Stage::COUNT],
    /// Input events delivered before the first irrevocable emission flush
    /// (streamed query runs) — how much document a client waits through
    /// before the first byte can exist.
    pub first_emit_events: Histogram,
    /// Irrevocable emission flushes per streamed query run.
    pub emit_flushes_per_request: Histogram,
    /// Per-request peak of live expression nodes (query runs).
    pub live_nodes_peak: Histogram,
    /// Per-request peak of approximate live expression bytes.
    pub live_bytes_peak: Histogram,
    /// Allocator bytes billed to the worker thread per /query request.
    pub alloc_bytes_per_request: Histogram,
    /// Reactor busy time per wakeup (everything between two epoll waits).
    pub loop_lag: Histogram,
    /// Time blocked inside `epoll_wait` per reactor cycle.
    pub epoll_wait: Histogram,
}

impl Default for Metrics {
    fn default() -> Metrics {
        Metrics {
            connections_total: AtomicU64::new(0),
            connections_active: AtomicU64::new(0),
            connections_lingering: AtomicU64::new(0),
            worker_queue_depth: AtomicU64::new(0),
            accept_gate_rejections_total: AtomicU64::new(0),
            requests: Default::default(),
            responses: Default::default(),
            http_errors_4xx: AtomicU64::new(0),
            http_errors_5xx: AtomicU64::new(0),
            bytes_in_total: AtomicU64::new(0),
            bytes_out_total: AtomicU64::new(0),
            input_events_total: AtomicU64::new(0),
            output_events_total: AtomicU64::new(0),
            lane_runs_total: AtomicU64::new(0),
            lane_failures_total: AtomicU64::new(0),
            prefilter_skipped_total: AtomicU64::new(0),
            seek_skipped_bytes_total: AtomicU64::new(0),
            index_skipped_bytes_total: AtomicU64::new(0),
            streamed_responses_total: AtomicU64::new(0),
            corpus_hits_total: AtomicU64::new(0),
            corpus_ingests_total: AtomicU64::new(0),
            request_latency: std::array::from_fn(|_| Histogram::latency()),
            ttfb: Histogram::latency(),
            engine_stage: std::array::from_fn(|_| Histogram::latency()),
            first_emit_events: Histogram::nodes(),
            emit_flushes_per_request: Histogram::nodes(),
            live_nodes_peak: Histogram::nodes(),
            live_bytes_peak: Histogram::bytes(),
            alloc_bytes_per_request: Histogram::bytes(),
            loop_lag: Histogram::reactor(),
            epoll_wait: Histogram::reactor(),
        }
    }
}

/// Add to a counter (relaxed; all metrics are monotone or gauge-like).
pub fn add(counter: &AtomicU64, n: u64) {
    counter.fetch_add(n, Ordering::Relaxed);
}

/// Decrement a gauge.
pub fn sub(counter: &AtomicU64, n: u64) {
    counter.fetch_sub(n, Ordering::Relaxed);
}

fn get(counter: &AtomicU64) -> u64 {
    counter.load(Ordering::Relaxed)
}

impl Metrics {
    pub fn record_request(&self, endpoint: Endpoint) {
        add(&self.requests[endpoint.idx()], 1);
    }

    pub fn record_response(&self, status: u16) {
        if let Some(i) = CODES.iter().position(|&c| c == status) {
            add(&self.responses[i], 1);
        }
        match status {
            400..=499 => add(&self.http_errors_4xx, 1),
            500..=599 => add(&self.http_errors_5xx, 1),
            _ => {}
        }
    }

    /// Requests seen on one endpoint (used by tests).
    pub fn requests(&self, endpoint: Endpoint) -> u64 {
        get(&self.requests[endpoint.idx()])
    }

    /// Responses sent with one status code (used by tests).
    pub fn responses(&self, status: u16) -> u64 {
        CODES
            .iter()
            .position(|&c| c == status)
            .map_or(0, |i| get(&self.responses[i]))
    }

    /// The request-latency histogram of one endpoint.
    pub fn request_latency(&self, endpoint: Endpoint) -> &Histogram {
        &self.request_latency[endpoint.idx()]
    }

    /// The engine-time histogram of one pipeline stage.
    pub fn engine_stage(&self, stage: Stage) -> &Histogram {
        &self.engine_stage[stage.idx()]
    }

    /// Render the Prometheus text exposition, splicing in the query cache's
    /// live counters and (when a corpus is configured) the stored-document
    /// and per-tape-version gauges.
    pub fn render(&self, cache: CacheStats, corpus: Option<CorpusGauges>) -> String {
        let mut out = String::with_capacity(8192);
        let mut counter = |name: &str, help: &str, value: u64| {
            scalar(&mut out, name, help, "counter", value);
        };
        counter(
            "foxq_connections_total",
            "Connections accepted.",
            get(&self.connections_total),
        );
        counter(
            "foxq_bytes_in_total",
            "Request bytes delivered to request processing.",
            get(&self.bytes_in_total),
        );
        counter(
            "foxq_bytes_out_total",
            "Response bytes written to sockets.",
            get(&self.bytes_out_total),
        );
        counter(
            "foxq_accept_gate_rejections_total",
            "Times the accept gate closed at max_connections.",
            get(&self.accept_gate_rejections_total),
        );
        counter(
            "foxq_input_events_total",
            "XML input events parsed across query runs.",
            get(&self.input_events_total),
        );
        counter(
            "foxq_output_events_total",
            "Output events produced by successful lanes.",
            get(&self.output_events_total),
        );
        counter(
            "foxq_lane_runs_total",
            "Query lanes run (one per query per request).",
            get(&self.lane_runs_total),
        );
        counter(
            "foxq_lane_failures_total",
            "Lanes that ended in a per-lane error.",
            get(&self.lane_failures_total),
        );
        counter(
            "foxq_prefilter_skipped_events_total",
            "Input events withheld from eligible lanes by the label prefilter.",
            get(&self.prefilter_skipped_total),
        );
        counter(
            "foxq_seek_skipped_bytes_total",
            "Tape bytes seeked over (never decoded) on corpus query runs.",
            get(&self.seek_skipped_bytes_total),
        );
        counter(
            "foxq_index_skipped_bytes_total",
            "Tape bytes the label skip index jumped over on corpus query runs.",
            get(&self.index_skipped_bytes_total),
        );
        counter(
            "foxq_streamed_responses_total",
            "Responses streamed with chunked transfer-encoding.",
            get(&self.streamed_responses_total),
        );
        counter(
            "foxq_corpus_hits_total",
            "Queries answered from a stored tape (/query?doc=).",
            get(&self.corpus_hits_total),
        );
        counter(
            "foxq_corpus_ingests_total",
            "Documents ingested into the corpus.",
            get(&self.corpus_ingests_total),
        );
        counter(
            "foxq_query_cache_hits_total",
            "Query cache lookups answered without compiling.",
            cache.hits,
        );
        counter(
            "foxq_query_cache_misses_total",
            "Query cache lookups that required a compile.",
            cache.misses,
        );
        counter(
            "foxq_query_cache_compiles_total",
            "Successful compilations performed by the cache.",
            cache.compiles,
        );
        counter(
            "foxq_query_cache_evictions_total",
            "Cache entries evicted.",
            cache.evictions,
        );
        scalar(
            &mut out,
            "foxq_connections_active",
            "Connections currently being served.",
            "gauge",
            get(&self.connections_active),
        );
        scalar(
            &mut out,
            "foxq_connections_lingering",
            "Connections draining in the Linger phase.",
            "gauge",
            get(&self.connections_lingering),
        );
        scalar(
            &mut out,
            "foxq_worker_queue_depth",
            "Requests dispatched to workers but not yet picked up.",
            "gauge",
            get(&self.worker_queue_depth),
        );
        if let Some(corpus) = corpus {
            scalar(
                &mut out,
                "foxq_corpus_docs",
                "Documents currently stored in the corpus.",
                "gauge",
                corpus.docs,
            );
            out.push_str(
                "# HELP foxq_corpus_tapes Stored tapes, by format version.\n\
                 # TYPE foxq_corpus_tapes gauge\n",
            );
            out.push_str(&format!(
                "foxq_corpus_tapes{{version=\"1\"}} {}\n",
                corpus.fet1_tapes
            ));
            out.push_str(&format!(
                "foxq_corpus_tapes{{version=\"2\"}} {}\n",
                corpus.fet2_tapes
            ));
        }

        out.push_str("# HELP foxq_http_errors_total Error responses sent, by status class.\n");
        out.push_str("# TYPE foxq_http_errors_total counter\n");
        out.push_str(&format!(
            "foxq_http_errors_total{{class=\"4xx\"}} {}\n",
            get(&self.http_errors_4xx)
        ));
        out.push_str(&format!(
            "foxq_http_errors_total{{class=\"5xx\"}} {}\n",
            get(&self.http_errors_5xx)
        ));
        out.push_str("# HELP foxq_requests_total Requests received, by endpoint.\n");
        out.push_str("# TYPE foxq_requests_total counter\n");
        for e in Endpoint::ALL {
            out.push_str(&format!(
                "foxq_requests_total{{endpoint=\"{}\"}} {}\n",
                e.name(),
                get(&self.requests[e.idx()])
            ));
        }
        out.push_str("# HELP foxq_responses_total Responses sent, by status code.\n");
        out.push_str("# TYPE foxq_responses_total counter\n");
        for (i, code) in CODES.iter().enumerate() {
            out.push_str(&format!(
                "foxq_responses_total{{code=\"{code}\"}} {}\n",
                get(&self.responses[i])
            ));
        }

        out.push_str(
            "# HELP foxq_request_latency_seconds Head-completion to full response flush.\n",
        );
        out.push_str("# TYPE foxq_request_latency_seconds histogram\n");
        for e in Endpoint::ALL {
            self.request_latency[e.idx()].render_into(
                &mut out,
                "foxq_request_latency_seconds",
                &format!("endpoint=\"{}\"", e.name()),
            );
        }
        out.push_str("# HELP foxq_ttfb_seconds Head-completion to first response byte.\n");
        out.push_str("# TYPE foxq_ttfb_seconds histogram\n");
        self.ttfb.render_into(&mut out, "foxq_ttfb_seconds", "");
        out.push_str("# HELP foxq_engine_stage_seconds Per-request engine time, by stage.\n");
        out.push_str("# TYPE foxq_engine_stage_seconds histogram\n");
        for s in Stage::ALL {
            self.engine_stage[s.idx()].render_into(
                &mut out,
                "foxq_engine_stage_seconds",
                &format!("stage=\"{}\"", s.name()),
            );
        }
        out.push_str(
            "# HELP foxq_first_emit_events Input events before the first \
             irrevocable emission flush on streamed query runs.\n\
             # TYPE foxq_first_emit_events histogram\n",
        );
        self.first_emit_events
            .render_values_into(&mut out, "foxq_first_emit_events", "");
        out.push_str(
            "# HELP foxq_emit_flushes_per_request Irrevocable emission flushes \
             per streamed query run.\n\
             # TYPE foxq_emit_flushes_per_request histogram\n",
        );
        self.emit_flushes_per_request.render_values_into(
            &mut out,
            "foxq_emit_flushes_per_request",
            "",
        );
        out.push_str(
            "# HELP foxq_live_nodes_peak Per-request peak of live expression nodes.\n\
             # TYPE foxq_live_nodes_peak histogram\n",
        );
        self.live_nodes_peak
            .render_values_into(&mut out, "foxq_live_nodes_peak", "");
        out.push_str(
            "# HELP foxq_live_bytes_peak Per-request peak of approximate live bytes.\n\
             # TYPE foxq_live_bytes_peak histogram\n",
        );
        self.live_bytes_peak
            .render_values_into(&mut out, "foxq_live_bytes_peak", "");
        out.push_str(
            "# HELP foxq_alloc_bytes_per_request Allocator bytes billed to the \
             worker thread per query request.\n\
             # TYPE foxq_alloc_bytes_per_request histogram\n",
        );
        self.alloc_bytes_per_request.render_values_into(
            &mut out,
            "foxq_alloc_bytes_per_request",
            "",
        );

        let alloc = foxq_obs::alloc_snapshot();
        counter2(
            &mut out,
            "foxq_alloc_allocations_total",
            "Heap allocations observed by the counting allocator.",
            alloc.allocations,
        );
        counter2(
            &mut out,
            "foxq_alloc_frees_total",
            "Heap frees observed by the counting allocator.",
            alloc.deallocations,
        );
        scalar(
            &mut out,
            "foxq_alloc_live_bytes",
            "Heap bytes currently live per the counting allocator.",
            "gauge",
            alloc.live_bytes,
        );
        scalar(
            &mut out,
            "foxq_alloc_peak_bytes",
            "High-water mark of live heap bytes.",
            "gauge",
            alloc.peak_live_bytes,
        );
        if let Some(rss) = foxq_obs::read_rss_bytes() {
            scalar(
                &mut out,
                "foxq_process_rss_bytes",
                "Resident set size from /proc/self/statm.",
                "gauge",
                rss,
            );
        }

        out.push_str("# HELP foxq_reactor_loop_lag_seconds Reactor busy time per wakeup.\n");
        out.push_str("# TYPE foxq_reactor_loop_lag_seconds histogram\n");
        self.loop_lag
            .render_into(&mut out, "foxq_reactor_loop_lag_seconds", "");
        out.push_str("# HELP foxq_reactor_epoll_wait_seconds Time blocked in epoll_wait.\n");
        out.push_str("# TYPE foxq_reactor_epoll_wait_seconds histogram\n");
        self.epoll_wait
            .render_into(&mut out, "foxq_reactor_epoll_wait_seconds", "");
        out
    }
}

fn counter2(out: &mut String, name: &str, help: &str, value: u64) {
    scalar(out, name, help, "counter", value);
}

fn scalar(out: &mut String, name: &str, help: &str, kind: &str, value: u64) {
    out.push_str(&format!(
        "# HELP {name} {help}\n# TYPE {name} {kind}\n{name} {value}\n"
    ));
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn render_contains_every_family() {
        let m = Metrics::default();
        m.record_request(Endpoint::Query);
        m.record_response(200);
        add(&m.bytes_in_total, 42);
        let cache = CacheStats {
            hits: 7,
            misses: 2,
            compiles: 2,
            evictions: 0,
        };
        let text = m.render(
            cache,
            Some(CorpusGauges {
                docs: 3,
                fet1_tapes: 1,
                fet2_tapes: 2,
            }),
        );
        assert!(text.contains("foxq_requests_total{endpoint=\"query\"} 1"));
        assert!(text.contains("foxq_requests_total{endpoint=\"debug\"} 0"));
        assert!(text.contains("foxq_responses_total{code=\"200\"} 1"));
        assert!(text.contains("foxq_bytes_in_total 42"));
        assert!(text.contains("foxq_query_cache_hits_total 7"));
        assert!(text.contains("# TYPE foxq_connections_active gauge"));
        assert!(text.contains("# TYPE foxq_connections_lingering gauge"));
        assert!(text.contains("# TYPE foxq_worker_queue_depth gauge"));
        assert!(text.contains("foxq_accept_gate_rejections_total 0"));
        assert!(text.contains("foxq_seek_skipped_bytes_total 0"));
        assert!(text.contains("foxq_index_skipped_bytes_total 0"));
        assert!(text.contains("foxq_corpus_hits_total 0"));
        assert!(text.contains("foxq_corpus_docs 3"));
        assert!(text.contains("foxq_corpus_tapes{version=\"1\"} 1"));
        assert!(text.contains("foxq_corpus_tapes{version=\"2\"} 2"));
        assert!(text.contains("# TYPE foxq_request_latency_seconds histogram"));
        assert!(text.contains("# TYPE foxq_engine_stage_seconds histogram"));
        assert!(text.contains("# TYPE foxq_reactor_loop_lag_seconds histogram"));
        assert!(text.contains("foxq_ttfb_seconds_count 0"));
        assert!(text.contains("foxq_streamed_responses_total 0"));
        assert!(text.contains("# TYPE foxq_first_emit_events histogram"));
        assert!(text.contains("foxq_first_emit_events_count 0"));
        assert!(text.contains("# TYPE foxq_emit_flushes_per_request histogram"));
        assert!(text.contains("# TYPE foxq_live_nodes_peak histogram"));
        assert!(text.contains("# TYPE foxq_live_bytes_peak histogram"));
        assert!(text.contains("foxq_alloc_bytes_per_request_count 0"));
        assert!(text.contains("# TYPE foxq_alloc_live_bytes gauge"));
        assert!(text.contains("# TYPE foxq_alloc_peak_bytes gauge"));
        assert!(text.contains("foxq_alloc_allocations_total"));
        #[cfg(target_os = "linux")]
        assert!(text.contains("foxq_process_rss_bytes"));
        // Without a corpus the gauge is absent but the counters remain.
        let text = m.render(cache, None);
        assert!(!text.contains("foxq_corpus_docs"));
        assert!(!text.contains("foxq_corpus_tapes"));
        assert!(text.contains("foxq_corpus_ingests_total 0"));
    }

    #[test]
    fn error_classes_split_in_rendering() {
        let m = Metrics::default();
        m.record_response(400);
        m.record_response(413);
        m.record_response(503);
        m.record_response(200);
        let text = m.render(CacheStats::default(), None);
        assert!(text.contains("foxq_http_errors_total{class=\"4xx\"} 2"));
        assert!(text.contains("foxq_http_errors_total{class=\"5xx\"} 1"));
    }

    #[test]
    fn latency_observations_land_in_the_right_family() {
        let m = Metrics::default();
        m.request_latency(Endpoint::Query).observe_micros(1_500);
        m.engine_stage(Stage::Execute).observe_micros(900);
        let text = m.render(CacheStats::default(), None);
        assert!(text.contains("foxq_request_latency_seconds_count{endpoint=\"query\"} 1"));
        assert!(text.contains("foxq_request_latency_seconds_count{endpoint=\"batch\"} 0"));
        assert!(text
            .contains("foxq_request_latency_seconds_bucket{endpoint=\"query\",le=\"0.0025\"} 1"));
        assert!(text.contains("foxq_engine_stage_seconds_count{stage=\"execute\"} 1"));
        assert!(text.contains("foxq_engine_stage_seconds_sum{stage=\"execute\"} 0.0009"));
    }
}
