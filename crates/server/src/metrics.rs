//! Process-wide serving metrics, rendered in the Prometheus text format.
//!
//! Plain `AtomicU64` counters behind an `Arc`: workers increment with
//! `Relaxed` ordering (monotone counters need no synchronization beyond
//! atomicity), `GET /metrics` renders a snapshot. Cache statistics are not
//! duplicated here — the render pulls them live from the shared
//! [`foxq_service::SharedQueryCache`] so the two views can never drift.

use foxq_service::CacheStats;
use std::sync::atomic::{AtomicU64, Ordering};

/// The endpoints broken out in `foxq_requests_total`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Endpoint {
    Healthz,
    Metrics,
    Query,
    Batch,
    /// `GET /corpus` (manifest) and `POST /corpus/{id}` (ingest).
    Corpus,
    Shutdown,
    Other,
}

impl Endpoint {
    const ALL: [Endpoint; 7] = [
        Endpoint::Healthz,
        Endpoint::Metrics,
        Endpoint::Query,
        Endpoint::Batch,
        Endpoint::Corpus,
        Endpoint::Shutdown,
        Endpoint::Other,
    ];

    fn name(self) -> &'static str {
        match self {
            Endpoint::Healthz => "healthz",
            Endpoint::Metrics => "metrics",
            Endpoint::Query => "query",
            Endpoint::Batch => "batch",
            Endpoint::Corpus => "corpus",
            Endpoint::Shutdown => "shutdown",
            Endpoint::Other => "other",
        }
    }

    fn idx(self) -> usize {
        Self::ALL.iter().position(|e| *e == self).unwrap()
    }
}

/// Status codes the server can emit (see [`crate::http::reason`]).
const CODES: [u16; 9] = [200, 400, 404, 405, 408, 413, 422, 500, 503];

/// Counter registry shared by every worker.
#[derive(Default)]
pub struct Metrics {
    /// Connections accepted over the process lifetime.
    pub connections_total: AtomicU64,
    /// Connections currently being served (gauge).
    pub connections_active: AtomicU64,
    /// Requests received, by endpoint.
    requests: [AtomicU64; 7],
    /// Responses sent, by status code.
    responses: [AtomicU64; 9],
    /// Request bytes delivered to request processing (heads and bodies; a
    /// lingering close's discarded tail is excluded by design).
    pub bytes_in_total: AtomicU64,
    /// Response bytes written to sockets.
    pub bytes_out_total: AtomicU64,
    /// XML input events parsed across /query and /batch runs.
    pub input_events_total: AtomicU64,
    /// Output events produced by successful lanes.
    pub output_events_total: AtomicU64,
    /// Query lanes run (one per query per request).
    pub lane_runs_total: AtomicU64,
    /// Lanes that ended in a per-lane error (fuel, output budget).
    pub lane_failures_total: AtomicU64,
    /// Input events the shared label prefilter withheld from eligible lanes.
    pub prefilter_skipped_total: AtomicU64,
    /// Tape bytes seeked over (never decoded) on corpus query runs.
    pub seek_skipped_bytes_total: AtomicU64,
    /// Queries answered from a stored tape (`/query?doc=` hits).
    pub corpus_hits_total: AtomicU64,
    /// Documents ingested into the corpus (`POST /corpus/{id}`).
    pub corpus_ingests_total: AtomicU64,
    /// Requests whose head failed to parse (no endpoint attributable).
    pub http_errors_total: AtomicU64,
}

/// Add to a counter (relaxed; all metrics are monotone or gauge-like).
pub fn add(counter: &AtomicU64, n: u64) {
    counter.fetch_add(n, Ordering::Relaxed);
}

/// Decrement a gauge.
pub fn sub(counter: &AtomicU64, n: u64) {
    counter.fetch_sub(n, Ordering::Relaxed);
}

fn get(counter: &AtomicU64) -> u64 {
    counter.load(Ordering::Relaxed)
}

impl Metrics {
    pub fn record_request(&self, endpoint: Endpoint) {
        add(&self.requests[endpoint.idx()], 1);
    }

    pub fn record_response(&self, status: u16) {
        if let Some(i) = CODES.iter().position(|&c| c == status) {
            add(&self.responses[i], 1);
        }
    }

    /// Requests seen on one endpoint (used by tests).
    pub fn requests(&self, endpoint: Endpoint) -> u64 {
        get(&self.requests[endpoint.idx()])
    }

    /// Responses sent with one status code (used by tests).
    pub fn responses(&self, status: u16) -> u64 {
        CODES
            .iter()
            .position(|&c| c == status)
            .map_or(0, |i| get(&self.responses[i]))
    }

    /// Render the Prometheus text exposition, splicing in the query cache's
    /// live counters and (when a corpus is configured) the stored-document
    /// count.
    pub fn render(&self, cache: CacheStats, corpus_docs: Option<u64>) -> String {
        let mut out = String::with_capacity(2048);
        let mut counter = |name: &str, help: &str, value: u64| {
            scalar(&mut out, name, help, "counter", value);
        };
        counter(
            "foxq_connections_total",
            "Connections accepted.",
            get(&self.connections_total),
        );
        counter(
            "foxq_bytes_in_total",
            "Request bytes delivered to request processing.",
            get(&self.bytes_in_total),
        );
        counter(
            "foxq_bytes_out_total",
            "Response bytes written to sockets.",
            get(&self.bytes_out_total),
        );
        counter(
            "foxq_http_errors_total",
            "Requests whose head failed to parse.",
            get(&self.http_errors_total),
        );
        counter(
            "foxq_input_events_total",
            "XML input events parsed across query runs.",
            get(&self.input_events_total),
        );
        counter(
            "foxq_output_events_total",
            "Output events produced by successful lanes.",
            get(&self.output_events_total),
        );
        counter(
            "foxq_lane_runs_total",
            "Query lanes run (one per query per request).",
            get(&self.lane_runs_total),
        );
        counter(
            "foxq_lane_failures_total",
            "Lanes that ended in a per-lane error.",
            get(&self.lane_failures_total),
        );
        counter(
            "foxq_prefilter_skipped_events_total",
            "Input events withheld from eligible lanes by the label prefilter.",
            get(&self.prefilter_skipped_total),
        );
        counter(
            "foxq_seek_skipped_bytes_total",
            "Tape bytes seeked over (never decoded) on corpus query runs.",
            get(&self.seek_skipped_bytes_total),
        );
        counter(
            "foxq_corpus_hits_total",
            "Queries answered from a stored tape (/query?doc=).",
            get(&self.corpus_hits_total),
        );
        counter(
            "foxq_corpus_ingests_total",
            "Documents ingested into the corpus.",
            get(&self.corpus_ingests_total),
        );
        counter(
            "foxq_query_cache_hits_total",
            "Query cache lookups answered without compiling.",
            cache.hits,
        );
        counter(
            "foxq_query_cache_misses_total",
            "Query cache lookups that required a compile.",
            cache.misses,
        );
        counter(
            "foxq_query_cache_compiles_total",
            "Successful compilations performed by the cache.",
            cache.compiles,
        );
        counter(
            "foxq_query_cache_evictions_total",
            "Cache entries evicted.",
            cache.evictions,
        );
        scalar(
            &mut out,
            "foxq_connections_active",
            "Connections currently being served.",
            "gauge",
            get(&self.connections_active),
        );
        if let Some(docs) = corpus_docs {
            scalar(
                &mut out,
                "foxq_corpus_docs",
                "Documents currently stored in the corpus.",
                "gauge",
                docs,
            );
        }

        out.push_str("# HELP foxq_requests_total Requests received, by endpoint.\n");
        out.push_str("# TYPE foxq_requests_total counter\n");
        for e in Endpoint::ALL {
            out.push_str(&format!(
                "foxq_requests_total{{endpoint=\"{}\"}} {}\n",
                e.name(),
                get(&self.requests[e.idx()])
            ));
        }
        out.push_str("# HELP foxq_responses_total Responses sent, by status code.\n");
        out.push_str("# TYPE foxq_responses_total counter\n");
        for (i, code) in CODES.iter().enumerate() {
            out.push_str(&format!(
                "foxq_responses_total{{code=\"{code}\"}} {}\n",
                get(&self.responses[i])
            ));
        }
        out
    }
}

fn scalar(out: &mut String, name: &str, help: &str, kind: &str, value: u64) {
    out.push_str(&format!(
        "# HELP {name} {help}\n# TYPE {name} {kind}\n{name} {value}\n"
    ));
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn render_contains_every_family() {
        let m = Metrics::default();
        m.record_request(Endpoint::Query);
        m.record_response(200);
        add(&m.bytes_in_total, 42);
        let cache = CacheStats {
            hits: 7,
            misses: 2,
            compiles: 2,
            evictions: 0,
        };
        let text = m.render(cache, Some(3));
        assert!(text.contains("foxq_requests_total{endpoint=\"query\"} 1"));
        assert!(text.contains("foxq_responses_total{code=\"200\"} 1"));
        assert!(text.contains("foxq_bytes_in_total 42"));
        assert!(text.contains("foxq_query_cache_hits_total 7"));
        assert!(text.contains("# TYPE foxq_connections_active gauge"));
        assert!(text.contains("foxq_seek_skipped_bytes_total 0"));
        assert!(text.contains("foxq_corpus_hits_total 0"));
        assert!(text.contains("foxq_corpus_docs 3"));
        // Without a corpus the gauge is absent but the counters remain.
        let text = m.render(cache, None);
        assert!(!text.contains("foxq_corpus_docs"));
        assert!(text.contains("foxq_corpus_ingests_total 0"));
    }
}
