//! The long-running server: accept loop, worker pool, request routing.
//!
//! Runtime architecture (all `std`, no async runtime):
//!
//! * the **acceptor** thread polls a non-blocking `TcpListener` and pushes
//!   accepted connections onto an `mpsc` queue (polling instead of blocking
//!   so a shutdown signal is noticed without a wake-up connection);
//! * a fixed pool of **worker** threads pops connections and serves
//!   HTTP/1.1 keep-alive request loops off them; per-connection read/write
//!   timeouts bound how long a slow or dead peer can hold a worker;
//! * request bodies stream straight off the socket through a
//!   [`foxq_xml::BoundedReader`] into the XML parser and the transducer
//!   lanes — a request body is **never buffered whole**, and reading stops
//!   at `max_body_bytes` (413) rather than at the peer's mercy;
//! * **graceful shutdown**: a flag flips (via [`ServerHandle::shutdown`] or
//!   `POST /shutdown`), the acceptor stops accepting and drops the queue,
//!   workers finish the requests they are serving — answering with
//!   `connection: close` — and exit; [`ServerHandle::join`] returns once
//!   every in-flight request has been answered.

use crate::http::{read_request, write_response, BodyKind, BodyReader, Request};
use crate::metrics::{add, sub, Endpoint, Metrics};
use foxq_core::stream::{StreamError, StreamLimits};
use foxq_core::Mft;
use foxq_service::{
    run_multi_on_tape, run_multi_with_limits, CompileLimits, MultiRun, PrepareError, PreparedQuery,
    SharedQueryCache,
};
use foxq_store::corpus::valid_doc_id;
use foxq_store::{ingest_xml_to_tmp, Corpus, StoreError, TapeReader};
use foxq_xml::{byte_limit_exceeded, BoundedReader, WriterSink, XmlError, XmlReader};
use std::io::{BufRead, BufReader, ErrorKind, Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::mpsc;
use std::sync::{Arc, Mutex, MutexGuard};
use std::time::Duration;

/// Configuration of a [`Server`].
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// Address to bind, e.g. `"127.0.0.1:8080"` (`:0` = ephemeral port).
    pub addr: String,
    /// Worker threads (each serves one connection at a time).
    pub threads: usize,
    /// Maximum *decoded* request-body bytes before a 413.
    pub max_body_bytes: u64,
    /// Capacity of the process-wide prepared-query cache.
    pub cache_capacity: usize,
    /// Compile-time bounds on untrusted query text.
    pub compile_limits: CompileLimits,
    /// Per-lane streaming bounds (defaults to [`StreamLimits::serving`]).
    pub stream_limits: StreamLimits,
    /// Socket read timeout (also bounds how long an idle keep-alive
    /// connection can occupy a worker).
    pub read_timeout: Duration,
    /// Socket write timeout.
    pub write_timeout: Duration,
    /// Maximum `q` parameters accepted by `POST /batch`.
    pub max_queries_per_batch: usize,
    /// Corpus directory for the document-store endpoints
    /// (`POST /corpus/{id}`, `GET /corpus`, `POST /query?doc=`). `None`
    /// disables them (503).
    pub corpus_dir: Option<String>,
}

impl Default for ServerConfig {
    fn default() -> Self {
        ServerConfig {
            addr: "127.0.0.1:0".to_string(),
            threads: std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(4),
            max_body_bytes: 256 << 20, // 256 MiB of XML per request
            cache_capacity: 256,
            compile_limits: CompileLimits::default(),
            stream_limits: StreamLimits::serving(),
            read_timeout: Duration::from_secs(10),
            write_timeout: Duration::from_secs(10),
            max_queries_per_batch: 64,
            corpus_dir: None,
        }
    }
}

/// State shared by the acceptor, every worker, and the handle.
struct Shared {
    config: ServerConfig,
    cache: SharedQueryCache,
    /// The document store, when `--corpus` is configured. The lock is held
    /// only for manifest operations (resolve/commit/list), never across an
    /// ingest parse or a tape replay.
    corpus: Option<Mutex<Corpus>>,
    /// Uniquifies concurrent ingest temp files.
    ingest_seq: AtomicU64,
    metrics: Arc<Metrics>,
    shutdown: AtomicBool,
}

impl Shared {
    /// Lock the corpus (compile-pure state: a poisoned lock is recovered).
    fn corpus(&self) -> Option<MutexGuard<'_, Corpus>> {
        self.corpus
            .as_ref()
            .map(|m| m.lock().unwrap_or_else(|poisoned| poisoned.into_inner()))
    }

    fn corpus_docs(&self) -> Option<u64> {
        self.corpus().map(|c| c.len() as u64)
    }
}

/// A bound, not-yet-serving server (useful to learn the ephemeral port
/// before spawning the threads).
pub struct Server {
    listener: TcpListener,
    shared: Arc<Shared>,
}

impl Server {
    /// Bind the configured address. No thread is spawned yet.
    pub fn bind(config: ServerConfig) -> std::io::Result<Server> {
        let addr =
            config.addr.to_socket_addrs()?.next().ok_or_else(|| {
                std::io::Error::new(ErrorKind::InvalidInput, "unresolvable address")
            })?;
        let listener = TcpListener::bind(addr)?;
        let cache = SharedQueryCache::with_limits(config.cache_capacity, config.compile_limits);
        let corpus = match &config.corpus_dir {
            Some(dir) => Some(Mutex::new(Corpus::open(dir).map_err(|e| {
                std::io::Error::new(ErrorKind::InvalidInput, format!("corpus {dir}: {e}"))
            })?)),
            None => None,
        };
        Ok(Server {
            listener,
            shared: Arc::new(Shared {
                config,
                cache,
                corpus,
                ingest_seq: AtomicU64::new(0),
                metrics: Arc::new(Metrics::default()),
                shutdown: AtomicBool::new(false),
            }),
        })
    }

    /// The bound address (resolves `:0` to the actual port).
    pub fn local_addr(&self) -> std::io::Result<SocketAddr> {
        self.listener.local_addr()
    }

    /// Spawn the acceptor and the worker pool; returns immediately.
    pub fn start(self) -> std::io::Result<ServerHandle> {
        let addr = self.listener.local_addr()?;
        self.listener.set_nonblocking(true)?;
        let threads = self.shared.config.threads.max(1);
        let (tx, rx) = mpsc::channel::<TcpStream>();
        let rx = Arc::new(Mutex::new(rx));

        let mut workers = Vec::with_capacity(threads);
        for i in 0..threads {
            let rx = rx.clone();
            let shared = self.shared.clone();
            workers.push(
                std::thread::Builder::new()
                    .name(format!("foxq-worker-{i}"))
                    .spawn(move || worker_loop(&rx, &shared))?,
            );
        }

        let shared = self.shared.clone();
        let listener = self.listener;
        let acceptor = std::thread::Builder::new()
            .name("foxq-acceptor".to_string())
            .spawn(move || accept_loop(&listener, &tx, &shared))?;

        Ok(ServerHandle {
            addr,
            shared: self.shared,
            acceptor,
            workers,
        })
    }
}

/// Handle to a running server: address, shared metrics, shutdown control.
pub struct ServerHandle {
    addr: SocketAddr,
    shared: Arc<Shared>,
    acceptor: std::thread::JoinHandle<()>,
    workers: Vec<std::thread::JoinHandle<()>>,
}

impl ServerHandle {
    pub fn local_addr(&self) -> SocketAddr {
        self.addr
    }

    /// The live metrics registry (what `GET /metrics` renders).
    pub fn metrics(&self) -> Arc<Metrics> {
        self.shared.metrics.clone()
    }

    /// The process-wide prepared-query cache.
    pub fn cache(&self) -> SharedQueryCache {
        self.shared.cache.clone()
    }

    /// Whether a shutdown has been signalled (locally or via
    /// `POST /shutdown`).
    pub fn is_shutting_down(&self) -> bool {
        self.shared.shutdown.load(Ordering::SeqCst)
    }

    /// Signal shutdown and wait for every in-flight request to drain.
    pub fn shutdown(self) {
        self.shared.shutdown.store(true, Ordering::SeqCst);
        self.join();
    }

    /// Wait until the server exits (a shutdown is signalled and all
    /// in-flight work has drained).
    pub fn join(self) {
        let _ = self.acceptor.join();
        for w in self.workers {
            let _ = w.join();
        }
    }
}

fn accept_loop(listener: &TcpListener, tx: &mpsc::Sender<TcpStream>, shared: &Shared) {
    while !shared.shutdown.load(Ordering::SeqCst) {
        match listener.accept() {
            Ok((stream, _peer)) => {
                add(&shared.metrics.connections_total, 1);
                if tx.send(stream).is_err() {
                    break; // every worker is gone
                }
            }
            Err(e) if e.kind() == ErrorKind::WouldBlock => {
                std::thread::sleep(Duration::from_millis(2));
            }
            Err(_) => std::thread::sleep(Duration::from_millis(2)),
        }
    }
    // Dropping `tx` unblocks every idle worker's recv with an error.
}

fn worker_loop(rx: &Arc<Mutex<mpsc::Receiver<TcpStream>>>, shared: &Shared) {
    loop {
        // Hold the lock only for the pop, never while serving.
        let next = match rx.lock() {
            Ok(guard) => guard.recv(),
            Err(_) => return,
        };
        let Ok(stream) = next else {
            return; // queue closed: shutdown drained
        };
        add(&shared.metrics.connections_active, 1);
        let outcome = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            let _ = serve_connection(stream, shared);
        }));
        sub(&shared.metrics.connections_active, 1);
        if outcome.is_err() {
            // A panicking request must not shrink the pool; the connection
            // is torn down, everything shared is panic-safe (atomics and a
            // self-healing cache lock).
            eprintln!("foxq-server: worker recovered from a panicking request");
        }
    }
}

/// One response, ready to write: status, content type, extra headers, body.
struct Reply {
    status: u16,
    content_type: &'static str,
    headers: Vec<(&'static str, String)>,
    body: Vec<u8>,
    /// False when the request body was not consumed to its framed end —
    /// the connection cannot be reused without desynchronizing, and the
    /// close must linger so the response outlives the peer's unsent tail.
    /// Tracks actual body consumption, *not* the status: an error answer
    /// to a body-free request keeps its keep-alive connection.
    reusable: bool,
}

impl Reply {
    fn new(status: u16, content_type: &'static str, body: impl Into<Vec<u8>>) -> Reply {
        Reply {
            status,
            content_type,
            headers: Vec::new(),
            body: body.into(),
            reusable: true,
        }
    }

    fn text(status: u16, body: impl Into<String>) -> Reply {
        Reply::new(
            status,
            "text/plain; charset=utf-8",
            body.into().into_bytes(),
        )
    }
}

/// Counts request bytes into the shared metrics as they stream in.
struct CountingReader<R> {
    inner: R,
    metrics: Arc<Metrics>,
}

impl<R: Read> Read for CountingReader<R> {
    fn read(&mut self, buf: &mut [u8]) -> std::io::Result<usize> {
        let n = self.inner.read(buf)?;
        add(&self.metrics.bytes_in_total, n as u64);
        Ok(n)
    }
}

fn serve_connection(stream: TcpStream, shared: &Shared) -> std::io::Result<()> {
    let cfg = &shared.config;
    stream.set_read_timeout(Some(cfg.read_timeout))?;
    stream.set_write_timeout(Some(cfg.write_timeout))?;
    stream.set_nodelay(true).ok();
    let mut writer = stream.try_clone()?;
    let mut reader = BufReader::new(CountingReader {
        inner: stream,
        metrics: shared.metrics.clone(),
    });

    loop {
        if !wait_for_head(&mut reader, &writer, shared)? {
            return Ok(()); // peer gone, idle timeout, or draining
        }
        let request = match read_request(&mut reader) {
            Ok(Some(req)) => req,
            Ok(None) => return Ok(()), // clean close between requests
            Err(e) => {
                // Head-level garbage: answer 400 when the error is a parse
                // failure, close silently on transport errors (timeouts on
                // idle keep-alive connections land here by design).
                if e.kind() == ErrorKind::InvalidData {
                    add(&shared.metrics.http_errors_total, 1);
                    shared.metrics.record_response(400);
                    let _ = respond(
                        &mut writer,
                        shared,
                        Reply::text(400, format!("{e}\n")),
                        false,
                    );
                }
                return Ok(());
            }
        };
        let keep_alive_requested = request.keep_alive();
        let reply = route(&request, &mut reader, shared);
        let draining = shared.shutdown.load(Ordering::SeqCst);
        let keep = keep_alive_requested && reply.reusable && !draining;
        shared.metrics.record_response(reply.status);
        let unread_body = !reply.reusable;
        respond(&mut writer, shared, reply, keep)?;
        if !keep {
            if unread_body {
                lingering_close(&writer);
            }
            return Ok(());
        }
    }
}

/// Wait until the next request's first byte is available, polling in short
/// slices so an *idle* keep-alive connection notices a shutdown within
/// ~100 ms instead of holding the drain for a full `read_timeout` (an idle
/// connection has no in-flight request to finish). Restores the configured
/// read timeout before returning, so mid-request stalls keep their normal
/// bound. `Ok(false)` means close: peer gone, idle too long, or draining.
fn wait_for_head(
    reader: &mut impl BufRead,
    stream: &TcpStream,
    shared: &Shared,
) -> std::io::Result<bool> {
    const POLL: Duration = Duration::from_millis(100);
    let deadline = std::time::Instant::now() + shared.config.read_timeout;
    stream.set_read_timeout(Some(POLL))?;
    let ready = loop {
        match reader.fill_buf() {
            Ok([]) => break false, // clean close between requests
            Ok(_) => break true,
            Err(e) if matches!(e.kind(), ErrorKind::WouldBlock | ErrorKind::TimedOut) => {
                if shared.shutdown.load(Ordering::SeqCst) || std::time::Instant::now() >= deadline {
                    break false;
                }
            }
            Err(_) => break false,
        }
    };
    stream.set_read_timeout(Some(shared.config.read_timeout))?;
    Ok(ready)
}

/// Close a connection that still has unread request bytes on the wire
/// without losing the response: an immediate close would make the kernel
/// answer the peer's in-flight body with an RST, which may destroy the
/// buffered response before the peer reads it (the classic early-413
/// problem). Send FIN, then discard a bounded amount of the remaining body.
/// Reading here goes through the raw stream, *not* the metrics counter:
/// `foxq_bytes_in_total` keeps meaning "bytes delivered to request
/// processing", which is what the never-buffers-the-body tests assert on.
fn lingering_close(stream: &TcpStream) {
    const DRAIN_CAP: usize = 1 << 20;
    let _ = stream.shutdown(std::net::Shutdown::Write);
    let _ = stream.set_read_timeout(Some(Duration::from_millis(500)));
    let mut discard = [0u8; 8192];
    let mut drained = 0usize;
    while drained < DRAIN_CAP {
        match (&mut (&*stream)).read(&mut discard) {
            Ok(0) | Err(_) => break,
            Ok(n) => drained += n,
        }
    }
}

fn respond(
    writer: &mut TcpStream,
    shared: &Shared,
    reply: Reply,
    keep_alive: bool,
) -> std::io::Result<()> {
    let mut counting = CountingWriter {
        inner: writer,
        metrics: &shared.metrics,
    };
    write_response(
        &mut counting,
        reply.status,
        reply.content_type,
        &reply.headers,
        &reply.body,
        keep_alive,
    )
}

struct CountingWriter<'a> {
    inner: &'a mut TcpStream,
    metrics: &'a Arc<Metrics>,
}

impl Write for CountingWriter<'_> {
    fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
        let n = self.inner.write(buf)?;
        add(&self.metrics.bytes_out_total, n as u64);
        Ok(n)
    }

    fn flush(&mut self) -> std::io::Result<()> {
        self.inner.flush()
    }
}

fn route<R: BufRead>(request: &Request, conn: &mut R, shared: &Shared) -> Reply {
    let endpoint = match (request.method.as_str(), request.path.as_str()) {
        ("GET", "/healthz") => Endpoint::Healthz,
        ("GET", "/metrics") => Endpoint::Metrics,
        ("POST", "/query") => Endpoint::Query,
        ("POST", "/batch") => Endpoint::Batch,
        ("GET", "/corpus") => Endpoint::Corpus,
        ("POST", p) if p.strip_prefix("/corpus/").is_some_and(|id| !id.is_empty()) => {
            Endpoint::Corpus
        }
        ("POST", "/shutdown") => Endpoint::Shutdown,
        _ => Endpoint::Other,
    };
    shared.metrics.record_request(endpoint);

    // Endpoints that ignore the body can only reuse the connection if
    // there is no body to desynchronize on.
    let bodyless = |reply: Reply, request: &Request| -> Reply {
        let mut reply = reply;
        reply.reusable = reply.reusable && matches!(request.body_kind(), Ok(BodyKind::Empty));
        reply
    };

    match endpoint {
        Endpoint::Healthz => bodyless(Reply::text(200, "ok\n"), request),
        Endpoint::Metrics => bodyless(
            Reply::new(
                200,
                "text/plain; version=0.0.4; charset=utf-8",
                shared
                    .metrics
                    .render(shared.cache.stats(), shared.corpus_docs())
                    .into_bytes(),
            ),
            request,
        ),
        Endpoint::Shutdown => {
            shared.shutdown.store(true, Ordering::SeqCst);
            bodyless(Reply::text(200, "draining\n"), request)
        }
        Endpoint::Query => handle_query(request, conn, shared),
        Endpoint::Batch => handle_batch(request, conn, shared),
        Endpoint::Corpus => {
            if request.method == "GET" {
                bodyless(handle_corpus_list(shared), request)
            } else {
                let id = request.path["/corpus/".len()..].to_string();
                handle_corpus_ingest(request, conn, shared, &id)
            }
        }
        Endpoint::Other => {
            let known = request.path == "/corpus"
                || request.path.starts_with("/corpus/")
                || matches!(
                    request.path.as_str(),
                    "/healthz" | "/metrics" | "/query" | "/batch" | "/shutdown"
                );
            let status = if known { 405 } else { 404 };
            bodyless(
                Reply::text(
                    status,
                    format!("{} {}\n", status, crate::http::reason(status)),
                ),
                request,
            )
        }
    }
}

/// Classify a compile failure. The request body was not touched yet, so
/// the reply is marked non-reusable.
fn prepare_error_reply(e: &PrepareError) -> Reply {
    reply_unconsumed(match e {
        PrepareError::TooLarge { .. } => Reply::text(413, format!("query rejected: {e}\n")),
        _ => Reply::text(400, format!("query rejected: {e}\n")),
    })
}

/// Classify an input-side XML failure (shared by /query and /batch).
fn xml_error_reply(e: &XmlError, limit: u64) -> Reply {
    if let XmlError::Io { source, .. } = e {
        if byte_limit_exceeded(source).is_some() {
            return Reply::text(
                413,
                format!("request body exceeded the limit of {limit} bytes\n"),
            );
        }
        // A transport stall is the peer's fault, not the document's.
        if matches!(source.kind(), ErrorKind::WouldBlock | ErrorKind::TimedOut) {
            return Reply::text(408, "timed out reading the request body\n".to_string());
        }
    }
    Reply::text(400, format!("malformed XML input: {e}\n"))
}

/// Stream the request body through `mfts` in one pass; shared by /query
/// (N = 1) and /batch. The body is read *while* the engines run — it is
/// never accumulated anywhere.
fn run_lanes<R: BufRead>(
    request: &Request,
    conn: &mut R,
    shared: &Shared,
    mfts: &[&Mft],
) -> Result<MultiRun<WriterSink<Vec<u8>>>, Reply> {
    let kind = request
        .body_kind()
        .map_err(|e| reply_unconsumed(Reply::text(400, format!("{e}\n"))))?;
    if kind == BodyKind::Empty {
        // Nothing is on the wire: this error keeps its connection.
        return Err(Reply::text(
            400,
            "missing request body (the XML document)\n",
        ));
    }
    let body = BodyReader::new(conn, kind);
    let bounded = BoundedReader::new(body, shared.config.max_body_bytes);
    let reader = XmlReader::new(bounded);
    let sinks: Vec<_> = mfts.iter().map(|_| WriterSink::new(Vec::new())).collect();
    add(&shared.metrics.lane_runs_total, mfts.len() as u64);
    run_multi_with_limits(mfts, reader, sinks, shared.config.stream_limits)
        .map_err(|e| reply_unconsumed(xml_error_reply(&e, shared.config.max_body_bytes)))
}

fn handle_query<R: BufRead>(request: &Request, conn: &mut R, shared: &Shared) -> Reply {
    let mut params = request.params("q");
    let Some(q) = params.next() else {
        return reply_unconsumed(Reply::text(400, "missing query parameter q\n"));
    };
    if params.next().is_some() {
        return reply_unconsumed(Reply::text(
            400,
            "one q per /query request; use /batch for sets\n",
        ));
    }
    let prepared = match shared.cache.get_or_compile(q) {
        Ok(p) => p,
        Err(e) => return prepare_error_reply(&e),
    };
    let doc = request.params("doc").next().map(String::from);
    let run = match &doc {
        // `?doc=<id>`: replay the stored tape — no request body, no parse.
        Some(id) => match run_on_tape(request, shared, &prepared, id) {
            Ok(run) => run,
            Err(reply) => return reply,
        },
        None => match run_lanes(request, conn, shared, &[prepared.mft()]) {
            Ok(run) => run,
            Err(reply) => return reply,
        },
    };
    add(&shared.metrics.input_events_total, run.input_events);
    match run.results.into_iter().next().expect("one lane") {
        Ok((sink, stats)) => {
            add(&shared.metrics.output_events_total, stats.output_events);
            add(
                &shared.metrics.prefilter_skipped_total,
                stats.prefiltered_events,
            );
            if doc.is_some() {
                add(&shared.metrics.corpus_hits_total, 1);
                add(
                    &shared.metrics.seek_skipped_bytes_total,
                    run.seek_skipped_bytes,
                );
            }
            let body = sink.finish().expect("writing to Vec cannot fail");
            let mut reply = Reply::new(200, "application/xml", body);
            reply.headers = vec![
                ("x-foxq-input-events", run.input_events.to_string()),
                ("x-foxq-output-events", stats.output_events.to_string()),
                (
                    "x-foxq-prefiltered-events",
                    stats.prefiltered_events.to_string(),
                ),
                ("x-foxq-peak-live-nodes", stats.peak_live_nodes.to_string()),
            ];
            if doc.is_some() {
                reply.headers.push((
                    "x-foxq-seek-skipped-bytes",
                    run.seek_skipped_bytes.to_string(),
                ));
            }
            reply
        }
        Err(e) => {
            add(&shared.metrics.lane_failures_total, 1);
            if doc.is_some() {
                // No request body was involved: the connection is clean.
                stream_error_reply(&e)
            } else {
                // The lane died before end-of-input: the body was not
                // drained.
                reply_unconsumed(stream_error_reply(&e))
            }
        }
    }
}

/// `POST /query?doc=<id>`: run one prepared query over a stored tape,
/// seeking over prefilter-withheld subtrees. The request must carry no
/// body (the document is already in the store).
fn run_on_tape(
    request: &Request,
    shared: &Shared,
    prepared: &PreparedQuery,
    id: &str,
) -> Result<MultiRun<WriterSink<Vec<u8>>>, Reply> {
    if shared.corpus.is_none() {
        return Err(no_corpus_reply(request));
    }
    match request.body_kind() {
        Ok(BodyKind::Empty) => {}
        Ok(_) => {
            return Err(reply_unconsumed(Reply::text(
                400,
                "no request body allowed with doc= (the document is stored)\n",
            )))
        }
        Err(e) => return Err(reply_unconsumed(Reply::text(400, format!("{e}\n")))),
    }
    let path = match shared.corpus().expect("checked above").tape_path(id) {
        Ok(path) => path,
        Err(StoreError::UnknownDoc { id }) => {
            return Err(Reply::text(
                404,
                format!("no document {id:?} in the corpus\n"),
            ))
        }
        Err(e) => return Err(Reply::text(500, format!("corpus error: {e}\n"))),
    };
    let tape = match TapeReader::open_file(&path) {
        Ok(tape) => tape,
        Err(e) => return Err(store_error_reply(&e)),
    };
    add(&shared.metrics.lane_runs_total, 1);
    // The plan is cached inside the prepared query: repeat corpus hits do
    // not re-run the projection analysis.
    run_multi_on_tape(
        &[prepared.mft()],
        tape,
        vec![WriterSink::new(Vec::new())],
        shared.config.stream_limits,
        prepared.solo_plan(),
    )
    .map_err(|e| store_error_reply(&e))
}

/// `GET /corpus`: the manifest as tab-separated text.
fn handle_corpus_list(shared: &Shared) -> Reply {
    let Some(corpus) = shared.corpus() else {
        return Reply::text(503, "no corpus configured (start with --corpus DIR)\n");
    };
    let mut body = String::from("# id\tevents\tsource_bytes\ttape_bytes\tchecksum\n");
    for meta in corpus.docs() {
        body.push_str(&format!(
            "{}\t{}\t{}\t{}\t{:016x}\n",
            meta.id, meta.events, meta.source_bytes, meta.tape_bytes, meta.checksum
        ));
    }
    Reply::text(200, body)
}

/// `POST /corpus/{id}`: stream the request body through the XML parser
/// onto a tape, then commit it to the corpus under the lock. The parse and
/// tape write happen **outside** the corpus lock, so a slow ingest never
/// blocks `/query?doc=` resolution.
fn handle_corpus_ingest<R: BufRead>(
    request: &Request,
    conn: &mut R,
    shared: &Shared,
    id: &str,
) -> Reply {
    if shared.corpus.is_none() {
        return no_corpus_reply(request);
    }
    if !valid_doc_id(id) {
        return reply_unconsumed(Reply::text(
            400,
            format!("invalid document id {id:?} (use [A-Za-z0-9._-], not starting with '.')\n"),
        ));
    }
    let kind = match request.body_kind() {
        Ok(BodyKind::Empty) => {
            return Reply::text(400, "missing request body (the XML document)\n")
        }
        Ok(kind) => kind,
        Err(e) => return reply_unconsumed(Reply::text(400, format!("{e}\n"))),
    };
    let dir = shared.corpus().expect("checked above").dir().to_path_buf();
    let seq = shared.ingest_seq.fetch_add(1, Ordering::Relaxed);
    let tmp = dir.join(format!(".ingest-{seq}-{id}.tmp"));
    let body = BodyReader::new(conn, kind);
    let bounded = BoundedReader::new(body, shared.config.max_body_bytes);
    match ingest_xml_to_tmp(&tmp, bounded) {
        Ok((info, source_bytes)) => {
            let installed =
                shared
                    .corpus()
                    .expect("checked above")
                    .install_tape(id, &tmp, &info, source_bytes);
            match installed {
                Ok(meta) => {
                    add(&shared.metrics.corpus_ingests_total, 1);
                    add(&shared.metrics.input_events_total, info.events + 1);
                    Reply::text(
                        200,
                        format!(
                            "stored {}: {} events, {} tape bytes (from {} XML bytes)\n",
                            meta.id, meta.events, meta.tape_bytes, meta.source_bytes
                        ),
                    )
                }
                Err(e) => Reply::text(500, format!("corpus commit failed: {e}\n")),
            }
        }
        // The helper already removed the tmp file.
        Err(StoreError::Xml(xml)) => {
            reply_unconsumed(xml_error_reply(&xml, shared.config.max_body_bytes))
        }
        Err(other) => reply_unconsumed(Reply::text(500, format!("ingest failed: {other}\n"))),
    }
}

/// A store-side failure of a corpus query: the tape is server state, so
/// corruption is a 500, never the client's fault.
fn store_error_reply(e: &StoreError) -> Reply {
    Reply::text(500, format!("tape replay failed: {e}\n"))
}

fn no_corpus_reply(request: &Request) -> Reply {
    let mut reply = Reply::text(503, "no corpus configured (start with --corpus DIR)\n");
    reply.reusable = matches!(request.body_kind(), Ok(BodyKind::Empty));
    reply
}

fn handle_batch<R: BufRead>(request: &Request, conn: &mut R, shared: &Shared) -> Reply {
    let queries: Vec<&str> = request.params("q").collect();
    if queries.is_empty() {
        return reply_unconsumed(Reply::text(400, "missing query parameters q\n"));
    }
    if queries.len() > shared.config.max_queries_per_batch {
        return reply_unconsumed(Reply::text(
            400,
            format!(
                "{} queries exceed the batch limit of {}\n",
                queries.len(),
                shared.config.max_queries_per_batch
            ),
        ));
    }
    let mut prepared = Vec::with_capacity(queries.len());
    for (i, q) in queries.iter().enumerate() {
        match shared.cache.get_or_compile(q) {
            Ok(p) => prepared.push(p),
            Err(e) => {
                let mut reply = prepare_error_reply(&e);
                reply.body = format!("query {i} rejected: {e}\n").into_bytes();
                return reply;
            }
        }
    }
    let mfts: Vec<&Mft> = prepared.iter().map(|p| p.mft()).collect();
    let run = match run_lanes(request, conn, shared, &mfts) {
        Ok(run) => run,
        Err(reply) => return reply,
    };
    add(&shared.metrics.input_events_total, run.input_events);

    let mut body = Vec::new();
    let mut failures = 0u64;
    let mut any_ok = false;
    for (i, result) in run.results.into_iter().enumerate() {
        body.extend_from_slice(format!("### query {i}\n").as_bytes());
        match result {
            Ok((sink, stats)) => {
                any_ok = true;
                add(&shared.metrics.output_events_total, stats.output_events);
                add(
                    &shared.metrics.prefilter_skipped_total,
                    stats.prefiltered_events,
                );
                body.extend_from_slice(&sink.finish().expect("writing to Vec cannot fail"));
                body.push(b'\n');
            }
            Err(e) => {
                failures += 1;
                body.extend_from_slice(format!("error: {e}\n").as_bytes());
            }
        }
    }
    add(&shared.metrics.lane_failures_total, failures);
    let mut reply = Reply::new(200, "text/plain; charset=utf-8", body);
    reply.headers = vec![
        ("x-foxq-input-events", run.input_events.to_string()),
        ("x-foxq-failed-lanes", failures.to_string()),
    ];
    // If every lane failed, the pass aborted early and the body was not
    // fully read; the connection cannot be reused.
    reply.reusable = any_ok;
    reply
}

fn stream_error_reply(e: &StreamError) -> Reply {
    match e {
        StreamError::Xml(xml) => Reply::text(400, format!("malformed XML input: {xml}\n")),
        _ => Reply::text(422, format!("query run failed: {e}\n")),
    }
}

/// Mark a reply as leaving unread body bytes on the wire.
fn reply_unconsumed(mut reply: Reply) -> Reply {
    reply.reusable = false;
    reply
}
