//! The long-running server: epoll reactor, worker pool, request routing.
//!
//! Runtime architecture (all `std` plus three raw syscalls, no async
//! runtime):
//!
//! * one **reactor** thread owns an epoll instance ([`crate::reactor`]) and
//!   every socket: it accepts (non-blocking listener), accumulates request
//!   heads, flushes responses, and enforces idle/head/write deadlines —
//!   all readiness-driven, so a thousand slow or idle connections cost a
//!   thousand small buffers, **not** a thousand parked threads;
//! * a fixed pool of **worker** threads runs the CPU-bound half only: a
//!   connection whose request head is complete is handed over, the worker
//!   streams the body straight off the socket through a
//!   [`foxq_xml::BoundedReader`] into the XML parser and the transducer
//!   lanes (a request body is **never buffered whole**; reading stops at
//!   `max_body_bytes` → 413), serializes the response, and hands the
//!   connection back to the reactor for the write;
//! * per-connection state is an explicit machine ([`crate::conn`]):
//!   `Idle → ReadHead → RouteBody → WriteResponse → Idle/Close`, with head
//!   reads and response writes resumable across `WouldBlock`;
//! * **backpressure**: past `max_connections` open connections the reactor
//!   stops accepting (the kernel backlog, then the peers, absorb the
//!   pushback) until load drops;
//! * **graceful shutdown**: a flag flips (via [`ServerHandle::shutdown`] or
//!   `POST /shutdown`), the listener closes, idle connections are dropped,
//!   in-flight requests finish — answering with `connection: close` — and
//!   [`ServerHandle::join`] returns once the last response is flushed.

use crate::conn::{After, Conn, Phase};
use crate::http::{
    chunked_tail, read_request, write_chunk, write_chunked_head, write_response, BodyKind,
    BodyReader, Request,
};
use crate::metrics::{add, sub, Endpoint, Metrics};
use crate::reactor::{Poller, Waker, EPOLLIN, EPOLLOUT, EPOLLRDHUP};
use foxq_core::emit::EmitWriter;
use foxq_core::profile::{StreamProfile, StreamProfiler};
use foxq_core::stream::{StreamError, StreamLimits, StreamObserver, StreamStats};
use foxq_core::Mft;
use foxq_obs::{
    AllocScope, JsonlSink, RingSink, Stage, TraceContext, TraceRecord, TraceSink,
    DEFAULT_TRACE_LOG_MAX_BYTES,
};
use foxq_service::{
    run_multi_emit, run_multi_on_tape_emit, run_multi_on_tape_observed, run_multi_with_limits,
    run_multi_with_plan_observed, source_key, CompileLimits, MultiRun, ObservedMultiRun,
    PrepareError, PreparedQuery, ProfileRegistry, RunSample, SharedQueryCache,
};
use foxq_store::corpus::valid_doc_id;
use foxq_store::{ingest_xml_to_tmp, Corpus, StoreError, TapeReader};
use foxq_xml::{byte_limit_exceeded, BoundedReader, WriterSink, XmlError, XmlReader};
use std::collections::HashMap;
use std::io::{BufRead, BufReader, Cursor, ErrorKind, Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::os::fd::AsRawFd;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::mpsc;
use std::sync::{Arc, Mutex, MutexGuard};
use std::time::{Duration, Instant};

/// Configuration of a [`Server`].
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// Address to bind, e.g. `"127.0.0.1:8080"` (`:0` = ephemeral port).
    pub addr: String,
    /// Worker threads (CPU-bound request execution; connection I/O is the
    /// reactor's and costs no worker).
    pub threads: usize,
    /// Maximum *decoded* request-body bytes before a 413.
    pub max_body_bytes: u64,
    /// Capacity of the process-wide prepared-query cache.
    pub cache_capacity: usize,
    /// Compile-time bounds on untrusted query text.
    pub compile_limits: CompileLimits,
    /// Per-lane streaming bounds (defaults to [`StreamLimits::serving`]).
    pub stream_limits: StreamLimits,
    /// Deadline for an idle keep-alive connection's next request head to
    /// arrive *completely* (slow-loris bound: the clock starts at accept or
    /// reuse and is *not* reset by trickled bytes), and the worker-side
    /// socket read timeout while a request body streams.
    pub read_timeout: Duration,
    /// Deadline for the peer to drain a response (reactor-side), and the
    /// worker-side socket write timeout.
    pub write_timeout: Duration,
    /// Maximum `q` parameters accepted by `POST /batch`.
    pub max_queries_per_batch: usize,
    /// Open-connection cap; past it the reactor stops accepting until load
    /// drops (kernel backlog backpressure) instead of queueing unboundedly.
    pub max_connections: usize,
    /// Corpus directory for the document-store endpoints
    /// (`POST /corpus/{id}`, `GET /corpus`, `POST /query?doc=`). `None`
    /// disables them (503).
    pub corpus_dir: Option<String>,
    /// Slow-query threshold: requests whose end-to-end time reaches this
    /// many milliseconds land in the `GET /debug/requests` ring with
    /// their full stage breakdown. `0` traces every request.
    pub slow_ms: u64,
    /// Append every request's trace as one JSON line to this file
    /// (`foxq serve --trace-log <path>`). `None` disables the file sink;
    /// the in-memory slow-query ring is always on.
    pub trace_log: Option<String>,
    /// Rotate the trace log once it would exceed this many bytes (the
    /// current file moves to `<path>.1`, keeping at most one rotated
    /// generation). `0` never rotates.
    pub trace_log_max_bytes: u64,
    /// Attach a [`StreamProfiler`] to every `/query` lane and keep
    /// per-query resource profiles (`GET /debug/profile`). Off by
    /// default: the observer hooks then compile to nothing.
    pub profile: bool,
}

impl Default for ServerConfig {
    fn default() -> Self {
        ServerConfig {
            addr: "127.0.0.1:0".to_string(),
            threads: std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(4),
            max_body_bytes: 256 << 20, // 256 MiB of XML per request
            cache_capacity: 256,
            compile_limits: CompileLimits::default(),
            stream_limits: StreamLimits::serving(),
            read_timeout: Duration::from_secs(10),
            write_timeout: Duration::from_secs(10),
            max_queries_per_batch: 64,
            max_connections: 4096,
            corpus_dir: None,
            slow_ms: 500,
            trace_log: None,
            trace_log_max_bytes: DEFAULT_TRACE_LOG_MAX_BYTES,
            profile: false,
        }
    }
}

/// State shared by the reactor, every worker, and the handle.
struct Shared {
    config: ServerConfig,
    cache: SharedQueryCache,
    /// The document store, when `--corpus` is configured. The lock is held
    /// only for manifest operations (resolve/commit/list), never across an
    /// ingest parse or a tape replay.
    corpus: Option<Mutex<Corpus>>,
    /// Uniquifies concurrent ingest temp files.
    ingest_seq: AtomicU64,
    metrics: Arc<Metrics>,
    shutdown: AtomicBool,
    /// Uniquifies request ids (`X-Foxq-Request-Id`).
    request_seq: AtomicU64,
    /// Slow requests, newest last (`GET /debug/requests`).
    trace_ring: RingSink,
    /// Optional JSONL file sink tracing *every* request.
    trace_log: Option<JsonlSink>,
    /// Per-query resource profiles (`--profile`; `GET /debug/profile`).
    profiles: Option<ProfileRegistry>,
}

impl Shared {
    /// Lock the corpus (compile-pure state: a poisoned lock is recovered).
    fn corpus(&self) -> Option<MutexGuard<'_, Corpus>> {
        self.corpus
            .as_ref()
            .map(|m| m.lock().unwrap_or_else(|poisoned| poisoned.into_inner()))
    }

    fn corpus_gauges(&self) -> Option<crate::metrics::CorpusGauges> {
        self.corpus().map(|c| {
            let fet1 = c.docs().filter(|d| d.version == 1).count() as u64;
            crate::metrics::CorpusGauges {
                docs: c.len() as u64,
                fet1_tapes: fet1,
                fet2_tapes: c.len() as u64 - fet1,
            }
        })
    }
}

/// A bound, not-yet-serving server (useful to learn the ephemeral port
/// before spawning the threads).
pub struct Server {
    listener: TcpListener,
    shared: Arc<Shared>,
}

impl Server {
    /// Bind the configured address. No thread is spawned yet.
    pub fn bind(config: ServerConfig) -> std::io::Result<Server> {
        let addr =
            config.addr.to_socket_addrs()?.next().ok_or_else(|| {
                std::io::Error::new(ErrorKind::InvalidInput, "unresolvable address")
            })?;
        let listener = TcpListener::bind(addr)?;
        let cache = SharedQueryCache::with_limits(config.cache_capacity, config.compile_limits);
        let corpus = match &config.corpus_dir {
            Some(dir) => Some(Mutex::new(Corpus::open(dir).map_err(|e| {
                std::io::Error::new(ErrorKind::InvalidInput, format!("corpus {dir}: {e}"))
            })?)),
            None => None,
        };
        let trace_log = match &config.trace_log {
            Some(path) => Some(
                JsonlSink::open_with_max(std::path::Path::new(path), config.trace_log_max_bytes)
                    .map_err(|e| {
                        std::io::Error::new(
                            ErrorKind::InvalidInput,
                            format!("trace log {path}: {e}"),
                        )
                    })?,
            ),
            None => None,
        };
        let profiles = config
            .profile
            .then(|| ProfileRegistry::new(config.cache_capacity));
        Ok(Server {
            listener,
            shared: Arc::new(Shared {
                config,
                cache,
                corpus,
                ingest_seq: AtomicU64::new(0),
                metrics: Arc::new(Metrics::default()),
                shutdown: AtomicBool::new(false),
                request_seq: AtomicU64::new(0),
                trace_ring: RingSink::new(TRACE_RING_CAP),
                trace_log,
                profiles,
            }),
        })
    }

    /// The bound address (resolves `:0` to the actual port).
    pub fn local_addr(&self) -> std::io::Result<SocketAddr> {
        self.listener.local_addr()
    }

    /// Spawn the reactor and the worker pool; returns immediately.
    pub fn start(self) -> std::io::Result<ServerHandle> {
        let addr = self.listener.local_addr()?;
        self.listener.set_nonblocking(true)?;
        let threads = self.shared.config.threads.max(1);

        let poller = Poller::new()?;
        let waker = Arc::new(Waker::new()?);
        poller.add(self.listener.as_raw_fd(), TOKEN_LISTENER, EPOLLIN)?;
        poller.add(waker.as_raw_fd(), TOKEN_WAKER, EPOLLIN)?;

        let (job_tx, job_rx) = mpsc::channel::<Conn>();
        let job_rx = Arc::new(Mutex::new(job_rx));
        let (done_tx, done_rx) = mpsc::channel::<Finished>();

        let mut workers = Vec::with_capacity(threads);
        for i in 0..threads {
            let job_rx = job_rx.clone();
            let done_tx = done_tx.clone();
            let waker = waker.clone();
            let shared = self.shared.clone();
            workers.push(
                std::thread::Builder::new()
                    .name(format!("foxq-worker-{i}"))
                    .spawn(move || worker_loop(&job_rx, &done_tx, &waker, &shared))?,
            );
        }

        let mut reactor = Reactor {
            poller,
            listener: Some(self.listener),
            accepting: true,
            waker: waker.clone(),
            conns: HashMap::new(),
            next_token: TOKEN_FIRST_CONN,
            in_worker: 0,
            job_tx: Some(job_tx),
            done_rx,
            drain_started: false,
            shared: self.shared.clone(),
        };
        let reactor_thread = std::thread::Builder::new()
            .name("foxq-reactor".to_string())
            .spawn(move || {
                if let Err(e) = reactor.run() {
                    eprintln!("foxq-server: reactor failed: {e}");
                }
            })?;

        Ok(ServerHandle {
            addr,
            shared: self.shared,
            waker,
            reactor: reactor_thread,
            workers,
        })
    }
}

/// Handle to a running server: address, shared metrics, shutdown control.
pub struct ServerHandle {
    addr: SocketAddr,
    shared: Arc<Shared>,
    waker: Arc<Waker>,
    reactor: std::thread::JoinHandle<()>,
    workers: Vec<std::thread::JoinHandle<()>>,
}

impl ServerHandle {
    pub fn local_addr(&self) -> SocketAddr {
        self.addr
    }

    /// The live metrics registry (what `GET /metrics` renders).
    pub fn metrics(&self) -> Arc<Metrics> {
        self.shared.metrics.clone()
    }

    /// The process-wide prepared-query cache.
    pub fn cache(&self) -> SharedQueryCache {
        self.shared.cache.clone()
    }

    /// Whether a shutdown has been signalled (locally or via
    /// `POST /shutdown`).
    pub fn is_shutting_down(&self) -> bool {
        self.shared.shutdown.load(Ordering::SeqCst)
    }

    /// Signal shutdown and wait for every in-flight request to drain.
    pub fn shutdown(self) {
        self.shared.shutdown.store(true, Ordering::SeqCst);
        self.waker.wake();
        self.join();
    }

    /// Wait until the server exits (a shutdown is signalled and all
    /// in-flight work has drained).
    pub fn join(self) {
        let _ = self.reactor.join();
        for w in self.workers {
            let _ = w.join();
        }
    }
}

// ---------------------------------------------------------------------------
// The reactor
// ---------------------------------------------------------------------------

const TOKEN_LISTENER: u64 = 0;
const TOKEN_WAKER: u64 = 1;
const TOKEN_FIRST_CONN: u64 = 2;

/// Upper bound on one epoll cycle, so the shutdown flag and deadline sweep
/// run at least this often even on a silent server.
const MAX_POLL: Duration = Duration::from_millis(100);

/// How long a lingering close keeps discarding the peer's unsent tail.
const LINGER_TIMEOUT: Duration = Duration::from_millis(500);

/// Capacity of the slow-request ring served by `GET /debug/requests`.
const TRACE_RING_CAP: usize = 128;

/// A served request on its way back from a worker to the reactor.
struct Finished {
    conn: Conn,
    /// The serialized response (empty for a silent close).
    response: Vec<u8>,
    after: After,
}

struct Reactor {
    poller: Poller,
    /// Dropped (closing the socket) when a drain starts.
    listener: Option<TcpListener>,
    /// Whether the listener is currently registered for readiness (false
    /// while the `max_connections` backpressure gate is closed).
    accepting: bool,
    waker: Arc<Waker>,
    /// Connections currently owned by the reactor, by token. Connections in
    /// `RouteBody` live in the worker channel / worker stacks instead.
    conns: HashMap<u64, Conn>,
    next_token: u64,
    /// Connections currently on the worker side (dispatched, not yet
    /// returned). Drain waits for this to reach zero.
    in_worker: usize,
    /// `None` once a drain begins: dropping the sender stops the workers
    /// after they finish what is queued.
    job_tx: Option<mpsc::Sender<Conn>>,
    done_rx: mpsc::Receiver<Finished>,
    drain_started: bool,
    shared: Arc<Shared>,
}

impl Reactor {
    fn run(&mut self) -> std::io::Result<()> {
        loop {
            if self.shared.shutdown.load(Ordering::SeqCst) && !self.drain_started {
                self.begin_drain();
            }
            self.drain_finished();
            if self.drain_started && self.conns.is_empty() && self.in_worker == 0 {
                // Dropping the job sender (already None) has stopped the
                // workers; every response is flushed.
                return Ok(());
            }

            let timeout = self.next_timeout();
            let wait_start = Instant::now();
            let ready = self.poller.wait(timeout.as_millis() as i32)?;
            // Two clocks per cycle: how long the reactor slept in
            // epoll_wait, and how long it then stayed busy before the next
            // wait (the loop lag every other connection's readiness rides
            // behind).
            let busy_start = Instant::now();
            self.shared
                .metrics
                .epoll_wait
                .observe(busy_start.duration_since(wait_start));
            for (token, _events) in ready {
                match token {
                    TOKEN_LISTENER => self.accept_ready(),
                    TOKEN_WAKER => self.waker.drain(),
                    token => {
                        if let Some(conn) = self.conns.remove(&token) {
                            self.advance(conn);
                        }
                    }
                }
            }
            self.drain_finished();
            self.sweep_deadlines();
            self.update_accept_gate();
            self.shared.metrics.loop_lag.observe(busy_start.elapsed());
        }
    }

    /// Milliseconds until the nearest connection deadline, capped at
    /// [`MAX_POLL`].
    fn next_timeout(&self) -> Duration {
        let now = Instant::now();
        self.conns
            .values()
            .map(|c| c.deadline.saturating_duration_since(now))
            .min()
            .unwrap_or(MAX_POLL)
            .min(MAX_POLL)
    }

    fn accept_ready(&mut self) {
        loop {
            let accepted = match &self.listener {
                Some(listener) => listener.accept(),
                None => return,
            };
            match accepted {
                Ok((stream, _peer)) => {
                    if stream.set_nonblocking(true).is_err() {
                        continue;
                    }
                    stream.set_nodelay(true).ok();
                    add(&self.shared.metrics.connections_total, 1);
                    add(&self.shared.metrics.connections_active, 1);
                    let token = self.next_token;
                    self.next_token += 1;
                    let deadline = Instant::now() + self.shared.config.read_timeout;
                    let mut conn = Conn::new(stream, token, deadline);
                    if self.arm(&mut conn, EPOLLIN) {
                        self.conns.insert(token, conn);
                    } else {
                        self.close(conn);
                    }
                    if self.open_connections() >= self.shared.config.max_connections {
                        break; // gate check below will pause accepting
                    }
                }
                Err(e) if e.kind() == ErrorKind::WouldBlock => break,
                Err(e) if e.kind() == ErrorKind::Interrupted => continue,
                // Transient per-connection failures (ECONNABORTED and
                // friends): skip this one, keep accepting.
                Err(_) => break,
            }
        }
        self.update_accept_gate();
    }

    fn open_connections(&self) -> usize {
        self.conns.len() + self.in_worker
    }

    /// Pause accepting above `max_connections` open connections; resume
    /// below. The listener stays bound — waiting peers queue in the kernel
    /// backlog instead of each costing this process a connection.
    fn update_accept_gate(&mut self) {
        let Some(listener) = &self.listener else {
            return;
        };
        let want = self.open_connections() < self.shared.config.max_connections;
        if want && !self.accepting {
            if self
                .poller
                .add(listener.as_raw_fd(), TOKEN_LISTENER, EPOLLIN)
                .is_ok()
            {
                self.accepting = true;
            }
        } else if !want && self.accepting {
            let _ = self.poller.delete(listener.as_raw_fd());
            self.accepting = false;
            add(&self.shared.metrics.accept_gate_rejections_total, 1);
        }
    }

    /// Drive one connection as far as readiness allows.
    fn advance(&mut self, conn: Conn) {
        match conn.phase {
            Phase::Idle | Phase::ReadHead => self.read_head(conn),
            Phase::WriteResponse { .. } => self.continue_write(conn),
            Phase::Linger { .. } => self.continue_linger(conn),
            // RouteBody connections are not in the map.
            Phase::RouteBody => self.close(conn),
        }
    }

    /// Accumulate head bytes until a complete request head is buffered,
    /// then hand the connection to a worker.
    fn read_head(&mut self, mut conn: Conn) {
        let mut chunk = [0u8; 8192];
        loop {
            match (&conn.stream).read(&mut chunk) {
                Ok(0) => {
                    // Peer closed. Mid-head that deserves a parting 400
                    // (the peer may still read: only its write half is
                    // necessarily done); between requests it is just the
                    // keep-alive end.
                    if conn.buf.is_empty() {
                        self.close(conn);
                    } else {
                        self.shared.metrics.record_response(400);
                        let response = simple_response(400, "connection closed mid-head\n");
                        self.start_write(conn, response, After::Close);
                    }
                    return;
                }
                Ok(n) => {
                    add(&self.shared.metrics.bytes_in_total, n as u64);
                    conn.buf.extend_from_slice(&chunk[..n]);
                    conn.phase = Phase::ReadHead;
                    if conn.head_end().is_some() {
                        self.dispatch(conn);
                        return;
                    }
                    if conn.buf.len() > Conn::HEAD_BUF_CAP {
                        self.shared.metrics.record_response(400);
                        let response = simple_response(400, "request head too large\n");
                        self.start_write(conn, response, After::Close);
                        return;
                    }
                }
                Err(e) if e.kind() == ErrorKind::WouldBlock => {
                    if self.arm(&mut conn, EPOLLIN) {
                        self.conns.insert(conn.token, conn);
                    } else {
                        self.close(conn);
                    }
                    return;
                }
                Err(e) if e.kind() == ErrorKind::Interrupted => continue,
                Err(_) => {
                    self.close(conn);
                    return;
                }
            }
        }
    }

    /// Hand a connection with a complete buffered head to the worker pool.
    fn dispatch(&mut self, mut conn: Conn) {
        if let Some(interest) = conn.interest.take() {
            let _ = interest;
            let _ = self.poller.delete(conn.stream.as_raw_fd());
        }
        conn.phase = Phase::RouteBody;
        // The request clock starts when the head is complete; first
        // response byte (TTFB) and full flush (request latency) are
        // measured against it back on the reactor side.
        conn.req_start = Some(Instant::now());
        conn.ttfb_recorded = false;
        match &self.job_tx {
            Some(tx) => match tx.send(conn) {
                Ok(()) => {
                    self.in_worker += 1;
                    add(&self.shared.metrics.worker_queue_depth, 1);
                }
                Err(mpsc::SendError(conn)) => self.close(conn),
            },
            // Draining: no new requests.
            None => self.close(conn),
        }
    }

    /// Collect connections coming back from workers and start their
    /// response writes.
    fn drain_finished(&mut self) {
        while let Ok(Finished {
            mut conn,
            response,
            after,
        }) = self.done_rx.try_recv()
        {
            self.in_worker -= 1;
            conn.scanned = 0;
            self.start_write(conn, response, after);
        }
    }

    fn start_write(&mut self, mut conn: Conn, out: Vec<u8>, after: After) {
        conn.deadline = Instant::now() + self.shared.config.write_timeout;
        conn.phase = Phase::WriteResponse {
            out,
            written: 0,
            after,
        };
        self.continue_write(conn);
    }

    /// Flush as much of the pending response as the socket accepts;
    /// resumes on `EPOLLOUT` when the peer applies backpressure.
    fn continue_write(&mut self, mut conn: Conn) {
        let Phase::WriteResponse {
            ref out,
            mut written,
            after,
        } = conn.phase
        else {
            return self.close(conn);
        };
        while written < out.len() {
            match (&conn.stream).write(&out[written..]) {
                Ok(0) => return self.close(conn),
                Ok(n) => {
                    if !conn.ttfb_recorded {
                        conn.ttfb_recorded = true;
                        if let Some(start) = conn.req_start {
                            self.shared.metrics.ttfb.observe(start.elapsed());
                        }
                    }
                    written += n;
                    add(&self.shared.metrics.bytes_out_total, n as u64);
                }
                Err(e) if e.kind() == ErrorKind::WouldBlock => {
                    if let Phase::WriteResponse {
                        written: ref mut w, ..
                    } = conn.phase
                    {
                        *w = written;
                    }
                    if self.arm(&mut conn, EPOLLOUT) {
                        self.conns.insert(conn.token, conn);
                    } else {
                        self.close(conn);
                    }
                    return;
                }
                Err(e) if e.kind() == ErrorKind::Interrupted => {}
                Err(_) => return self.close(conn),
            }
        }
        self.finish_write(conn, after);
    }

    /// The response is fully flushed: reuse, close, or linger.
    fn finish_write(&mut self, mut conn: Conn, after: After) {
        let started = conn.req_start.take();
        let endpoint = conn.endpoint.take();
        if let (Some(start), Some(endpoint)) = (started, endpoint) {
            self.shared
                .metrics
                .request_latency(endpoint)
                .observe(start.elapsed());
        }
        match after {
            After::Reuse if !self.drain_started => {
                conn.deadline = Instant::now() + self.shared.config.read_timeout;
                if conn.head_end().is_some() {
                    // The next request was pipelined into an earlier
                    // segment: no readiness event will announce it.
                    conn.phase = Phase::ReadHead;
                    self.dispatch(conn);
                    return;
                }
                conn.phase = if conn.buf.is_empty() {
                    Phase::Idle
                } else {
                    Phase::ReadHead
                };
                if self.arm(&mut conn, EPOLLIN) {
                    self.conns.insert(conn.token, conn);
                } else {
                    self.close(conn);
                }
            }
            After::Reuse | After::Close => self.close(conn),
            After::Linger => {
                // Send FIN, then keep discarding the peer's in-flight body
                // for a bounded time: an immediate close would RST away the
                // buffered response (the classic early-413 problem).
                let _ = conn.stream.shutdown(std::net::Shutdown::Write);
                conn.phase = Phase::Linger { drained: 0 };
                // `close` decrements by matching on the phase, so the
                // gauge stays balanced on every exit path.
                add(&self.shared.metrics.connections_lingering, 1);
                conn.deadline = Instant::now() + LINGER_TIMEOUT;
                if self.arm(&mut conn, EPOLLIN) {
                    self.conns.insert(conn.token, conn);
                } else {
                    self.close(conn);
                }
            }
        }
    }

    /// Discard the peer's unsent tail (bounded) after a FIN, then close.
    /// These reads bypass the `bytes_in` counter by design: the metric
    /// means "bytes delivered to request processing".
    fn continue_linger(&mut self, mut conn: Conn) {
        let Phase::Linger { mut drained } = conn.phase else {
            return self.close(conn);
        };
        let mut chunk = [0u8; 8192];
        loop {
            match (&conn.stream).read(&mut chunk) {
                Ok(0) => return self.close(conn),
                Ok(n) => {
                    drained += n;
                    if drained > Conn::LINGER_CAP {
                        return self.close(conn);
                    }
                }
                Err(e) if e.kind() == ErrorKind::WouldBlock => {
                    conn.phase = Phase::Linger { drained };
                    if self.arm(&mut conn, EPOLLIN) {
                        self.conns.insert(conn.token, conn);
                    } else {
                        self.close(conn);
                    }
                    return;
                }
                Err(e) if e.kind() == ErrorKind::Interrupted => {}
                Err(_) => return self.close(conn),
            }
        }
    }

    /// Close every connection whose phase deadline has passed: idle
    /// keep-alive timeouts, slow-loris heads, peers not draining their
    /// response, linger expiry.
    fn sweep_deadlines(&mut self) {
        let now = Instant::now();
        let expired: Vec<u64> = self
            .conns
            .iter()
            .filter(|(_, c)| c.deadline <= now)
            .map(|(t, _)| *t)
            .collect();
        for token in expired {
            if let Some(conn) = self.conns.remove(&token) {
                self.close(conn);
            }
        }
    }

    /// Register or re-register a connection's readiness interest. Returns
    /// false when the kernel refuses (the connection is then unusable).
    fn arm(&mut self, conn: &mut Conn, want: u32) -> bool {
        let interest = want | EPOLLRDHUP;
        let ok = match conn.interest {
            Some(current) if current == interest => true,
            Some(_) => self
                .poller
                .modify(conn.stream.as_raw_fd(), conn.token, interest)
                .is_ok(),
            None => self
                .poller
                .add(conn.stream.as_raw_fd(), conn.token, interest)
                .is_ok(),
        };
        conn.interest = if ok { Some(interest) } else { None };
        ok
    }

    fn close(&mut self, mut conn: Conn) {
        if conn.interest.take().is_some() {
            let _ = self.poller.delete(conn.stream.as_raw_fd());
        }
        if matches!(conn.phase, Phase::Linger { .. }) {
            sub(&self.shared.metrics.connections_lingering, 1);
        }
        sub(&self.shared.metrics.connections_active, 1);
        // Dropping the stream closes the fd.
    }

    /// A drain begins: stop accepting (closing the listener so new
    /// connects are refused), cut idle and mid-head connections, and stop
    /// feeding workers. In-flight requests (worker side) and pending
    /// response writes complete normally.
    fn begin_drain(&mut self) {
        self.drain_started = true;
        if let Some(listener) = self.listener.take() {
            if self.accepting {
                let _ = self.poller.delete(listener.as_raw_fd());
            }
            self.accepting = false;
        }
        self.job_tx = None;
        let idle: Vec<u64> = self
            .conns
            .iter()
            .filter(|(_, c)| matches!(c.phase, Phase::Idle | Phase::ReadHead))
            .map(|(t, _)| *t)
            .collect();
        for token in idle {
            if let Some(conn) = self.conns.remove(&token) {
                self.close(conn);
            }
        }
    }
}

/// Serialize a minimal framing-level error response (no `Reply` routing
/// involved; used by the reactor for head-level failures).
fn simple_response(status: u16, body: &str) -> Vec<u8> {
    let mut out = Vec::with_capacity(128 + body.len());
    write_response(
        &mut out,
        status,
        "text/plain; charset=utf-8",
        &[],
        body.as_bytes(),
        false,
    )
    .expect("writing to Vec cannot fail");
    out
}

// ---------------------------------------------------------------------------
// Workers: the blocking, CPU-bound half
// ---------------------------------------------------------------------------

fn worker_loop(
    job_rx: &Arc<Mutex<mpsc::Receiver<Conn>>>,
    done_tx: &mpsc::Sender<Finished>,
    waker: &Waker,
    shared: &Shared,
) {
    loop {
        // Hold the lock only for the pop, never while serving.
        let next = match job_rx.lock() {
            Ok(guard) => guard.recv(),
            Err(_) => return,
        };
        let Ok(mut conn) = next else {
            return; // queue closed: drain started
        };
        sub(&shared.metrics.worker_queue_depth, 1);
        let outcome = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            serve_one(&mut conn, shared)
        }));
        let (response, after) = outcome.unwrap_or_else(|_| {
            // A panicking request must not shrink the pool; the connection
            // is torn down, everything shared is panic-safe (atomics and a
            // self-healing cache lock).
            eprintln!("foxq-server: worker recovered from a panicking request");
            (Vec::new(), After::Close)
        });
        let finished = Finished {
            conn,
            response,
            after,
        };
        if done_tx.send(finished).is_err() {
            return; // reactor gone
        }
        waker.wake();
    }
}

/// Counts request bytes into the shared metrics as they stream in. Wraps
/// only the *socket* half of a worker's reader: bytes the reactor already
/// buffered were counted when they were first read.
struct CountingReader<R> {
    inner: R,
    metrics: Arc<Metrics>,
}

impl<R: Read> Read for CountingReader<R> {
    fn read(&mut self, buf: &mut [u8]) -> std::io::Result<usize> {
        let n = self.inner.read(buf)?;
        add(&self.metrics.bytes_in_total, n as u64);
        Ok(n)
    }
}

/// Serve exactly one request on a connection whose head is fully buffered:
/// parse it, stream the body through the engines, serialize the response.
/// Runs on a worker with the socket temporarily in blocking mode; all
/// response I/O is left to the reactor.
fn serve_one(conn: &mut Conn, shared: &Shared) -> (Vec<u8>, After) {
    let cfg = &shared.config;
    if conn.stream.set_nonblocking(false).is_err() {
        return (Vec::new(), After::Close);
    }
    let _ = conn.stream.set_read_timeout(Some(cfg.read_timeout));
    let _ = conn.stream.set_write_timeout(Some(cfg.write_timeout));

    let buffered = std::mem::take(&mut conn.buf);
    let mut reader = BufReader::with_capacity(
        16 * 1024,
        Cursor::new(buffered).chain(CountingReader {
            inner: &conn.stream,
            metrics: shared.metrics.clone(),
        }),
    );
    let req_id = shared.request_seq.fetch_add(1, Ordering::Relaxed) + 1;
    let ctx = TraceContext::new(req_id);
    let served = {
        // Streamed `/query` responses are written by the worker itself,
        // straight to the (blocking, write-timeout-bounded) socket — a
        // slow client backpressures only its own lane.
        let mut stream_out = StreamOut {
            stream: &conn.stream,
            metrics: &shared.metrics,
            ctx: &ctx,
            req_start: conn.req_start.unwrap_or_else(Instant::now),
            req_id,
            keep: false,
            head_written: false,
        };
        serve_request(&mut reader, shared, &ctx, &mut stream_out)
    };

    // Bytes read past this request's framed end (a pipelined next request)
    // travel back to the reactor with the connection. Wire order: the
    // BufReader's unconsumed buffer precedes anything still in the cursor.
    let mut rest = reader.buffer().to_vec();
    let (cursor, _socket) = reader.into_inner().into_inner();
    let pos = cursor.position() as usize;
    let inner = cursor.into_inner();
    rest.extend_from_slice(&inner[pos..]);
    conn.buf = rest;

    if conn.stream.set_nonblocking(true).is_err() {
        return (Vec::new(), After::Close);
    }

    let Some((mut reply, keep_requested)) = served else {
        return (Vec::new(), After::Close); // transport-level failure
    };
    conn.endpoint = Some(reply.endpoint);
    // Histograms and the Server-Timing header are fed from the same
    // snapshot, so the two views can never disagree about a request.
    let times = ctx.times();
    for (stage, micros) in times.iter() {
        shared.metrics.engine_stage(stage).observe_micros(micros);
    }
    let total_micros = ctx.total_micros();
    if !reply.streamed {
        // On a streamed reply the head (with the request id) is already on
        // the wire and the timing would have to be a trailer; the stage
        // breakdown still lands in the histograms and the trace record.
        reply
            .headers
            .push(("x-foxq-request-id", format!("{req_id:016x}")));
        let mut timing = times.server_timing_value();
        if !timing.is_empty() {
            timing.push_str(", ");
        }
        let _ = {
            use std::fmt::Write as _;
            write!(
                timing,
                "total;dur={}.{:03}",
                total_micros / 1_000,
                total_micros % 1_000
            )
        };
        reply.headers.push(("server-timing", timing));
    }
    let slow = total_micros >= shared.config.slow_ms.saturating_mul(1_000);
    if slow || shared.trace_log.is_some() {
        let record = TraceRecord {
            id: req_id,
            target: reply.endpoint.name().to_string(),
            detail: std::mem::take(&mut reply.detail),
            status: reply.status,
            total_micros,
            stages: times,
            unix_millis: TraceRecord::now_unix_millis(),
        };
        if slow {
            shared.trace_ring.record(&record);
        }
        if let Some(log) = &shared.trace_log {
            log.record(&record);
        }
    }
    let draining = shared.shutdown.load(Ordering::SeqCst);
    let keep = keep_requested && reply.reusable && !draining;
    shared.metrics.record_response(reply.status);
    let out = if reply.streamed {
        // Head and chunks are already on the wire; only the tail — last
        // chunk plus trailers — remains (or nothing, for a mid-stream
        // failure: the missing terminator is the truncation signal). The
        // worker observed TTFB when it wrote the head.
        conn.ttfb_recorded = true;
        std::mem::take(&mut reply.body)
    } else {
        let mut out = Vec::with_capacity(256 + reply.body.len());
        write_response(
            &mut out,
            reply.status,
            reply.content_type,
            &reply.headers,
            &reply.body,
            keep,
        )
        .expect("writing to Vec cannot fail");
        out
    };
    let after = if keep {
        After::Reuse
    } else if !reply.reusable {
        // Unread request bytes are (or may be) on the wire.
        After::Linger
    } else {
        After::Close
    };
    (out, after)
}

/// Parse and route one request. `None` = close silently (transport error).
fn serve_request<R: BufRead>(
    reader: &mut R,
    shared: &Shared,
    ctx: &TraceContext,
    stream_out: &mut StreamOut<'_>,
) -> Option<(Reply, bool)> {
    let request = match read_request(reader) {
        Ok(Some(req)) => req,
        Ok(None) => return None, // raced peer close
        Err(e) => {
            // Head-level garbage: answer 400 when the error is a parse
            // failure, close silently on transport errors.
            if e.kind() == ErrorKind::InvalidData {
                return Some((reply_unconsumed(Reply::text(400, format!("{e}\n"))), false));
            }
            return None;
        }
    };
    let keep_requested = request.keep_alive();
    // Ambiguous body framing (duplicate/conflicting Content-Length,
    // Transfer-Encoding + Content-Length, list values) is rejected up
    // front for *every* endpoint, and the connection is closed: where the
    // next request starts is unknowable (RFC 9112 §6.3 — the
    // request-smuggling shapes).
    let reply = match request.body_kind() {
        Err(e) => reply_unconsumed(Reply::text(400, format!("{e}\n"))),
        Ok(_) => route(&request, reader, shared, ctx, stream_out),
    };
    Some((reply, keep_requested))
}

/// One response, ready to write: status, content type, extra headers, body.
struct Reply {
    status: u16,
    content_type: &'static str,
    headers: Vec<(&'static str, String)>,
    body: Vec<u8>,
    /// False when the request body was not consumed to its framed end —
    /// the connection cannot be reused without desynchronizing, and the
    /// close must linger so the response outlives the peer's unsent tail.
    /// Tracks actual body consumption, *not* the status: an error answer
    /// to a body-free request keeps its keep-alive connection.
    reusable: bool,
    /// Which endpoint produced this reply (drives the per-endpoint
    /// request-latency histogram; stamped by `route`).
    endpoint: Endpoint,
    /// `"METHOD /path"`, for the slow-query log (stamped by `route`).
    detail: String,
    /// True when the handler already wrote the chunked head and body
    /// chunks itself (`/query?stream=1`): `body` then holds only the
    /// chunked tail (or nothing, on a mid-stream failure), and the usual
    /// header/serialization step is skipped.
    streamed: bool,
}

impl Reply {
    fn new(status: u16, content_type: &'static str, body: impl Into<Vec<u8>>) -> Reply {
        Reply {
            status,
            content_type,
            headers: Vec::new(),
            body: body.into(),
            reusable: true,
            endpoint: Endpoint::Other,
            detail: String::new(),
            streamed: false,
        }
    }

    fn text(status: u16, body: impl Into<String>) -> Reply {
        Reply::new(
            status,
            "text/plain; charset=utf-8",
            body.into().into_bytes(),
        )
    }
}

fn route<R: BufRead>(
    request: &Request,
    conn: &mut R,
    shared: &Shared,
    ctx: &TraceContext,
    stream_out: &mut StreamOut<'_>,
) -> Reply {
    let endpoint = match (request.method.as_str(), request.path.as_str()) {
        ("GET", "/healthz") => Endpoint::Healthz,
        ("GET", "/metrics") => Endpoint::Metrics,
        ("GET", "/debug/requests") | ("GET", "/debug/profile") => Endpoint::Debug,
        ("POST", "/query") => Endpoint::Query,
        ("POST", "/batch") => Endpoint::Batch,
        ("GET", "/corpus") => Endpoint::Corpus,
        ("POST", p) if p.strip_prefix("/corpus/").is_some_and(|id| !id.is_empty()) => {
            Endpoint::Corpus
        }
        ("POST", "/shutdown") => Endpoint::Shutdown,
        _ => Endpoint::Other,
    };
    shared.metrics.record_request(endpoint);

    // Endpoints that ignore the body can only reuse the connection if
    // there is no body to desynchronize on.
    let bodyless = |reply: Reply, request: &Request| -> Reply {
        let mut reply = reply;
        reply.reusable = reply.reusable && matches!(request.body_kind(), Ok(BodyKind::Empty));
        reply
    };

    let mut reply = match endpoint {
        Endpoint::Healthz => bodyless(Reply::text(200, "ok\n"), request),
        Endpoint::Debug => {
            let reply = if request.path == "/debug/profile" {
                match &shared.profiles {
                    Some(registry) => Reply::text(200, registry.render()),
                    None => Reply::text(503, "profiling disabled (start with --profile)\n"),
                }
            } else if request.params("format").next() == Some("json") {
                Reply::new(
                    200,
                    "application/x-ndjson",
                    shared.trace_ring.dump_json().into_bytes(),
                )
            } else {
                Reply::text(200, shared.trace_ring.dump())
            };
            bodyless(reply, request)
        }
        Endpoint::Metrics => bodyless(
            Reply::new(
                200,
                "text/plain; version=0.0.4; charset=utf-8",
                shared
                    .metrics
                    .render(shared.cache.stats(), shared.corpus_gauges())
                    .into_bytes(),
            ),
            request,
        ),
        Endpoint::Shutdown => {
            shared.shutdown.store(true, Ordering::SeqCst);
            bodyless(Reply::text(200, "draining\n"), request)
        }
        Endpoint::Query => handle_query(request, conn, shared, ctx, stream_out),
        Endpoint::Batch => handle_batch(request, conn, shared, ctx),
        Endpoint::Corpus => {
            if request.method == "GET" {
                bodyless(handle_corpus_list(shared), request)
            } else {
                let id = request.path["/corpus/".len()..].to_string();
                handle_corpus_ingest(request, conn, shared, ctx, &id)
            }
        }
        Endpoint::Other => {
            let known = request.path == "/corpus"
                || request.path.starts_with("/corpus/")
                || matches!(
                    request.path.as_str(),
                    "/healthz"
                        | "/metrics"
                        | "/query"
                        | "/batch"
                        | "/shutdown"
                        | "/debug/requests"
                        | "/debug/profile"
                );
            let status = if known { 405 } else { 404 };
            bodyless(
                Reply::text(
                    status,
                    format!("{} {}\n", status, crate::http::reason(status)),
                ),
                request,
            )
        }
    };
    reply.endpoint = endpoint;
    reply.detail = format!("{} {}", request.method, request.path);
    reply
}

/// Classify a compile failure. The request body was not touched yet, so
/// the reply is marked non-reusable.
fn prepare_error_reply(e: &PrepareError) -> Reply {
    reply_unconsumed(match e {
        PrepareError::TooLarge { .. } => Reply::text(413, format!("query rejected: {e}\n")),
        _ => Reply::text(400, format!("query rejected: {e}\n")),
    })
}

/// Classify an input-side XML failure (shared by /query and /batch).
fn xml_error_reply(e: &XmlError, limit: u64) -> Reply {
    if let XmlError::Io { source, .. } = e {
        if byte_limit_exceeded(source).is_some() {
            return Reply::text(
                413,
                format!("request body exceeded the limit of {limit} bytes\n"),
            );
        }
        // A transport stall is the peer's fault, not the document's.
        if matches!(source.kind(), ErrorKind::WouldBlock | ErrorKind::TimedOut) {
            return Reply::text(408, "timed out reading the request body\n".to_string());
        }
    }
    Reply::text(400, format!("malformed XML input: {e}\n"))
}

/// A completed multi-lane run plus whether the request body was consumed
/// to its framed end (false ⇒ unread bytes remain on the wire and the
/// reply must not reuse the connection).
type LanesOutcome = (MultiRun<WriterSink<Vec<u8>>>, bool);

/// Stream the request body through `mfts` in one pass; shared by /query
/// (N = 1) and /batch. The body is read *while* the engines run — it is
/// never accumulated anywhere. The second value of a success is whether
/// the body was consumed to its framed end: when false, unread bytes
/// remain on the wire and the reply **must not** reuse the connection
/// (the next keep-alive request would start mid-body).
fn run_lanes<R: BufRead>(
    request: &Request,
    conn: &mut R,
    shared: &Shared,
    mfts: &[&Mft],
) -> Result<LanesOutcome, Reply> {
    let kind = request
        .body_kind()
        .map_err(|e| reply_unconsumed(Reply::text(400, format!("{e}\n"))))?;
    if kind == BodyKind::Empty {
        // Nothing is on the wire: this error keeps its connection.
        return Err(Reply::text(
            400,
            "missing request body (the XML document)\n",
        ));
    }
    let mut body = BodyReader::new(conn, kind);
    let bounded = BoundedReader::new(&mut body, shared.config.max_body_bytes);
    let reader = XmlReader::new(bounded);
    let sinks: Vec<_> = mfts.iter().map(|_| WriterSink::new(Vec::new())).collect();
    add(&shared.metrics.lane_runs_total, mfts.len() as u64);
    let run = run_multi_with_limits(mfts, reader, sinks, shared.config.stream_limits)
        .map_err(|e| reply_unconsumed(xml_error_reply(&e, shared.config.max_body_bytes)))?;
    Ok((run, body.exhausted()))
}

fn handle_query<R: BufRead>(
    request: &Request,
    conn: &mut R,
    shared: &Shared,
    ctx: &TraceContext,
    stream_out: &mut StreamOut<'_>,
) -> Reply {
    let mut params = request.params("q");
    let Some(q) = params.next() else {
        return reply_unconsumed(Reply::text(400, "missing query parameter q\n"));
    };
    if params.next().is_some() {
        return reply_unconsumed(Reply::text(
            400,
            "one q per /query request; use /batch for sets\n",
        ));
    }
    let prepared = match lookup_traced(shared, ctx, q) {
        Ok(p) => p,
        Err(e) => return prepare_error_reply(&e),
    };
    let doc = request.params("doc").next().map(String::from);
    if request.params("stream").next().is_some_and(|v| v != "0") {
        return handle_query_stream(
            request,
            conn,
            shared,
            ctx,
            &prepared,
            doc.as_deref(),
            stream_out,
        );
    }
    // The profiled and plain paths monomorphize separately: with `()` as
    // the observer every hook is an empty `#[inline(always)]` body, so
    // `--profile` off costs the engine nothing.
    let mut profiled: Option<(StreamProfile, u64, u64)> = None;
    let (run, body_exhausted) = if shared.profiles.is_some() {
        let scope = AllocScope::begin();
        let start = Instant::now();
        let profiler = StreamProfiler::for_mft(prepared.mft());
        match query_run(
            request,
            conn,
            shared,
            ctx,
            &prepared,
            doc.as_deref(),
            profiler,
        ) {
            Ok((orun, exhausted)) => {
                let execute_micros = micros_since(start);
                let alloc_bytes = scope.delta().allocated_bytes;
                let (run, mut observers) = orun.split();
                if let Some(profiler) = observers.pop().flatten() {
                    profiled = Some((
                        profiler.into_profile(prepared.mft()),
                        alloc_bytes,
                        execute_micros,
                    ));
                }
                (run, exhausted)
            }
            Err(reply) => return reply,
        }
    } else {
        match query_run(request, conn, shared, ctx, &prepared, doc.as_deref(), ()) {
            Ok((orun, exhausted)) => (orun.split().0, exhausted),
            Err(reply) => return reply,
        }
    };
    add(&shared.metrics.input_events_total, run.input_events);
    match run.results.into_iter().next().expect("one lane") {
        Ok((sink, stats)) => {
            add(&shared.metrics.output_events_total, stats.output_events);
            add(
                &shared.metrics.prefilter_skipped_total,
                stats.prefiltered_events,
            );
            shared
                .metrics
                .live_nodes_peak
                .observe_value(stats.peak_live_nodes as u64);
            shared
                .metrics
                .live_bytes_peak
                .observe_value(stats.peak_live_bytes as u64);
            if let (Some(registry), Some((profile, alloc_bytes, execute_micros))) =
                (&shared.profiles, profiled.take())
            {
                shared
                    .metrics
                    .alloc_bytes_per_request
                    .observe_value(alloc_bytes);
                let key = source_key(prepared.source());
                let sample = RunSample {
                    input_events: run.input_events,
                    output_events: stats.output_events,
                    peak_live_nodes: stats.peak_live_nodes as u64,
                    peak_live_bytes: stats.peak_live_bytes as u64,
                    peak_pending_calls: stats.peak_pending_calls as u64,
                    alloc_bytes,
                    execute_micros,
                };
                registry.record(key, prepared.source(), &sample, Some(&profile));
                if let Some(log) = &shared.trace_log {
                    log.append_json(&profile_json(key, &sample, &profile));
                }
            }
            if doc.is_some() {
                add(&shared.metrics.corpus_hits_total, 1);
                add(
                    &shared.metrics.seek_skipped_bytes_total,
                    run.seek_skipped_bytes,
                );
                add(
                    &shared.metrics.index_skipped_bytes_total,
                    run.index_skipped_bytes,
                );
            }
            let span = ctx.enter(Stage::Serialize);
            let body = sink.finish().expect("writing to Vec cannot fail");
            drop(span);
            let mut reply = Reply::new(200, "application/xml", body);
            reply.headers = vec![
                ("x-foxq-input-events", run.input_events.to_string()),
                ("x-foxq-output-events", stats.output_events.to_string()),
                (
                    "x-foxq-prefiltered-events",
                    stats.prefiltered_events.to_string(),
                ),
                ("x-foxq-peak-live-nodes", stats.peak_live_nodes.to_string()),
                ("x-foxq-peak-live-bytes", stats.peak_live_bytes.to_string()),
                (
                    "x-foxq-peak-pending-calls",
                    stats.peak_pending_calls.to_string(),
                ),
            ];
            if doc.is_some() {
                reply.headers.push((
                    "x-foxq-seek-skipped-bytes",
                    run.seek_skipped_bytes.to_string(),
                ));
                reply.headers.push((
                    "x-foxq-index-skipped-bytes",
                    run.index_skipped_bytes.to_string(),
                ));
            }
            if !body_exhausted {
                // The run succeeded but the framed body was not fully
                // consumed (trailing bytes after the document): reusing the
                // connection would desynchronize the next request.
                return reply_unconsumed(reply);
            }
            reply
        }
        Err(e) => {
            add(&shared.metrics.lane_failures_total, 1);
            if doc.is_some() {
                // No request body was involved: the connection is clean.
                stream_error_reply(&e)
            } else {
                // The lane died before end-of-input: the body was not
                // drained.
                reply_unconsumed(stream_error_reply(&e))
            }
        }
    }
}

// ---------------------------------------------------------------------------
// Earliest-emission streaming: /query?stream=1
// ---------------------------------------------------------------------------

/// Trailer names declared on a streamed response head. The values are the
/// run's statistics — only known once the run finishes, which is exactly
/// what HTTP trailers are for. On buffered responses the same facts travel
/// as ordinary headers.
const STREAM_TRAILERS: &[&str] = &[
    "x-foxq-input-events",
    "x-foxq-output-events",
    "x-foxq-prefiltered-events",
    "x-foxq-peak-live-nodes",
    "x-foxq-peak-live-bytes",
    "x-foxq-peak-pending-calls",
    "x-foxq-emit-flushes",
    "x-foxq-first-emit-events",
];

/// Counts response bytes into the shared metrics as a worker writes them
/// (the streamed-response analog of [`CountingReader`]).
struct CountingWriter<'a> {
    inner: &'a TcpStream,
    metrics: &'a Metrics,
}

impl Write for CountingWriter<'_> {
    fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
        let n = self.inner.write(buf)?;
        add(&self.metrics.bytes_out_total, n as u64);
        Ok(n)
    }

    fn flush(&mut self) -> std::io::Result<()> {
        self.inner.flush()
    }
}

/// Worker-side writer for a streamed `/query` response: the chunked head
/// goes out lazily on the first emission flush (so pre-output failures
/// still get a proper status line), then every irrevocable output prefix
/// is one HTTP chunk. Writes hit the blocking, write-timeout-bounded
/// socket directly — a slow client backpressures its own lane and nothing
/// else.
struct StreamOut<'a> {
    stream: &'a TcpStream,
    metrics: &'a Metrics,
    ctx: &'a TraceContext,
    /// The request clock (head-complete instant): TTFB and the
    /// `first_flush` stage are measured against it.
    req_start: Instant,
    req_id: u64,
    /// Whether the head advertises keep-alive (decided before the first
    /// chunk; the final connection disposition still honours body
    /// consumption).
    keep: bool,
    /// Set once the chunked head is on the wire — the point of no return:
    /// later failures can only truncate the body, not change the status.
    head_written: bool,
}

impl StreamOut<'_> {
    /// Commit the response: status 200, chunked framing, declared
    /// trailers. Records TTFB and the `first_flush` stage — this *is* the
    /// first response byte.
    fn write_head(&mut self) -> std::io::Result<()> {
        let mut w = CountingWriter {
            inner: self.stream,
            metrics: self.metrics,
        };
        write_chunked_head(
            &mut w,
            200,
            "application/xml",
            &[("x-foxq-request-id", format!("{:016x}", self.req_id))],
            STREAM_TRAILERS,
            self.keep,
        )?;
        self.head_written = true;
        self.ctx
            .add_micros(Stage::FirstFlush, micros_since(self.req_start));
        self.metrics.ttfb.observe(self.req_start.elapsed());
        Ok(())
    }

    /// Deliver one irrevocable output prefix as an HTTP chunk (head
    /// first, if this is the first flush).
    fn deliver(&mut self, chunk: &[u8]) -> std::io::Result<()> {
        if !self.head_written {
            self.write_head()?;
        }
        let mut w = CountingWriter {
            inner: self.stream,
            metrics: self.metrics,
        };
        write_chunk(&mut w, chunk)
    }
}

/// A failure after the chunked head is on the wire: the status cannot be
/// changed and no trailer can be trusted, so nothing more is written —
/// the missing terminating chunk is what tells the client the body is
/// truncated — and the connection closes.
fn streamed_failure_reply() -> Reply {
    let mut reply = Reply::new(500, "application/xml", Vec::new());
    reply.streamed = true;
    reply.reusable = false;
    reply
}

/// A settled one-lane emit run: the shared-pass costs plus the lane's
/// outcome, with the sink (and its borrow of the connection writer)
/// dropped.
struct EmitRun {
    input_events: u64,
    seek_skipped_bytes: u64,
    index_skipped_bytes: u64,
    lane: Result<StreamStats, StreamError>,
}

fn settle_emit_lane<F: FnMut(&[u8]) -> std::io::Result<()>>(
    run: MultiRun<EmitWriter<F>>,
) -> EmitRun {
    let input_events = run.input_events;
    let seek_skipped_bytes = run.seek_skipped_bytes;
    let index_skipped_bytes = run.index_skipped_bytes;
    let lane = run
        .results
        .into_iter()
        .next()
        .expect("one lane")
        .and_then(|(sink, stats)| {
            sink.finish()?;
            Ok(stats)
        });
    EmitRun {
        input_events,
        seek_skipped_bytes,
        index_skipped_bytes,
        lane,
    }
}

/// `POST /query?stream=1`: run the single lane through the earliest
/// emission drivers, writing each irrevocable output prefix to the client
/// as it becomes final — the first response byte leaves long before the
/// document ends. Works for both the XML-body and the `doc=` tape paths.
/// Run statistics travel as trailers (they do not exist until the run
/// ends); `--profile` sampling applies only to buffered responses.
fn handle_query_stream<R: BufRead>(
    request: &Request,
    conn: &mut R,
    shared: &Shared,
    ctx: &TraceContext,
    prepared: &PreparedQuery,
    doc: Option<&str>,
    out: &mut StreamOut<'_>,
) -> Reply {
    out.keep = request.keep_alive() && !shared.shutdown.load(Ordering::SeqCst);
    let (run, body_exhausted) = match doc {
        None => {
            let kind = match request.body_kind() {
                Ok(BodyKind::Empty) => {
                    return Reply::text(400, "missing request body (the XML document)\n");
                }
                Ok(kind) => kind,
                Err(e) => return reply_unconsumed(Reply::text(400, format!("{e}\n"))),
            };
            add(&shared.metrics.lane_runs_total, 1);
            let mut body = BodyReader::new(conn, kind);
            let bounded = BoundedReader::new(&mut body, shared.config.max_body_bytes);
            let reader = XmlReader::new(bounded);
            let span = ctx.enter(Stage::Execute);
            let run = run_multi_emit(
                &[prepared.mft()],
                reader,
                vec![EmitWriter::new(|chunk: &[u8]| out.deliver(chunk))],
                shared.config.stream_limits,
                prepared.solo_plan(),
            );
            drop(span);
            let exhausted = body.exhausted();
            match run {
                Ok(run) => (settle_emit_lane(run), exhausted),
                Err(e) => {
                    // The input side killed the whole pass. Before the
                    // head: a normal error answer. After: truncate.
                    if out.head_written {
                        add(&shared.metrics.lane_failures_total, 1);
                        return streamed_failure_reply();
                    }
                    return reply_unconsumed(xml_error_reply(&e, shared.config.max_body_bytes));
                }
            }
        }
        Some(id) => {
            if shared.corpus.is_none() {
                return no_corpus_reply(request);
            }
            match request.body_kind() {
                Ok(BodyKind::Empty) => {}
                Ok(_) => {
                    return reply_unconsumed(Reply::text(
                        400,
                        "no request body allowed with doc= (the document is stored)\n",
                    ))
                }
                Err(e) => return reply_unconsumed(Reply::text(400, format!("{e}\n"))),
            }
            let path = match shared.corpus().expect("checked above").tape_path(id) {
                Ok(path) => path,
                Err(StoreError::UnknownDoc { id }) => {
                    return Reply::text(404, format!("no document {id:?} in the corpus\n"))
                }
                Err(e) => return Reply::text(500, format!("corpus error: {e}\n")),
            };
            let tape = match TapeReader::open_file(&path) {
                Ok(tape) => tape,
                Err(e) => return store_error_reply(&e),
            };
            add(&shared.metrics.lane_runs_total, 1);
            let start = Instant::now();
            let run = run_multi_on_tape_emit(
                &[prepared.mft()],
                tape,
                vec![EmitWriter::new(|chunk: &[u8]| out.deliver(chunk))],
                shared.config.stream_limits,
                prepared.solo_plan(),
            );
            let micros = micros_since(start);
            match run {
                Ok(run) => {
                    ctx.add_micros(Stage::TapeSeek, run.tape_seek_micros);
                    ctx.add_micros(Stage::IndexProbe, run.index_probe_micros);
                    ctx.add_micros(
                        Stage::TapeReplay,
                        micros.saturating_sub(run.tape_seek_micros + run.index_probe_micros),
                    );
                    (settle_emit_lane(run), true)
                }
                Err(e) => {
                    ctx.add_micros(Stage::TapeReplay, micros);
                    if out.head_written {
                        add(&shared.metrics.lane_failures_total, 1);
                        return streamed_failure_reply();
                    }
                    return store_error_reply(&e);
                }
            }
        }
    };
    add(&shared.metrics.input_events_total, run.input_events);
    let stats = match run.lane {
        Ok(stats) => stats,
        Err(e) => {
            add(&shared.metrics.lane_failures_total, 1);
            if out.head_written {
                return streamed_failure_reply();
            }
            // The lane died before emitting anything: a normal error
            // answer (the body was not drained on the XML path).
            let reply = stream_error_reply(&e);
            return if doc.is_some() {
                reply
            } else {
                reply_unconsumed(reply)
            };
        }
    };
    // A query with no output still owes the client a head.
    if !out.head_written && out.write_head().is_err() {
        return streamed_failure_reply();
    }
    add(&shared.metrics.streamed_responses_total, 1);
    add(&shared.metrics.output_events_total, stats.output_events);
    add(
        &shared.metrics.prefilter_skipped_total,
        stats.prefiltered_events,
    );
    shared
        .metrics
        .live_nodes_peak
        .observe_value(stats.peak_live_nodes as u64);
    shared
        .metrics
        .live_bytes_peak
        .observe_value(stats.peak_live_bytes as u64);
    shared
        .metrics
        .first_emit_events
        .observe_value(stats.first_emit_events);
    shared
        .metrics
        .emit_flushes_per_request
        .observe_value(stats.emit_flushes);
    if doc.is_some() {
        add(&shared.metrics.corpus_hits_total, 1);
        add(
            &shared.metrics.seek_skipped_bytes_total,
            run.seek_skipped_bytes,
        );
        add(
            &shared.metrics.index_skipped_bytes_total,
            run.index_skipped_bytes,
        );
    }
    let mut trailers: Vec<(&str, String)> = vec![
        ("x-foxq-input-events", run.input_events.to_string()),
        ("x-foxq-output-events", stats.output_events.to_string()),
        (
            "x-foxq-prefiltered-events",
            stats.prefiltered_events.to_string(),
        ),
        ("x-foxq-peak-live-nodes", stats.peak_live_nodes.to_string()),
        ("x-foxq-peak-live-bytes", stats.peak_live_bytes.to_string()),
        (
            "x-foxq-peak-pending-calls",
            stats.peak_pending_calls.to_string(),
        ),
        ("x-foxq-emit-flushes", stats.emit_flushes.to_string()),
        (
            "x-foxq-first-emit-events",
            stats.first_emit_events.to_string(),
        ),
    ];
    if doc.is_some() {
        trailers.push((
            "x-foxq-seek-skipped-bytes",
            run.seek_skipped_bytes.to_string(),
        ));
        trailers.push((
            "x-foxq-index-skipped-bytes",
            run.index_skipped_bytes.to_string(),
        ));
    }
    let mut reply = Reply::new(200, "application/xml", chunked_tail(&trailers));
    reply.streamed = true;
    reply.reusable = body_exhausted;
    reply
}

/// A `/query` lane's outcome: the observed run plus whether the request
/// body was fully consumed (tape-backed runs have no body and count as
/// consumed).
type QueryRunResult<O> = Result<(ObservedMultiRun<WriterSink<Vec<u8>>, O>, bool), Reply>;

/// Run one `/query` request's single lane, XML body or stored tape, with
/// an arbitrary [`StreamObserver`] attached. Stage attribution (tape
/// seek/index/replay vs. execute) lands on `ctx` either way.
fn query_run<R: BufRead, O: StreamObserver>(
    request: &Request,
    conn: &mut R,
    shared: &Shared,
    ctx: &TraceContext,
    prepared: &PreparedQuery,
    doc: Option<&str>,
    obs: O,
) -> QueryRunResult<O> {
    match doc {
        // `?doc=<id>`: replay the stored tape — no request body, no parse.
        // Seek time (skipping prefilter-withheld subtrees) is carved out
        // of the replay total so the two stages partition the wall time.
        Some(id) => {
            let start = Instant::now();
            let outcome = run_on_tape(request, shared, prepared, id, obs);
            let micros = micros_since(start);
            match outcome {
                Ok(run) => {
                    ctx.add_micros(Stage::TapeSeek, run.tape_seek_micros);
                    ctx.add_micros(Stage::IndexProbe, run.index_probe_micros);
                    ctx.add_micros(
                        Stage::TapeReplay,
                        micros.saturating_sub(run.tape_seek_micros + run.index_probe_micros),
                    );
                    Ok((run, true))
                }
                Err(reply) => {
                    ctx.add_micros(Stage::TapeReplay, micros);
                    Err(reply)
                }
            }
        }
        None => {
            let span = ctx.enter(Stage::Execute);
            let outcome = run_lane_observed(request, conn, shared, prepared, obs);
            drop(span);
            outcome
        }
    }
}

/// The single-lane analog of [`run_lanes`]: stream the request body
/// through one prepared query under its cached solo plan, observer
/// attached.
fn run_lane_observed<R: BufRead, O: StreamObserver>(
    request: &Request,
    conn: &mut R,
    shared: &Shared,
    prepared: &PreparedQuery,
    obs: O,
) -> QueryRunResult<O> {
    let kind = request
        .body_kind()
        .map_err(|e| reply_unconsumed(Reply::text(400, format!("{e}\n"))))?;
    if kind == BodyKind::Empty {
        // Nothing is on the wire: this error keeps its connection.
        return Err(Reply::text(
            400,
            "missing request body (the XML document)\n",
        ));
    }
    let mut body = BodyReader::new(conn, kind);
    let bounded = BoundedReader::new(&mut body, shared.config.max_body_bytes);
    let reader = XmlReader::new(bounded);
    add(&shared.metrics.lane_runs_total, 1);
    let run = run_multi_with_plan_observed(
        &[prepared.mft()],
        reader,
        vec![(WriterSink::new(Vec::new()), obs)],
        shared.config.stream_limits,
        prepared.solo_plan(),
    )
    .map_err(|e| reply_unconsumed(xml_error_reply(&e, shared.config.max_body_bytes)))?;
    Ok((run, body.exhausted()))
}

/// One profiled run as a trace-log JSON line (rides in the same JSONL
/// stream as the request traces, distinguished by the `"profile"` key).
fn profile_json(key: u64, sample: &RunSample, profile: &StreamProfile) -> String {
    use std::fmt::Write as _;
    let mut out = format!(
        "{{\"profile\":{{\"query\":\"{key:016x}\",\"input_events\":{},\"output_events\":{},\
         \"peak_live_nodes\":{},\"peak_live_bytes\":{},\"peak_pending_calls\":{},\
         \"alloc_bytes\":{},\"execute_us\":{},\"hot_states\":[",
        sample.input_events,
        sample.output_events,
        sample.peak_live_nodes,
        sample.peak_live_bytes,
        sample.peak_pending_calls,
        sample.alloc_bytes,
        sample.execute_micros
    );
    for (i, s) in profile.states.iter().take(8).enumerate() {
        if i > 0 {
            out.push(',');
        }
        let _ = write!(
            out,
            "{{\"state\":{:?},\"expansions\":{},\"output_events\":{}}}",
            s.state, s.expansions, s.output_events
        );
    }
    out.push_str("]}}");
    out
}

/// `POST /query?doc=<id>`: run one prepared query over a stored tape,
/// seeking over prefilter-withheld subtrees. The request must carry no
/// body (the document is already in the store).
fn run_on_tape<O: StreamObserver>(
    request: &Request,
    shared: &Shared,
    prepared: &PreparedQuery,
    id: &str,
    obs: O,
) -> Result<ObservedMultiRun<WriterSink<Vec<u8>>, O>, Reply> {
    if shared.corpus.is_none() {
        return Err(no_corpus_reply(request));
    }
    match request.body_kind() {
        Ok(BodyKind::Empty) => {}
        Ok(_) => {
            return Err(reply_unconsumed(Reply::text(
                400,
                "no request body allowed with doc= (the document is stored)\n",
            )))
        }
        Err(e) => return Err(reply_unconsumed(Reply::text(400, format!("{e}\n")))),
    }
    let path = match shared.corpus().expect("checked above").tape_path(id) {
        Ok(path) => path,
        Err(StoreError::UnknownDoc { id }) => {
            return Err(Reply::text(
                404,
                format!("no document {id:?} in the corpus\n"),
            ))
        }
        Err(e) => return Err(Reply::text(500, format!("corpus error: {e}\n"))),
    };
    let tape = match TapeReader::open_file(&path) {
        Ok(tape) => tape,
        Err(e) => return Err(store_error_reply(&e)),
    };
    add(&shared.metrics.lane_runs_total, 1);
    // The plan is cached inside the prepared query: repeat corpus hits do
    // not re-run the projection analysis.
    run_multi_on_tape_observed(
        &[prepared.mft()],
        tape,
        vec![(WriterSink::new(Vec::new()), obs)],
        shared.config.stream_limits,
        prepared.solo_plan(),
    )
    .map_err(|e| store_error_reply(&e))
}

/// `GET /corpus`: the manifest as tab-separated text.
fn handle_corpus_list(shared: &Shared) -> Reply {
    let Some(corpus) = shared.corpus() else {
        return Reply::text(503, "no corpus configured (start with --corpus DIR)\n");
    };
    let mut body = String::from("# id\tevents\tsource_bytes\ttape_bytes\tchecksum\n");
    for meta in corpus.docs() {
        body.push_str(&format!(
            "{}\t{}\t{}\t{}\t{:016x}\n",
            meta.id, meta.events, meta.source_bytes, meta.tape_bytes, meta.checksum
        ));
    }
    Reply::text(200, body)
}

/// `POST /corpus/{id}`: stream the request body through the XML parser
/// onto a tape, then commit it to the corpus under the lock. The parse and
/// tape write happen **outside** the corpus lock, so a slow ingest never
/// blocks `/query?doc=` resolution.
fn handle_corpus_ingest<R: BufRead>(
    request: &Request,
    conn: &mut R,
    shared: &Shared,
    ctx: &TraceContext,
    id: &str,
) -> Reply {
    if shared.corpus.is_none() {
        return no_corpus_reply(request);
    }
    if !valid_doc_id(id) {
        return reply_unconsumed(Reply::text(
            400,
            format!("invalid document id {id:?} (use [A-Za-z0-9._-], not starting with '.')\n"),
        ));
    }
    let kind = match request.body_kind() {
        Ok(BodyKind::Empty) => {
            return Reply::text(400, "missing request body (the XML document)\n")
        }
        Ok(kind) => kind,
        Err(e) => return reply_unconsumed(Reply::text(400, format!("{e}\n"))),
    };
    let dir = shared.corpus().expect("checked above").dir().to_path_buf();
    let seq = shared.ingest_seq.fetch_add(1, Ordering::Relaxed);
    let tmp = dir.join(format!(".ingest-{seq}-{id}.tmp"));
    let mut body = BodyReader::new(conn, kind);
    let bounded = BoundedReader::new(&mut body, shared.config.max_body_bytes);
    let span = ctx.enter(Stage::Execute);
    let ingested = ingest_xml_to_tmp(&tmp, bounded);
    drop(span);
    match ingested {
        Ok((info, source_bytes)) => {
            let installed =
                shared
                    .corpus()
                    .expect("checked above")
                    .install_tape(id, &tmp, &info, source_bytes);
            match installed {
                Ok(meta) => {
                    add(&shared.metrics.corpus_ingests_total, 1);
                    add(&shared.metrics.input_events_total, info.events + 1);
                    let reply = Reply::text(
                        200,
                        format!(
                            "stored {}: {} events, {} tape bytes (from {} XML bytes)\n",
                            meta.id, meta.events, meta.tape_bytes, meta.source_bytes
                        ),
                    );
                    if body.exhausted() {
                        reply
                    } else {
                        reply_unconsumed(reply)
                    }
                }
                Err(e) => Reply::text(500, format!("corpus commit failed: {e}\n")),
            }
        }
        // The helper already removed the tmp file.
        Err(StoreError::Xml(xml)) => {
            reply_unconsumed(xml_error_reply(&xml, shared.config.max_body_bytes))
        }
        Err(other) => reply_unconsumed(Reply::text(500, format!("ingest failed: {other}\n"))),
    }
}

/// A store-side failure of a corpus query: the tape is server state, so
/// corruption is a 500, never the client's fault.
fn store_error_reply(e: &StoreError) -> Reply {
    Reply::text(500, format!("tape replay failed: {e}\n"))
}

fn no_corpus_reply(request: &Request) -> Reply {
    let mut reply = Reply::text(503, "no corpus configured (start with --corpus DIR)\n");
    reply.reusable = matches!(request.body_kind(), Ok(BodyKind::Empty));
    reply
}

fn handle_batch<R: BufRead>(
    request: &Request,
    conn: &mut R,
    shared: &Shared,
    ctx: &TraceContext,
) -> Reply {
    let queries: Vec<&str> = request.params("q").collect();
    if queries.is_empty() {
        return reply_unconsumed(Reply::text(400, "missing query parameters q\n"));
    }
    if queries.len() > shared.config.max_queries_per_batch {
        return reply_unconsumed(Reply::text(
            400,
            format!(
                "{} queries exceed the batch limit of {}\n",
                queries.len(),
                shared.config.max_queries_per_batch
            ),
        ));
    }
    let mut prepared = Vec::with_capacity(queries.len());
    for (i, q) in queries.iter().enumerate() {
        match lookup_traced(shared, ctx, q) {
            Ok(p) => prepared.push(p),
            Err(e) => {
                let mut reply = prepare_error_reply(&e);
                reply.body = format!("query {i} rejected: {e}\n").into_bytes();
                return reply;
            }
        }
    }
    let mfts: Vec<&Mft> = prepared.iter().map(|p| p.mft()).collect();
    let span = ctx.enter(Stage::Execute);
    let outcome = run_lanes(request, conn, shared, &mfts);
    drop(span);
    let (run, body_exhausted) = match outcome {
        Ok(ok) => ok,
        Err(reply) => return reply,
    };
    add(&shared.metrics.input_events_total, run.input_events);

    let _serialize = ctx.enter(Stage::Serialize);
    let mut body = Vec::new();
    let mut failures = 0u64;
    let mut any_ok = false;
    for (i, result) in run.results.into_iter().enumerate() {
        body.extend_from_slice(format!("### query {i}\n").as_bytes());
        match result {
            Ok((sink, stats)) => {
                any_ok = true;
                add(&shared.metrics.output_events_total, stats.output_events);
                add(
                    &shared.metrics.prefilter_skipped_total,
                    stats.prefiltered_events,
                );
                body.extend_from_slice(&sink.finish().expect("writing to Vec cannot fail"));
                body.push(b'\n');
            }
            Err(e) => {
                failures += 1;
                body.extend_from_slice(format!("error: {e}\n").as_bytes());
            }
        }
    }
    add(&shared.metrics.lane_failures_total, failures);
    let mut reply = Reply::new(200, "text/plain; charset=utf-8", body);
    reply.headers = vec![
        ("x-foxq-input-events", run.input_events.to_string()),
        ("x-foxq-failed-lanes", failures.to_string()),
    ];
    // If every lane failed the pass aborted early; and even a successful
    // pass can leave trailing framed bytes unread. Either way the
    // connection cannot be reused.
    reply.reusable = any_ok && body_exhausted;
    reply
}

fn stream_error_reply(e: &StreamError) -> Reply {
    match e {
        StreamError::Xml(xml) => Reply::text(400, format!("malformed XML input: {xml}\n")),
        _ => Reply::text(422, format!("query run failed: {e}\n")),
    }
}

/// Mark a reply as leaving unread body bytes on the wire.
fn reply_unconsumed(mut reply: Reply) -> Reply {
    reply.reusable = false;
    reply
}

/// Elapsed whole microseconds since `start`.
fn micros_since(start: Instant) -> u64 {
    start.elapsed().as_micros().min(u64::MAX as u128) as u64
}

/// Cache probe plus (on a miss) compile. Lock and probe overhead is
/// credited to `CacheLookup`; a miss's compile cost is unfolded into its
/// parse/translate/optimize stages from the per-query breakdown cached
/// with the prepared query, so the paying request's trace shows *why*
/// the lookup was slow while a warm hit stays a pure probe.
fn lookup_traced(
    shared: &Shared,
    ctx: &TraceContext,
    q: &str,
) -> Result<Arc<PreparedQuery>, PrepareError> {
    let start = Instant::now();
    let looked_up = shared.cache.lookup_or_compile(q);
    let mut micros = micros_since(start);
    if let Ok((prepared, hit)) = &looked_up {
        if !*hit {
            let compile = prepared.meta().compile_times;
            for (stage, stage_micros) in compile.iter() {
                ctx.add_micros(stage, stage_micros);
            }
            micros = micros.saturating_sub(compile.total_micros());
        }
    }
    ctx.add_micros(Stage::CacheLookup, micros);
    looked_up.map(|(prepared, _)| prepared)
}
