//! # foxq-server — serving the streaming engine over the network
//!
//! The paper's thesis is that forest-transducer evaluation is *streaming*:
//! bounded buffering over unbounded documents. This crate is where that
//! claim meets a socket. A zero-dependency HTTP/1.1 server (hand-rolled on
//! `std::net` — the build environment has no registry access, so no
//! hyper/tokio) exposes the `foxq_service` layer to untrusted network
//! clients:
//!
//! | Endpoint          | Meaning                                               |
//! |-------------------|-------------------------------------------------------|
//! | `POST /query?q=…` | stream the request body through one prepared query    |
//! | `POST /batch?q=…&q=…` | N queries, **one pass** over the request body     |
//! | `GET /metrics`    | Prometheus text: cache, lanes, bytes, prefilter       |
//! | `GET /healthz`    | liveness                                              |
//! | `POST /shutdown`  | graceful drain (also [`ServerHandle::shutdown`])      |
//!
//! The whole path is streaming and bounded end to end: request bodies flow
//! straight off the socket through [`foxq_xml::BoundedReader`] (413 past
//! `max_body_bytes`, body never buffered whole) and `XmlReader` into a
//! [`foxq_service::MultiQueryEngine`]; query text is compiled through a
//! process-wide [`foxq_service::SharedQueryCache`] under
//! [`foxq_service::CompileLimits`]; lanes run under
//! [`foxq_core::stream::StreamLimits::serving`]; connections carry
//! read/write timeouts so no peer can wedge a worker.
//!
//! Connection I/O is readiness-driven: an epoll reactor thread
//! ([`reactor`]) owns every socket and its per-connection state machine
//! ([`conn`]), and the worker pool runs only the CPU-bound engine half —
//! a slow or idle peer costs a small buffer, never a parked thread (see
//! [`serve`] for the full architecture).
//!
//! ```no_run
//! use foxq_server::{client, Server, ServerConfig};
//!
//! let server = Server::bind(ServerConfig::default()).unwrap();
//! let handle = server.start().unwrap();
//! let addr = handle.local_addr();
//!
//! let doc = b"<site><people><person><name>Jim</name></person></people></site>";
//! let target = client::query_target("<o>{$input/site/people/person/name/text()}</o>");
//! let response = client::post(addr, &target, doc).unwrap();
//! assert_eq!(response.status, 200);
//! assert_eq!(response.text(), "<o>Jim</o>");
//! handle.shutdown(); // drains in-flight requests, then joins
//! ```

pub mod client;
pub mod conn;
pub mod http;
pub mod metrics;
pub mod reactor;
pub mod serve;

pub use metrics::{Endpoint, Metrics};
pub use serve::{Server, ServerConfig, ServerHandle};
