//! Byte-oriented LZ compression for FET2 text payloads.
//!
//! The format is LZ4-flavoured: a stream of *sequences*, each a literal run
//! followed by a back-reference copy. One token byte packs both lengths
//! (`literal_len << 4 | match_len - 4`, nibble 15 = "read 255-run extension
//! bytes"), the match offset is 2 bytes little-endian (window 64 KiB). The
//! final sequence is literals-only: the decoder stops the moment the output
//! reaches the declared raw length, so no end marker is needed.
//!
//! Every payload is compressed independently — a frame can be decoded (or
//! skipped) at any subtree boundary without upstream state — and the
//! decoder is fully bounds-checked: a truncated or fabricated encoding
//! yields `None`, never a panic or an over-read.

/// Minimum back-reference length; shorter matches cost more than literals.
const MIN_MATCH: usize = 4;
/// Maximum back-reference distance (2-byte offset).
const MAX_OFFSET: usize = 65_535;
/// Hash-table slots for the greedy matcher (positions of 4-byte prefixes).
const HASH_SLOTS: usize = 1 << 12;

#[inline]
fn hash4(bytes: &[u8]) -> usize {
    let v = u32::from_le_bytes([bytes[0], bytes[1], bytes[2], bytes[3]]);
    (v.wrapping_mul(2_654_435_761) >> 20) as usize & (HASH_SLOTS - 1)
}

fn push_len(dst: &mut Vec<u8>, mut extra: usize) {
    while extra >= 255 {
        dst.push(255);
        extra -= 255;
    }
    dst.push(extra as u8);
}

fn emit(dst: &mut Vec<u8>, literals: &[u8], m: Option<(usize, usize)>) {
    let lit_nib = literals.len().min(15) as u8;
    let match_nib = m.map_or(0, |(_, len)| (len - MIN_MATCH).min(15)) as u8;
    dst.push(lit_nib << 4 | match_nib);
    if literals.len() >= 15 {
        push_len(dst, literals.len() - 15);
    }
    dst.extend_from_slice(literals);
    if let Some((offset, len)) = m {
        dst.extend_from_slice(&(offset as u16).to_le_bytes());
        if len - MIN_MATCH >= 15 {
            push_len(dst, len - MIN_MATCH - 15);
        }
    }
}

/// Append the encoding of `src` to `dst`. The encoding is self-delimiting
/// only together with the raw length, which FET2 stores alongside it.
pub(crate) fn compress(src: &[u8], dst: &mut Vec<u8>) {
    let mut table = [0usize; HASH_SLOTS]; // position + 1; 0 = empty
    let mut lit_start = 0;
    let mut i = 0;
    while i + MIN_MATCH <= src.len() {
        let h = hash4(&src[i..]);
        let cand = table[h];
        table[h] = i + 1;
        if cand > 0 {
            let c = cand - 1;
            if i - c <= MAX_OFFSET && src[c..c + MIN_MATCH] == src[i..i + MIN_MATCH] {
                let mut len = MIN_MATCH;
                while i + len < src.len() && src[c + len] == src[i + len] {
                    len += 1;
                }
                emit(dst, &src[lit_start..i], Some((i - c, len)));
                i += len;
                lit_start = i;
                continue;
            }
        }
        i += 1;
    }
    emit(dst, &src[lit_start..], None);
}

/// Decode an encoding produced by [`compress`] back into exactly
/// `raw_len` bytes. Returns `None` on any structural violation: truncated
/// input, zero or out-of-window offsets, output over- or underrun, or
/// trailing garbage.
pub(crate) fn decompress(src: &[u8], raw_len: usize) -> Option<Vec<u8>> {
    let mut out = Vec::with_capacity(raw_len);
    let mut i = 0;
    loop {
        let token = *src.get(i)?;
        i += 1;
        let mut lit_len = (token >> 4) as usize;
        if lit_len == 15 {
            loop {
                let b = *src.get(i)?;
                i += 1;
                lit_len += b as usize;
                if b != 255 {
                    break;
                }
            }
        }
        let lits = src.get(i..i + lit_len)?;
        i += lit_len;
        if out.len() + lit_len > raw_len {
            return None;
        }
        out.extend_from_slice(lits);
        if out.len() == raw_len {
            // Literals-only final sequence; nothing may follow it.
            return (i == src.len()).then_some(out);
        }
        let offset = u16::from_le_bytes([*src.get(i)?, *src.get(i + 1)?]) as usize;
        i += 2;
        if offset == 0 || offset > out.len() {
            return None;
        }
        let mut match_len = (token & 0x0F) as usize + MIN_MATCH;
        if match_len - MIN_MATCH == 15 {
            loop {
                let b = *src.get(i)?;
                i += 1;
                match_len += b as usize;
                if b != 255 {
                    break;
                }
            }
        }
        if out.len() + match_len > raw_len {
            return None;
        }
        // Byte-by-byte: overlapping copies (offset < match_len) replicate.
        let start = out.len() - offset;
        for k in 0..match_len {
            let b = out[start + k];
            out.push(b);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip(src: &[u8]) -> usize {
        let mut enc = Vec::new();
        compress(src, &mut enc);
        assert_eq!(
            decompress(&enc, src.len()).as_deref(),
            Some(src),
            "roundtrip failed for {} bytes",
            src.len()
        );
        enc.len()
    }

    #[test]
    fn roundtrips_text_shapes() {
        roundtrip(b"");
        roundtrip(b"x");
        roundtrip(b"hello world");
        roundtrip(
            "the quick brown fox jumps over the lazy dog; \
                   the quick brown fox jumps again and again and again"
                .as_bytes(),
        );
        // Overlapping match (run-length): offset 1, long copy.
        let enc_len = roundtrip(&[b'a'; 1000]);
        assert!(enc_len < 30, "run of 1000 should collapse, got {enc_len}");
        // Long literal run forcing 255-run length extensions.
        let incompressible: Vec<u8> = (0..700u32)
            .map(|i| (i.wrapping_mul(2_654_435_761) >> 13) as u8)
            .collect();
        roundtrip(&incompressible);
    }

    #[test]
    fn repetitive_text_shrinks() {
        let src = "<name>Alonso Bourgeois</name>".repeat(40);
        let mut enc = Vec::new();
        compress(src.as_bytes(), &mut enc);
        assert!(
            enc.len() * 3 < src.len(),
            "repetitive text should compress ≥3×: {} -> {}",
            src.len(),
            enc.len()
        );
    }

    #[test]
    fn corrupt_encodings_are_rejected_not_panics() {
        let src = b"abcdabcdabcdabcd tail";
        let mut enc = Vec::new();
        compress(src, &mut enc);
        // Truncation at every prefix length.
        for cut in 0..enc.len() {
            assert_eq!(decompress(&enc[..cut], src.len()), None, "cut at {cut}");
        }
        // Wrong raw length in both directions.
        assert_eq!(decompress(&enc, src.len() - 1), None);
        assert_eq!(decompress(&enc, src.len() + 1), None);
        // Zero offset is invalid.
        assert_eq!(decompress(&[0x01, b'a', 0x00, 0x00], 10), None);
        // Offset pointing before the start of the output.
        assert_eq!(decompress(&[0x11, b'a', 0x09, 0x00], 10), None);
    }
}
