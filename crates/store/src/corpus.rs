//! A directory of tapes with a durable manifest.
//!
//! A corpus is a plain directory: one `<id>.fet` tape per document plus a
//! `manifest.tsv` index. The manifest is line-oriented, tab-separated —
//! `id`, `file`, `version`, `source_bytes`, `tape_bytes`, `events`,
//! `checksum` (hex) — with `#`-comment lines ignored (six-field lines from
//! pre-FET2 manifests parse with an implied version 1). The manifest is
//! rewritten atomically (temp file fsynced, renamed, directory fsynced) on
//! every mutation, so a crash can lose at most the in-flight operation,
//! never the index. Ingest is likewise tmp-file + rename: a half-written
//! tape is never visible under its final name, and both the tape bytes and
//! the rename reach disk before the manifest commits.

use crate::mmap::TapeInput;
use crate::tape::{ingest_xml_to_tape, StoreError, TapeInfo, TapeReader, TapeWriter, VERSION};
use foxq_xml::XmlEvent;
use std::collections::BTreeMap;
use std::io::{BufRead, Write};
use std::path::{Path, PathBuf};

/// Manifest file name inside the corpus directory.
pub const MANIFEST: &str = "manifest.tsv";

/// One stored document's manifest entry.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DocMeta {
    /// Caller-chosen id (`[A-Za-z0-9._-]+`, not starting with `.`).
    pub id: String,
    /// Tape file name, relative to the corpus directory.
    pub file: String,
    /// Tape format version (1 = FET1, 2 = FET2).
    pub version: u8,
    /// XML bytes consumed when the document was ingested.
    pub source_bytes: u64,
    /// Tape file size in bytes.
    pub tape_bytes: u64,
    /// Open + close events on the tape.
    pub events: u64,
    /// The tape's event-stream checksum (FNV-1a 64).
    pub checksum: u64,
}

/// A corpus: a directory of `.fet` tapes plus its manifest, held in memory
/// as a sorted map (iteration order is deterministic).
#[derive(Debug)]
pub struct Corpus {
    dir: PathBuf,
    docs: BTreeMap<String, DocMeta>,
}

/// Is `id` safe to embed in a file name?
pub fn valid_doc_id(id: &str) -> bool {
    !id.is_empty()
        && id.len() <= 128
        && !id.starts_with('.')
        && id
            .bytes()
            .all(|b| b.is_ascii_alphanumeric() || matches!(b, b'.' | b'_' | b'-'))
}

impl Corpus {
    /// Open (or create) the corpus at `dir`, loading the manifest if one
    /// exists.
    pub fn open(dir: impl Into<PathBuf>) -> Result<Corpus, StoreError> {
        let dir = dir.into();
        std::fs::create_dir_all(&dir)?;
        sweep_orphaned_tmp(&dir)?;
        let mut corpus = Corpus {
            dir,
            docs: BTreeMap::new(),
        };
        let manifest = corpus.dir.join(MANIFEST);
        if manifest.exists() {
            let text = std::fs::read_to_string(&manifest)?;
            for (i, line) in text.lines().enumerate() {
                let line = line.trim();
                if line.is_empty() || line.starts_with('#') {
                    continue;
                }
                let meta = parse_manifest_line(line)
                    .map_err(|msg| StoreError::Manifest { line: i + 1, msg })?;
                corpus.docs.insert(meta.id.clone(), meta);
            }
        }
        Ok(corpus)
    }

    /// The corpus directory.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// Number of stored documents.
    pub fn len(&self) -> usize {
        self.docs.len()
    }

    pub fn is_empty(&self) -> bool {
        self.docs.is_empty()
    }

    /// Document ids in sorted order.
    pub fn ids(&self) -> impl Iterator<Item = &str> {
        self.docs.keys().map(String::as_str)
    }

    /// Manifest entries in id order.
    pub fn docs(&self) -> impl Iterator<Item = &DocMeta> {
        self.docs.values()
    }

    /// Look up one document.
    pub fn get(&self, id: &str) -> Option<&DocMeta> {
        self.docs.get(id)
    }

    /// Absolute path of a stored document's tape.
    pub fn tape_path(&self, id: &str) -> Result<PathBuf, StoreError> {
        let meta = self
            .docs
            .get(id)
            .ok_or_else(|| StoreError::UnknownDoc { id: id.to_string() })?;
        Ok(self.dir.join(&meta.file))
    }

    /// Open a stored document's tape for replay (memory-mapped when the
    /// platform grants it, buffered file I/O otherwise).
    pub fn open_tape(&self, id: &str) -> Result<TapeReader<TapeInput>, StoreError> {
        TapeReader::open_file(&self.tape_path(id)?)
    }

    /// Parse `xml` and store it under `id` (an upsert: re-ingesting an id
    /// replaces its tape). One streaming pass, constant memory.
    pub fn add_xml(&mut self, id: &str, xml: impl BufRead) -> Result<DocMeta, StoreError> {
        if !valid_doc_id(id) {
            return Err(StoreError::BadDocId { id: id.to_string() });
        }
        let tmp = self.dir.join(format!(".{id}.ingest.tmp"));
        let (info, source_bytes) = ingest_xml_to_tmp(&tmp, xml)?;
        self.install_tape(id, &tmp, &info, source_bytes)
    }

    /// Move a finished tape file into the corpus under `id` and record it
    /// in the manifest. Used by [`Corpus::add_xml`] and by servers that
    /// ingest outside the corpus lock and only commit under it.
    pub fn install_tape(
        &mut self,
        id: &str,
        tmp: &Path,
        info: &TapeInfo,
        source_bytes: u64,
    ) -> Result<DocMeta, StoreError> {
        if !valid_doc_id(id) {
            let _ = std::fs::remove_file(tmp);
            return Err(StoreError::BadDocId { id: id.to_string() });
        }
        let file = format!("{id}.fet");
        if let Err(e) = std::fs::rename(tmp, self.dir.join(&file)) {
            let _ = std::fs::remove_file(tmp);
            return Err(StoreError::Io(e));
        }
        let meta = DocMeta {
            id: id.to_string(),
            file,
            version: info.version,
            source_bytes,
            tape_bytes: info.file_bytes,
            events: info.events,
            checksum: info.checksum,
        };
        self.docs.insert(id.to_string(), meta.clone());
        self.save_manifest()?;
        Ok(meta)
    }

    /// Rewrite a stored FET1 tape as FET2 in place (tmp file + rename, like
    /// ingest) and update its manifest entry. A no-op for tapes already on
    /// the current version.
    pub fn migrate(&mut self, id: &str) -> Result<DocMeta, StoreError> {
        let meta = self
            .docs
            .get(id)
            .ok_or_else(|| StoreError::UnknownDoc { id: id.to_string() })?
            .clone();
        if meta.version == VERSION {
            return Ok(meta);
        }
        let tmp = self.dir.join(format!(".{id}.migrate.tmp"));
        let result = (|| {
            let mut old = TapeReader::open_file(&self.dir.join(&meta.file))?;
            let mut writer = TapeWriter::new(std::fs::File::create(&tmp)?)?;
            loop {
                match old.next_event()? {
                    XmlEvent::Open(label) => writer.open(&label)?,
                    XmlEvent::Close(_) => writer.close()?,
                    XmlEvent::Eof => break,
                }
            }
            let (out, info) = writer.finish()?;
            out.sync_all()?;
            Ok(info)
        })();
        let info = match result {
            Ok(info) => info,
            Err(e) => {
                let _ = std::fs::remove_file(&tmp);
                return Err(e);
            }
        };
        self.install_tape(id, &tmp, &info, meta.source_bytes)
    }

    /// Migrate every stored document to the current tape version. Returns
    /// how many tapes were rewritten.
    pub fn migrate_all(&mut self) -> Result<usize, StoreError> {
        let stale: Vec<String> = self
            .docs
            .values()
            .filter(|d| d.version != VERSION)
            .map(|d| d.id.clone())
            .collect();
        for id in &stale {
            self.migrate(id)?;
        }
        Ok(stale.len())
    }

    /// Remove a stored document (tape file and manifest entry).
    pub fn remove(&mut self, id: &str) -> Result<DocMeta, StoreError> {
        let meta = self
            .docs
            .remove(id)
            .ok_or_else(|| StoreError::UnknownDoc { id: id.to_string() })?;
        let _ = std::fs::remove_file(self.dir.join(&meta.file));
        self.save_manifest()?;
        Ok(meta)
    }

    /// Sum of stored event counts (a capacity/metrics signal).
    pub fn total_events(&self) -> u64 {
        self.docs.values().map(|d| d.events).sum()
    }

    /// Sum of stored tape sizes in bytes.
    pub fn total_tape_bytes(&self) -> u64 {
        self.docs.values().map(|d| d.tape_bytes).sum()
    }

    fn save_manifest(&self) -> Result<(), StoreError> {
        let tmp = self.dir.join(".manifest.tmp");
        {
            let mut out = std::io::BufWriter::new(std::fs::File::create(&tmp)?);
            writeln!(
                out,
                "# foxq-store manifest v2: \
                 id\tfile\tversion\tsource_bytes\ttape_bytes\tevents\tchecksum"
            )
            .map_err(StoreError::Io)?;
            for meta in self.docs.values() {
                writeln!(
                    out,
                    "{}\t{}\t{}\t{}\t{}\t{}\t{:016x}",
                    meta.id,
                    meta.file,
                    meta.version,
                    meta.source_bytes,
                    meta.tape_bytes,
                    meta.events,
                    meta.checksum
                )
                .map_err(StoreError::Io)?;
            }
            out.flush()?;
            out.get_ref().sync_all()?;
        }
        std::fs::rename(&tmp, self.dir.join(MANIFEST))?;
        // One directory fsync commits both renames of this mutation: the
        // tape's (install_tape, same directory) and the manifest's.
        fsync_dir(&self.dir)?;
        Ok(())
    }
}

/// Flush directory metadata (rename durability). A no-op off unix, where
/// opening a directory read-only is not portable.
fn fsync_dir(dir: &Path) -> Result<(), StoreError> {
    #[cfg(unix)]
    std::fs::File::open(dir)?.sync_all()?;
    #[cfg(not(unix))]
    let _ = dir;
    Ok(())
}

/// Stream `xml` onto a freshly created, fsynced tape file at `tmp`; on any
/// failure the tmp file is removed. The durable half of an ingest — shared
/// by [`Corpus::add_xml`] and servers that parse outside the corpus lock
/// and commit with [`Corpus::install_tape`].
pub fn ingest_xml_to_tmp(
    tmp: &Path,
    xml: impl BufRead,
) -> Result<(crate::tape::TapeInfo, u64), StoreError> {
    let result = (|| {
        let out = std::fs::File::create(tmp)?;
        let (out, info, source_bytes) = ingest_xml_to_tape(xml, out)?;
        out.sync_all()?;
        Ok((info, source_bytes))
    })();
    if result.is_err() {
        let _ = std::fs::remove_file(tmp);
    }
    result
}

/// Delete crash-orphaned ingest temp files (`.ingest-*.tmp`,
/// `.<id>.ingest.tmp`, `.manifest.tmp`) left behind by a process that died
/// mid-ingest. Only ever runs at open time, when no ingest is in flight;
/// committed tapes and the manifest are never dot-prefixed, so they are
/// never candidates. Returns how many files were removed.
fn sweep_orphaned_tmp(dir: &Path) -> Result<usize, StoreError> {
    let mut swept = 0;
    for entry in std::fs::read_dir(dir)? {
        let entry = entry?;
        let name = entry.file_name();
        let Some(name) = name.to_str() else { continue };
        if !name.starts_with('.') || !name.ends_with(".tmp") {
            continue;
        }
        if !entry.file_type()?.is_file() {
            continue;
        }
        // A file racing with its own deletion is already what we wanted.
        match std::fs::remove_file(entry.path()) {
            Ok(()) => swept += 1,
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => {}
            Err(e) => return Err(StoreError::Io(e)),
        }
    }
    Ok(swept)
}

fn parse_manifest_line(line: &str) -> Result<DocMeta, String> {
    let fields: Vec<&str> = line.split('\t').collect();
    // Seven fields since FET2; six-field lines predate the version column
    // and can only describe FET1 tapes.
    let (id, file, version, source_bytes, tape_bytes, events, checksum) = match fields.as_slice() {
        [id, file, version, source_bytes, tape_bytes, events, checksum] => {
            let version = version
                .parse::<u8>()
                .map_err(|_| format!("bad version {version:?}"))?;
            (
                id,
                file,
                version,
                source_bytes,
                tape_bytes,
                events,
                checksum,
            )
        }
        [id, file, source_bytes, tape_bytes, events, checksum] => {
            (id, file, 1, source_bytes, tape_bytes, events, checksum)
        }
        _ => {
            return Err(format!(
                "expected 6 or 7 tab-separated fields, got {}",
                fields.len()
            ));
        }
    };
    if !valid_doc_id(id) {
        return Err(format!("invalid document id {id:?}"));
    }
    let num = |what: &str, v: &str| -> Result<u64, String> {
        v.parse::<u64>().map_err(|_| format!("bad {what} {v:?}"))
    };
    Ok(DocMeta {
        id: id.to_string(),
        file: file.to_string(),
        version,
        source_bytes: num("source_bytes", source_bytes)?,
        tape_bytes: num("tape_bytes", tape_bytes)?,
        events: num("events", events)?,
        checksum: u64::from_str_radix(checksum, 16)
            .map_err(|_| format!("bad checksum {checksum:?}"))?,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use foxq_xml::XmlEvent;

    fn scratch(test: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("foxq-corpus-{test}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    #[test]
    fn open_sweeps_crash_orphaned_tmp_files_but_keeps_documents() {
        let dir = scratch("sweep");
        let mut corpus = Corpus::open(&dir).unwrap();
        corpus.add_xml("kept", &b"<a>ok</a>"[..]).unwrap();
        drop(corpus);

        // What a crash mid-ingest leaves behind: the server's uniquified
        // temp name, the corpus's own, and a manifest rewrite in flight.
        for orphan in [".ingest-7-kept.tmp", ".kept.ingest.tmp", ".manifest.tmp"] {
            std::fs::write(dir.join(orphan), b"half-written").unwrap();
        }

        let corpus = Corpus::open(&dir).unwrap();
        for orphan in [".ingest-7-kept.tmp", ".kept.ingest.tmp", ".manifest.tmp"] {
            assert!(!dir.join(orphan).exists(), "{orphan} should be swept");
        }
        // The committed tape and manifest survived the sweep.
        assert_eq!(corpus.len(), 1);
        let mut tape = corpus.open_tape("kept").unwrap();
        let mut events = 0;
        while tape.next_event().unwrap() != XmlEvent::Eof {
            events += 1;
        }
        assert_eq!(events, 4);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn open_on_a_file_is_a_store_io_error() {
        // The sweep (and everything after it) propagates I/O failures as
        // `StoreError::Io` instead of panicking or half-opening.
        let path = scratch("notadir");
        std::fs::write(&path, b"i am a file").unwrap();
        match Corpus::open(&path) {
            Err(StoreError::Io(_)) => {}
            other => panic!("expected StoreError::Io, got {other:?}"),
        }
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn add_query_remove_roundtrip() {
        let dir = scratch("roundtrip");
        let mut corpus = Corpus::open(&dir).unwrap();
        let meta = corpus.add_xml("doc-1", &b"<a><b>hi</b></a>"[..]).unwrap();
        assert_eq!(meta.events, 6);
        assert_eq!(meta.source_bytes, 16);
        assert!(corpus.get("doc-1").is_some());

        // The tape replays.
        let mut tape = corpus.open_tape("doc-1").unwrap();
        let mut n = 0;
        while tape.next_event().unwrap() != XmlEvent::Eof {
            n += 1;
        }
        assert_eq!(n, 6);

        // A fresh handle sees the same manifest.
        let reloaded = Corpus::open(&dir).unwrap();
        assert_eq!(reloaded.get("doc-1"), Some(&meta));

        corpus.remove("doc-1").unwrap();
        assert!(corpus.is_empty());
        assert!(!dir.join("doc-1.fet").exists());
        assert!(Corpus::open(&dir).unwrap().is_empty());
    }

    #[test]
    fn malformed_xml_leaves_no_residue() {
        let dir = scratch("badxml");
        let mut corpus = Corpus::open(&dir).unwrap();
        assert!(matches!(
            corpus.add_xml("bad", &b"<a><oops>"[..]),
            Err(StoreError::Xml(_))
        ));
        assert!(corpus.is_empty());
        let leftovers: Vec<_> = std::fs::read_dir(&dir)
            .unwrap()
            .filter_map(|e| e.ok())
            .filter(|e| e.file_name().to_string_lossy().contains("bad"))
            .collect();
        assert!(leftovers.is_empty(), "{leftovers:?}");
    }

    #[test]
    fn hostile_doc_ids_are_rejected() {
        let dir = scratch("ids");
        let mut corpus = Corpus::open(&dir).unwrap();
        for id in ["", "../evil", "a/b", ".hidden", "sp ace", &"x".repeat(200)] {
            assert!(
                matches!(
                    corpus.add_xml(id, &b"<a/>"[..]),
                    Err(StoreError::BadDocId { .. })
                ),
                "id {id:?} accepted"
            );
        }
        assert!(valid_doc_id("xmark-1.0_B"));
    }

    #[test]
    fn upsert_replaces_the_tape() {
        let dir = scratch("upsert");
        let mut corpus = Corpus::open(&dir).unwrap();
        corpus.add_xml("d", &b"<a/>"[..]).unwrap();
        let second = corpus.add_xml("d", &b"<a><b/></a>"[..]).unwrap();
        assert_eq!(corpus.len(), 1);
        assert_eq!(corpus.get("d"), Some(&second));
        assert_eq!(second.events, 4);
    }

    #[test]
    fn new_ingests_are_fet2_and_survive_reload() {
        let dir = scratch("version");
        let mut corpus = Corpus::open(&dir).unwrap();
        let meta = corpus.add_xml("d", &b"<a><b>hi</b></a>"[..]).unwrap();
        assert_eq!(meta.version, VERSION);
        let reloaded = Corpus::open(&dir).unwrap();
        assert_eq!(reloaded.get("d").unwrap().version, VERSION);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn six_field_manifest_lines_parse_as_fet1() {
        let meta = parse_manifest_line("old\told.fet\t10\t20\t4\t00000000deadbeef").unwrap();
        assert_eq!(meta.version, 1);
        assert_eq!(meta.checksum, 0xdead_beef);
        // And the seven-field form round-trips the version.
        let meta = parse_manifest_line("new\tnew.fet\t2\t10\t20\t4\t00000000deadbeef").unwrap();
        assert_eq!(meta.version, 2);
        assert!(parse_manifest_line("x\tx.fet\tnine\t10\t20\t4\t0").is_err());
    }

    #[test]
    fn migrate_rewrites_fet1_tapes_and_preserves_events() {
        use crate::tape::ingest_xml_to_tape_v1;

        let xml = b"<site><person><name>Jim Blake</name></person><x/></site>";
        let dir = scratch("migrate");
        let mut corpus = Corpus::open(&dir).unwrap();

        // Plant a FET1 tape the way an old binary would have: ingest to a
        // tmp file with the v1 writer, then commit it.
        let tmp = dir.join(".old.ingest.tmp");
        let (out, info, source_bytes) = {
            let out = std::fs::File::create(&tmp).unwrap();
            ingest_xml_to_tape_v1(&xml[..], out).unwrap()
        };
        out.sync_all().unwrap();
        let planted = corpus
            .install_tape("old", &tmp, &info, source_bytes)
            .unwrap();
        assert_eq!(planted.version, 1);

        let migrated = corpus.migrate("old").unwrap();
        assert_eq!(migrated.version, VERSION);
        assert_eq!(migrated.source_bytes, planted.source_bytes);
        assert_eq!(migrated.events, planted.events);

        // The rewritten tape replays the same logical events as a parse.
        let mut tape = corpus.open_tape("old").unwrap();
        assert_eq!(tape.info().version, VERSION);
        let mut parser = foxq_xml::XmlReader::new(&xml[..]);
        loop {
            let want = parser.next_event().unwrap();
            assert_eq!(tape.next_event().unwrap(), want);
            if want == XmlEvent::Eof {
                break;
            }
        }

        // Idempotent, and migrate_all finds nothing left to do.
        assert_eq!(corpus.migrate("old").unwrap(), migrated);
        assert_eq!(corpus.migrate_all().unwrap(), 0);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn unknown_doc_errors() {
        let dir = scratch("unknown");
        let mut corpus = Corpus::open(&dir).unwrap();
        assert!(matches!(
            corpus.open_tape("nope"),
            Err(StoreError::UnknownDoc { .. })
        ));
        assert!(matches!(
            corpus.remove("nope"),
            Err(StoreError::UnknownDoc { .. })
        ));
    }
}
