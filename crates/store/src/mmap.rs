//! Read-only memory mapping and the [`TapeInput`] byte source.
//!
//! Like the server's epoll reactor, the mapping calls the C library that
//! `std` already links against directly — `extern "C"` declarations, no
//! `libc` crate. [`TapeInput`] is what [`crate::TapeReader::open_file`]
//! reads from: the mapped variant serves `fill_buf` straight out of the
//! page cache (a borrowed slice, no copy into a reader buffer) and turns
//! every seek into a cursor assignment; when mapping fails (exotic
//! filesystem, `FOXQ_STORE_NO_MMAP=1`) it degrades to a plain
//! `BufReader<File>` with identical semantics.

use std::fs::File;
use std::io::{self, BufRead, Read, Seek, SeekFrom};
use std::sync::Arc;

#[cfg(unix)]
mod sys {
    use std::ffi::c_void;

    pub const PROT_READ: i32 = 0x1;
    pub const MAP_PRIVATE: i32 = 0x2;

    extern "C" {
        pub fn mmap(
            addr: *mut c_void,
            len: usize,
            prot: i32,
            flags: i32,
            fd: i32,
            offset: i64,
        ) -> *mut c_void;
        pub fn munmap(addr: *mut c_void, len: usize) -> i32;
    }
}

/// A read-only, privately mapped view of an entire file.
///
/// The mapping is immutable for the process (`PROT_READ | MAP_PRIVATE`)
/// and unmapped on drop. Zero-length files get a dummy empty mapping (the
/// kernel rejects `len == 0`).
#[derive(Debug)]
pub struct Mmap {
    ptr: *mut u8,
    len: usize,
}

// The mapping is read-only and owned: moving or sharing it across threads
// is as safe as sharing a `&[u8]`.
unsafe impl Send for Mmap {}
unsafe impl Sync for Mmap {}

impl Mmap {
    /// Map `file` in its entirety.
    #[cfg(unix)]
    pub fn map(file: &File) -> io::Result<Mmap> {
        use std::os::unix::io::AsRawFd;
        let len = file.metadata()?.len();
        let len = usize::try_from(len)
            .map_err(|_| io::Error::new(io::ErrorKind::OutOfMemory, "file too large to map"))?;
        if len == 0 {
            return Ok(Mmap {
                ptr: std::ptr::null_mut(),
                len: 0,
            });
        }
        let ptr = unsafe {
            sys::mmap(
                std::ptr::null_mut(),
                len,
                sys::PROT_READ,
                sys::MAP_PRIVATE,
                file.as_raw_fd(),
                0,
            )
        };
        if ptr as isize == -1 {
            return Err(io::Error::last_os_error());
        }
        Ok(Mmap {
            ptr: ptr.cast(),
            len,
        })
    }

    #[cfg(not(unix))]
    pub fn map(_file: &File) -> io::Result<Mmap> {
        Err(io::Error::new(
            io::ErrorKind::Unsupported,
            "mmap unavailable on this platform",
        ))
    }

    /// The mapped bytes.
    pub fn bytes(&self) -> &[u8] {
        if self.len == 0 {
            return &[];
        }
        unsafe { std::slice::from_raw_parts(self.ptr, self.len) }
    }

    /// Mapped length in bytes.
    pub fn len(&self) -> usize {
        self.len
    }

    pub fn is_empty(&self) -> bool {
        self.len == 0
    }
}

impl Drop for Mmap {
    fn drop(&mut self) {
        #[cfg(unix)]
        if self.len > 0 {
            unsafe {
                sys::munmap(self.ptr.cast(), self.len);
            }
        }
    }
}

impl std::ops::Deref for Mmap {
    type Target = [u8];

    fn deref(&self) -> &[u8] {
        self.bytes()
    }
}

/// Byte source behind a file-opened [`crate::TapeReader`]: a memory map
/// when the platform grants one, a buffered file otherwise. Both variants
/// implement `BufRead + Seek`, so every reader path is identical past this
/// point.
#[derive(Debug)]
pub enum TapeInput {
    /// Zero-copy page-cache reads; seeks are cursor assignments.
    Mapped { map: Arc<Mmap>, pos: u64 },
    /// Fallback: plain buffered file I/O (seeks discard the buffer).
    Buffered(std::io::BufReader<File>),
}

impl TapeInput {
    /// Open `file`, mapping it unless `FOXQ_STORE_NO_MMAP` is set (an ops
    /// escape hatch) or the map syscall fails.
    pub fn open(file: File) -> TapeInput {
        if std::env::var_os("FOXQ_STORE_NO_MMAP").is_none() {
            if let Ok(map) = Mmap::map(&file) {
                return TapeInput::Mapped {
                    map: Arc::new(map),
                    pos: 0,
                };
            }
        }
        TapeInput::Buffered(std::io::BufReader::new(file))
    }

    /// Whether this input is served by a memory map.
    pub fn is_mapped(&self) -> bool {
        matches!(self, TapeInput::Mapped { .. })
    }
}

impl Read for TapeInput {
    fn read(&mut self, buf: &mut [u8]) -> io::Result<usize> {
        match self {
            TapeInput::Mapped { map, pos } => {
                let bytes = map.bytes();
                let at = (*pos).min(bytes.len() as u64) as usize;
                let n = (bytes.len() - at).min(buf.len());
                buf[..n].copy_from_slice(&bytes[at..at + n]);
                *pos += n as u64;
                Ok(n)
            }
            TapeInput::Buffered(r) => r.read(buf),
        }
    }
}

impl BufRead for TapeInput {
    fn fill_buf(&mut self) -> io::Result<&[u8]> {
        match self {
            TapeInput::Mapped { map, pos } => {
                let bytes = map.bytes();
                let at = (*pos).min(bytes.len() as u64) as usize;
                Ok(&bytes[at..])
            }
            TapeInput::Buffered(r) => r.fill_buf(),
        }
    }

    fn consume(&mut self, amt: usize) {
        match self {
            TapeInput::Mapped { pos, .. } => *pos += amt as u64,
            TapeInput::Buffered(r) => r.consume(amt),
        }
    }
}

impl Seek for TapeInput {
    fn seek(&mut self, target: SeekFrom) -> io::Result<u64> {
        match self {
            TapeInput::Mapped { map, pos } => {
                let len = map.len() as i64;
                let next = match target {
                    SeekFrom::Start(n) => n as i64,
                    SeekFrom::End(d) => len + d,
                    SeekFrom::Current(d) => *pos as i64 + d,
                };
                if next < 0 {
                    return Err(io::Error::new(
                        io::ErrorKind::InvalidInput,
                        "seek before start of mapped tape",
                    ));
                }
                *pos = next as u64;
                Ok(*pos)
            }
            TapeInput::Buffered(r) => r.seek(target),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Write;

    #[test]
    fn mapped_input_reads_and_seeks_like_a_file() {
        let path = std::env::temp_dir().join(format!("foxq-mmap-{}.bin", std::process::id()));
        let payload: Vec<u8> = (0..10_000u32).map(|i| (i % 251) as u8).collect();
        std::fs::File::create(&path)
            .unwrap()
            .write_all(&payload)
            .unwrap();
        let mut input = TapeInput::open(File::open(&path).unwrap());
        assert!(input.is_mapped(), "plain tmpfile should map");
        assert_eq!(input.seek(SeekFrom::End(0)).unwrap(), payload.len() as u64);
        input.seek(SeekFrom::Start(5_000)).unwrap();
        let mut buf = [0u8; 16];
        input.read_exact(&mut buf).unwrap();
        assert_eq!(&buf[..], &payload[5_000..5_016]);
        // fill_buf over a map is the whole remaining slice — no refills.
        input.seek(SeekFrom::Start(0)).unwrap();
        assert_eq!(input.fill_buf().unwrap().len(), payload.len());
        // Reading past the end is EOF, not an error.
        input
            .seek(SeekFrom::Start(payload.len() as u64 + 7))
            .unwrap();
        assert_eq!(input.read(&mut buf).unwrap(), 0);
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn empty_files_map_to_empty_slices() {
        let path = std::env::temp_dir().join(format!("foxq-mmap-empty-{}.bin", std::process::id()));
        std::fs::File::create(&path).unwrap();
        let map = Mmap::map(&File::open(&path).unwrap()).unwrap();
        assert!(map.is_empty());
        assert_eq!(map.bytes(), &[] as &[u8]);
        let _ = std::fs::remove_file(&path);
    }
}
