//! # foxq-store — a persistent corpus of seekable, indexed event tapes
//!
//! Every engine in this workspace consumes a *parse-event stream*
//! (Definition 1's `Open`/`Close`/`Eof`), yet a hot corpus pays the XML
//! tokenizer again on every query. This crate materializes the event stream
//! **once** into an indexed binary tape (the **FET2** format; the FET1
//! predecessor stays readable) so repeat queries replay events instead of
//! re-parsing text — and, because the footer carries a *per-label skip
//! index*, a query set's matched-label union can drive a merged cursor
//! that decodes only the matched subtrees, seeking over everything else.
//!
//! * [`TapeWriter`] streams events to disk in one pass with constant memory
//!   (O(depth) bookkeeping plus a fixed-size write buffer); text payloads
//!   are LZ-compressed per frame, posting lists accumulate per label.
//! * [`TapeReader`] implements the engine's event-source interface
//!   ([`foxq_xml::EventSource`]) and exposes [`TapeReader::skip_subtree`]
//!   for seek-based subtree pruning. File-opened readers sit on a
//!   [`TapeInput`] — a raw memory map when the platform grants one
//!   (zero-copy, page-cache-friendly), buffered file I/O otherwise
//!   (`FOXQ_STORE_NO_MMAP=1` forces the fallback).
//! * [`IndexedReplay`] (built by [`index_drive`]) merges the matched
//!   labels' posting lists and delivers exactly the events the shared
//!   label prefilter would — cost proportional to the answer, not the
//!   document.
//! * [`Corpus`] manages a directory of tapes with a durable manifest
//!   (doc id → file, version, byte/event counts, checksum) and can
//!   [`Corpus::migrate`] FET1 tapes to FET2 in place.
//!
//! ## The FET2 byte layout
//!
//! All multi-byte integers are **little-endian**; `varint` is unsigned
//! LEB128 (7 data bits per byte, high bit = continuation, at most 10
//! bytes). The file has three regions:
//!
//! ```text
//! header (13 bytes):
//!   offset 0   magic  "FET2"                          (4 bytes)
//!   offset 4   version u8 = 2
//!   offset 5   footer_offset u64  — absolute offset of the footer
//!              (backpatched when the tape is finished)
//!   offset 13  first tape frame
//!
//! frames (tag byte first):
//!   0x01 OpenElem   varint label_id · close_delta u32
//!   0x02 OpenText   varint raw_len · varint enc_len · enc_len bytes
//!                   · close_delta u32
//!   0x03 Close      varint subtree_events · subtree_hash u32
//!   0x00 Eof        (end of tape; the footer starts at the next byte)
//!
//! footer (at footer_offset):
//!   varint label_count
//!   label_count × ( varint name_len · name_len UTF-8 bytes )
//!       — element names; label_id is the position in this table
//!   varint event_count    — opens + closes on the tape (Eof excluded)
//!   varint max_depth
//!   flags u8              — FLAG_TEXT_CHILDREN (0x01), FLAG_DELTA_OVERFLOW
//!                           (0x02); either disables the index read path
//!   (2 × label_count + 1) × posting list — one per element label in
//!       label-id order, then the text-node buckets partitioned by
//!       parent: first texts at the forest root, then texts under each
//!       element label in id order. Partitioning texts by parent makes
//!       projection exact: a query loads only the buckets under matched
//!       parents instead of scanning one global text list. Each list:
//!           varint posting_count · varint byte_len · byte_len bytes
//!       each posting:  varint offset_delta — frame-tag offset minus the
//!                          previous posting's in the same list
//!                          (first: minus 13)
//!                      varint depth        — root = 1
//!                      varint parent_plus1 — parent element's label id
//!                          + 1; 0 = document root
//!   varint raw_text_bytes — total text payload before compression
//!   varint enc_text_bytes — total text payload as stored
//!   checksum u64          — document hash (see below)
//! ```
//!
//! **Text compression.** Each text payload is compressed independently
//! with a byte-oriented LZ scheme (64 KiB window, 2-byte offsets — see
//! `lz.rs`), so any frame can be decoded or skipped mid-stream without
//! upstream state. `enc_len == raw_len` means the payload is stored raw
//! (always the case under 16 bytes, or when compression does not shrink);
//! `enc_len > raw_len` is corrupt, and `raw_len > 255 × enc_len` is
//! rejected before any allocation (255 is the codec's maximum expansion).
//!
//! **The close-offset invariant** (unchanged from FET1). `close_delta` is
//! the number of tape bytes from the end of the open frame (the byte after
//! its `close_delta` field) to the *tag byte* of the matching `Close`
//! frame. A reader positioned just past an open frame reaches the close
//! frame by seeking forward exactly `close_delta` bytes; everything in
//! between is the subtree, skipped without decoding. The sentinel
//! `0xFFFF_FFFF` means the subtree spans ≥ 4 GiB and must be scanned
//! instead (and sets `FLAG_DELTA_OVERFLOW`). The writer backpatches the
//! placeholder on close — in memory when the open frame is still in the
//! write buffer (the overwhelmingly common case), by a file seek otherwise.
//!
//! `subtree_events` on a `Close` frame is the number of open + close
//! events of the subtree it terminates, *its own open and close included*
//! (a leaf carries 2). A seeking reader learns the event count of what it
//! skipped from the close frame alone, keeping downstream event accounting
//! exact.
//!
//! **Compositional checksums.** FET2 hashes each node independently with
//! FNV-1a 64 (offset basis `0xcbf29ce484222325`, prime `0x100000001b3`):
//! fold the open tag byte (`0x01`/`0x02`), the name or raw text bytes,
//! `0xFF`; then, per direct child in document order, the 4 little-endian
//! bytes of the child's **stored** 32-bit hash; then `0x03`. The low 32
//! bits are stored in the node's `Close` frame (`subtree_hash`). The
//! footer `checksum` folds each root's stored hash the same way, then
//! `0x00`. Consequences: a reader verifies **exactly the subtrees it
//! decodes** ([`StoreError::Checksum`] fires at the corrupted node's close,
//! not at `Eof`); seeking over a subtree folds its stored hash into the
//! parent, so every enclosing check — including the document hash at
//! `Eof` — survives partial replays. Corruption inside a fully-skipped
//! subtree is undetectable by construction (its bytes are never read).
//!
//! **FET1.** Version-1 tapes (magic `"FET1"`) remain fully readable:
//! `OpenText` is `varint byte_len · bytes` (uncompressed), `Close` carries
//! no hash, the footer has no flags/index/text-size sections, and the
//! checksum is a single FNV-1a 64 over the whole logical event stream —
//! verified only by full replays (the first seek disables it).
//!
//! ## Quick start
//!
//! ```
//! use foxq_store::{Corpus, TapeReader, TapeWriter};
//! use foxq_xml::{EventSource, XmlEvent, XmlReader};
//!
//! // Write: stream parse events onto a tape (here: an in-memory one).
//! let xml = b"<site><people><person><name>Jim</name></person></people></site>";
//! let mut writer = TapeWriter::new(std::io::Cursor::new(Vec::new())).unwrap();
//! let mut parser = XmlReader::new(&xml[..]);
//! loop {
//!     match parser.next_event().unwrap() {
//!         XmlEvent::Open(l) => writer.open(&l).unwrap(),
//!         XmlEvent::Close(_) => writer.close().unwrap(),
//!         XmlEvent::Eof => break,
//!     }
//! }
//! let (cursor, info) = writer.finish().unwrap();
//! assert_eq!(info.events, 10); // 5 opens + 5 closes (site…name + the text)
//! assert_eq!(info.postings, 5); // one skip-index posting per open frame
//!
//! // Read: replay the same events without re-tokenizing any XML.
//! let mut tape = TapeReader::new(std::io::Cursor::new(cursor.into_inner())).unwrap();
//! let mut replayed = 0;
//! while tape.next_event().unwrap() != XmlEvent::Eof {
//!     replayed += 1;
//! }
//! assert_eq!(replayed, 10);
//! ```

pub mod corpus;
pub mod cursor;
mod lz;
pub mod mmap;
pub mod tape;

pub use corpus::{ingest_xml_to_tmp, Corpus, DocMeta};
pub use cursor::{index_drive, IndexedReplay, TapeDrive};
pub use mmap::{Mmap, TapeInput};
pub use tape::{
    ingest_xml_to_tape, ingest_xml_to_tape_v1, inspect, PostingDirEntry, SkippedSubtree,
    StoreError, TapeInfo, TapeReader, TapeWriter, FLAG_DELTA_OVERFLOW, FLAG_TEXT_CHILDREN,
};
