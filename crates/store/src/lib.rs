//! # foxq-store — a persistent corpus of seekable event tapes
//!
//! Every engine in this workspace consumes a *parse-event stream*
//! (Definition 1's `Open`/`Close`/`Eof`), yet a hot corpus pays the XML
//! tokenizer again on every query. This crate materializes the event stream
//! **once** into an indexed binary tape (the **FET1** format) so repeat
//! queries replay events instead of re-parsing text — and, because every
//! open frame knows where its matching close frame lives, a label prefilter
//! can *seek* over a pruned subtree in O(1) instead of scanning it
//! event-by-event.
//!
//! * [`TapeWriter`] streams events to disk in one pass with constant memory
//!   (O(depth) bookkeeping plus a fixed-size write buffer).
//! * [`TapeReader`] implements the engine's event-source interface
//!   ([`foxq_xml::EventSource`]) and exposes [`TapeReader::skip_subtree`]
//!   for seek-based subtree pruning.
//! * [`Corpus`] manages a directory of tapes with a durable manifest
//!   (doc id → file, byte/event counts, checksum).
//!
//! ## The FET1 byte layout
//!
//! All multi-byte integers are **little-endian**; `varint` is unsigned
//! LEB128 (7 data bits per byte, high bit = continuation, at most 10
//! bytes). The file has three regions:
//!
//! ```text
//! header (13 bytes):
//!   offset 0   magic  "FET1"                          (4 bytes)
//!   offset 4   version u8 = 1
//!   offset 5   footer_offset u64  — absolute offset of the footer
//!              (backpatched when the tape is finished)
//!   offset 13  first tape frame
//!
//! frames (tag byte first):
//!   0x01 OpenElem   varint label_id · close_delta u32
//!   0x02 OpenText   varint byte_len · byte_len UTF-8 bytes · close_delta u32
//!   0x03 Close      varint subtree_events
//!   0x00 Eof        (end of tape; the footer starts at the next byte)
//!
//! footer (at footer_offset):
//!   varint label_count
//!   label_count × ( varint name_len · name_len UTF-8 bytes )
//!       — element names; label_id is the position in this table
//!   varint event_count    — opens + closes on the tape (Eof excluded)
//!   varint max_depth
//!   checksum u64          — FNV-1a 64 of the logical event stream
//! ```
//!
//! **The close-offset invariant.** `close_delta` is the number of tape
//! bytes from the end of the open frame (the byte after its `close_delta`
//! field) to the *tag byte* of the matching `Close` frame. A reader
//! positioned just past an open frame reaches the close frame by seeking
//! forward exactly `close_delta` bytes; everything in between is the
//! subtree, skipped without decoding. The sentinel `0xFFFF_FFFF` means the
//! subtree spans ≥ 4 GiB and must be scanned instead. The writer cannot
//! know the delta when it emits the open frame, so it writes a placeholder
//! and backpatches on close — in memory when the open frame is still in
//! the write buffer (the overwhelmingly common case: most subtrees are
//! small), by a file seek otherwise.
//!
//! `subtree_events` on a `Close` frame is the number of open + close
//! events of the subtree it terminates, *its own open and close
//! included* (a leaf carries 2). A seeking reader learns the event count
//! of what it skipped from the close frame alone, keeping downstream event
//! accounting exact.
//!
//! **Varint rules.** Values are encoded in the minimal number of LEB128
//! bytes; decoders reject encodings longer than 10 bytes. `close_delta` is
//! deliberately *not* a varint: it is backpatched after the fact, so its
//! width must not depend on its value.
//!
//! **Checksum.** FNV-1a 64 (offset basis `0xcbf29ce484222325`, prime
//! `0x100000001b3`) folded over the logical event stream, independent of
//! the physical encoding: for an element open, the byte `0x01`, the name
//! bytes, then `0xFF`; for a text open, `0x02`, the content bytes, `0xFF`;
//! for a close, `0x03`; for end of input, `0x00`. A full replay recomputes
//! it and fails with [`StoreError::Checksum`] at `Eof` on mismatch; a
//! replay that seeked cannot (and does not) verify.
//!
//! ## Quick start
//!
//! ```
//! use foxq_store::{Corpus, TapeReader, TapeWriter};
//! use foxq_xml::{EventSource, XmlEvent, XmlReader};
//!
//! // Write: stream parse events onto a tape (here: an in-memory one).
//! let xml = b"<site><people><person><name>Jim</name></person></people></site>";
//! let mut writer = TapeWriter::new(std::io::Cursor::new(Vec::new())).unwrap();
//! let mut parser = XmlReader::new(&xml[..]);
//! loop {
//!     match parser.next_event().unwrap() {
//!         XmlEvent::Open(l) => writer.open(&l).unwrap(),
//!         XmlEvent::Close(_) => writer.close().unwrap(),
//!         XmlEvent::Eof => break,
//!     }
//! }
//! let (cursor, info) = writer.finish().unwrap();
//! assert_eq!(info.events, 10); // 5 opens + 5 closes (site…name + the text)
//!
//! // Read: replay the same events without re-tokenizing any XML.
//! let mut tape = TapeReader::new(std::io::Cursor::new(cursor.into_inner())).unwrap();
//! let mut replayed = 0;
//! while tape.next_event().unwrap() != XmlEvent::Eof {
//!     replayed += 1;
//! }
//! assert_eq!(replayed, 10);
//! ```

pub mod corpus;
pub mod tape;

pub use corpus::{ingest_xml_to_tmp, Corpus, DocMeta};
pub use tape::{
    ingest_xml_to_tape, inspect, SkippedSubtree, StoreError, TapeInfo, TapeReader, TapeWriter,
};
