//! The FET2 merged index cursor: replaying *only* the matched subtrees.
//!
//! A linear tape replay decodes every frame and asks the prefilter about
//! every open — cost proportional to document size. The FET2 footer stores
//! a posting list per label (open-frame offsets with depth and parent),
//! so a query set's matched-label union selects a handful of lists and a
//! k-way merge over them visits exactly the *candidate* frames, seeking
//! over everything in between. [`IndexedReplay`] delivers the same
//! open/close sequence a scan with the shared label prefilter would — the
//! equivalence is proven in `tests/store.rs` — while decoding bytes
//! proportional to the matched subtrees, not the document.
//!
//! ## Why depth and parent ride in every posting
//!
//! An offset merge alone would deliver a matched node nested under an
//! *unmatched* ancestor, which the scan prefilter would have skipped. Two
//! guards restore equivalence cheaply:
//!
//! * **parent pruning** — a deliverable node's parent is delivered too,
//!   so its parent label must be matched (or the node is a root); postings
//!   failing that die in a tight varint loop, no frame decode, no clock
//!   read. Text postings never even reach that loop: the footer buckets
//!   them by parent label, so a text-heavy corpus costs only the buckets
//!   under matched parents, selected up front.
//! * **the depth rule** — a surviving posting is accepted only if its
//!   depth is exactly one below the innermost open frame: a deeper
//!   posting means some intermediate ancestor was not delivered, so the
//!   scan would never have reached this node.
//!
//! ## Verification
//!
//! Each stack frame accumulates the FET2 compositional hash of what was
//! actually decoded, and tracks whether its subtree was decoded
//! *contiguously* (every child frame adjacent, no rejected candidates).
//! Fully-decoded subtrees are verified against the close frame's stored
//! hash — the seek path verifies exactly what it decodes; a skipped
//! child's stored hash is folded into the parent so enclosing checks stay
//! sound.

use crate::tape::{
    read_exact_at, read_varint, slice_varint, EventHash, PostingDirEntry, StoreError, TapeInfo,
    TapeReader, TAG_CLOSE, TAG_EOF, TAG_OPEN_ELEM, TAG_OPEN_TEXT, TAPE_START,
};
use foxq_forest::{FxHashSet, Label};
use foxq_xml::{EventSource, XmlError, XmlEvent};
use std::io::{BufRead, Seek, SeekFrom};
use std::sync::Arc;

/// Decode a frame header through the input's own buffered window — a
/// borrowed slice of the whole remaining tape for mapped and in-memory
/// inputs, the reader's window for buffered files. `parse` returns the
/// decoded value and the bytes it consumed, or `None` when the window is
/// too short for the header (or the bytes are not the expected frame);
/// the caller then falls back to byte-wise reads, which revisit the same
/// position and report the precise error. The fast path costs one borrow
/// and a few slice ops per frame instead of three to six small reads.
fn buffered_parse<R: BufRead, T>(
    input: &mut R,
    offset: &mut u64,
    parse: impl FnOnce(&[u8]) -> Option<(T, usize)>,
) -> Result<Option<T>, StoreError> {
    let got = parse(input.fill_buf()?);
    Ok(got.map(|(value, used)| {
        input.consume(used);
        *offset += used as u64;
        value
    }))
}

/// One decoded posting: an open frame's offset, depth (root = 1), and
/// parent element label + 1 (0 = document root).
#[derive(Debug, Clone, Copy)]
struct Posting {
    offset: u64,
    depth: u64,
}

/// One selected posting list being merged: its loaded bytes, a decode
/// cursor, and the next surviving posting (parent-pruned).
struct ListCursor {
    bytes: Vec<u8>,
    i: usize,
    remaining: u64,
    prev_offset: u64,
    /// Element label id this list posts, or `None` for a text bucket.
    elem_id: Option<u64>,
    head: Option<Posting>,
}

impl ListCursor {
    /// Decode postings until one survives the parent filter (or the list
    /// runs dry), leaving it in `head`.
    fn advance(&mut self, parent_matched: &[bool], footer_offset: u64) -> Result<(), StoreError> {
        self.head = None;
        while self.remaining > 0 {
            self.remaining -= 1;
            let (delta, depth, parent_plus1) = (|| {
                let d = slice_varint(&self.bytes, &mut self.i)?;
                let depth = slice_varint(&self.bytes, &mut self.i)?;
                let p = slice_varint(&self.bytes, &mut self.i)?;
                Some((d, depth, p))
            })()
            .ok_or_else(|| StoreError::Corrupt {
                offset: 0,
                msg: "posting list truncated".into(),
            })?;
            let offset = self.prev_offset + delta;
            self.prev_offset = offset;
            if depth == 0 || offset >= footer_offset {
                return Err(StoreError::Corrupt {
                    offset,
                    msg: "posting outside the frame region".into(),
                });
            }
            let keep = match parent_plus1 {
                0 => true, // document root
                p => parent_matched
                    .get((p - 1) as usize)
                    .copied()
                    .unwrap_or(false),
            };
            if keep {
                self.head = Some(Posting { offset, depth });
                return Ok(());
            }
        }
        if self.i != self.bytes.len() {
            return Err(StoreError::Corrupt {
                offset: 0,
                msg: "posting list has trailing bytes after its declared count".into(),
            });
        }
        Ok(())
    }
}

/// One open frame on the cursor's stack. `stack[0]` is a virtual document
/// root (depth 0, "close" at the Eof tag) so roots need no special case.
struct Frame {
    label: Label,
    close_at: u64,
    depth: u64,
    hash: EventHash,
    /// Every child so far was decoded, adjacent to its predecessor.
    complete: bool,
    /// Where the next child frame starts if the subtree stays contiguous.
    next_at: u64,
}

/// Replays the prefilter-surviving events of a FET2 tape by merging the
/// matched labels' posting lists. Built by [`index_drive`]; drives the
/// same engine interface as a full [`TapeReader`] replay.
pub struct IndexedReplay<R> {
    tape: TapeReader<R>,
    lists: Vec<ListCursor>,
    matched: Arc<FxHashSet<Label>>,
    /// Element label id → matched (the parent filter postings are pruned
    /// against).
    parent_matched: Vec<bool>,
    /// Text candidates must themselves be matched (plan's `texts` flag);
    /// when false, every text under a delivered parent is delivered.
    texts_filtered: bool,
    stack: Vec<Frame>,
    delivered: u64,
    index_skipped_bytes: u64,
    probe_micros: u64,
    finished: bool,
}

/// A tape ready to drive a query set: through the merged index cursor
/// when the tape and the plan allow it, by linear scan otherwise.
pub enum TapeDrive<R> {
    /// FET2 index path: only candidate frames are decoded.
    Indexed(IndexedReplay<R>),
    /// Scan path: every frame is decoded, the prefilter seeks over
    /// unmatched subtrees (FET1 tapes, flagged tapes).
    Linear(TapeReader<R>),
}

/// Select the read path for `tape` under a query set's matched-label
/// union. Returns [`TapeDrive::Indexed`] when the tape is FET2 with no
/// disabling flags; [`TapeDrive::Linear`] otherwise. `texts` is the
/// plan's text flag: true when every eligible lane may skip unmatched
/// text events (so only matched texts are delivered).
pub fn index_drive<R: BufRead + Seek>(
    mut tape: TapeReader<R>,
    matched: Arc<FxHashSet<Label>>,
    texts: bool,
) -> Result<TapeDrive<R>, StoreError> {
    if !tape.index_usable() {
        return Ok(TapeDrive::Linear(tape));
    }
    // Probe time covers the index-specific setup: loading the selected
    // posting lists and advancing each to its first surviving posting.
    // The per-event merge is a handful of compares — timing it would cost
    // more (two clock reads per delivered event) than the work itself.
    let probe_start = std::time::Instant::now();
    let parent_matched: Vec<bool> = tape.labels.iter().map(|l| matched.contains(l)).collect();
    let mut selected: Vec<(usize, Option<u64>)> = parent_matched
        .iter()
        .enumerate()
        .filter(|(_, &m)| m)
        .map(|(id, _)| (id, Some(id as u64)))
        .collect();
    // Text buckets: needed when texts are delivered unconditionally, or
    // when specific text labels are matched. The buckets are partitioned
    // by parent, so only the forest-root bucket and the buckets under
    // matched parents are loaded — the parent filter runs at selection
    // time instead of per posting.
    if !texts || matched.iter().any(|l| l.is_text()) {
        selected.push((tape.labels.len(), None));
        for (id, &m) in parent_matched.iter().enumerate() {
            if m {
                selected.push((tape.labels.len() + 1 + id, None));
            }
        }
    }
    let footer_offset = tape.footer_offset;
    let mut lists = Vec::with_capacity(selected.len());
    for (dir_idx, elem_id) in selected {
        let dir: PostingDirEntry = tape.postings_dir[dir_idx];
        let mut bytes = vec![0u8; dir.bytes as usize];
        tape.input.seek(SeekFrom::Start(dir.offset))?;
        read_exact_at(&mut tape.input, &mut bytes, dir.offset)?;
        let mut list = ListCursor {
            bytes,
            i: 0,
            remaining: dir.count,
            prev_offset: TAPE_START,
            elem_id,
            head: None,
        };
        list.advance(&parent_matched, footer_offset)?;
        lists.push(list);
    }
    let root = Frame {
        label: Label::elem(""),
        close_at: footer_offset - 1, // the Eof tag byte
        depth: 0,
        hash: EventHash::new(),
        complete: true,
        next_at: TAPE_START,
    };
    tape.input.seek(SeekFrom::Start(TAPE_START))?;
    tape.offset = TAPE_START;
    let probe_micros = probe_start.elapsed().as_micros().min(u64::MAX as u128) as u64;
    Ok(TapeDrive::Indexed(IndexedReplay {
        tape,
        lists,
        matched,
        parent_matched,
        texts_filtered: texts,
        stack: vec![root],
        delivered: 0,
        index_skipped_bytes: 0,
        probe_micros,
        finished: false,
    }))
}

impl<R: BufRead + Seek> TapeDrive<R> {
    /// Footer-level facts of the underlying tape.
    pub fn info(&self) -> &TapeInfo {
        match self {
            TapeDrive::Indexed(c) => c.info(),
            TapeDrive::Linear(t) => t.info(),
        }
    }
}

impl<R: BufRead + Seek> IndexedReplay<R> {
    /// Footer-level facts of the underlying tape.
    pub fn info(&self) -> &TapeInfo {
        &self.tape.info
    }

    /// Open/close events delivered so far.
    pub fn delivered_events(&self) -> u64 {
        self.delivered
    }

    /// Events the index withheld: exact, from the footer's event count —
    /// the counterpart of the scan prefilter's per-skip accounting.
    pub fn undelivered_events(&self) -> u64 {
        self.tape.info.events - self.delivered
    }

    /// Tape bytes jumped over (never decoded) so far.
    pub fn index_skipped_bytes(&self) -> u64 {
        self.index_skipped_bytes
    }

    /// Wall time spent loading the selected posting lists and advancing
    /// each to its first surviving posting, in microseconds — the index
    /// path's analogue of seek time.
    pub fn probe_micros(&self) -> u64 {
        self.probe_micros
    }

    fn corrupt<T>(&self, at: u64, msg: impl Into<String>) -> Result<T, StoreError> {
        Err(StoreError::Corrupt {
            offset: at,
            msg: msg.into(),
        })
    }

    /// Jump the read position forward to `to`, accounting the gap as
    /// index-skipped bytes.
    fn jump(&mut self, to: u64) -> Result<(), StoreError> {
        if self.tape.offset < to {
            self.index_skipped_bytes += to - self.tape.offset;
            self.tape.input.seek(SeekFrom::Start(to))?;
            self.tape.offset = to;
        }
        Ok(())
    }

    /// Read an open frame's 4-byte little-endian close delta at the
    /// current offset (used after a text payload, and by the byte-wise
    /// fallback decode).
    fn read_close_delta(&mut self) -> Result<u32, StoreError> {
        let fast = buffered_parse(&mut self.tape.input, &mut self.tape.offset, |b| {
            Some((u32::from_le_bytes(b.get(..4)?.try_into().ok()?), 4))
        })?;
        match fast {
            Some(delta) => Ok(delta),
            None => {
                let mut delta = [0u8; 4];
                read_exact_at(&mut self.tape.input, &mut delta, self.tape.offset)?;
                self.tape.offset += 4;
                Ok(u32::from_le_bytes(delta))
            }
        }
    }

    /// Deliver the close of the innermost open frame — or `Eof` when only
    /// the virtual root remains.
    fn deliver_close(&mut self) -> Result<XmlEvent, StoreError> {
        let frame = self.stack.pop().expect("virtual root always present");
        let contiguous = frame.complete && frame.next_at == frame.close_at;
        self.jump(frame.close_at)?;
        if self.stack.is_empty() {
            // The virtual root: its "close frame" is the Eof tag.
            let mut b = [0u8];
            read_exact_at(&mut self.tape.input, &mut b, self.tape.offset)?;
            self.tape.offset += 1;
            if b[0] != TAG_EOF {
                return self.corrupt(
                    frame.close_at,
                    format!("expected the Eof tag, found {:#04x}", b[0]),
                );
            }
            let mut h = frame.hash;
            h.eof();
            if contiguous && h.0 != self.tape.info.checksum {
                return Err(StoreError::Checksum {
                    expected: self.tape.info.checksum,
                    found: h.0,
                });
            }
            self.finished = true;
            return Ok(XmlEvent::Eof);
        }
        let fast = buffered_parse(&mut self.tape.input, &mut self.tape.offset, |b| {
            if *b.first()? != TAG_CLOSE {
                return None;
            }
            let mut i = 1usize;
            let _subtree_events = slice_varint(b, &mut i)?;
            let stored = u32::from_le_bytes(b.get(i..i + 4)?.try_into().ok()?);
            Some((stored, i + 4))
        })?;
        let stored = match fast {
            Some(stored) => stored,
            None => {
                let mut b = [0u8];
                read_exact_at(&mut self.tape.input, &mut b, self.tape.offset)?;
                self.tape.offset += 1;
                if b[0] != TAG_CLOSE {
                    return self.corrupt(
                        frame.close_at,
                        format!("open frame's close offset points at tag {:#04x}", b[0]),
                    );
                }
                let _subtree_events = read_varint(&mut self.tape.input, &mut self.tape.offset)?;
                let mut sum = [0u8; 4];
                read_exact_at(&mut self.tape.input, &mut sum, self.tape.offset)?;
                self.tape.offset += 4;
                u32::from_le_bytes(sum)
            }
        };
        let mut h = frame.hash;
        h.close();
        if contiguous && h.trunc32() != stored {
            return Err(StoreError::Checksum {
                expected: u64::from(stored),
                found: u64::from(h.trunc32()),
            });
        }
        let parent = self.stack.last_mut().expect("checked non-empty");
        parent.hash.child(stored);
        parent.next_at = self.tape.offset;
        self.delivered += 1;
        Ok(XmlEvent::Close(frame.label))
    }

    /// Pull the next prefilter-surviving event.
    pub fn next_event(&mut self) -> Result<XmlEvent, StoreError> {
        if self.finished {
            return Ok(XmlEvent::Eof);
        }
        loop {
            // Merge step: smallest next posting across the selected lists.
            // k is the matched-label count — a linear min beats a heap.
            let mut best: Option<(usize, Posting)> = None;
            for (i, list) in self.lists.iter().enumerate() {
                if let Some(p) = list.head {
                    if best.is_none_or(|(_, b)| p.offset < b.offset) {
                        best = Some((i, p));
                    }
                }
            }
            let top = self.stack.last().expect("virtual root always present");
            let (list_idx, posting) = match best {
                Some((i, p)) if p.offset < top.close_at => (i, p),
                // No posting inside the innermost subtree: deliver its
                // close (or Eof at the virtual root).
                _ => return self.deliver_close(),
            };
            let (top_depth, top_close_at) = (top.depth, top.close_at);
            if posting.depth <= top_depth {
                return self.corrupt(
                    posting.offset,
                    format!(
                        "posting depth {} not below the enclosing frame (depth {})",
                        posting.depth, top_depth
                    ),
                );
            }
            // Advance the source list now — every branch below consumes
            // the posting (accepting, or discarding it as unreachable).
            self.lists[list_idx].advance(&self.parent_matched, self.tape.footer_offset)?;
            if posting.depth > top_depth + 1 {
                // An intermediate ancestor was never delivered (unmatched):
                // the scan prefilter would have skipped this whole region.
                continue;
            }
            // A direct child of the innermost frame: decode it.
            self.jump(posting.offset)?;
            let started_at = posting.offset;
            let is_text_list = self.lists[list_idx].elem_id.is_none();
            let (label, delta) = if is_text_list {
                let fast = buffered_parse(&mut self.tape.input, &mut self.tape.offset, |b| {
                    if *b.first()? != TAG_OPEN_TEXT {
                        return None;
                    }
                    let mut i = 1usize;
                    let raw_len = slice_varint(b, &mut i)?;
                    let enc_len = slice_varint(b, &mut i)?;
                    Some(((raw_len, enc_len), i))
                })?;
                let (raw_len, enc_len) = match fast {
                    Some(lens) => lens,
                    None => {
                        let mut tag = [0u8];
                        read_exact_at(&mut self.tape.input, &mut tag, self.tape.offset)?;
                        self.tape.offset += 1;
                        if tag[0] != TAG_OPEN_TEXT {
                            return self.corrupt(
                                started_at,
                                format!("text posting points at tag {:#04x}", tag[0]),
                            );
                        }
                        let raw_len = read_varint(&mut self.tape.input, &mut self.tape.offset)?;
                        let enc_len = read_varint(&mut self.tape.input, &mut self.tape.offset)?;
                        (raw_len, enc_len)
                    }
                };
                let content = self.tape.read_text_payload(raw_len, enc_len)?;
                let Ok(content) = String::from_utf8(content) else {
                    return self.corrupt(started_at, "text payload is not UTF-8");
                };
                (Label::text(content), self.read_close_delta()?)
            } else {
                let fast = buffered_parse(&mut self.tape.input, &mut self.tape.offset, |b| {
                    if *b.first()? != TAG_OPEN_ELEM {
                        return None;
                    }
                    let mut i = 1usize;
                    let id = slice_varint(b, &mut i)?;
                    let delta = u32::from_le_bytes(b.get(i..i + 4)?.try_into().ok()?);
                    Some(((id, delta), i + 4))
                })?;
                let (id, delta) = match fast {
                    Some(pair) => pair,
                    None => {
                        let mut tag = [0u8];
                        read_exact_at(&mut self.tape.input, &mut tag, self.tape.offset)?;
                        self.tape.offset += 1;
                        if tag[0] != TAG_OPEN_ELEM {
                            return self.corrupt(
                                started_at,
                                format!("element posting points at tag {:#04x}", tag[0]),
                            );
                        }
                        let id = read_varint(&mut self.tape.input, &mut self.tape.offset)?;
                        (id, self.read_close_delta()?)
                    }
                };
                if Some(id) != self.lists[list_idx].elem_id {
                    return self.corrupt(
                        started_at,
                        format!("posting for label {:?} points at label id {id}", {
                            self.lists[list_idx].elem_id
                        }),
                    );
                }
                (self.tape.labels[id as usize].clone(), delta)
            };
            if delta == u32::MAX {
                return self.corrupt(
                    started_at,
                    "overflowed close offset on an index-enabled tape",
                );
            }
            let close_at = self.tape.offset + u64::from(delta);
            if close_at >= top_close_at {
                return self.corrupt(
                    started_at,
                    format!("child close offset {close_at} escapes its parent's subtree"),
                );
            }
            let top = self.stack.last_mut().expect("virtual root always present");
            if is_text_list && self.texts_filtered && !self.matched.contains(&label) {
                // Decoded candidate, rejected by the label test — exactly
                // what the scan prefilter does to an unmatched text.
                top.complete = false;
                continue;
            }
            if started_at != top.next_at {
                top.complete = false;
            }
            let mut hash = EventHash::new();
            hash.open(&label);
            self.stack.push(Frame {
                label: label.clone(),
                close_at,
                depth: posting.depth,
                hash,
                complete: true,
                next_at: self.tape.offset,
            });
            self.delivered += 1;
            return Ok(XmlEvent::Open(label));
        }
    }
}

impl<R: BufRead + Seek> EventSource for IndexedReplay<R> {
    fn next_event(&mut self) -> Result<XmlEvent, XmlError> {
        IndexedReplay::next_event(self).map_err(StoreError::into_xml)
    }

    fn events_read(&self) -> u64 {
        self.delivered
    }
}
