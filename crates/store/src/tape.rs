//! The FET1 tape: writer, reader, inspection.
//!
//! See the crate-level docs for the byte layout. Everything here is plain
//! `std` I/O: the writer needs `Write + Seek` (close offsets are
//! backpatched), the reader needs `BufRead + Seek` (the label table lives
//! in the footer, and skipping is a forward seek).

use foxq_forest::{FxHashMap, Label};
use foxq_xml::{EventSource, XmlError, XmlEvent, XmlReader};
use std::io::{BufRead, Read, Seek, SeekFrom, Write};
use std::path::Path;
use std::sync::Arc;

/// File magic, offset 0.
pub const MAGIC: [u8; 4] = *b"FET1";
/// Format version this crate writes and accepts.
pub const VERSION: u8 = 1;
/// Offset of the first frame (magic + version + footer_offset).
pub const TAPE_START: u64 = 13;
/// Offset of the backpatched `footer_offset` field.
const FOOTER_OFFSET_AT: u64 = 5;

const TAG_EOF: u8 = 0x00;
const TAG_OPEN_ELEM: u8 = 0x01;
const TAG_OPEN_TEXT: u8 = 0x02;
const TAG_CLOSE: u8 = 0x03;

/// `close_delta` sentinel: subtree spans ≥ 4 GiB, scan instead of seeking.
const DELTA_OVERFLOW: u32 = u32::MAX;

/// Writer buffer size; backpatches inside it cost a memcpy, not a seek.
const WRITE_BUF_CAP: usize = 256 * 1024;

/// Sanity bounds against corrupt footers (not format limits).
const MAX_LABELS: u64 = 1 << 22;
const MAX_NAME_LEN: u64 = 1 << 16;

// ---------------------------------------------------------------------------
// Errors
// ---------------------------------------------------------------------------

/// Failure reading or writing a tape or corpus.
#[derive(Debug)]
pub enum StoreError {
    /// Underlying I/O failure.
    Io(std::io::Error),
    /// The XML being ingested was malformed.
    Xml(XmlError),
    /// The tape bytes violate the FET1 grammar (bad magic, unknown frame
    /// tag, truncated frame, out-of-range label id, …).
    Corrupt { offset: u64, msg: String },
    /// A full replay's recomputed checksum did not match the footer's.
    Checksum { expected: u64, found: u64 },
    /// A corpus lookup for an id that is not in the manifest.
    UnknownDoc { id: String },
    /// A document id outside `[A-Za-z0-9._-]` (or starting with `.`).
    BadDocId { id: String },
    /// The corpus manifest file did not parse.
    Manifest { line: usize, msg: String },
}

impl std::fmt::Display for StoreError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            StoreError::Io(e) => write!(f, "{e}"),
            StoreError::Xml(e) => write!(f, "{e}"),
            StoreError::Corrupt { offset, msg } => {
                write!(f, "corrupt FET1 tape at byte {offset}: {msg}")
            }
            StoreError::Checksum { expected, found } => write!(
                f,
                "tape checksum mismatch: footer says {expected:#018x}, replay computed {found:#018x}"
            ),
            StoreError::UnknownDoc { id } => write!(f, "no document {id:?} in the corpus"),
            StoreError::BadDocId { id } => write!(
                f,
                "invalid document id {id:?} (use [A-Za-z0-9._-], not starting with '.')"
            ),
            StoreError::Manifest { line, msg } => {
                write!(f, "corrupt corpus manifest at line {line}: {msg}")
            }
        }
    }
}

impl std::error::Error for StoreError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            StoreError::Io(e) => Some(e),
            StoreError::Xml(e) => Some(e),
            _ => None,
        }
    }
}

impl From<std::io::Error> for StoreError {
    fn from(e: std::io::Error) -> Self {
        StoreError::Io(e)
    }
}

impl From<XmlError> for StoreError {
    fn from(e: XmlError) -> Self {
        StoreError::Xml(e)
    }
}

impl StoreError {
    /// Render as an [`XmlError`] so a tape can stand in wherever an XML
    /// event source is expected (the [`EventSource`] impl).
    pub fn into_xml(self) -> XmlError {
        match self {
            StoreError::Io(e) => XmlError::Io {
                offset: 0,
                source: e,
            },
            StoreError::Xml(e) => e,
            StoreError::Corrupt { offset, msg } => XmlError::Syntax {
                offset,
                msg: format!("FET1 tape: {msg}"),
            },
            other => XmlError::Syntax {
                offset: 0,
                msg: format!("FET1 tape: {other}"),
            },
        }
    }
}

// ---------------------------------------------------------------------------
// Checksum
// ---------------------------------------------------------------------------

/// FNV-1a 64 over the logical event stream (see the crate docs).
#[derive(Debug, Clone, Copy)]
struct EventHash(u64);

impl EventHash {
    fn new() -> Self {
        EventHash(0xcbf2_9ce4_8422_2325)
    }

    fn byte(&mut self, b: u8) {
        self.0 = (self.0 ^ u64::from(b)).wrapping_mul(0x100_0000_01b3);
    }

    fn bytes(&mut self, bs: &[u8]) {
        for &b in bs {
            self.byte(b);
        }
    }

    fn open(&mut self, label: &Label) {
        self.byte(if label.is_text() {
            TAG_OPEN_TEXT
        } else {
            TAG_OPEN_ELEM
        });
        self.bytes(label.name.as_bytes());
        self.byte(0xFF);
    }

    fn close(&mut self) {
        self.byte(TAG_CLOSE);
    }

    fn eof(&mut self) {
        self.byte(TAG_EOF);
    }
}

// ---------------------------------------------------------------------------
// Varints
// ---------------------------------------------------------------------------

fn push_varint(buf: &mut Vec<u8>, mut v: u64) {
    loop {
        let b = (v & 0x7F) as u8;
        v >>= 7;
        if v == 0 {
            buf.push(b);
            return;
        }
        buf.push(b | 0x80);
    }
}

// ---------------------------------------------------------------------------
// Metadata
// ---------------------------------------------------------------------------

/// Footer-level facts about one tape, available without replaying it.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TapeInfo {
    /// Format version.
    pub version: u8,
    /// Open + close events on the tape (`Eof` excluded).
    pub events: u64,
    /// Distinct element names in the label table.
    pub label_count: usize,
    /// Maximum nesting depth of the document.
    pub max_depth: usize,
    /// Bytes of the frame region (header and footer excluded).
    pub tape_bytes: u64,
    /// Total file size.
    pub file_bytes: u64,
    /// FNV-1a 64 of the logical event stream.
    pub checksum: u64,
}

// ---------------------------------------------------------------------------
// Writer
// ---------------------------------------------------------------------------

/// One not-yet-closed node: where its `close_delta` placeholder sits and
/// the event counter when it opened.
struct PendingOpen {
    patch_at: u64,
    events_at_open: u64,
}

/// Streams events onto a FET1 tape in one pass.
///
/// Memory is O(depth) for the backpatch stack plus a fixed write buffer;
/// the label table grows with the *vocabulary*, not the document. Feed
/// events with [`TapeWriter::open`] / [`TapeWriter::close`] (the usual
/// sink shape), then call [`TapeWriter::finish`].
pub struct TapeWriter<W: Write + Seek> {
    out: W,
    /// Bytes already written to `out`; `out`'s cursor sits there between
    /// calls.
    flushed: u64,
    /// Unwritten tail of the tape. Backpatches landing here are applied in
    /// memory.
    buf: Vec<u8>,
    stack: Vec<PendingOpen>,
    label_ids: FxHashMap<Arc<str>, u64>,
    label_names: Vec<Arc<str>>,
    events: u64,
    max_depth: usize,
    hash: EventHash,
    /// Backpatches that had to seek (telemetry for tests/benches).
    seek_patches: u64,
}

impl<W: Write + Seek> TapeWriter<W> {
    /// Start a tape on `out` (the header is written immediately).
    pub fn new(mut out: W) -> Result<Self, StoreError> {
        out.write_all(&MAGIC)?;
        out.write_all(&[VERSION])?;
        out.write_all(&0u64.to_le_bytes())?; // footer_offset placeholder
        Ok(TapeWriter {
            out,
            flushed: TAPE_START,
            buf: Vec::with_capacity(WRITE_BUF_CAP + 4096),
            stack: Vec::new(),
            label_ids: FxHashMap::default(),
            label_names: Vec::new(),
            events: 0,
            max_depth: 0,
            hash: EventHash::new(),
            seek_patches: 0,
        })
    }

    /// Current absolute write position.
    fn pos(&self) -> u64 {
        self.flushed + self.buf.len() as u64
    }

    fn flush_buf(&mut self) -> Result<(), StoreError> {
        if !self.buf.is_empty() {
            self.out.write_all(&self.buf)?;
            self.flushed += self.buf.len() as u64;
            self.buf.clear();
        }
        Ok(())
    }

    /// Overwrite the 4 placeholder bytes at `at` — in memory when they are
    /// still buffered, by a seek round-trip otherwise. A frame is appended
    /// atomically before any flush, so the field never straddles the
    /// flushed boundary.
    fn patch(&mut self, at: u64, bytes: [u8; 4]) -> Result<(), StoreError> {
        if at >= self.flushed {
            let i = (at - self.flushed) as usize;
            self.buf[i..i + 4].copy_from_slice(&bytes);
        } else {
            self.seek_patches += 1;
            self.out.seek(SeekFrom::Start(at))?;
            self.out.write_all(&bytes)?;
            self.out.seek(SeekFrom::Start(self.flushed))?;
        }
        Ok(())
    }

    fn intern(&mut self, name: &Arc<str>) -> u64 {
        if let Some(&id) = self.label_ids.get(name) {
            return id;
        }
        let id = self.label_names.len() as u64;
        self.label_ids.insert(name.clone(), id);
        self.label_names.push(name.clone());
        id
    }

    /// Record an opening event (element or text node).
    pub fn open(&mut self, label: &Label) -> Result<(), StoreError> {
        self.events += 1;
        self.hash.open(label);
        if label.is_text() {
            self.buf.push(TAG_OPEN_TEXT);
            push_varint(&mut self.buf, label.name.len() as u64);
            self.buf.extend_from_slice(label.name.as_bytes());
        } else {
            let id = self.intern(&label.name);
            self.buf.push(TAG_OPEN_ELEM);
            push_varint(&mut self.buf, id);
        }
        let patch_at = self.pos();
        self.buf.extend_from_slice(&[0u8; 4]); // close_delta placeholder
        self.stack.push(PendingOpen {
            patch_at,
            events_at_open: self.events,
        });
        self.max_depth = self.max_depth.max(self.stack.len());
        if self.buf.len() >= WRITE_BUF_CAP {
            self.flush_buf()?;
        }
        Ok(())
    }

    /// Record the closing event of the most recently opened node.
    pub fn close(&mut self) -> Result<(), StoreError> {
        let open = self.stack.pop().expect("close without matching open");
        self.events += 1;
        self.hash.close();
        let close_tag_at = self.pos();
        let delta64 = close_tag_at - (open.patch_at + 4);
        let delta = u32::try_from(delta64).unwrap_or(DELTA_OVERFLOW);
        self.patch(open.patch_at, delta.to_le_bytes())?;
        let subtree_events = self.events - open.events_at_open + 1;
        self.buf.push(TAG_CLOSE);
        push_varint(&mut self.buf, subtree_events);
        if self.buf.len() >= WRITE_BUF_CAP {
            self.flush_buf()?;
        }
        Ok(())
    }

    /// Open/close events recorded so far.
    pub fn events(&self) -> u64 {
        self.events
    }

    /// Backpatches that fell outside the write buffer and cost a seek.
    pub fn seek_patches(&self) -> u64 {
        self.seek_patches
    }

    /// Write the `Eof` frame and the footer, backpatch the header, and
    /// return the underlying writer (cursor at end of file) plus the tape
    /// facts.
    pub fn finish(mut self) -> Result<(W, TapeInfo), StoreError> {
        assert!(self.stack.is_empty(), "finish with unclosed nodes");
        self.buf.push(TAG_EOF);
        self.hash.eof();
        let footer_offset = self.pos();
        push_varint(&mut self.buf, self.label_names.len() as u64);
        for name in &self.label_names {
            push_varint(&mut self.buf, name.len() as u64);
            self.buf.extend_from_slice(name.as_bytes());
        }
        push_varint(&mut self.buf, self.events);
        push_varint(&mut self.buf, self.max_depth as u64);
        self.buf.extend_from_slice(&self.hash.0.to_le_bytes());
        self.flush_buf()?;
        self.out.seek(SeekFrom::Start(FOOTER_OFFSET_AT))?;
        self.out.write_all(&footer_offset.to_le_bytes())?;
        self.out.seek(SeekFrom::Start(self.flushed))?;
        self.out.flush()?;
        Ok((
            self.out,
            TapeInfo {
                version: VERSION,
                events: self.events,
                label_count: self.label_names.len(),
                max_depth: self.max_depth,
                tape_bytes: footer_offset - TAPE_START,
                file_bytes: self.flushed,
                checksum: self.hash.0,
            },
        ))
    }
}

/// Parse XML and write it to a tape in one streaming pass. Returns the
/// tape facts and the number of XML source bytes consumed.
pub fn ingest_xml_to_tape<R: BufRead, W: Write + Seek>(
    xml: R,
    out: W,
) -> Result<(W, TapeInfo, u64), StoreError> {
    let mut counted = CountingRead { inner: xml, n: 0 };
    let mut parser = XmlReader::new(&mut counted);
    let mut writer = TapeWriter::new(out)?;
    loop {
        match parser.next_event()? {
            XmlEvent::Open(label) => writer.open(&label)?,
            XmlEvent::Close(_) => writer.close()?,
            XmlEvent::Eof => break,
        }
    }
    let (out, info) = writer.finish()?;
    Ok((out, info, counted.n))
}

/// Counts consumed bytes of a `BufRead` (the XML source size of an ingest).
struct CountingRead<R> {
    inner: R,
    n: u64,
}

impl<R: BufRead> Read for CountingRead<R> {
    fn read(&mut self, buf: &mut [u8]) -> std::io::Result<usize> {
        let got = self.inner.read(buf)?;
        self.n += got as u64;
        Ok(got)
    }
}

impl<R: BufRead> BufRead for CountingRead<R> {
    fn fill_buf(&mut self) -> std::io::Result<&[u8]> {
        self.inner.fill_buf()
    }

    fn consume(&mut self, amt: usize) {
        self.n += amt as u64;
        self.inner.consume(amt);
    }
}

// ---------------------------------------------------------------------------
// Reader
// ---------------------------------------------------------------------------

/// What [`TapeReader::skip_subtree`] jumped over.
#[derive(Debug, Clone, Copy)]
pub struct SkippedSubtree {
    /// Open + close events of the subtree, its own open and close included.
    pub events: u64,
    /// Tape bytes that were never decoded.
    pub bytes: u64,
}

/// Seek target of the most recently returned open event.
#[derive(Debug, Clone, Copy)]
struct SkipHandle {
    close_at: u64,
}

/// Replays a FET1 tape as parse events, without re-tokenizing any XML.
///
/// After an `Open` event, [`TapeReader::skippable`] tells whether the
/// subtree can be seeked over ([`TapeReader::skip_subtree`]); drivers use
/// that to honor a label prefilter in O(1) per pruned subtree. A replay
/// that never seeks verifies the footer checksum at `Eof`.
pub struct TapeReader<R> {
    input: R,
    /// Absolute offset of the next unread byte.
    offset: u64,
    footer_offset: u64,
    labels: Vec<Label>,
    info: TapeInfo,
    open_stack: Vec<Label>,
    last_open: Option<SkipHandle>,
    events_read: u64,
    seek_skipped_events: u64,
    seek_skipped_bytes: u64,
    seek_micros: u64,
    hash: EventHash,
    /// Cleared on the first seek: a partial replay cannot checksum.
    verify: bool,
    finished: bool,
}

impl TapeReader<std::io::BufReader<std::fs::File>> {
    /// Open a tape file.
    pub fn open_file(path: &Path) -> Result<Self, StoreError> {
        TapeReader::new(std::io::BufReader::new(std::fs::File::open(path)?))
    }
}

impl<R: BufRead + Seek> TapeReader<R> {
    /// Validate the header, load the footer (label table, counts,
    /// checksum), and position the reader at the first frame.
    pub fn new(mut input: R) -> Result<Self, StoreError> {
        let file_bytes = input.seek(SeekFrom::End(0))?;
        input.seek(SeekFrom::Start(0))?;
        let mut head = [0u8; 13];
        read_exact_at(&mut input, &mut head, 0)?;
        if head[..4] != MAGIC {
            return Err(StoreError::Corrupt {
                offset: 0,
                msg: "bad magic (not a FET1 tape)".into(),
            });
        }
        let version = head[4];
        if version != VERSION {
            return Err(StoreError::Corrupt {
                offset: 4,
                msg: format!("unsupported FET1 version {version}"),
            });
        }
        let footer_offset = u64::from_le_bytes(head[5..13].try_into().unwrap());
        if footer_offset < TAPE_START || footer_offset >= file_bytes {
            return Err(StoreError::Corrupt {
                offset: FOOTER_OFFSET_AT,
                msg: format!("footer offset {footer_offset} outside the file ({file_bytes} bytes)"),
            });
        }
        input.seek(SeekFrom::Start(footer_offset))?;
        let mut at = footer_offset;
        let label_count = read_varint(&mut input, &mut at)?;
        if label_count > MAX_LABELS {
            return Err(StoreError::Corrupt {
                offset: at,
                msg: format!("implausible label count {label_count}"),
            });
        }
        let mut labels = Vec::with_capacity(label_count as usize);
        for _ in 0..label_count {
            let len = read_varint(&mut input, &mut at)?;
            if len > MAX_NAME_LEN {
                return Err(StoreError::Corrupt {
                    offset: at,
                    msg: format!("implausible label length {len}"),
                });
            }
            let mut name = vec![0u8; len as usize];
            read_exact_at(&mut input, &mut name, at)?;
            at += len;
            let name = String::from_utf8(name).map_err(|_| StoreError::Corrupt {
                offset: at,
                msg: "label table entry is not UTF-8".into(),
            })?;
            labels.push(Label::elem(name));
        }
        let events = read_varint(&mut input, &mut at)?;
        let max_depth = read_varint(&mut input, &mut at)?;
        let mut sum = [0u8; 8];
        read_exact_at(&mut input, &mut sum, at)?;
        let checksum = u64::from_le_bytes(sum);
        input.seek(SeekFrom::Start(TAPE_START))?;
        let label_count = labels.len();
        Ok(TapeReader {
            input,
            offset: TAPE_START,
            footer_offset,
            labels,
            info: TapeInfo {
                version,
                events,
                label_count,
                max_depth: max_depth as usize,
                tape_bytes: footer_offset - TAPE_START,
                file_bytes,
                checksum,
            },
            open_stack: Vec::new(),
            last_open: None,
            events_read: 0,
            seek_skipped_events: 0,
            seek_skipped_bytes: 0,
            seek_micros: 0,
            hash: EventHash::new(),
            verify: true,
            finished: false,
        })
    }

    /// Footer-level facts (no replay needed).
    pub fn info(&self) -> &TapeInfo {
        &self.info
    }

    /// The interned element names, in label-id order.
    pub fn labels(&self) -> &[Label] {
        &self.labels
    }

    /// Open/close events returned so far (skipped subtrees excluded, except
    /// for their already-returned open event).
    pub fn events_read(&self) -> u64 {
        self.events_read
    }

    /// Events jumped over by [`TapeReader::skip_subtree`] so far.
    pub fn seek_skipped_events(&self) -> u64 {
        self.seek_skipped_events
    }

    /// Tape bytes jumped over (never decoded) so far.
    pub fn seek_skipped_bytes(&self) -> u64 {
        self.seek_skipped_bytes
    }

    /// Wall time spent inside [`TapeReader::skip_subtree`] so far, in
    /// microseconds. Together with the replay time measured by the
    /// driver, this splits tape cost into "decoding" vs. "seeking".
    pub fn seek_micros(&self) -> u64 {
        self.seek_micros
    }

    fn corrupt<T>(&self, msg: impl Into<String>) -> Result<T, StoreError> {
        Err(StoreError::Corrupt {
            offset: self.offset,
            msg: msg.into(),
        })
    }

    fn read_u8(&mut self) -> Result<u8, StoreError> {
        let mut b = [0u8];
        read_exact_at(&mut self.input, &mut b, self.offset)?;
        self.offset += 1;
        Ok(b[0])
    }

    fn read_varint_here(&mut self) -> Result<u64, StoreError> {
        read_varint(&mut self.input, &mut self.offset)
    }

    /// Pull the next event. After `Eof`, keeps returning `Eof`.
    pub fn next_event(&mut self) -> Result<XmlEvent, StoreError> {
        self.last_open = None;
        if self.finished {
            return Ok(XmlEvent::Eof);
        }
        match self.read_u8()? {
            TAG_OPEN_ELEM => {
                let id = self.read_varint_here()?;
                let Some(label) = self.labels.get(id as usize).cloned() else {
                    return self.corrupt(format!(
                        "label id {id} out of range ({} in table)",
                        self.labels.len()
                    ));
                };
                self.finish_open(label.clone())?;
                Ok(XmlEvent::Open(label))
            }
            TAG_OPEN_TEXT => {
                let len = self.read_varint_here()?;
                // Guard the allocation below against corrupt lengths; the
                // saturating form stays correct even for a length varint
                // near u64::MAX (the plain add would wrap past the check).
                if len > self.footer_offset.saturating_sub(self.offset) {
                    return self.corrupt(format!("text length {len} runs past the tape"));
                }
                let mut content = vec![0u8; len as usize];
                read_exact_at(&mut self.input, &mut content, self.offset)?;
                self.offset += len;
                let Ok(content) = String::from_utf8(content) else {
                    return self.corrupt("text payload is not UTF-8");
                };
                let label = Label::text(content);
                self.finish_open(label.clone())?;
                Ok(XmlEvent::Open(label))
            }
            TAG_CLOSE => {
                let _subtree_events = self.read_varint_here()?;
                let Some(label) = self.open_stack.pop() else {
                    return self.corrupt("close frame without an open node");
                };
                self.hash.close();
                self.events_read += 1;
                Ok(XmlEvent::Close(label))
            }
            TAG_EOF => {
                if !self.open_stack.is_empty() {
                    return self.corrupt(format!(
                        "tape ended with {} unclosed node(s)",
                        self.open_stack.len()
                    ));
                }
                if self.offset != self.footer_offset {
                    return self.corrupt("Eof frame does not sit at the footer boundary");
                }
                self.hash.eof();
                self.finished = true;
                if self.verify && self.hash.0 != self.info.checksum {
                    return Err(StoreError::Checksum {
                        expected: self.info.checksum,
                        found: self.hash.0,
                    });
                }
                Ok(XmlEvent::Eof)
            }
            tag => self.corrupt(format!("unknown frame tag {tag:#04x}")),
        }
    }

    /// Shared tail of both open frames: read the `close_delta`, arm the
    /// skip handle, account the event.
    fn finish_open(&mut self, label: Label) -> Result<(), StoreError> {
        let mut delta = [0u8; 4];
        read_exact_at(&mut self.input, &mut delta, self.offset)?;
        self.offset += 4;
        let delta = u32::from_le_bytes(delta);
        if delta != DELTA_OVERFLOW {
            let close_at = self.offset + u64::from(delta);
            if close_at >= self.footer_offset {
                return self.corrupt(format!("close offset {close_at} runs past the tape"));
            }
            self.last_open = Some(SkipHandle { close_at });
        }
        self.hash.open(&label);
        self.open_stack.push(label);
        self.events_read += 1;
        Ok(())
    }

    /// Whether the event just returned was an `Open` whose subtree can be
    /// seeked over (its close offset is recorded and did not overflow).
    pub fn skippable(&self) -> bool {
        self.last_open.is_some()
    }

    /// Seek over the subtree of the most recently returned `Open` event,
    /// consuming its close frame. The opens and closes in between are never
    /// decoded. Panics if [`TapeReader::skippable`] is false.
    pub fn skip_subtree(&mut self) -> Result<SkippedSubtree, StoreError> {
        let start = std::time::Instant::now();
        let handle = self
            .last_open
            .take()
            .expect("skip_subtree without a skippable open event");
        let bytes = handle.close_at - self.offset;
        self.input.seek(SeekFrom::Start(handle.close_at))?;
        self.offset = handle.close_at;
        match self.read_u8()? {
            TAG_CLOSE => {}
            tag => {
                return self.corrupt(format!(
                    "close offset does not point at a close frame (tag {tag:#04x})"
                ))
            }
        }
        let events = self.read_varint_here()?;
        self.open_stack.pop().expect("skip with empty open stack");
        self.verify = false;
        self.seek_skipped_events += events;
        self.seek_skipped_bytes += bytes;
        self.seek_micros += start.elapsed().as_micros().min(u64::MAX as u128) as u64;
        Ok(SkippedSubtree { events, bytes })
    }
}

impl<R: BufRead + Seek> EventSource for TapeReader<R> {
    fn next_event(&mut self) -> Result<XmlEvent, XmlError> {
        TapeReader::next_event(self).map_err(StoreError::into_xml)
    }

    fn events_read(&self) -> u64 {
        self.events_read
    }
}

/// Read a tape file's footer facts without replaying it.
pub fn inspect(path: &Path) -> Result<TapeInfo, StoreError> {
    Ok(*TapeReader::open_file(path)?.info())
}

// ---------------------------------------------------------------------------
// Low-level read helpers
// ---------------------------------------------------------------------------

/// `read_exact` that reports truncation as [`StoreError::Corrupt`] at the
/// given offset (a tape that ends mid-frame is corrupt, not "EOF").
fn read_exact_at<R: Read>(input: &mut R, buf: &mut [u8], at: u64) -> Result<(), StoreError> {
    input.read_exact(buf).map_err(|e| {
        if e.kind() == std::io::ErrorKind::UnexpectedEof {
            StoreError::Corrupt {
                offset: at,
                msg: "tape truncated mid-frame".into(),
            }
        } else {
            StoreError::Io(e)
        }
    })
}

/// LEB128 decode, advancing `at` by the bytes consumed.
fn read_varint<R: Read>(input: &mut R, at: &mut u64) -> Result<u64, StoreError> {
    let mut value = 0u64;
    let mut shift = 0u32;
    loop {
        let mut b = [0u8];
        read_exact_at(input, &mut b, *at)?;
        *at += 1;
        let b = b[0];
        if shift >= 63 && b > 1 {
            return Err(StoreError::Corrupt {
                offset: *at,
                msg: "varint overflows u64".into(),
            });
        }
        value |= u64::from(b & 0x7F) << shift;
        if b & 0x80 == 0 {
            return Ok(value);
        }
        shift += 7;
        if shift > 63 {
            return Err(StoreError::Corrupt {
                offset: *at,
                msg: "varint longer than 10 bytes".into(),
            });
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Cursor;

    fn tape_of(xml: &str) -> (Vec<u8>, TapeInfo) {
        let (out, info, _src) =
            ingest_xml_to_tape(xml.as_bytes(), Cursor::new(Vec::new())).unwrap();
        (out.into_inner(), info)
    }

    fn replay(bytes: Vec<u8>) -> Vec<XmlEvent> {
        let mut r = TapeReader::new(Cursor::new(bytes)).unwrap();
        let mut out = Vec::new();
        loop {
            let ev = r.next_event().unwrap();
            let done = ev == XmlEvent::Eof;
            out.push(ev);
            if done {
                return out;
            }
        }
    }

    fn parse_events(xml: &str) -> Vec<XmlEvent> {
        let mut r = XmlReader::new(xml.as_bytes());
        let mut out = Vec::new();
        loop {
            let ev = r.next_event().unwrap();
            let done = ev == XmlEvent::Eof;
            out.push(ev);
            if done {
                return out;
            }
        }
    }

    #[test]
    fn roundtrip_equals_direct_parse() {
        let xml = r#"<site><a x="1">hi &amp; ho</a><b/><c><d>deep</d></c></site>"#;
        assert_eq!(replay(tape_of(xml).0), parse_events(xml));
    }

    #[test]
    fn info_reports_footer_facts() {
        let (bytes, info) = tape_of("<a><b>t</b><b>u</b></a>");
        assert_eq!(info.events, 10); // a, b, "t", b, "u": 5 opens + 5 closes
        let r = TapeReader::new(Cursor::new(bytes)).unwrap();
        assert_eq!(r.info(), &info);
        assert_eq!(info.label_count, 2); // a, b interned once each
        assert_eq!(info.max_depth, 3); // a > b > text
        assert!(info.tape_bytes > 0);
    }

    #[test]
    fn skip_subtree_jumps_to_the_close() {
        let xml = "<r><junk><x>1</x><y>2</y></junk><keep>3</keep></r>";
        let (bytes, _) = tape_of(xml);
        let mut r = TapeReader::new(Cursor::new(bytes)).unwrap();
        assert_eq!(r.next_event().unwrap(), XmlEvent::Open(Label::elem("r")));
        assert_eq!(r.next_event().unwrap(), XmlEvent::Open(Label::elem("junk")));
        assert!(r.skippable());
        let skipped = r.skip_subtree().unwrap();
        // junk + x + "1" + y + "2": 5 opens + 5 closes.
        assert_eq!(skipped.events, 10);
        assert!(skipped.bytes > 0);
        assert_eq!(r.seek_skipped_bytes(), skipped.bytes);
        // The replay resumes exactly after </junk>.
        assert_eq!(r.next_event().unwrap(), XmlEvent::Open(Label::elem("keep")));
        assert_eq!(r.next_event().unwrap(), XmlEvent::Open(Label::text("3")));
        assert_eq!(r.next_event().unwrap(), XmlEvent::Close(Label::text("3")));
        assert_eq!(
            r.next_event().unwrap(),
            XmlEvent::Close(Label::elem("keep"))
        );
        assert_eq!(r.next_event().unwrap(), XmlEvent::Close(Label::elem("r")));
        assert_eq!(r.next_event().unwrap(), XmlEvent::Eof);
        assert_eq!(r.next_event().unwrap(), XmlEvent::Eof); // sticky
    }

    #[test]
    fn corrupt_magic_is_rejected() {
        let (mut bytes, _) = tape_of("<a/>");
        bytes[0] = b'X';
        assert!(matches!(
            TapeReader::new(Cursor::new(bytes)),
            Err(StoreError::Corrupt { offset: 0, .. })
        ));
    }

    #[test]
    fn flipped_text_byte_fails_the_checksum() {
        let xml = "<a>checksum-me</a>";
        let (mut bytes, info) = tape_of(xml);
        // Find the text payload on the tape and flip one byte.
        let pos = bytes
            .windows(b"checksum-me".len())
            .position(|w| w == b"checksum-me")
            .unwrap();
        bytes[pos] ^= 0x20;
        let mut r = TapeReader::new(Cursor::new(bytes)).unwrap();
        let err = loop {
            match r.next_event() {
                Ok(XmlEvent::Eof) => panic!("corruption not detected"),
                Ok(_) => continue,
                Err(e) => break e,
            }
        };
        match err {
            StoreError::Checksum { expected, .. } => assert_eq!(expected, info.checksum),
            other => panic!("expected Checksum, got {other:?}"),
        }
    }

    #[test]
    fn truncated_tape_is_corrupt() {
        let (bytes, _) = tape_of("<a><b>some text here</b></a>");
        let cut = bytes.len() / 2;
        match TapeReader::new(Cursor::new(bytes[..cut].to_vec())) {
            // Either the footer offset now points outside the file (header
            // check) or the footer read hits EOF — both are Corrupt.
            Err(StoreError::Corrupt { .. }) => {}
            other => panic!("expected Corrupt, got {:?}", other.map(|_| "reader")),
        }
    }

    #[test]
    fn writer_backpatches_across_the_flush_boundary() {
        // A root holding enough children to overflow the write buffer: its
        // close_delta must be patched with a seek, and the replay must
        // still be exact.
        let n = 40_000; // ~ (tag+id+4)·2·n bytes ≫ WRITE_BUF_CAP
        let mut xml = String::from("<r>");
        for i in 0..n {
            xml.push_str(&format!("<c>{i}</c>"));
        }
        xml.push_str("</r>");
        let (out, info, _) = ingest_xml_to_tape(xml.as_bytes(), Cursor::new(Vec::new())).unwrap();
        assert_eq!(info.events, (2 * n as u64 + 1) * 2);
        let bytes = out.into_inner();
        let mut r = TapeReader::new(Cursor::new(bytes)).unwrap();
        assert_eq!(r.next_event().unwrap(), XmlEvent::Open(Label::elem("r")));
        assert!(r.skippable(), "root close offset not backpatched");
        let skipped = r.skip_subtree().unwrap();
        assert_eq!(skipped.events, info.events);
        assert_eq!(r.next_event().unwrap(), XmlEvent::Eof);
    }

    #[test]
    fn huge_text_length_varint_is_corrupt_not_a_panic() {
        // A hand-crafted tape whose single frame claims a text payload of
        // u64::MAX bytes: the bounds check must not wrap into accepting it
        // (release builds would then die on a capacity-overflow alloc).
        let mut bytes = Vec::new();
        bytes.extend_from_slice(&MAGIC);
        bytes.push(VERSION);
        bytes.extend_from_slice(&24u64.to_le_bytes()); // footer right after
        bytes.push(TAG_OPEN_TEXT);
        bytes.extend_from_slice(&[0xFF; 9]); // LEB128 u64::MAX …
        bytes.push(0x01); // … final byte
        bytes.extend_from_slice(&[0x00, 0x00, 0x00]); // footer: 0 labels/events/depth
        bytes.extend_from_slice(&0u64.to_le_bytes()); // checksum
        let mut r = TapeReader::new(Cursor::new(bytes)).unwrap();
        assert!(matches!(r.next_event(), Err(StoreError::Corrupt { .. })));
    }

    #[test]
    fn varint_roundtrip() {
        for v in [0u64, 1, 127, 128, 300, u32::MAX as u64, u64::MAX] {
            let mut buf = Vec::new();
            push_varint(&mut buf, v);
            let mut at = 0u64;
            assert_eq!(read_varint(&mut &buf[..], &mut at).unwrap(), v);
            assert_eq!(at, buf.len() as u64);
        }
    }
}
