//! The FET tape: writer, reader, inspection.
//!
//! See the crate-level docs for the byte layouts (FET2, and the legacy
//! FET1 this crate still reads). Everything here is plain `std` I/O: the
//! writer needs `Write + Seek` (close offsets are backpatched), the reader
//! needs `BufRead + Seek` (the label table lives in the footer, and
//! skipping is a forward seek). File-opened readers sit on a
//! [`crate::TapeInput`] — a memory map when the platform grants one.

use crate::lz;
use crate::mmap::TapeInput;
use foxq_forest::{FxHashMap, Label};
use foxq_xml::{EventSource, XmlError, XmlEvent, XmlReader};
use std::io::{BufRead, Read, Seek, SeekFrom, Write};
use std::path::Path;
use std::sync::Arc;

/// File magic of the legacy format, offset 0.
pub const MAGIC_V1: [u8; 4] = *b"FET1";
/// File magic of the current format, offset 0.
pub const MAGIC: [u8; 4] = *b"FET2";
/// Legacy format version (readable, writable via [`TapeWriter::new_v1`]).
pub const VERSION_V1: u8 = 1;
/// Format version this crate writes by default.
pub const VERSION: u8 = 2;
/// Offset of the first frame (magic + version + footer_offset).
pub const TAPE_START: u64 = 13;
/// Offset of the backpatched `footer_offset` field.
const FOOTER_OFFSET_AT: u64 = 5;

pub(crate) const TAG_EOF: u8 = 0x00;
pub(crate) const TAG_OPEN_ELEM: u8 = 0x01;
pub(crate) const TAG_OPEN_TEXT: u8 = 0x02;
pub(crate) const TAG_CLOSE: u8 = 0x03;

/// `close_delta` sentinel: subtree spans ≥ 4 GiB, scan instead of seeking.
const DELTA_OVERFLOW: u32 = u32::MAX;

/// Writer buffer size; backpatches inside it cost a memcpy, not a seek.
const WRITE_BUF_CAP: usize = 256 * 1024;

/// Sanity bounds against corrupt footers (not format limits).
const MAX_LABELS: u64 = 1 << 22;
const MAX_NAME_LEN: u64 = 1 << 16;

/// FET2 footer flag: some node's parent is a text node (hand-built
/// forests only; XML cannot produce this). The skip index assumes element
/// parents, so the index-driven read path is disabled.
pub const FLAG_TEXT_CHILDREN: u8 = 0x01;
/// FET2 footer flag: some `close_delta` overflowed the u32 sentinel, so
/// not every open frame can be seeked over; the index path is disabled.
pub const FLAG_DELTA_OVERFLOW: u8 = 0x02;
const KNOWN_FLAGS: u8 = FLAG_TEXT_CHILDREN | FLAG_DELTA_OVERFLOW;

/// Text payloads shorter than this are stored raw; compression overhead
/// (token + offset bytes) cannot win on them.
const MIN_COMPRESS_LEN: usize = 16;
/// Worst-case LZ expansion per encoded byte (a 255-run length extension
/// byte yields at most 255 output bytes). Bounds `raw_len` against
/// adversarial frames before any allocation.
const MAX_EXPANSION: u64 = 255;

/// Text nodes have no interned label id; this sentinel marks them on the
/// writer's open stack.
const TEXT_NODE: u64 = u64::MAX;

// ---------------------------------------------------------------------------
// Errors
// ---------------------------------------------------------------------------

/// Failure reading or writing a tape or corpus.
#[derive(Debug)]
pub enum StoreError {
    /// Underlying I/O failure.
    Io(std::io::Error),
    /// The XML being ingested was malformed.
    Xml(XmlError),
    /// The tape bytes violate the FET grammar (bad magic, unknown frame
    /// tag, truncated frame, out-of-range label id, …).
    Corrupt { offset: u64, msg: String },
    /// A recomputed checksum did not match the stored one — the footer's
    /// document hash on a v1 full replay, a close frame's subtree hash on
    /// a v2 read.
    Checksum { expected: u64, found: u64 },
    /// A corpus lookup for an id that is not in the manifest.
    UnknownDoc { id: String },
    /// A document id outside `[A-Za-z0-9._-]` (or starting with `.`).
    BadDocId { id: String },
    /// The corpus manifest file did not parse.
    Manifest { line: usize, msg: String },
}

impl std::fmt::Display for StoreError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            StoreError::Io(e) => write!(f, "{e}"),
            StoreError::Xml(e) => write!(f, "{e}"),
            StoreError::Corrupt { offset, msg } => {
                write!(f, "corrupt FET tape at byte {offset}: {msg}")
            }
            StoreError::Checksum { expected, found } => write!(
                f,
                "tape checksum mismatch: stored {expected:#x}, replay computed {found:#x}"
            ),
            StoreError::UnknownDoc { id } => write!(f, "no document {id:?} in the corpus"),
            StoreError::BadDocId { id } => write!(
                f,
                "invalid document id {id:?} (use [A-Za-z0-9._-], not starting with '.')"
            ),
            StoreError::Manifest { line, msg } => {
                write!(f, "corrupt corpus manifest at line {line}: {msg}")
            }
        }
    }
}

impl std::error::Error for StoreError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            StoreError::Io(e) => Some(e),
            StoreError::Xml(e) => Some(e),
            _ => None,
        }
    }
}

impl From<std::io::Error> for StoreError {
    fn from(e: std::io::Error) -> Self {
        StoreError::Io(e)
    }
}

impl From<XmlError> for StoreError {
    fn from(e: XmlError) -> Self {
        StoreError::Xml(e)
    }
}

impl StoreError {
    /// Render as an [`XmlError`] so a tape can stand in wherever an XML
    /// event source is expected (the [`EventSource`] impl).
    pub fn into_xml(self) -> XmlError {
        match self {
            StoreError::Io(e) => XmlError::Io {
                offset: 0,
                source: e,
            },
            StoreError::Xml(e) => e,
            StoreError::Corrupt { offset, msg } => XmlError::Syntax {
                offset,
                msg: format!("FET tape: {msg}"),
            },
            other => XmlError::Syntax {
                offset: 0,
                msg: format!("FET tape: {other}"),
            },
        }
    }
}

// ---------------------------------------------------------------------------
// Checksum
// ---------------------------------------------------------------------------

/// FNV-1a 64 over event bytes (see the crate docs).
///
/// FET1 folds the whole logical event stream into one running hash. FET2
/// hashes *compositionally*: each node gets a fresh hash seeded with its
/// open event, children fold their truncated hash into the parent as they
/// close, and the footer checksum folds the roots — so a seeking reader
/// can verify exactly the subtrees it decoded.
#[derive(Debug, Clone, Copy)]
pub(crate) struct EventHash(pub(crate) u64);

impl EventHash {
    pub(crate) fn new() -> Self {
        EventHash(0xcbf2_9ce4_8422_2325)
    }

    fn byte(&mut self, b: u8) {
        self.0 = (self.0 ^ u64::from(b)).wrapping_mul(0x100_0000_01b3);
    }

    fn bytes(&mut self, bs: &[u8]) {
        for &b in bs {
            self.byte(b);
        }
    }

    pub(crate) fn open(&mut self, label: &Label) {
        self.byte(if label.is_text() {
            TAG_OPEN_TEXT
        } else {
            TAG_OPEN_ELEM
        });
        self.bytes(label.name.as_bytes());
        self.byte(0xFF);
    }

    pub(crate) fn close(&mut self) {
        self.byte(TAG_CLOSE);
    }

    pub(crate) fn eof(&mut self) {
        self.byte(TAG_EOF);
    }

    /// The low 32 bits — what a v2 close frame stores for its subtree.
    pub(crate) fn trunc32(&self) -> u32 {
        self.0 as u32
    }

    /// Fold a child subtree's stored hash (v2 compositional step).
    pub(crate) fn child(&mut self, trunc: u32) {
        self.bytes(&trunc.to_le_bytes());
    }
}

// ---------------------------------------------------------------------------
// Varints
// ---------------------------------------------------------------------------

pub(crate) fn push_varint(buf: &mut Vec<u8>, mut v: u64) {
    loop {
        let b = (v & 0x7F) as u8;
        v >>= 7;
        if v == 0 {
            buf.push(b);
            return;
        }
        buf.push(b | 0x80);
    }
}

// ---------------------------------------------------------------------------
// Metadata
// ---------------------------------------------------------------------------

/// Footer-level facts about one tape, available without replaying it.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TapeInfo {
    /// Format version (1 or 2).
    pub version: u8,
    /// Open + close events on the tape (`Eof` excluded).
    pub events: u64,
    /// Distinct element names in the label table.
    pub label_count: usize,
    /// Maximum nesting depth of the document.
    pub max_depth: usize,
    /// Bytes of the frame region (header and footer excluded).
    pub tape_bytes: u64,
    /// Total file size.
    pub file_bytes: u64,
    /// Document checksum (v1: FNV-1a 64 of the event stream; v2: FNV-1a 64
    /// folding the roots' subtree hashes).
    pub checksum: u64,
    /// FET2 footer flags ([`FLAG_TEXT_CHILDREN`], [`FLAG_DELTA_OVERFLOW`]);
    /// 0 on v1 tapes.
    pub flags: u8,
    /// Total text payload bytes before compression (v2; 0 on v1).
    pub raw_text_bytes: u64,
    /// Total text payload bytes as stored (v2; 0 on v1).
    pub enc_text_bytes: u64,
    /// Bytes of the footer's skip-index section (v2; 0 on v1).
    pub index_bytes: u64,
    /// Total posting entries across all skip-index lists (v2; 0 on v1).
    pub postings: u64,
}

// ---------------------------------------------------------------------------
// Writer
// ---------------------------------------------------------------------------

/// One not-yet-closed node: where its `close_delta` placeholder sits, the
/// event counter when it opened, and (v2) its compositional hash and
/// label id ([`TEXT_NODE`] for texts).
struct PendingOpen {
    patch_at: u64,
    events_at_open: u64,
    hash: EventHash,
    label_id: u64,
}

/// One label's skip-index list under construction: delta-varint postings
/// of `(open-frame offset, depth, parent label + 1)`.
struct PostingList {
    count: u64,
    last: u64,
    bytes: Vec<u8>,
}

impl PostingList {
    fn new() -> Self {
        PostingList {
            count: 0,
            last: TAPE_START,
            bytes: Vec::new(),
        }
    }

    fn push(&mut self, at: u64, depth: u64, parent_plus1: u64) {
        push_varint(&mut self.bytes, at - self.last);
        push_varint(&mut self.bytes, depth);
        push_varint(&mut self.bytes, parent_plus1);
        self.last = at;
        self.count += 1;
    }
}

/// Streams events onto a FET tape in one pass.
///
/// Memory is O(depth) for the backpatch stack plus a fixed write buffer;
/// the label table and the skip index grow with the *vocabulary* and the
/// *node count*, not the text volume. Feed events with
/// [`TapeWriter::open`] / [`TapeWriter::close`] (the usual sink shape),
/// then call [`TapeWriter::finish`]. [`TapeWriter::new`] writes FET2;
/// [`TapeWriter::new_v1`] writes the legacy format (migration tests,
/// baseline benches).
pub struct TapeWriter<W: Write + Seek> {
    out: W,
    version: u8,
    /// Bytes already written to `out`; `out`'s cursor sits there between
    /// calls.
    flushed: u64,
    /// Unwritten tail of the tape. Backpatches landing here are applied in
    /// memory.
    buf: Vec<u8>,
    stack: Vec<PendingOpen>,
    label_ids: FxHashMap<Arc<str>, u64>,
    label_names: Vec<Arc<str>>,
    /// Per-element-label posting lists, parallel to `label_names` (v2).
    elem_postings: Vec<PostingList>,
    /// Text open frames, partitioned by parent: bucket `p` holds the
    /// texts whose `parent_plus1` is `p` (bucket 0 = forest-root texts).
    /// Partitioning by parent makes the reader's projection exact — a
    /// query selects only the buckets under matched parents instead of
    /// decode-and-discarding every text posting in the document (v2).
    text_postings: Vec<PostingList>,
    events: u64,
    max_depth: usize,
    /// v1: running stream hash. v2: document hash folding root subtrees.
    hash: EventHash,
    flags: u8,
    raw_text_bytes: u64,
    enc_text_bytes: u64,
    enc_scratch: Vec<u8>,
    /// Backpatches that had to seek (telemetry for tests/benches).
    seek_patches: u64,
}

impl<W: Write + Seek> TapeWriter<W> {
    /// Start a FET2 tape on `out` (the header is written immediately).
    pub fn new(out: W) -> Result<Self, StoreError> {
        Self::with_version(out, VERSION)
    }

    /// Start a legacy FET1 tape on `out`.
    pub fn new_v1(out: W) -> Result<Self, StoreError> {
        Self::with_version(out, VERSION_V1)
    }

    fn with_version(mut out: W, version: u8) -> Result<Self, StoreError> {
        out.write_all(if version == VERSION_V1 {
            &MAGIC_V1
        } else {
            &MAGIC
        })?;
        out.write_all(&[version])?;
        out.write_all(&0u64.to_le_bytes())?; // footer_offset placeholder
        Ok(TapeWriter {
            out,
            version,
            flushed: TAPE_START,
            buf: Vec::with_capacity(WRITE_BUF_CAP + 4096),
            stack: Vec::new(),
            label_ids: FxHashMap::default(),
            label_names: Vec::new(),
            elem_postings: Vec::new(),
            text_postings: Vec::new(),
            events: 0,
            max_depth: 0,
            hash: EventHash::new(),
            flags: 0,
            raw_text_bytes: 0,
            enc_text_bytes: 0,
            enc_scratch: Vec::new(),
            seek_patches: 0,
        })
    }

    /// Current absolute write position.
    fn pos(&self) -> u64 {
        self.flushed + self.buf.len() as u64
    }

    fn flush_buf(&mut self) -> Result<(), StoreError> {
        if !self.buf.is_empty() {
            self.out.write_all(&self.buf)?;
            self.flushed += self.buf.len() as u64;
            self.buf.clear();
        }
        Ok(())
    }

    /// Overwrite the 4 placeholder bytes at `at` — in memory when they are
    /// still buffered, by a seek round-trip otherwise. A frame is appended
    /// atomically before any flush, so the field never straddles the
    /// flushed boundary.
    fn patch(&mut self, at: u64, bytes: [u8; 4]) -> Result<(), StoreError> {
        if at >= self.flushed {
            let i = (at - self.flushed) as usize;
            self.buf[i..i + 4].copy_from_slice(&bytes);
        } else {
            self.seek_patches += 1;
            self.out.seek(SeekFrom::Start(at))?;
            self.out.write_all(&bytes)?;
            self.out.seek(SeekFrom::Start(self.flushed))?;
        }
        Ok(())
    }

    fn intern(&mut self, name: &Arc<str>) -> u64 {
        if let Some(&id) = self.label_ids.get(name) {
            return id;
        }
        let id = self.label_names.len() as u64;
        self.label_ids.insert(name.clone(), id);
        self.label_names.push(name.clone());
        if self.version != VERSION_V1 {
            self.elem_postings.push(PostingList::new());
        }
        id
    }

    /// Record an opening event (element or text node).
    pub fn open(&mut self, label: &Label) -> Result<(), StoreError> {
        self.events += 1;
        let frame_at = self.pos();
        let depth = self.stack.len() as u64 + 1;
        let parent_plus1 = match self.stack.last() {
            None => 0,
            Some(p) if p.label_id == TEXT_NODE => {
                // A node under a text node: the index's element-parent
                // pruning would misfire, so flag the tape out of it.
                self.flags |= FLAG_TEXT_CHILDREN;
                0
            }
            Some(p) => p.label_id + 1,
        };
        let mut node_hash = EventHash::new();
        if self.version == VERSION_V1 {
            self.hash.open(label);
        } else {
            node_hash.open(label);
        }
        let label_id = if label.is_text() {
            let raw = label.name.as_bytes();
            self.buf.push(TAG_OPEN_TEXT);
            push_varint(&mut self.buf, raw.len() as u64);
            if self.version == VERSION_V1 {
                self.buf.extend_from_slice(raw);
            } else {
                let bucket = parent_plus1 as usize;
                if self.text_postings.len() <= bucket {
                    self.text_postings.resize_with(bucket + 1, PostingList::new);
                }
                self.text_postings[bucket].push(frame_at, depth, parent_plus1);
                self.raw_text_bytes += raw.len() as u64;
                self.enc_scratch.clear();
                if raw.len() >= MIN_COMPRESS_LEN {
                    lz::compress(raw, &mut self.enc_scratch);
                }
                if !self.enc_scratch.is_empty() && self.enc_scratch.len() < raw.len() {
                    push_varint(&mut self.buf, self.enc_scratch.len() as u64);
                    self.buf.extend_from_slice(&self.enc_scratch);
                    self.enc_text_bytes += self.enc_scratch.len() as u64;
                } else {
                    push_varint(&mut self.buf, raw.len() as u64);
                    self.buf.extend_from_slice(raw);
                    self.enc_text_bytes += raw.len() as u64;
                }
            }
            TEXT_NODE
        } else {
            let id = self.intern(&label.name);
            if self.version != VERSION_V1 {
                self.elem_postings[id as usize].push(frame_at, depth, parent_plus1);
            }
            self.buf.push(TAG_OPEN_ELEM);
            push_varint(&mut self.buf, id);
            id
        };
        let patch_at = self.pos();
        self.buf.extend_from_slice(&[0u8; 4]); // close_delta placeholder
        self.stack.push(PendingOpen {
            patch_at,
            events_at_open: self.events,
            hash: node_hash,
            label_id,
        });
        self.max_depth = self.max_depth.max(self.stack.len());
        if self.buf.len() >= WRITE_BUF_CAP {
            self.flush_buf()?;
        }
        Ok(())
    }

    /// Record the closing event of the most recently opened node.
    pub fn close(&mut self) -> Result<(), StoreError> {
        let open = self.stack.pop().expect("close without matching open");
        self.events += 1;
        let close_tag_at = self.pos();
        let delta64 = close_tag_at - (open.patch_at + 4);
        let delta = u32::try_from(delta64).unwrap_or(DELTA_OVERFLOW);
        if delta == DELTA_OVERFLOW {
            self.flags |= FLAG_DELTA_OVERFLOW;
        }
        self.patch(open.patch_at, delta.to_le_bytes())?;
        let subtree_events = self.events - open.events_at_open + 1;
        self.buf.push(TAG_CLOSE);
        push_varint(&mut self.buf, subtree_events);
        if self.version == VERSION_V1 {
            self.hash.close();
        } else {
            let mut h = open.hash;
            h.close();
            let trunc = h.trunc32();
            self.buf.extend_from_slice(&trunc.to_le_bytes());
            match self.stack.last_mut() {
                Some(parent) => parent.hash.child(trunc),
                None => self.hash.child(trunc),
            }
        }
        if self.buf.len() >= WRITE_BUF_CAP {
            self.flush_buf()?;
        }
        Ok(())
    }

    /// Open/close events recorded so far.
    pub fn events(&self) -> u64 {
        self.events
    }

    /// Backpatches that fell outside the write buffer and cost a seek.
    pub fn seek_patches(&self) -> u64 {
        self.seek_patches
    }

    /// Write the `Eof` frame and the footer, backpatch the header, and
    /// return the underlying writer (cursor at end of file) plus the tape
    /// facts.
    pub fn finish(mut self) -> Result<(W, TapeInfo), StoreError> {
        assert!(self.stack.is_empty(), "finish with unclosed nodes");
        self.buf.push(TAG_EOF);
        self.hash.eof();
        let footer_offset = self.pos();
        push_varint(&mut self.buf, self.label_names.len() as u64);
        for name in &self.label_names {
            push_varint(&mut self.buf, name.len() as u64);
            self.buf.extend_from_slice(name.as_bytes());
        }
        push_varint(&mut self.buf, self.events);
        push_varint(&mut self.buf, self.max_depth as u64);
        let mut index_bytes = 0u64;
        let mut postings = 0u64;
        if self.version != VERSION_V1 {
            self.buf.push(self.flags);
            let index_start = self.pos();
            let lists = std::mem::take(&mut self.elem_postings);
            // Text buckets cover every possible parent_plus1 (0 = forest
            // root, then one per element label), empty or not, so the
            // reader's directory is position-addressable.
            let mut texts = std::mem::take(&mut self.text_postings);
            texts.resize_with(self.label_names.len() + 1, PostingList::new);
            for list in lists.iter().chain(texts.iter()) {
                push_varint(&mut self.buf, list.count);
                push_varint(&mut self.buf, list.bytes.len() as u64);
                self.buf.extend_from_slice(&list.bytes);
                postings += list.count;
            }
            index_bytes = self.pos() - index_start;
            push_varint(&mut self.buf, self.raw_text_bytes);
            push_varint(&mut self.buf, self.enc_text_bytes);
        }
        self.buf.extend_from_slice(&self.hash.0.to_le_bytes());
        self.flush_buf()?;
        self.out.seek(SeekFrom::Start(FOOTER_OFFSET_AT))?;
        self.out.write_all(&footer_offset.to_le_bytes())?;
        self.out.seek(SeekFrom::Start(self.flushed))?;
        self.out.flush()?;
        Ok((
            self.out,
            TapeInfo {
                version: self.version,
                events: self.events,
                label_count: self.label_names.len(),
                max_depth: self.max_depth,
                tape_bytes: footer_offset - TAPE_START,
                file_bytes: self.flushed,
                checksum: self.hash.0,
                flags: self.flags,
                raw_text_bytes: self.raw_text_bytes,
                enc_text_bytes: self.enc_text_bytes,
                index_bytes,
                postings,
            },
        ))
    }
}

/// Parse XML and write it to a FET2 tape in one streaming pass. Returns
/// the tape facts and the number of XML source bytes consumed.
pub fn ingest_xml_to_tape<R: BufRead, W: Write + Seek>(
    xml: R,
    out: W,
) -> Result<(W, TapeInfo, u64), StoreError> {
    ingest_with(xml, TapeWriter::new(out)?)
}

/// Like [`ingest_xml_to_tape`] but writing the legacy FET1 format — the
/// migration-equivalence and perf-baseline counterpart.
pub fn ingest_xml_to_tape_v1<R: BufRead, W: Write + Seek>(
    xml: R,
    out: W,
) -> Result<(W, TapeInfo, u64), StoreError> {
    ingest_with(xml, TapeWriter::new_v1(out)?)
}

fn ingest_with<R: BufRead, W: Write + Seek>(
    xml: R,
    mut writer: TapeWriter<W>,
) -> Result<(W, TapeInfo, u64), StoreError> {
    let mut counted = CountingRead { inner: xml, n: 0 };
    let mut parser = XmlReader::new(&mut counted);
    loop {
        match parser.next_event()? {
            XmlEvent::Open(label) => writer.open(&label)?,
            XmlEvent::Close(_) => writer.close()?,
            XmlEvent::Eof => break,
        }
    }
    let (out, info) = writer.finish()?;
    Ok((out, info, counted.n))
}

/// Counts consumed bytes of a `BufRead` (the XML source size of an ingest).
struct CountingRead<R> {
    inner: R,
    n: u64,
}

impl<R: BufRead> Read for CountingRead<R> {
    fn read(&mut self, buf: &mut [u8]) -> std::io::Result<usize> {
        let got = self.inner.read(buf)?;
        self.n += got as u64;
        Ok(got)
    }
}

impl<R: BufRead> BufRead for CountingRead<R> {
    fn fill_buf(&mut self) -> std::io::Result<&[u8]> {
        self.inner.fill_buf()
    }

    fn consume(&mut self, amt: usize) {
        self.n += amt as u64;
        self.inner.consume(amt);
    }
}

// ---------------------------------------------------------------------------
// Reader
// ---------------------------------------------------------------------------

/// What [`TapeReader::skip_subtree`] jumped over.
#[derive(Debug, Clone, Copy)]
pub struct SkippedSubtree {
    /// Open + close events of the subtree, its own open and close included.
    pub events: u64,
    /// Tape bytes that were never decoded.
    pub bytes: u64,
}

/// Seek target of the most recently returned open event.
#[derive(Debug, Clone, Copy)]
struct SkipHandle {
    close_at: u64,
}

/// One open node on the reader's stack: its label and (v2) the
/// compositional hash accumulated so far.
struct OpenNode {
    label: Label,
    hash: EventHash,
}

/// Location of one posting list inside a FET2 footer.
#[derive(Debug, Clone, Copy)]
pub struct PostingDirEntry {
    /// Number of posting entries in the list.
    pub count: u64,
    /// Absolute file offset of the list's first posting byte.
    pub offset: u64,
    /// Encoded length of the list in bytes.
    pub bytes: u64,
}

/// Replays a FET tape as parse events, without re-tokenizing any XML.
///
/// After an `Open` event, [`TapeReader::skippable`] tells whether the
/// subtree can be seeked over ([`TapeReader::skip_subtree`]); drivers use
/// that to honor a label prefilter in O(1) per pruned subtree. On v1
/// tapes, a replay that never seeks verifies the footer checksum at
/// `Eof`; on v2 tapes every decoded subtree is verified against its close
/// frame's stored hash — seeks included, because a skipped child's stored
/// hash is folded into its parent.
pub struct TapeReader<R> {
    pub(crate) input: R,
    /// Absolute offset of the next unread byte.
    pub(crate) offset: u64,
    pub(crate) footer_offset: u64,
    pub(crate) labels: Vec<Label>,
    pub(crate) info: TapeInfo,
    /// FET2 skip index: one entry per element label (label-id order), then
    /// the text-node list. Empty on v1 tapes.
    pub(crate) postings_dir: Vec<PostingDirEntry>,
    open_stack: Vec<OpenNode>,
    last_open: Option<SkipHandle>,
    events_read: u64,
    seek_skipped_events: u64,
    seek_skipped_bytes: u64,
    seek_micros: u64,
    hash: EventHash,
    /// v1 only: cleared on the first seek (a partial v1 replay cannot
    /// checksum). v2 replays always verify.
    verify: bool,
    finished: bool,
}

impl TapeReader<TapeInput> {
    /// Open a tape file, memory-mapping it when possible (see
    /// [`TapeInput::open`]).
    pub fn open_file(path: &Path) -> Result<Self, StoreError> {
        TapeReader::new(TapeInput::open(std::fs::File::open(path)?))
    }
}

impl TapeReader<std::io::BufReader<std::fs::File>> {
    /// Open a tape file through plain buffered I/O, bypassing the memory
    /// map (baseline benches; callers that must not map).
    pub fn open_file_buffered(path: &Path) -> Result<Self, StoreError> {
        TapeReader::new(std::io::BufReader::new(std::fs::File::open(path)?))
    }
}

impl<R: BufRead + Seek> TapeReader<R> {
    /// Validate the header, load the footer (label table, counts, skip
    /// index directory, checksum), and position the reader at the first
    /// frame.
    pub fn new(mut input: R) -> Result<Self, StoreError> {
        let file_bytes = input.seek(SeekFrom::End(0))?;
        input.seek(SeekFrom::Start(0))?;
        let mut head = [0u8; 13];
        read_exact_at(&mut input, &mut head, 0)?;
        let version = if head[..4] == MAGIC_V1 {
            VERSION_V1
        } else if head[..4] == MAGIC {
            VERSION
        } else {
            return Err(StoreError::Corrupt {
                offset: 0,
                msg: "bad magic (not a FET tape)".into(),
            });
        };
        if head[4] != version {
            return Err(StoreError::Corrupt {
                offset: 4,
                msg: format!(
                    "version byte {} contradicts the {} magic",
                    head[4],
                    if version == VERSION_V1 {
                        "FET1"
                    } else {
                        "FET2"
                    }
                ),
            });
        }
        let footer_offset = u64::from_le_bytes(head[5..13].try_into().unwrap());
        if footer_offset < TAPE_START || footer_offset >= file_bytes {
            return Err(StoreError::Corrupt {
                offset: FOOTER_OFFSET_AT,
                msg: format!("footer offset {footer_offset} outside the file ({file_bytes} bytes)"),
            });
        }
        input.seek(SeekFrom::Start(footer_offset))?;
        let mut at = footer_offset;
        let label_count = read_varint(&mut input, &mut at)?;
        if label_count > MAX_LABELS {
            return Err(StoreError::Corrupt {
                offset: at,
                msg: format!("implausible label count {label_count}"),
            });
        }
        let mut labels = Vec::with_capacity(label_count as usize);
        for _ in 0..label_count {
            let len = read_varint(&mut input, &mut at)?;
            if len > MAX_NAME_LEN {
                return Err(StoreError::Corrupt {
                    offset: at,
                    msg: format!("implausible label length {len}"),
                });
            }
            let mut name = vec![0u8; len as usize];
            read_exact_at(&mut input, &mut name, at)?;
            at += len;
            let name = String::from_utf8(name).map_err(|_| StoreError::Corrupt {
                offset: at,
                msg: "label table entry is not UTF-8".into(),
            })?;
            labels.push(Label::elem(name));
        }
        let events = read_varint(&mut input, &mut at)?;
        let max_depth = read_varint(&mut input, &mut at)?;
        let mut flags = 0u8;
        let mut postings_dir = Vec::new();
        let mut raw_text_bytes = 0;
        let mut enc_text_bytes = 0;
        let mut index_bytes = 0;
        let mut postings = 0;
        if version != VERSION_V1 {
            let mut b = [0u8];
            read_exact_at(&mut input, &mut b, at)?;
            at += 1;
            flags = b[0];
            if flags & !KNOWN_FLAGS != 0 {
                return Err(StoreError::Corrupt {
                    offset: at - 1,
                    msg: format!("unknown footer flags {flags:#04x}"),
                });
            }
            let index_start = at;
            // One list per element label, then one text bucket per
            // possible parent: the forest root, then each element label.
            postings_dir.reserve(2 * labels.len() + 1);
            for _ in 0..2 * labels.len() + 1 {
                let count = read_varint(&mut input, &mut at)?;
                let len = read_varint(&mut input, &mut at)?;
                if count > events || len > file_bytes.saturating_sub(at) {
                    return Err(StoreError::Corrupt {
                        offset: at,
                        msg: format!("implausible posting list ({count} entries, {len} bytes)"),
                    });
                }
                postings_dir.push(PostingDirEntry {
                    count,
                    offset: at,
                    bytes: len,
                });
                postings += count;
                input.seek(SeekFrom::Start(at + len))?;
                at += len;
            }
            index_bytes = at - index_start;
            raw_text_bytes = read_varint(&mut input, &mut at)?;
            enc_text_bytes = read_varint(&mut input, &mut at)?;
        }
        let mut sum = [0u8; 8];
        read_exact_at(&mut input, &mut sum, at)?;
        let checksum = u64::from_le_bytes(sum);
        input.seek(SeekFrom::Start(TAPE_START))?;
        let label_count = labels.len();
        Ok(TapeReader {
            input,
            offset: TAPE_START,
            footer_offset,
            labels,
            info: TapeInfo {
                version,
                events,
                label_count,
                max_depth: max_depth as usize,
                tape_bytes: footer_offset - TAPE_START,
                file_bytes,
                checksum,
                flags,
                raw_text_bytes,
                enc_text_bytes,
                index_bytes,
                postings,
            },
            postings_dir,
            open_stack: Vec::new(),
            last_open: None,
            events_read: 0,
            seek_skipped_events: 0,
            seek_skipped_bytes: 0,
            seek_micros: 0,
            hash: EventHash::new(),
            verify: true,
            finished: false,
        })
    }

    /// Footer-level facts (no replay needed).
    pub fn info(&self) -> &TapeInfo {
        &self.info
    }

    /// The interned element names, in label-id order.
    pub fn labels(&self) -> &[Label] {
        &self.labels
    }

    /// The FET2 skip-index directory: one list per element label in
    /// label-id order, then the text-node buckets — one per possible
    /// parent, forest root first, then each element label in id order
    /// (entry `labels.len() + 1 + id` holds the texts under label `id`).
    /// Empty on v1 tapes.
    pub fn posting_dir(&self) -> &[PostingDirEntry] {
        &self.postings_dir
    }

    /// Whether this tape supports the index-driven read path: a FET2 tape
    /// with no disabling flags.
    pub fn index_usable(&self) -> bool {
        self.info.version != VERSION_V1 && self.info.flags & KNOWN_FLAGS == 0
    }

    /// Open/close events returned so far (skipped subtrees excluded, except
    /// for their already-returned open event).
    pub fn events_read(&self) -> u64 {
        self.events_read
    }

    /// Events jumped over by [`TapeReader::skip_subtree`] so far.
    pub fn seek_skipped_events(&self) -> u64 {
        self.seek_skipped_events
    }

    /// Tape bytes jumped over (never decoded) so far.
    pub fn seek_skipped_bytes(&self) -> u64 {
        self.seek_skipped_bytes
    }

    /// Wall time spent inside [`TapeReader::skip_subtree`] so far, in
    /// microseconds. Together with the replay time measured by the
    /// driver, this splits tape cost into "decoding" vs. "seeking".
    pub fn seek_micros(&self) -> u64 {
        self.seek_micros
    }

    fn corrupt<T>(&self, msg: impl Into<String>) -> Result<T, StoreError> {
        Err(StoreError::Corrupt {
            offset: self.offset,
            msg: msg.into(),
        })
    }

    fn read_u8(&mut self) -> Result<u8, StoreError> {
        let mut b = [0u8];
        read_exact_at(&mut self.input, &mut b, self.offset)?;
        self.offset += 1;
        Ok(b[0])
    }

    fn read_varint_here(&mut self) -> Result<u64, StoreError> {
        read_varint(&mut self.input, &mut self.offset)
    }

    /// Read a v2 text frame's payload (after the two length varints),
    /// decompressing when stored compressed.
    pub(crate) fn read_text_payload(
        &mut self,
        raw_len: u64,
        enc_len: u64,
    ) -> Result<Vec<u8>, StoreError> {
        if enc_len > self.footer_offset.saturating_sub(self.offset) {
            return self.corrupt(format!(
                "text encoding ({enc_len} bytes) runs past the tape"
            ));
        }
        if raw_len > enc_len.saturating_mul(MAX_EXPANSION) {
            return self.corrupt(format!(
                "implausible text expansion ({enc_len} encoded bytes claim {raw_len} raw)"
            ));
        }
        if raw_len < enc_len {
            return self.corrupt(format!(
                "text encoding ({enc_len} bytes) longer than its payload ({raw_len})"
            ));
        }
        let mut enc = vec![0u8; enc_len as usize];
        read_exact_at(&mut self.input, &mut enc, self.offset)?;
        self.offset += enc_len;
        if enc_len == raw_len {
            return Ok(enc); // stored raw
        }
        match lz::decompress(&enc, raw_len as usize) {
            Some(raw) => Ok(raw),
            None => self.corrupt("text payload fails to decompress"),
        }
    }

    /// Fold a closed (or skipped) child subtree's stored hash into its
    /// parent — or into the document hash for a root (v2).
    fn fold_child(&mut self, trunc: u32) {
        match self.open_stack.last_mut() {
            Some(parent) => parent.hash.child(trunc),
            None => self.hash.child(trunc),
        }
    }

    /// Pull the next event. After `Eof`, keeps returning `Eof`.
    pub fn next_event(&mut self) -> Result<XmlEvent, StoreError> {
        self.last_open = None;
        if self.finished {
            return Ok(XmlEvent::Eof);
        }
        match self.read_u8()? {
            TAG_OPEN_ELEM => {
                let id = self.read_varint_here()?;
                let Some(label) = self.labels.get(id as usize).cloned() else {
                    return self.corrupt(format!(
                        "label id {id} out of range ({} in table)",
                        self.labels.len()
                    ));
                };
                self.finish_open(label.clone())?;
                Ok(XmlEvent::Open(label))
            }
            TAG_OPEN_TEXT => {
                let len = self.read_varint_here()?;
                let content = if self.info.version == VERSION_V1 {
                    // Guard the allocation below against corrupt lengths;
                    // the saturating form stays correct even for a length
                    // varint near u64::MAX (the plain add would wrap past
                    // the check).
                    if len > self.footer_offset.saturating_sub(self.offset) {
                        return self.corrupt(format!("text length {len} runs past the tape"));
                    }
                    let mut content = vec![0u8; len as usize];
                    read_exact_at(&mut self.input, &mut content, self.offset)?;
                    self.offset += len;
                    content
                } else {
                    let enc_len = self.read_varint_here()?;
                    self.read_text_payload(len, enc_len)?
                };
                let Ok(content) = String::from_utf8(content) else {
                    return self.corrupt("text payload is not UTF-8");
                };
                let label = Label::text(content);
                self.finish_open(label.clone())?;
                Ok(XmlEvent::Open(label))
            }
            TAG_CLOSE => {
                let _subtree_events = self.read_varint_here()?;
                let stored = if self.info.version == VERSION_V1 {
                    0
                } else {
                    let mut b = [0u8; 4];
                    read_exact_at(&mut self.input, &mut b, self.offset)?;
                    self.offset += 4;
                    u32::from_le_bytes(b)
                };
                let Some(node) = self.open_stack.pop() else {
                    return self.corrupt("close frame without an open node");
                };
                if self.info.version == VERSION_V1 {
                    self.hash.close();
                } else {
                    let mut h = node.hash;
                    h.close();
                    let computed = h.trunc32();
                    if self.verify && computed != stored {
                        return Err(StoreError::Checksum {
                            expected: u64::from(stored),
                            found: u64::from(computed),
                        });
                    }
                    self.fold_child(stored);
                }
                self.events_read += 1;
                Ok(XmlEvent::Close(node.label))
            }
            TAG_EOF => {
                if !self.open_stack.is_empty() {
                    return self.corrupt(format!(
                        "tape ended with {} unclosed node(s)",
                        self.open_stack.len()
                    ));
                }
                if self.offset != self.footer_offset {
                    return self.corrupt("Eof frame does not sit at the footer boundary");
                }
                self.hash.eof();
                self.finished = true;
                if self.verify && self.hash.0 != self.info.checksum {
                    return Err(StoreError::Checksum {
                        expected: self.info.checksum,
                        found: self.hash.0,
                    });
                }
                Ok(XmlEvent::Eof)
            }
            tag => self.corrupt(format!("unknown frame tag {tag:#04x}")),
        }
    }

    /// Shared tail of both open frames: read the `close_delta`, arm the
    /// skip handle, account the event.
    fn finish_open(&mut self, label: Label) -> Result<(), StoreError> {
        let mut delta = [0u8; 4];
        read_exact_at(&mut self.input, &mut delta, self.offset)?;
        self.offset += 4;
        let delta = u32::from_le_bytes(delta);
        if delta != DELTA_OVERFLOW {
            let close_at = self.offset + u64::from(delta);
            if close_at >= self.footer_offset {
                return self.corrupt(format!("close offset {close_at} runs past the tape"));
            }
            self.last_open = Some(SkipHandle { close_at });
        }
        let mut node_hash = EventHash::new();
        if self.info.version == VERSION_V1 {
            self.hash.open(&label);
        } else {
            node_hash.open(&label);
        }
        self.open_stack.push(OpenNode {
            label,
            hash: node_hash,
        });
        self.events_read += 1;
        Ok(())
    }

    /// Whether the event just returned was an `Open` whose subtree can be
    /// seeked over (its close offset is recorded and did not overflow).
    pub fn skippable(&self) -> bool {
        self.last_open.is_some()
    }

    /// Seek over the subtree of the most recently returned `Open` event,
    /// consuming its close frame. The opens and closes in between are never
    /// decoded. Panics if [`TapeReader::skippable`] is false.
    ///
    /// On v2 tapes the skipped subtree's stored hash is folded into its
    /// parent, so verification of everything *around* the skip — including
    /// the footer's document hash at `Eof` — survives. On v1 tapes the
    /// first skip disables verification.
    pub fn skip_subtree(&mut self) -> Result<SkippedSubtree, StoreError> {
        let start = std::time::Instant::now();
        let handle = self
            .last_open
            .take()
            .expect("skip_subtree without a skippable open event");
        let bytes = handle.close_at - self.offset;
        self.input.seek(SeekFrom::Start(handle.close_at))?;
        self.offset = handle.close_at;
        match self.read_u8()? {
            TAG_CLOSE => {}
            tag => {
                return self.corrupt(format!(
                    "close offset does not point at a close frame (tag {tag:#04x})"
                ))
            }
        }
        let events = self.read_varint_here()?;
        if self.info.version == VERSION_V1 {
            self.verify = false;
        } else {
            let mut b = [0u8; 4];
            read_exact_at(&mut self.input, &mut b, self.offset)?;
            self.offset += 4;
            let stored = u32::from_le_bytes(b);
            self.open_stack.pop().expect("skip with empty open stack");
            self.fold_child(stored);
        }
        if self.info.version == VERSION_V1 {
            self.open_stack.pop().expect("skip with empty open stack");
        }
        self.seek_skipped_events += events;
        self.seek_skipped_bytes += bytes;
        self.seek_micros += start.elapsed().as_micros().min(u64::MAX as u128) as u64;
        Ok(SkippedSubtree { events, bytes })
    }
}

impl<R: BufRead + Seek> EventSource for TapeReader<R> {
    fn next_event(&mut self) -> Result<XmlEvent, XmlError> {
        TapeReader::next_event(self).map_err(StoreError::into_xml)
    }

    fn events_read(&self) -> u64 {
        self.events_read
    }
}

/// Read a tape file's footer facts without replaying it.
pub fn inspect(path: &Path) -> Result<TapeInfo, StoreError> {
    Ok(*TapeReader::open_file(path)?.info())
}

// ---------------------------------------------------------------------------
// Low-level read helpers
// ---------------------------------------------------------------------------

/// `read_exact` that reports truncation as [`StoreError::Corrupt`] at the
/// given offset (a tape that ends mid-frame is corrupt, not "EOF").
pub(crate) fn read_exact_at<R: Read>(
    input: &mut R,
    buf: &mut [u8],
    at: u64,
) -> Result<(), StoreError> {
    input.read_exact(buf).map_err(|e| {
        if e.kind() == std::io::ErrorKind::UnexpectedEof {
            StoreError::Corrupt {
                offset: at,
                msg: "tape truncated mid-frame".into(),
            }
        } else {
            StoreError::Io(e)
        }
    })
}

/// LEB128 decode, advancing `at` by the bytes consumed.
pub(crate) fn read_varint<R: Read>(input: &mut R, at: &mut u64) -> Result<u64, StoreError> {
    let mut value = 0u64;
    let mut shift = 0u32;
    loop {
        let mut b = [0u8];
        read_exact_at(input, &mut b, *at)?;
        *at += 1;
        let b = b[0];
        if shift >= 63 && b > 1 {
            return Err(StoreError::Corrupt {
                offset: *at,
                msg: "varint overflows u64".into(),
            });
        }
        value |= u64::from(b & 0x7F) << shift;
        if b & 0x80 == 0 {
            return Ok(value);
        }
        shift += 7;
        if shift > 63 {
            return Err(StoreError::Corrupt {
                offset: *at,
                msg: "varint longer than 10 bytes".into(),
            });
        }
    }
}

/// Decode one varint from a byte slice at `i`, advancing it. The slice
/// counterpart of [`read_varint`] for posting-list decoding.
pub(crate) fn slice_varint(bytes: &[u8], i: &mut usize) -> Option<u64> {
    let mut value = 0u64;
    let mut shift = 0u32;
    loop {
        let b = *bytes.get(*i)?;
        *i += 1;
        if shift >= 63 && b > 1 {
            return None;
        }
        value |= u64::from(b & 0x7F) << shift;
        if b & 0x80 == 0 {
            return Some(value);
        }
        shift += 7;
        if shift > 63 {
            return None;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Cursor;

    fn tape_of(xml: &str) -> (Vec<u8>, TapeInfo) {
        let (out, info, _src) =
            ingest_xml_to_tape(xml.as_bytes(), Cursor::new(Vec::new())).unwrap();
        (out.into_inner(), info)
    }

    fn tape_of_v1(xml: &str) -> (Vec<u8>, TapeInfo) {
        let (out, info, _src) =
            ingest_xml_to_tape_v1(xml.as_bytes(), Cursor::new(Vec::new())).unwrap();
        (out.into_inner(), info)
    }

    fn replay(bytes: Vec<u8>) -> Vec<XmlEvent> {
        let mut r = TapeReader::new(Cursor::new(bytes)).unwrap();
        let mut out = Vec::new();
        loop {
            let ev = r.next_event().unwrap();
            let done = ev == XmlEvent::Eof;
            out.push(ev);
            if done {
                return out;
            }
        }
    }

    fn parse_events(xml: &str) -> Vec<XmlEvent> {
        let mut r = XmlReader::new(xml.as_bytes());
        let mut out = Vec::new();
        loop {
            let ev = r.next_event().unwrap();
            let done = ev == XmlEvent::Eof;
            out.push(ev);
            if done {
                return out;
            }
        }
    }

    #[test]
    fn roundtrip_equals_direct_parse() {
        let xml = r#"<site><a x="1">hi &amp; ho</a><b/><c><d>deep</d></c></site>"#;
        assert_eq!(replay(tape_of(xml).0), parse_events(xml));
        assert_eq!(replay(tape_of_v1(xml).0), parse_events(xml));
    }

    #[test]
    fn long_repetitive_text_is_stored_compressed_and_replays_exactly() {
        let text = "north north-east east south-east south ".repeat(60);
        let xml = format!("<a><b>{text}</b><c>{text}</c></a>");
        let (bytes, info) = tape_of(&xml);
        assert_eq!(info.raw_text_bytes, 2 * text.len() as u64);
        assert!(
            info.enc_text_bytes * 3 < info.raw_text_bytes,
            "repetitive text should compress ≥3×: raw {} enc {}",
            info.raw_text_bytes,
            info.enc_text_bytes
        );
        assert_eq!(replay(bytes), parse_events(&xml));
    }

    #[test]
    fn info_reports_footer_facts() {
        let (bytes, info) = tape_of("<a><b>t</b><b>u</b></a>");
        assert_eq!(info.events, 10); // a, b, "t", b, "u": 5 opens + 5 closes
        let r = TapeReader::new(Cursor::new(bytes)).unwrap();
        assert_eq!(r.info(), &info);
        assert_eq!(info.label_count, 2); // a, b interned once each
        assert_eq!(info.max_depth, 3); // a > b > text
        assert!(info.tape_bytes > 0);
        assert_eq!(info.version, VERSION);
        assert_eq!(info.flags, 0);
        assert_eq!(info.postings, 5); // one posting per open frame
        assert!(info.index_bytes > 0);
        // Directory: element lists for a (1 posting) and b (2), then text
        // buckets by parent — root (0), under a (0), under b (2).
        let dir = r.posting_dir();
        assert_eq!(dir.len(), 5);
        assert_eq!(dir[0].count, 1);
        assert_eq!(dir[1].count, 2);
        assert_eq!(dir[2].count, 0);
        assert_eq!(dir[3].count, 0);
        assert_eq!(dir[4].count, 2);
        assert!(r.index_usable());
    }

    #[test]
    fn v1_tapes_still_read_and_report_their_version() {
        let (bytes, info) = tape_of_v1("<a><b>t</b><b>u</b></a>");
        assert_eq!(info.version, VERSION_V1);
        assert_eq!(info.postings, 0);
        assert_eq!(info.index_bytes, 0);
        let r = TapeReader::new(Cursor::new(bytes)).unwrap();
        assert_eq!(r.info(), &info);
        assert!(r.posting_dir().is_empty());
        assert!(!r.index_usable());
    }

    #[test]
    fn skip_subtree_jumps_to_the_close() {
        let xml = "<r><junk><x>1</x><y>2</y></junk><keep>3</keep></r>";
        for (bytes, _) in [tape_of(xml), tape_of_v1(xml)] {
            let mut r = TapeReader::new(Cursor::new(bytes)).unwrap();
            assert_eq!(r.next_event().unwrap(), XmlEvent::Open(Label::elem("r")));
            assert_eq!(r.next_event().unwrap(), XmlEvent::Open(Label::elem("junk")));
            assert!(r.skippable());
            let skipped = r.skip_subtree().unwrap();
            // junk + x + "1" + y + "2": 5 opens + 5 closes.
            assert_eq!(skipped.events, 10);
            assert!(skipped.bytes > 0);
            assert_eq!(r.seek_skipped_bytes(), skipped.bytes);
            // The replay resumes exactly after </junk>.
            assert_eq!(r.next_event().unwrap(), XmlEvent::Open(Label::elem("keep")));
            assert_eq!(r.next_event().unwrap(), XmlEvent::Open(Label::text("3")));
            assert_eq!(r.next_event().unwrap(), XmlEvent::Close(Label::text("3")));
            assert_eq!(
                r.next_event().unwrap(),
                XmlEvent::Close(Label::elem("keep"))
            );
            assert_eq!(r.next_event().unwrap(), XmlEvent::Close(Label::elem("r")));
            assert_eq!(r.next_event().unwrap(), XmlEvent::Eof);
            assert_eq!(r.next_event().unwrap(), XmlEvent::Eof); // sticky
        }
    }

    #[test]
    fn corrupt_magic_is_rejected() {
        let (mut bytes, _) = tape_of("<a/>");
        bytes[0] = b'X';
        assert!(matches!(
            TapeReader::new(Cursor::new(bytes)),
            Err(StoreError::Corrupt { offset: 0, .. })
        ));
    }

    #[test]
    fn flipped_text_byte_fails_the_checksum() {
        // v1: detected at Eof against the footer's stream hash.
        let xml = "<a>checksum-me</a>";
        let (mut bytes, info) = tape_of_v1(xml);
        let pos = bytes
            .windows(b"checksum-me".len())
            .position(|w| w == b"checksum-me")
            .unwrap();
        bytes[pos] ^= 0x20;
        let mut r = TapeReader::new(Cursor::new(bytes)).unwrap();
        let err = loop {
            match r.next_event() {
                Ok(XmlEvent::Eof) => panic!("corruption not detected"),
                Ok(_) => continue,
                Err(e) => break e,
            }
        };
        match err {
            StoreError::Checksum { expected, .. } => assert_eq!(expected, info.checksum),
            other => panic!("expected Checksum, got {other:?}"),
        }
    }

    #[test]
    fn v2_flipped_text_byte_fails_at_the_nodes_close() {
        // v2: detected locally, at the corrupted node's close frame — long
        // before Eof. ("checksum-me" is < 16 bytes, so it is stored raw and
        // the flip corrupts content, not the compression framing.)
        let (mut bytes, _) = tape_of("<a>checksum-me<b>fine</b></a>");
        let pos = bytes
            .windows(b"checksum-me".len())
            .position(|w| w == b"checksum-me")
            .unwrap();
        bytes[pos] ^= 0x20;
        let mut r = TapeReader::new(Cursor::new(bytes)).unwrap();
        assert_eq!(r.next_event().unwrap(), XmlEvent::Open(Label::elem("a")));
        assert!(matches!(
            r.next_event(),
            Ok(XmlEvent::Open(l)) if l.is_text()
        ));
        // The very next event is the text node's close: mismatch here.
        assert!(matches!(r.next_event(), Err(StoreError::Checksum { .. })));
    }

    #[test]
    fn truncated_tape_is_corrupt() {
        let (bytes, _) = tape_of("<a><b>some text here</b></a>");
        let cut = bytes.len() / 2;
        match TapeReader::new(Cursor::new(bytes[..cut].to_vec())) {
            // Either the footer offset now points outside the file (header
            // check) or the footer read hits EOF — both are Corrupt.
            Err(StoreError::Corrupt { .. }) => {}
            other => panic!("expected Corrupt, got {:?}", other.map(|_| "reader")),
        }
    }

    #[test]
    fn writer_backpatches_across_the_flush_boundary() {
        // A root holding enough children to overflow the write buffer: its
        // close_delta must be patched with a seek, and the replay must
        // still be exact.
        let n = 40_000; // ~ (tag+id+4)·2·n bytes ≫ WRITE_BUF_CAP
        let mut xml = String::from("<r>");
        for i in 0..n {
            xml.push_str(&format!("<c>{i}</c>"));
        }
        xml.push_str("</r>");
        let (out, info, _) = ingest_xml_to_tape(xml.as_bytes(), Cursor::new(Vec::new())).unwrap();
        assert_eq!(info.events, (2 * n as u64 + 1) * 2);
        let bytes = out.into_inner();
        let mut r = TapeReader::new(Cursor::new(bytes)).unwrap();
        assert_eq!(r.next_event().unwrap(), XmlEvent::Open(Label::elem("r")));
        assert!(r.skippable(), "root close offset not backpatched");
        let skipped = r.skip_subtree().unwrap();
        assert_eq!(skipped.events, info.events);
        // v2: the skip folded the root's stored hash, so Eof still
        // verifies the document hash.
        assert_eq!(r.next_event().unwrap(), XmlEvent::Eof);
    }

    #[test]
    fn text_children_set_the_index_disabling_flag() {
        // XML cannot nest under a text node, but hand-built forests can;
        // such tapes must opt out of the index path.
        let mut w = TapeWriter::new(Cursor::new(Vec::new())).unwrap();
        w.open(&Label::text("parent")).unwrap();
        w.open(&Label::elem("child")).unwrap();
        w.close().unwrap();
        w.close().unwrap();
        let (out, info) = w.finish().unwrap();
        assert_eq!(info.flags & FLAG_TEXT_CHILDREN, FLAG_TEXT_CHILDREN);
        let r = TapeReader::new(Cursor::new(out.into_inner())).unwrap();
        assert!(!r.index_usable());
    }

    #[test]
    fn huge_text_length_varint_is_corrupt_not_a_panic() {
        // A hand-crafted v1 tape whose single frame claims a text payload
        // of u64::MAX bytes: the bounds check must not wrap into accepting
        // it (release builds would then die on a capacity-overflow alloc).
        let mut bytes = Vec::new();
        bytes.extend_from_slice(&MAGIC_V1);
        bytes.push(VERSION_V1);
        bytes.extend_from_slice(&24u64.to_le_bytes()); // footer right after
        bytes.push(TAG_OPEN_TEXT);
        bytes.extend_from_slice(&[0xFF; 9]); // LEB128 u64::MAX …
        bytes.push(0x01); // … final byte
        bytes.extend_from_slice(&[0x00, 0x00, 0x00]); // footer: 0 labels/events/depth
        bytes.extend_from_slice(&0u64.to_le_bytes()); // checksum
        let mut r = TapeReader::new(Cursor::new(bytes)).unwrap();
        assert!(matches!(r.next_event(), Err(StoreError::Corrupt { .. })));
    }

    #[test]
    fn huge_raw_len_on_a_tiny_encoding_is_corrupt_not_an_alloc() {
        // A hand-built v2 text frame claiming a terabyte raw length for a
        // few encoded bytes must be rejected by the expansion bound before
        // allocating anything.
        let mut evil = Vec::new();
        evil.extend_from_slice(&MAGIC);
        evil.push(VERSION);
        evil.extend_from_slice(&0u64.to_le_bytes());
        evil.push(TAG_OPEN_TEXT);
        push_varint(&mut evil, 1 << 40); // raw_len: a terabyte
        push_varint(&mut evil, 4); // enc_len: four bytes
        evil.extend_from_slice(b"abcd");
        evil.extend_from_slice(&[0u8; 4]); // close_delta
        evil.push(TAG_EOF);
        let footer_offset = evil.len() as u64; // footer starts after Eof
        evil[5..13].copy_from_slice(&footer_offset.to_le_bytes());
        push_varint(&mut evil, 0); // labels
        push_varint(&mut evil, 2); // events
        push_varint(&mut evil, 1); // max_depth
        evil.push(0); // flags
        push_varint(&mut evil, 1); // root text bucket (the only list): 1 posting …
        push_varint(&mut evil, 3);
        evil.extend_from_slice(&[0, 1, 0]); // … delta 0, depth 1, root
        push_varint(&mut evil, 1 << 40); // raw_text_bytes
        push_varint(&mut evil, 4); // enc_text_bytes
        evil.extend_from_slice(&0u64.to_le_bytes()); // checksum
        let mut r = TapeReader::new(Cursor::new(evil)).unwrap();
        match r.next_event() {
            Err(StoreError::Corrupt { msg, .. }) => {
                assert!(msg.contains("expansion"), "wrong rejection: {msg}")
            }
            other => panic!("expected Corrupt, got {other:?}"),
        }
    }

    #[test]
    fn varint_roundtrip() {
        for v in [0u64, 1, 127, 128, 300, u32::MAX as u64, u64::MAX] {
            let mut buf = Vec::new();
            push_varint(&mut buf, v);
            let mut at = 0u64;
            assert_eq!(read_varint(&mut &buf[..], &mut at).unwrap(), v);
            assert_eq!(at, buf.len() as u64);
            let mut i = 0usize;
            assert_eq!(slice_varint(&buf, &mut i), Some(v));
            assert_eq!(i, buf.len());
        }
        assert_eq!(slice_varint(&[0x80], &mut 0), None); // truncated
    }
}
