//! MinXQuery frontend: AST, parser, and ground-truth evaluator.
//!
//! MinXQuery is the downward navigational XQuery fragment of §2.1 of the
//! paper: nested `for`/`let`, element constructors, XPath with `child`,
//! `descendant` and `following-sibling` axes, and predicates that test path
//! existence, emptiness, or compare against string constants. There are no
//! where-clauses, joins, order-by, or recursive functions.
//!
//! * [`ast`] — the syntax tree (Figure 2) with a printing round-trip;
//! * [`parser`] — recursive-descent parser ([`parse_query`]);
//! * [`eval`] — reference semantics on an indexed DOM ([`eval_query`]).

pub mod ast;
pub mod eval;
pub mod parser;

pub use ast::{Axis, NodeTest, Path, Pred, Query, RelPath, Step};
pub use eval::{eval_query, Doc, XqRunError};
pub use parser::{parse_query, XqSyntaxError};
