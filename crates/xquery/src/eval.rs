//! Ground-truth in-memory evaluator for MinXQuery.
//!
//! This is the reference semantics `[[P]]` every other engine (translated
//! MFTs, the streaming machine, the GCX-style baseline) is tested against.
//! It indexes the document in preorder (so `descendant` is a contiguous
//! range) and evaluates paths step by step with XPath node-set semantics:
//! document order, no duplicates, existential predicates.

use crate::ast::{Axis, NodeTest, Path, Pred, Query, RelPath, Step};
use foxq_forest::{Forest, Label, NodeKind, Tree};
use std::rc::Rc;

/// Runtime error of the evaluator.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum XqRunError {
    /// A variable was used before being bound.
    Unbound(String),
    /// A path starts at a variable bound to constructed (non-input) content;
    /// MinXQuery's restrictions exclude this (§2.1).
    PathFromConstructed(String),
}

impl std::fmt::Display for XqRunError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            XqRunError::Unbound(v) => write!(f, "unbound variable ${v}"),
            XqRunError::PathFromConstructed(v) => {
                write!(
                    f,
                    "path starts at ${v}, which is bound to constructed content"
                )
            }
        }
    }
}

impl std::error::Error for XqRunError {}

/// A preorder-indexed document.
///
/// Node 0 is a virtual *document node* whose children are the input forest;
/// the `$input` variable is bound to it, so `$input/site` selects the root
/// element.
pub struct Doc {
    labels: Vec<Label>,
    /// Exclusive end of each node's subtree in preorder.
    end: Vec<usize>,
    /// Preorder index of the next sibling, if any.
    next_sib: Vec<Option<usize>>,
}

impl Doc {
    /// Index an input forest.
    pub fn index(forest: &[Tree]) -> Doc {
        let mut doc = Doc {
            labels: vec![Label::elem("#document")],
            end: vec![0],
            next_sib: vec![None],
        };
        let mut prev: Option<usize> = None;
        for t in forest {
            let id = doc.add(t);
            if let Some(p) = prev {
                doc.next_sib[p] = Some(id);
            }
            prev = Some(id);
        }
        doc.end[0] = doc.labels.len();
        doc
    }

    fn add(&mut self, t: &Tree) -> usize {
        let id = self.labels.len();
        self.labels.push(t.label.clone());
        self.end.push(0);
        self.next_sib.push(None);
        let mut prev: Option<usize> = None;
        for c in &t.children {
            let cid = self.add(c);
            if let Some(p) = prev {
                self.next_sib[p] = Some(cid);
            }
            prev = Some(cid);
        }
        self.end[id] = self.labels.len();
        id
    }

    pub fn len(&self) -> usize {
        self.labels.len()
    }

    pub fn is_empty(&self) -> bool {
        self.labels.len() <= 1
    }

    pub fn label(&self, n: usize) -> &Label {
        &self.labels[n]
    }

    /// Children of `n` in document order.
    pub fn children(&self, n: usize) -> ChildIter<'_> {
        let first = if n + 1 < self.end[n] {
            Some(n + 1)
        } else {
            None
        };
        ChildIter {
            doc: self,
            cur: first,
        }
    }

    /// Descendants of `n` (excluding `n`) in document order.
    pub fn descendants(&self, n: usize) -> std::ops::Range<usize> {
        n + 1..self.end[n]
    }

    /// Following siblings of `n` in document order.
    pub fn following_siblings(&self, n: usize) -> ChildIter<'_> {
        ChildIter {
            doc: self,
            cur: self.next_sib[n],
        }
    }

    /// XPath string value: concatenated text content of the subtree.
    pub fn string_value(&self, n: usize) -> String {
        let mut s = String::new();
        if self.labels[n].kind == NodeKind::Text {
            s.push_str(&self.labels[n].name);
        }
        for d in self.descendants(n) {
            if self.labels[d].kind == NodeKind::Text {
                s.push_str(&self.labels[d].name);
            }
        }
        s
    }

    /// Rebuild the subtree rooted at `n` as an owned [`Tree`].
    pub fn materialize(&self, n: usize) -> Tree {
        Tree {
            label: self.labels[n].clone(),
            children: self.children(n).map(|c| self.materialize(c)).collect(),
        }
    }
}

/// Iterator over a sibling chain.
pub struct ChildIter<'a> {
    doc: &'a Doc,
    cur: Option<usize>,
}

impl Iterator for ChildIter<'_> {
    type Item = usize;

    fn next(&mut self) -> Option<usize> {
        let n = self.cur?;
        self.cur = self.doc.next_sib[n];
        Some(n)
    }
}

/// A value: a sequence of items, each an input node or constructed content.
#[derive(Clone)]
pub enum Item {
    /// A node of the input document (by preorder index).
    Node(usize),
    /// Constructed content (from element constructors / copies).
    Tree(Rc<Tree>),
}

pub type Value = Vec<Item>;

/// Evaluate a MinXQuery program on an input forest, producing the output
/// forest.
pub fn eval_query(q: &Query, input: &[Tree]) -> Result<Forest, XqRunError> {
    let doc = Doc::index(input);
    let mut env: Vec<(String, Value)> = vec![("input".to_string(), vec![Item::Node(0)])];
    let v = eval(q, &doc, &mut env)?;
    let mut out = Vec::new();
    value_to_forest(&doc, &v, &mut out);
    Ok(out)
}

/// Evaluate a query against an already-indexed document with extra variable
/// bindings (each bound to one input node). Used by engines that buffer
/// document fragments and evaluate sub-queries on them (e.g. the GCX-style
/// baseline).
pub fn eval_on_doc(
    q: &Query,
    doc: &Doc,
    bindings: &[(String, usize)],
) -> Result<Forest, XqRunError> {
    let mut env: Vec<(String, Value)> = vec![("input".to_string(), vec![Item::Node(0)])];
    for (name, node) in bindings {
        env.push((name.clone(), vec![Item::Node(*node)]));
    }
    let v = eval(q, doc, &mut env)?;
    let mut out = Vec::new();
    value_to_forest(doc, &v, &mut out);
    Ok(out)
}

/// Do all `preds` hold at node `n` (existential XPath semantics)?
pub fn node_satisfies(doc: &Doc, n: usize, preds: &[Pred]) -> bool {
    preds_hold(doc, n, preds)
}

fn eval(q: &Query, doc: &Doc, env: &mut Vec<(String, Value)>) -> Result<Value, XqRunError> {
    match q {
        Query::Text(t) => Ok(vec![Item::Tree(Rc::new(Tree {
            label: Label::text(t.clone()),
            children: vec![],
        }))]),
        Query::Element { name, content } => {
            let mut children = Vec::new();
            for c in content {
                let v = eval(c, doc, env)?;
                value_to_forest(doc, &v, &mut children);
            }
            Ok(vec![Item::Tree(Rc::new(Tree {
                label: Label::elem(name.clone()),
                children,
            }))])
        }
        Query::Seq(qs) => {
            let mut out = Vec::new();
            for sub in qs {
                out.extend(eval(sub, doc, env)?);
            }
            Ok(out)
        }
        Query::Path(p) => {
            if p.steps.is_empty() {
                return lookup(env, &p.start).cloned();
            }
            let nodes = eval_path(p, doc, env)?;
            Ok(nodes.into_iter().map(Item::Node).collect())
        }
        Query::For { var, path, body } => {
            let nodes = eval_path_allow_empty_steps(path, doc, env)?;
            let mut out = Vec::new();
            for n in nodes {
                env.push((var.clone(), vec![Item::Node(n)]));
                let r = eval(body, doc, env);
                env.pop();
                out.extend(r?);
            }
            Ok(out)
        }
        Query::Let { var, value, body } => {
            let v = eval(value, doc, env)?;
            env.push((var.clone(), v));
            let r = eval(body, doc, env);
            env.pop();
            r
        }
    }
}

fn lookup<'e>(env: &'e [(String, Value)], var: &str) -> Result<&'e Value, XqRunError> {
    env.iter()
        .rev()
        .find(|(n, _)| n == var)
        .map(|(_, v)| v)
        .ok_or_else(|| XqRunError::Unbound(var.to_string()))
}

/// Evaluate a path; the start variable must be bound to input nodes.
fn eval_path(p: &Path, doc: &Doc, env: &[(String, Value)]) -> Result<Vec<usize>, XqRunError> {
    let base = lookup(env, &p.start)?;
    let mut cur: Vec<usize> = Vec::with_capacity(base.len());
    for item in base {
        match item {
            Item::Node(n) => cur.push(*n),
            Item::Tree(_) => return Err(XqRunError::PathFromConstructed(p.start.clone())),
        }
    }
    for step in &p.steps {
        cur = apply_step(doc, &cur, step);
    }
    Ok(cur)
}

fn eval_path_allow_empty_steps(
    p: &Path,
    doc: &Doc,
    env: &[(String, Value)],
) -> Result<Vec<usize>, XqRunError> {
    // `for $x in $y` (no steps) iterates the nodes bound to $y.
    eval_path(p, doc, env)
}

fn apply_step(doc: &Doc, nodes: &[usize], step: &Step) -> Vec<usize> {
    let mut out: Vec<usize> = Vec::new();
    for &n in nodes {
        match step.axis {
            Axis::Child => {
                for c in doc.children(n) {
                    if test_matches(doc, c, &step.test) && preds_hold(doc, c, &step.preds) {
                        out.push(c);
                    }
                }
            }
            Axis::Descendant => {
                for d in doc.descendants(n) {
                    if test_matches(doc, d, &step.test) && preds_hold(doc, d, &step.preds) {
                        out.push(d);
                    }
                }
            }
            Axis::FollowingSibling => {
                for s in doc.following_siblings(n) {
                    if test_matches(doc, s, &step.test) && preds_hold(doc, s, &step.preds) {
                        out.push(s);
                    }
                }
            }
        }
    }
    // Node-set semantics: document order, no duplicates.
    out.sort_unstable();
    out.dedup();
    out
}

fn test_matches(doc: &Doc, n: usize, test: &NodeTest) -> bool {
    let label = doc.label(n);
    match test {
        NodeTest::Name(name) => label.kind == NodeKind::Element && &*label.name == name.as_str(),
        NodeTest::AnyElem => label.kind == NodeKind::Element,
        NodeTest::Text => label.kind == NodeKind::Text,
        NodeTest::AnyNode => true,
    }
}

fn preds_hold(doc: &Doc, n: usize, preds: &[Pred]) -> bool {
    preds.iter().all(|p| pred_holds(doc, n, p))
}

fn pred_holds(doc: &Doc, n: usize, pred: &Pred) -> bool {
    match pred {
        Pred::Exists(rel) => !eval_rel(doc, n, rel).is_empty(),
        Pred::Empty(rel) => eval_rel(doc, n, rel).is_empty(),
        Pred::Eq(rel, s) => eval_rel(doc, n, rel)
            .iter()
            .any(|&m| doc.string_value(m) == *s),
        Pred::Neq(rel, s) => eval_rel(doc, n, rel)
            .iter()
            .any(|&m| doc.string_value(m) != *s),
    }
}

fn eval_rel(doc: &Doc, n: usize, rel: &RelPath) -> Vec<usize> {
    let mut cur = vec![n];
    for step in &rel.steps {
        cur = apply_step(doc, &cur, step);
        if cur.is_empty() {
            break;
        }
    }
    cur
}

fn value_to_forest(doc: &Doc, v: &Value, out: &mut Forest) {
    for item in v {
        match item {
            Item::Node(0) => {
                // The virtual document node: splice its children.
                for c in doc.children(0) {
                    out.push(doc.materialize(c));
                }
            }
            Item::Node(n) => out.push(doc.materialize(*n)),
            Item::Tree(t) => out.push((**t).clone()),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse_query;
    use foxq_forest::term::{forest_to_term, parse_forest};

    fn run(query: &str, doc: &str) -> String {
        let q = parse_query(query).unwrap();
        let f = parse_forest(doc).unwrap();
        forest_to_term(&eval_query(&q, &f).unwrap())
    }

    #[test]
    fn pperson_semantics() {
        let q = r#"<out>{ for $b in $input/person[./p_id/text() = "person0"]
                   return let $r := $b/name/text() return $r }</out>"#;
        let doc = r#"person(p_id(a() "person0") name("Jim") c() name("Li"))"#;
        assert_eq!(run(q, doc), r#"out("Jim" "Li")"#);

        let doc2 = r#"person(p_id(a() "perso7") name("Jim") c() p_id("person0"))"#;
        assert_eq!(run(q, doc2), r#"out("Jim")"#);
    }

    #[test]
    fn section2_nested_for_example_preorder() {
        // The §2.1 example query and document; checks output order (a1 b1 c1
        // c2 d1 d2, then a1 b2 d3).
        let q = "for $v1 in $input/descendant::a return
                 for $v2 in $v1/descendant::b return
                 let $v3 := $v2/descendant::c return
                 let $v4 := $v2/descendant::d return
                 ($v1,$v2,$v3,$v4)";
        let doc = "doc(a(b(c(c()) d() d()) b(d())))";
        let out = run(q, doc);
        // $v1 = the a node (twice, once per b); $v3/$v4 concatenate all c/d
        // descendants. Nested c matches both c1 and c2.
        let expected = concat!(
            // iteration for b1:
            "a(b(c(c()) d() d()) b(d())) ", // $v1
            "b(c(c()) d() d()) ",           // $v2 = b1
            "c(c()) c() ",                  // $v3 = c1, c2
            "d() d() ",                     // $v4 = d1, d2
            // iteration for b2:
            "a(b(c(c()) d() d()) b(d())) ", // $v1
            "b(d()) ",                      // $v2 = b2
            "d()"                           // $v4 = d3 ($v3 empty)
        );
        assert_eq!(out, expected);
    }

    #[test]
    fn child_vs_descendant() {
        let doc = "r(a(a(b())) b())";
        assert_eq!(run("$input/r/a", doc), "a(a(b()))");
        assert_eq!(run("$input/r/descendant::a", doc), "a(a(b())) a(b())");
        assert_eq!(run("$input//b", doc), "b() b()");
    }

    #[test]
    fn following_sibling() {
        let doc = "r(a() b(x()) a() c())";
        assert_eq!(run("$input/r/a/following-sibling::a", doc), "a()");
        assert_eq!(run("$input/r/b/following-sibling::*", doc), "a() c()");
        // No duplicates even though two a's have overlapping following axes.
        assert_eq!(run("$input/r/a/following-sibling::c", doc), "c()");
    }

    #[test]
    fn predicates_existential() {
        let doc = r#"r(p(id("1") h()) p(id("2")) p(h()))"#;
        assert_eq!(run("$input/r/p[./h]", doc), r#"p(id("1") h()) p(h())"#);
        assert_eq!(run("$input/r/p[empty(./h)]", doc), r#"p(id("2"))"#);
        assert_eq!(
            run(r#"$input/r/p[./id/text()="1"]"#, doc),
            r#"p(id("1") h())"#
        );
        assert_eq!(run(r#"$input/r/p[./id/text()!="1"]"#, doc), r#"p(id("2"))"#);
    }

    #[test]
    fn string_value_of_elements() {
        // Eq compares the *string value* (concatenated text).
        let doc = r#"r(p(name("Jo" e("h") "n")))"#;
        assert_eq!(
            run(r#"$input/r/p[./name="John"]"#, doc),
            r#"p(name("Jo" e("h") "n"))"#
        );
    }

    #[test]
    fn constructors_copy_content() {
        let doc = "r(a(\"x\"))";
        assert_eq!(
            run("<o><i>{$input/r/a}</i><i>{$input/r/a}</i></o>", doc),
            r#"o(i(a("x")) i(a("x")))"#
        );
    }

    #[test]
    fn lets_bind_sequences() {
        let doc = "r(a() a())";
        assert_eq!(
            run("let $x := $input/r/a return ($x, $x)", doc),
            "a() a() a() a()"
        );
    }

    #[test]
    fn bare_input_splices_document() {
        assert_eq!(run("<d>{$input}</d>", "a(b()) c()"), "d(a(b()) c())");
    }

    #[test]
    fn path_from_constructed_errors() {
        let q = parse_query("let $x := <a/> return $x/b").unwrap();
        let f = parse_forest("r()").unwrap();
        assert!(matches!(
            eval_query(&q, &f),
            Err(XqRunError::PathFromConstructed(_))
        ));
    }

    #[test]
    fn doc_index_navigation() {
        let f = parse_forest("a(b(c()) d()) e()").unwrap();
        let doc = Doc::index(&f);
        // 0=#document 1=a 2=b 3=c 4=d 5=e
        assert_eq!(doc.len(), 6);
        assert_eq!(doc.children(0).collect::<Vec<_>>(), vec![1, 5]);
        assert_eq!(doc.children(1).collect::<Vec<_>>(), vec![2, 4]);
        assert_eq!(doc.descendants(1), 2..5);
        assert_eq!(doc.following_siblings(2).collect::<Vec<_>>(), vec![4]);
        assert_eq!(forest_to_term(&[doc.materialize(1)]), "a(b(c()) d())");
    }
}
