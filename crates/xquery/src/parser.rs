//! Recursive-descent parser for MinXQuery.
//!
//! The syntax is modal like XQuery itself: *expression mode* (clauses, paths)
//! and *element-content mode* (raw character data, nested constructors, and
//! `{…}` enclosed expressions). Supported beyond Figure 2, matching the
//! paper's implementation notes (§5): the `//` abbreviation, a bare leading
//! `/` meaning `$input`, abbreviated child steps, `(: … :)` comments, and
//! `{{` / `}}` escapes in element content.

use crate::ast::{Axis, NodeTest, Path, Pred, Query, RelPath, Step};

/// Parse error with source position.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct XqSyntaxError {
    pub line: usize,
    pub col: usize,
    pub msg: String,
}

impl std::fmt::Display for XqSyntaxError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "XQuery syntax error at {}:{}: {}",
            self.line, self.col, self.msg
        )
    }
}

impl std::error::Error for XqSyntaxError {}

/// Parse a complete MinXQuery program.
pub fn parse_query(src: &str) -> Result<Query, XqSyntaxError> {
    let mut p = P {
        src: src.as_bytes(),
        pos: 0,
    };
    p.ws();
    let q = p.query()?;
    p.ws();
    if p.pos != p.src.len() {
        return p.err("trailing input after query");
    }
    Ok(q)
}

struct P<'a> {
    src: &'a [u8],
    pos: usize,
}

impl<'a> P<'a> {
    // ---- low-level ----------------------------------------------------

    fn err<T>(&self, msg: impl Into<String>) -> Result<T, XqSyntaxError> {
        let (mut line, mut col) = (1, 1);
        for &b in &self.src[..self.pos.min(self.src.len())] {
            if b == b'\n' {
                line += 1;
                col = 1;
            } else {
                col += 1;
            }
        }
        Err(XqSyntaxError {
            line,
            col,
            msg: msg.into(),
        })
    }

    fn peek(&self) -> Option<u8> {
        self.src.get(self.pos).copied()
    }

    fn peek2(&self) -> Option<u8> {
        self.src.get(self.pos + 1).copied()
    }

    fn starts_with(&self, s: &str) -> bool {
        self.src[self.pos..].starts_with(s.as_bytes())
    }

    fn eat(&mut self, s: &str) -> bool {
        if self.starts_with(s) {
            self.pos += s.len();
            true
        } else {
            false
        }
    }

    fn expect(&mut self, s: &str) -> Result<(), XqSyntaxError> {
        if self.eat(s) {
            Ok(())
        } else {
            self.err(format!("expected {s:?}"))
        }
    }

    /// Skip whitespace and `(: … :)` comments (nesting supported).
    fn ws(&mut self) {
        loop {
            match self.peek() {
                Some(c) if c.is_ascii_whitespace() => self.pos += 1,
                Some(b'(') if self.peek2() == Some(b':') => {
                    self.pos += 2;
                    let mut depth = 1;
                    while depth > 0 && self.pos < self.src.len() {
                        if self.starts_with("(:") {
                            depth += 1;
                            self.pos += 2;
                        } else if self.starts_with(":)") {
                            depth -= 1;
                            self.pos += 2;
                        } else {
                            self.pos += 1;
                        }
                    }
                }
                _ => return,
            }
        }
    }

    fn name(&mut self) -> Result<String, XqSyntaxError> {
        let start = self.pos;
        match self.peek() {
            Some(c) if c.is_ascii_alphabetic() || c == b'_' => self.pos += 1,
            _ => return self.err("expected a name"),
        }
        while let Some(c) = self.peek() {
            if c.is_ascii_alphanumeric() || matches!(c, b'_' | b'-' | b'.') {
                self.pos += 1;
            } else {
                break;
            }
        }
        Ok(String::from_utf8_lossy(&self.src[start..self.pos]).into_owned())
    }

    /// Peek the next name without consuming (after whitespace).
    fn peek_word(&mut self) -> Option<String> {
        self.ws();
        let save = self.pos;
        let w = self.name().ok();
        self.pos = save;
        w
    }

    fn keyword(&mut self, kw: &str) -> bool {
        if self.peek_word().as_deref() == Some(kw) {
            self.ws();
            self.pos += kw.len();
            true
        } else {
            false
        }
    }

    fn string_lit(&mut self) -> Result<String, XqSyntaxError> {
        self.ws();
        let quote = match self.peek() {
            Some(q @ (b'"' | b'\'')) => q,
            _ => return self.err("expected a string literal"),
        };
        self.pos += 1;
        let mut s = String::new();
        loop {
            match self.peek() {
                None => return self.err("unterminated string literal"),
                Some(c) if c == quote => {
                    self.pos += 1;
                    // XQuery escapes quotes by doubling.
                    if self.peek() == Some(quote) {
                        s.push(quote as char);
                        self.pos += 1;
                    } else {
                        return Ok(s);
                    }
                }
                Some(b'\\') if self.peek2() == Some(b'"') || self.peek2() == Some(b'\\') => {
                    // Also tolerate backslash escapes (used by our printer).
                    s.push(self.peek2().unwrap() as char);
                    self.pos += 2;
                }
                Some(c) => {
                    s.push(c as char);
                    self.pos += 1;
                }
            }
        }
    }

    // ---- grammar -------------------------------------------------------

    fn query(&mut self) -> Result<Query, XqSyntaxError> {
        self.ws();
        if self.peek() == Some(b'<')
            && self
                .peek2()
                .is_some_and(|c| c.is_ascii_alphabetic() || c == b'_')
        {
            self.element()
        } else {
            self.clause()
        }
    }

    fn element(&mut self) -> Result<Query, XqSyntaxError> {
        self.expect("<")?;
        let name = self.name()?;
        self.ws();
        if self.eat("/>") {
            return Ok(Query::Element {
                name,
                content: vec![],
            });
        }
        self.expect(">")?;
        let mut content = Vec::new();
        let mut raw = String::new();
        loop {
            match self.peek() {
                None => return self.err(format!("unterminated element constructor <{name}>")),
                Some(b'<') => {
                    flush_raw(&mut raw, &mut content);
                    if self.starts_with("</") {
                        self.pos += 2;
                        let close = self.name()?;
                        if close != name {
                            return self.err(format!("mismatched </{close}>, expected </{name}>"));
                        }
                        self.ws();
                        self.expect(">")?;
                        return Ok(Query::Element { name, content });
                    }
                    content.push(self.element()?);
                }
                Some(b'{') if self.peek2() == Some(b'{') => {
                    self.pos += 2;
                    raw.push('{');
                }
                Some(b'}') if self.peek2() == Some(b'}') => {
                    self.pos += 2;
                    raw.push('}');
                }
                Some(b'{') => {
                    flush_raw(&mut raw, &mut content);
                    self.pos += 1;
                    let q = self.query()?;
                    self.ws();
                    self.expect("}")?;
                    content.push(q);
                }
                Some(b'}') => return self.err("unexpected '}' in element content"),
                Some(c) => {
                    raw.push(c as char);
                    self.pos += 1;
                }
            }
        }
    }

    fn clause(&mut self) -> Result<Query, XqSyntaxError> {
        self.ws();
        if self.keyword("for") {
            self.ws();
            self.expect("$")?;
            let var = self.name()?;
            if !self.keyword("in") {
                return self.err("expected 'in' in for clause");
            }
            let path = self.ordpath()?;
            if !self.keyword("return") {
                return self.err("expected 'return' in for clause");
            }
            let body = self.query()?;
            return Ok(Query::For {
                var,
                path,
                body: Box::new(body),
            });
        }
        if self.keyword("let") {
            self.ws();
            self.expect("$")?;
            let var = self.name()?;
            self.ws();
            self.expect(":=")?;
            let value = self.query()?;
            if !self.keyword("return") {
                return self.err("expected 'return' in let clause");
            }
            let body = self.query()?;
            return Ok(Query::Let {
                var,
                value: Box::new(value),
                body: Box::new(body),
            });
        }
        if self.peek() == Some(b'(') {
            self.pos += 1;
            let mut qs = vec![self.query()?];
            self.ws();
            while self.eat(",") {
                qs.push(self.query()?);
                self.ws();
            }
            self.expect(")")?;
            return Ok(if qs.len() == 1 {
                qs.pop().unwrap()
            } else {
                Query::Seq(qs)
            });
        }
        Ok(Query::Path(self.ordpath()?))
    }

    fn ordpath(&mut self) -> Result<Path, XqSyntaxError> {
        self.ws();
        let start = if self.eat("$") {
            self.name()?
        } else if self.peek() == Some(b'/') {
            // `/site/…` abbreviates `$input/site/…`.
            "input".to_string()
        } else {
            return self.err("expected '$var' or '/' to start a path")?;
        };
        let mut steps = Vec::new();
        while self.peek() == Some(b'/') {
            steps.push(self.step()?);
        }
        Ok(Path { start, steps })
    }

    fn step(&mut self) -> Result<Step, XqSyntaxError> {
        self.expect("/")?;
        let axis = if self.peek() == Some(b'/') {
            // `//x` — handled as descendant (as in the paper's prototype).
            self.pos += 1;
            Some(Axis::Descendant)
        } else {
            None
        };
        self.ws();
        // Explicit axis?
        let save = self.pos;
        let axis = match axis {
            Some(a) => a,
            None => {
                let mut a = Axis::Child;
                if let Ok(word) = self.name() {
                    self.ws();
                    if self.eat("::") {
                        a = match word.as_str() {
                            "child" => Axis::Child,
                            "descendant" => Axis::Descendant,
                            "following-sibling" => Axis::FollowingSibling,
                            other => {
                                return self.err(format!(
                                    "unsupported axis '{other}' (MinXQuery allows child, \
                                     descendant, following-sibling)"
                                ))
                            }
                        };
                    } else {
                        self.pos = save;
                    }
                } else {
                    self.pos = save;
                }
                a
            }
        };
        self.ws();
        let test = self.node_test()?;
        let mut preds = Vec::new();
        loop {
            self.ws();
            if self.eat("[") {
                preds.push(self.predicate()?);
                self.ws();
                self.expect("]")?;
            } else {
                break;
            }
        }
        Ok(Step { axis, test, preds })
    }

    fn node_test(&mut self) -> Result<NodeTest, XqSyntaxError> {
        self.ws();
        if self.eat("*") {
            return Ok(NodeTest::AnyElem);
        }
        let name = self.name()?;
        self.ws();
        if name == "text" && self.eat("()") {
            return Ok(NodeTest::Text);
        }
        if name == "node" && self.eat("()") {
            return Ok(NodeTest::AnyNode);
        }
        Ok(NodeTest::Name(name))
    }

    fn predicate(&mut self) -> Result<Pred, XqSyntaxError> {
        self.ws();
        if self.peek_word().as_deref() == Some("empty") {
            let save = self.pos;
            self.ws();
            self.pos += "empty".len();
            self.ws();
            if self.eat("(") {
                let rel = self.rel_path()?;
                self.ws();
                self.expect(")")?;
                return Ok(Pred::Empty(rel));
            }
            self.pos = save; // `empty` was a step name after all
        }
        let rel = self.rel_path()?;
        self.ws();
        if self.eat("!=") {
            let s = self.string_lit()?;
            return Ok(Pred::Neq(rel, s));
        }
        if self.eat("=") {
            let s = self.string_lit()?;
            return Ok(Pred::Eq(rel, s));
        }
        Ok(Pred::Exists(rel))
    }

    fn rel_path(&mut self) -> Result<RelPath, XqSyntaxError> {
        self.ws();
        // Leading `.` is optional: `[text()="x"]` == `[./text()="x"]`.
        let _ = self.eat(".");
        let mut steps = Vec::new();
        self.ws();
        if self.peek() == Some(b'/') {
            while self.peek() == Some(b'/') {
                steps.push(self.step()?);
            }
        } else {
            // A bare step (no slash): `[name]`, `[text()="x"]`.
            if self.peek() != Some(b']') && self.peek() != Some(b'=') && self.peek() != Some(b'!') {
                let test = self.node_test()?;
                let mut preds = Vec::new();
                loop {
                    self.ws();
                    if self.eat("[") {
                        preds.push(self.predicate()?);
                        self.ws();
                        self.expect("]")?;
                    } else {
                        break;
                    }
                }
                steps.push(Step {
                    axis: Axis::Child,
                    test,
                    preds,
                });
            }
        }
        if steps.is_empty() {
            return self.err("empty predicate path");
        }
        Ok(RelPath { steps })
    }
}

fn flush_raw(raw: &mut String, content: &mut Vec<Query>) {
    let t = raw.trim();
    if !t.is_empty() {
        content.push(Query::Text(t.to_string()));
    }
    raw.clear();
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip(src: &str) -> Query {
        let q = parse_query(src).unwrap();
        let printed = q.to_string();
        let q2 =
            parse_query(&printed).unwrap_or_else(|e| panic!("reparse of {printed:?} failed: {e}"));
        assert_eq!(q, q2, "printer/parser mismatch for {src}");
        q
    }

    #[test]
    fn parses_paper_section2_example() {
        let q = roundtrip(
            "for $v1 in $input/descendant::a return
             for $v2 in $v1/descendant::b return
             let $v3 := $v2/descendant::c return
             let $v4 := $v2/descendant::d return
             ($v1,$v2,$v3,$v4)",
        );
        match &q {
            Query::For { var, path, .. } => {
                assert_eq!(var, "v1");
                assert_eq!(path.steps[0].axis, Axis::Descendant);
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn parses_pperson() {
        let q = roundtrip(
            r#"<out>{ for $b in $input/person[./p_id/text() = "person0"]
                 return let $r := $b/name/text() return $r }</out>"#,
        );
        let Query::Element { name, content } = &q else {
            panic!()
        };
        assert_eq!(name, "out");
        let Query::For { path, .. } = &content[0] else {
            panic!()
        };
        assert_eq!(path.steps.len(), 1);
        assert_eq!(path.steps[0].preds.len(), 1);
        match &path.steps[0].preds[0] {
            Pred::Eq(rel, s) => {
                assert_eq!(s, "person0");
                assert_eq!(rel.steps.len(), 2);
                assert_eq!(rel.steps[1].test, NodeTest::Text);
            }
            other => panic!("unexpected predicate {other:?}"),
        }
    }

    #[test]
    fn abbreviations() {
        // `//` as descendant; bare `/` as $input; abbreviated child steps.
        let q = parse_query("<fourstar>{$input//*//*//*//*}</fourstar>").unwrap();
        let Query::Element { content, .. } = &q else {
            panic!()
        };
        let Query::Path(p) = &content[0] else {
            panic!()
        };
        assert_eq!(p.steps.len(), 4);
        assert!(p
            .steps
            .iter()
            .all(|s| s.axis == Axis::Descendant && s.test == NodeTest::AnyElem));

        let q2 = parse_query("for $x in /site/regions return $x").unwrap();
        let Query::For { path, .. } = &q2 else {
            panic!()
        };
        assert_eq!(path.start, "input");
        assert_eq!(path.steps[0].test, NodeTest::Name("site".into()));
    }

    #[test]
    fn parses_query04_style_nested_predicate() {
        let q = roundtrip(
            r#"for $b in $input/site/open_auctions/open_auction
                 [./bidder[./personref/personref_person/text()="personXX"]
                  /following-sibling::bidder/personref/personref_person/text()="personYY"]
               return <history>{$b/reserve/text()}</history>"#,
        );
        let Query::For { path, .. } = &q else {
            panic!()
        };
        let pred = &path.steps[2].preds[0];
        match pred {
            Pred::Eq(rel, s) => {
                assert_eq!(s, "personYY");
                assert_eq!(rel.steps[0].test, NodeTest::Name("bidder".into()));
                assert_eq!(rel.steps[0].preds.len(), 1); // the nested predicate
                assert_eq!(rel.steps[1].axis, Axis::FollowingSibling);
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn parses_empty_predicate() {
        let q = roundtrip(
            r#"for $p in $input/site/people/person[empty(./homepage/text())]
               return <person><name>{$p/name/text()}</name></person>"#,
        );
        let Query::For { path, .. } = &q else {
            panic!()
        };
        assert!(matches!(&path.steps[2].preds[0], Pred::Empty(_)));
    }

    #[test]
    fn sequences_and_lets() {
        let q = roundtrip("let $a := $input/x return ($a, $a, <e/>)");
        let Query::Let { body, .. } = &q else {
            panic!()
        };
        let Query::Seq(items) = body.as_ref() else {
            panic!()
        };
        assert_eq!(items.len(), 3);
    }

    #[test]
    fn raw_text_and_brace_escapes() {
        let q = parse_query("<a>hello {{world}} {$input/x}</a>").unwrap();
        let Query::Element { content, .. } = &q else {
            panic!()
        };
        assert_eq!(content[0], Query::Text("hello {world}".into()));
        assert!(matches!(content[1], Query::Path(_)));
    }

    #[test]
    fn comments_are_skipped() {
        let q = parse_query("(: pick all a's :) for $x in $input/a return $x").unwrap();
        assert!(matches!(q, Query::For { .. }));
    }

    #[test]
    fn error_positions() {
        let e = parse_query("for $x in\n  $input/site[ return $x").unwrap_err();
        assert_eq!(e.line, 2);
        assert!(parse_query("<a>{$x}</b>").is_err());
        assert!(parse_query("for $x return $x").is_err());
        assert!(parse_query("$input/parent::a").is_err()); // unsupported axis
    }

    #[test]
    fn neq_and_quotes() {
        let q = roundtrip(r#"$input/a[./b/text()!="x"]"#);
        let Query::Path(p) = &q else { panic!() };
        assert!(matches!(&p.steps[0].preds[0], Pred::Neq(_, s) if s == "x"));
        // Single-quoted strings and doubled quotes.
        let q2 = parse_query(r#"$input/a[./b/text()='it''s']"#).unwrap();
        let Query::Path(p2) = &q2 else { panic!() };
        assert!(matches!(&p2.steps[0].preds[0], Pred::Eq(_, s) if s == "it's"));
    }

    #[test]
    fn self_closing_constructor() {
        let q = parse_query("<empty/>").unwrap();
        assert_eq!(
            q,
            Query::Element {
                name: "empty".into(),
                content: vec![]
            }
        );
    }
}
