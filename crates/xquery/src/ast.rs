//! Abstract syntax of MinXQuery (Figure 2 of the paper).
//!
//! ```text
//! query    ::= element | clause
//! element  ::= <name> {element | string | {clause}}* </name>
//! clause   ::= for $v in ordpath return query
//!            | let $v := query return query
//!            | ordpath
//!            | (query {, query}+)
//! ordpath  ::= $v {pathstep}*
//! pathstep ::= /axis::nodetest {[predicate]}*
//! axis     ::= child | descendant | following-sibling
//! nodetest ::= name | * | text() | node()
//! predicate::= predpath | empty(predpath) | predpath="s" | predpath!="s"
//! predpath ::= . {pathstep}*
//! ```
//!
//! Extensions the paper's implementation also accepts (§5): the `//`
//! abbreviation for `descendant`, a bare leading `/` for `$input`, and string
//! literals in element content.

use std::fmt;

/// A MinXQuery expression.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Query {
    /// Direct element constructor `<name>…</name>`.
    Element { name: String, content: Vec<Query> },
    /// Literal text content inside a constructor.
    Text(String),
    /// `for $var in path return body`.
    For {
        var: String,
        path: Path,
        body: Box<Query>,
    },
    /// `let $var := value return body`.
    Let {
        var: String,
        value: Box<Query>,
        body: Box<Query>,
    },
    /// An `ordpath`: a variable with zero or more steps.
    Path(Path),
    /// A sequence `(q1, q2, …)`.
    Seq(Vec<Query>),
}

/// An XPath expression rooted at a variable.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Path {
    /// Variable name without the `$` (the document variable is `input`).
    pub start: String,
    pub steps: Vec<Step>,
}

/// One path step `/axis::test[preds]`.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct Step {
    pub axis: Axis,
    pub test: NodeTest,
    pub preds: Vec<Pred>,
}

/// Navigation axes of the fragment (all downward or rightward — the
/// prerequisite for streaming).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Axis {
    Child,
    Descendant,
    FollowingSibling,
}

/// Node tests.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum NodeTest {
    /// An element name.
    Name(String),
    /// `*` — any element.
    AnyElem,
    /// `text()` — any text node.
    Text,
    /// `node()` — any node.
    AnyNode,
}

/// An XPath predicate (existential semantics).
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum Pred {
    /// `[./p]` — some node matches `p`.
    Exists(RelPath),
    /// `[empty(./p)]` — no node matches `p`.
    Empty(RelPath),
    /// `[./p = "s"]` — some node matching `p` has string value `s`.
    Eq(RelPath, String),
    /// `[./p != "s"]` — some node matching `p` has string value ≠ `s`.
    Neq(RelPath, String),
}

/// A relative path inside a predicate (`.` followed by steps).
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct RelPath {
    pub steps: Vec<Step>,
}

impl Query {
    /// Size |P|: number of nodes in the parse tree (used by Theorem 1).
    pub fn size(&self) -> usize {
        match self {
            Query::Element { content, .. } => 1 + content.iter().map(Query::size).sum::<usize>(),
            Query::Text(_) => 1,
            Query::For { path, body, .. } => 1 + path.size() + body.size(),
            Query::Let { value, body, .. } => 1 + value.size() + body.size(),
            Query::Path(p) => 1 + p.size(),
            Query::Seq(qs) => 1 + qs.iter().map(Query::size).sum::<usize>(),
        }
    }

    /// All paths appearing anywhere in the query (for static analyses such
    /// as the GCX-style projection).
    pub fn visit_paths<'a>(&'a self, f: &mut impl FnMut(&'a Path)) {
        match self {
            Query::Element { content, .. } => content.iter().for_each(|q| q.visit_paths(f)),
            Query::Text(_) => {}
            Query::For { path, body, .. } => {
                f(path);
                body.visit_paths(f);
            }
            Query::Let { value, body, .. } => {
                value.visit_paths(f);
                body.visit_paths(f);
            }
            Query::Path(p) => f(p),
            Query::Seq(qs) => qs.iter().for_each(|q| q.visit_paths(f)),
        }
    }
}

impl Path {
    pub fn size(&self) -> usize {
        1 + self.steps.iter().map(Step::size).sum::<usize>()
    }

    /// Does any step of this path (or its predicates) use the given axis?
    pub fn uses_axis(&self, axis: Axis) -> bool {
        fn step_uses(s: &Step, axis: Axis) -> bool {
            s.axis == axis
                || s.preds.iter().any(|p| {
                    let rel = match p {
                        Pred::Exists(r) | Pred::Empty(r) | Pred::Eq(r, _) | Pred::Neq(r, _) => r,
                    };
                    rel.steps.iter().any(|s| step_uses(s, axis))
                })
        }
        self.steps.iter().any(|s| step_uses(s, axis))
    }

    /// Does any step carry a predicate?
    pub fn has_predicates(&self) -> bool {
        self.steps.iter().any(|s| !s.preds.is_empty())
    }
}

impl Step {
    pub fn size(&self) -> usize {
        1 + self
            .preds
            .iter()
            .map(|p| {
                let rel = match p {
                    Pred::Exists(r) | Pred::Empty(r) | Pred::Eq(r, _) | Pred::Neq(r, _) => r,
                };
                1 + rel.steps.iter().map(Step::size).sum::<usize>()
            })
            .sum::<usize>()
    }
}

// --------------------------------------------------------------------------
// Pretty printer (round-trips through the parser).
// --------------------------------------------------------------------------

impl fmt::Display for Query {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Query::Element { name, content } => {
                write!(f, "<{name}>")?;
                for c in content {
                    match c {
                        Query::Element { .. } => write!(f, "{c}")?,
                        Query::Text(t) => write!(f, "{t}")?,
                        _ => write!(f, "{{{c}}}")?,
                    }
                }
                write!(f, "</{name}>")
            }
            Query::Text(t) => write!(f, "{t}"),
            Query::For { var, path, body } => {
                write!(f, "for ${var} in {path} return {body}")
            }
            Query::Let { var, value, body } => {
                write!(f, "let ${var} := {value} return {body}")
            }
            Query::Path(p) => write!(f, "{p}"),
            Query::Seq(qs) => {
                write!(f, "(")?;
                for (i, q) in qs.iter().enumerate() {
                    if i > 0 {
                        write!(f, ", ")?;
                    }
                    write!(f, "{q}")?;
                }
                write!(f, ")")
            }
        }
    }
}

impl fmt::Display for Path {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "${}", self.start)?;
        for s in &self.steps {
            write!(f, "{s}")?;
        }
        Ok(())
    }
}

impl fmt::Display for Step {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let axis = match self.axis {
            Axis::Child => "child",
            Axis::Descendant => "descendant",
            Axis::FollowingSibling => "following-sibling",
        };
        write!(f, "/{axis}::{}", self.test)?;
        for p in &self.preds {
            write!(f, "[{p}]")?;
        }
        Ok(())
    }
}

impl fmt::Display for NodeTest {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            NodeTest::Name(n) => write!(f, "{n}"),
            NodeTest::AnyElem => write!(f, "*"),
            NodeTest::Text => write!(f, "text()"),
            NodeTest::AnyNode => write!(f, "node()"),
        }
    }
}

impl fmt::Display for Pred {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Pred::Exists(r) => write!(f, "{r}"),
            Pred::Empty(r) => write!(f, "empty({r})"),
            Pred::Eq(r, s) => write!(f, "{r}=\"{}\"", escape_str(s)),
            Pred::Neq(r, s) => write!(f, "{r}!=\"{}\"", escape_str(s)),
        }
    }
}

impl fmt::Display for RelPath {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, ".")?;
        for s in &self.steps {
            write!(f, "{s}")?;
        }
        Ok(())
    }
}

fn escape_str(s: &str) -> String {
    s.replace('\\', "\\\\").replace('"', "\\\"")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn size_counts_parse_tree_nodes() {
        let q = Query::For {
            var: "v".into(),
            path: Path {
                start: "input".into(),
                steps: vec![Step {
                    axis: Axis::Child,
                    test: NodeTest::Name("a".into()),
                    preds: vec![],
                }],
            },
            body: Box::new(Query::Path(Path {
                start: "v".into(),
                steps: vec![],
            })),
        };
        assert_eq!(q.size(), 1 + 2 + 2);
    }

    #[test]
    fn display_is_readable() {
        let q = Query::Element {
            name: "out".into(),
            content: vec![Query::Path(Path {
                start: "v".into(),
                steps: vec![Step {
                    axis: Axis::Descendant,
                    test: NodeTest::Text,
                    preds: vec![],
                }],
            })],
        };
        assert_eq!(q.to_string(), "<out>{$v/descendant::text()}</out>");
    }

    #[test]
    fn uses_axis_looks_into_predicates() {
        let p = Path {
            start: "input".into(),
            steps: vec![Step {
                axis: Axis::Child,
                test: NodeTest::Name("a".into()),
                preds: vec![Pred::Exists(RelPath {
                    steps: vec![Step {
                        axis: Axis::FollowingSibling,
                        test: NodeTest::AnyElem,
                        preds: vec![],
                    }],
                })],
            }],
        };
        assert!(p.uses_axis(Axis::FollowingSibling));
        assert!(!p.uses_axis(Axis::Descendant));
        assert!(p.has_predicates());
    }
}
