//! In-memory (denotational) MFT interpreter.
//!
//! Implements the semantics of §2.2: every state `q` of rank m+1 realizes
//! `[[q]] : F^{m+1} → F`, defined by structural recursion over the input
//! forest; parameters are forest values.
//!
//! Two evaluators live here:
//!
//! * [`run_mft`] / [`run_mft_with_limits`] — the production evaluator.
//!   Forest values are **shared DAGs** ([`foxq_forest::value::Value`]):
//!   parameter reuse is O(1), concatenation is O(1), and a memo table keyed
//!   by `(state, input position, parameter fingerprints)` caches repeated
//!   sub-evaluations. Because values are hash-consed per run, structurally
//!   equal parameters have equal fingerprints, so the accumulator-heavy
//!   transducers of the §4.2 composition constructions evaluate in steps
//!   linear in the shared graph rather than the unfolded output. The result
//!   is materialized once, at the output boundary, under
//!   [`RunLimits::max_output_nodes`].
//! * [`run_mft_naive`] / [`run_mft_naive_with_limits`] — the original
//!   copy-everything reference implementation, retained verbatim as the
//!   oracle the value-based evaluator (and the streaming engine, and all
//!   optimizations) are property-tested against.
//!
//! The paper only deals with *terminating* MFTs; since stay moves can loop,
//! both evaluators enforce a configurable step budget and report
//! [`RunError::StepLimit`] on exhaustion.

use crate::mft::{Mft, OutLabel, Rhs, RhsNode, StateId, XVar};
use foxq_forest::value::{Value, ValueInterner};
use foxq_forest::{Forest, FxHashMap, Label, Tree};

/// Limits for one interpreter run.
#[derive(Debug, Clone, Copy)]
pub struct RunLimits {
    /// Maximum number of rule applications.
    pub max_steps: u64,
    /// Maximum number of tree nodes the run may materialize as output.
    /// Shared values make it cheap to *represent* astronomically large
    /// outputs; this is the guard that refuses to unfold them.
    pub max_output_nodes: u64,
}

impl Default for RunLimits {
    fn default() -> Self {
        RunLimits {
            max_steps: 200_000_000,
            max_output_nodes: 1_000_000_000,
        }
    }
}

impl RunLimits {
    /// Default limits with a custom step budget.
    pub fn with_max_steps(max_steps: u64) -> Self {
        RunLimits {
            max_steps,
            ..RunLimits::default()
        }
    }
}

/// Runtime failure of an interpreter run.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RunError {
    /// The step budget was exhausted (almost always a non-terminating
    /// stay-move loop).
    StepLimit { max_steps: u64 },
    /// `%t` was required in a context with no current node (an ε-rule);
    /// [`Mft::validate`] rejects such transducers statically.
    CurrentLabelAtEps { state: String },
    /// The output budget was exhausted while materializing the result.
    OutputLimit { max_output_nodes: u64 },
}

impl std::fmt::Display for RunError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            RunError::StepLimit { max_steps } => {
                write!(
                    f,
                    "step limit of {max_steps} exceeded (non-terminating stay moves?)"
                )
            }
            RunError::CurrentLabelAtEps { state } => {
                write!(f, "%t used with no current node in state {state}")
            }
            RunError::OutputLimit { max_output_nodes } => {
                write!(f, "output limit of {max_output_nodes} nodes exceeded")
            }
        }
    }
}

impl std::error::Error for RunError {}

/// Run `mft` on `input`, producing `[[q0]](input)`.
pub fn run_mft(mft: &Mft, input: &[Tree]) -> Result<Forest, RunError> {
    run_mft_with_limits(mft, input, RunLimits::default())
}

/// [`run_mft`] with explicit step and output budgets.
pub fn run_mft_with_limits(
    mft: &Mft,
    input: &[Tree],
    limits: RunLimits,
) -> Result<Forest, RunError> {
    run_mft_with_stats(mft, input, limits).map(|(out, _)| out)
}

/// Counters from one in-memory interpreter run: the value-core memo
/// gauges (hit/miss/size) plus the step count.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct InterpStats {
    /// Memo probes that found an existing value.
    pub memo_hits: u64,
    /// Memo probes that missed (the configuration had to be evaluated).
    pub memo_misses: u64,
    /// Entries resident in the memo table at end of run.
    pub memo_entries: usize,
    /// Evaluation steps consumed (vs. [`RunLimits::max_steps`]).
    pub steps: u64,
}

/// [`run_mft_with_limits`], additionally reporting memo-table counters.
pub fn run_mft_with_stats(
    mft: &Mft,
    input: &[Tree],
    limits: RunLimits,
) -> Result<(Forest, InterpStats), RunError> {
    let mut ctx = Ctx {
        mft,
        steps: 0,
        limits,
        interner: ValueInterner::new(),
        memo: FxHashMap::default(),
        memo_hits: 0,
        memo_misses: 0,
    };
    let value = ctx.eval_state(mft.initial, input, Vec::new())?;
    let mut out = Vec::new();
    value
        .write_into(&mut out, limits.max_output_nodes)
        .map_err(|e| RunError::OutputLimit {
            max_output_nodes: e.max_nodes,
        })?;
    let stats = InterpStats {
        memo_hits: ctx.memo_hits,
        memo_misses: ctx.memo_misses,
        memo_entries: ctx.memo.len(),
        steps: ctx.steps,
    };
    Ok((out, stats))
}

/// Memo key of one state evaluation.
///
/// The input forest is identified by its slice address: `x1`/`x2` always
/// denote sub-slices of the (immutable, borrowed) input, so equal
/// `(ptr, len)` implies equal content for the duration of the run.
/// Parameters are identified by value fingerprints: equal fingerprints
/// imply structurally equal values (the soundness direction), and the
/// per-run [`ValueInterner`] — which keeps every produced value alive, so
/// fingerprints are never reused — makes same-shape re-derivations
/// pointer-equal, which is where the hit rate comes from.
#[derive(PartialEq, Eq, Hash)]
struct MemoKey {
    state: StateId,
    input: (usize, usize),
    params: Box<[usize]>,
}

struct Ctx<'a> {
    mft: &'a Mft,
    steps: u64,
    limits: RunLimits,
    interner: ValueInterner,
    memo: FxHashMap<MemoKey, Value>,
    memo_hits: u64,
    memo_misses: u64,
}

/// Variable bindings while evaluating one rhs. `'a` is the input forest's
/// lifetime; `'p` the (stack-local) parameter slice's.
struct Bind<'a, 'p> {
    /// x0: the full current forest.
    x0: &'a [Tree],
    /// x1/x2 and the current label; `None` in ε context.
    node: Option<(&'a Label, &'a [Tree], &'a [Tree])>,
    params: &'p [Value],
}

impl<'a> Ctx<'a> {
    /// Evaluate `[[q]](g0, params)`. Single-call right-hand sides (stay
    /// chains and CPS-style forwarding states, ubiquitous in the §3
    /// translation and the §4.2 compositions) are executed as a loop, not by
    /// recursion. A *cyclic* stay loop (the same configuration reached
    /// again) can never produce a value, so it is reported as
    /// [`RunError::StepLimit`] immediately — in constant stack and memory —
    /// rather than after burning the whole step budget.
    fn eval_state(
        &mut self,
        mut q: StateId,
        mut g0: &'a [Tree],
        mut params: Vec<Value>,
    ) -> Result<Value, RunError> {
        // Configs traversed by tail calls; they all share the final value.
        // A set: re-reaching a member proves divergence.
        let mut pending: foxq_forest::FxHashSet<MemoKey> = foxq_forest::FxHashSet::default();
        loop {
            self.steps += 1;
            if self.steps > self.limits.max_steps {
                return Err(RunError::StepLimit {
                    max_steps: self.limits.max_steps,
                });
            }
            let key = MemoKey {
                state: q,
                input: (g0.as_ptr() as usize, g0.len()),
                params: params.iter().map(Value::fingerprint).collect(),
            };
            if let Some(v) = self.memo.get(&key) {
                self.memo_hits += 1;
                let v = v.clone();
                for k in pending {
                    self.memo.insert(k, v.clone());
                }
                return Ok(v);
            }
            self.memo_misses += 1;
            let rules = &self.mft.rules[q.idx()];
            let (rhs, node) = match g0.split_first() {
                None => (&rules.eps, None),
                Some((t, rest)) => {
                    let rhs = match self.mft.alphabet.lookup(&t.label) {
                        Some(sym) if rules.by_sym.contains_key(&sym) => &rules.by_sym[&sym],
                        _ if t.is_text() && rules.text_default.is_some() => {
                            rules.text_default.as_ref().unwrap()
                        }
                        _ => &rules.default,
                    };
                    (rhs, Some((&t.label, t.children.as_slice(), rest)))
                }
            };
            if let [RhsNode::Call { state, input, args }] = rhs.as_slice() {
                // Tail call: evaluate the arguments, then loop.
                let bind = Bind {
                    x0: g0,
                    node,
                    params: &params,
                };
                let mut arg_vals = Vec::with_capacity(args.len());
                for a in args {
                    arg_vals.push(self.eval_rhs(q, a, &bind)?);
                }
                let g = match input {
                    XVar::X0 => bind.x0,
                    XVar::X1 => bind.node.map(|(_, x1, _)| x1).unwrap_or(&[]),
                    XVar::X2 => bind.node.map(|(_, _, x2)| x2).unwrap_or(&[]),
                };
                if !pending.insert(key) {
                    // The chain closed a cycle: `[[q]]` diverges here.
                    return Err(RunError::StepLimit {
                        max_steps: self.limits.max_steps,
                    });
                }
                q = *state;
                g0 = g;
                params = arg_vals;
                continue;
            }
            let bind = Bind {
                x0: g0,
                node,
                params: &params,
            };
            let value = self.eval_rhs(q, rhs, &bind)?;
            self.memo.insert(key, value.clone());
            for k in pending {
                self.memo.insert(k, value.clone());
            }
            return Ok(value);
        }
    }

    fn eval_rhs(&mut self, q: StateId, rhs: &Rhs, bind: &Bind<'a, '_>) -> Result<Value, RunError> {
        let mut acc = self.interner.empty();
        for node in rhs {
            let v = match node {
                RhsNode::Param(i) => bind.params[*i].clone(),
                RhsNode::Out { label, children } => {
                    let label = match label {
                        OutLabel::Sym(s) => self.mft.alphabet.label(*s).clone(),
                        OutLabel::Current => match bind.node {
                            Some((l, _, _)) => l.clone(),
                            None => {
                                return Err(RunError::CurrentLabelAtEps {
                                    state: self.mft.name_of(q).to_string(),
                                })
                            }
                        },
                    };
                    let kids = self.eval_rhs(q, children, bind)?;
                    self.interner.node(&label, &kids)
                }
                RhsNode::Call { state, input, args } => {
                    let g = match input {
                        XVar::X0 => bind.x0,
                        XVar::X1 => bind.node.map(|(_, x1, _)| x1).unwrap_or(&[]),
                        XVar::X2 => bind.node.map(|(_, _, x2)| x2).unwrap_or(&[]),
                    };
                    let mut arg_vals = Vec::with_capacity(args.len());
                    for a in args {
                        arg_vals.push(self.eval_rhs(q, a, bind)?);
                    }
                    self.eval_state(*state, g, arg_vals)?
                }
            };
            acc = self.interner.concat(&acc, &v);
        }
        Ok(acc)
    }
}

// ---------------------------------------------------------------------------
// The retained naive reference evaluator
// ---------------------------------------------------------------------------

/// [`run_mft_naive`]: the original copy-per-use reference evaluator, kept as
/// the oracle for property tests. Both [`RunLimits`] budgets apply: a
/// parameter-doubling chain materializes 2^n output nodes in only O(n)
/// steps, so `max_output_nodes` (counted as nodes are built, arguments
/// included) is enforced independently of `max_steps`.
pub fn run_mft_naive(mft: &Mft, input: &[Tree]) -> Result<Forest, RunError> {
    run_mft_naive_with_limits(mft, input, RunLimits::default())
}

/// [`run_mft_naive`] with explicit step and output budgets.
pub fn run_mft_naive_with_limits(
    mft: &Mft,
    input: &[Tree],
    limits: RunLimits,
) -> Result<Forest, RunError> {
    let mut ctx = naive::Ctx {
        mft,
        steps: 0,
        produced: 0,
        limits,
    };
    let mut out = Vec::new();
    ctx.eval_state(mft.initial, input, &[], &mut out)?;
    Ok(out)
}

mod naive {
    //! The pre-sharing evaluator, verbatim: parameters are `Rc<Forest>`
    //! clones extended via `extend_from_slice`, state evaluation appends
    //! into a caller-owned `Vec`.

    use super::{RunError, RunLimits};
    use crate::mft::{Mft, OutLabel, Rhs, RhsNode, StateId, XVar};
    use foxq_forest::{Forest, Label, Tree};
    use std::rc::Rc;

    pub(super) struct Ctx<'a> {
        pub mft: &'a Mft,
        pub steps: u64,
        /// Output nodes materialized so far (argument forests included —
        /// this evaluator copies per use, so every built node counts).
        pub produced: u64,
        pub limits: RunLimits,
    }

    struct Bind<'a> {
        x0: &'a [Tree],
        node: Option<(&'a Label, &'a [Tree], &'a [Tree])>,
        params: &'a [Rc<Forest>],
    }

    impl<'a> Ctx<'a> {
        pub fn eval_state(
            &mut self,
            q: StateId,
            g0: &[Tree],
            params: &[Rc<Forest>],
            out: &mut Forest,
        ) -> Result<(), RunError> {
            self.steps += 1;
            if self.steps > self.limits.max_steps {
                return Err(RunError::StepLimit {
                    max_steps: self.limits.max_steps,
                });
            }
            let rules = &self.mft.rules[q.idx()];
            match g0.split_first() {
                None => {
                    let bind = Bind {
                        x0: g0,
                        node: None,
                        params,
                    };
                    self.eval_rhs(q, &rules.eps, &bind, out)
                }
                Some((t, rest)) => {
                    let rhs = match self.mft.alphabet.lookup(&t.label) {
                        Some(sym) if rules.by_sym.contains_key(&sym) => &rules.by_sym[&sym],
                        _ if t.is_text() && rules.text_default.is_some() => {
                            rules.text_default.as_ref().unwrap()
                        }
                        _ => &rules.default,
                    };
                    let bind = Bind {
                        x0: g0,
                        node: Some((&t.label, &t.children, rest)),
                        params,
                    };
                    self.eval_rhs(q, rhs, &bind, out)
                }
            }
        }

        fn count_produced(&mut self, nodes: u64) -> Result<(), RunError> {
            self.produced = self.produced.saturating_add(nodes);
            if self.produced > self.limits.max_output_nodes {
                return Err(RunError::OutputLimit {
                    max_output_nodes: self.limits.max_output_nodes,
                });
            }
            Ok(())
        }

        fn eval_rhs(
            &mut self,
            q: StateId,
            rhs: &Rhs,
            bind: &Bind<'_>,
            out: &mut Forest,
        ) -> Result<(), RunError> {
            for node in rhs {
                match node {
                    RhsNode::Param(i) => {
                        let param = &bind.params[*i];
                        self.count_produced(foxq_forest::forest_size(param) as u64)?;
                        out.extend_from_slice(param);
                    }
                    RhsNode::Out { label, children } => {
                        let label = match label {
                            OutLabel::Sym(s) => self.mft.alphabet.label(*s).clone(),
                            OutLabel::Current => match bind.node {
                                Some((l, _, _)) => l.clone(),
                                None => {
                                    return Err(RunError::CurrentLabelAtEps {
                                        state: self.mft.name_of(q).to_string(),
                                    })
                                }
                            },
                        };
                        let mut kids = Vec::new();
                        self.eval_rhs(q, children, bind, &mut kids)?;
                        self.count_produced(1)?;
                        out.push(Tree {
                            label,
                            children: kids,
                        });
                    }
                    RhsNode::Call { state, input, args } => {
                        let g = match input {
                            XVar::X0 => bind.x0,
                            XVar::X1 => bind.node.map(|(_, x1, _)| x1).unwrap_or(&[]),
                            XVar::X2 => bind.node.map(|(_, _, x2)| x2).unwrap_or(&[]),
                        };
                        let mut arg_vals = Vec::with_capacity(args.len());
                        for a in args {
                            let mut v = Vec::new();
                            self.eval_rhs(q, a, bind, &mut v)?;
                            arg_vals.push(Rc::new(v));
                        }
                        self.eval_state(*state, g, &arg_vals, out)?;
                    }
                }
            }
            Ok(())
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::mft::rhs::*;
    use foxq_forest::term::{forest_to_term, parse_forest};

    /// Identity transducer: qcopy(%t(x1)x2) → %t(qcopy(x1)) qcopy(x2).
    fn identity() -> Mft {
        let mut m = Mft::new();
        let q = m.add_state("qcopy", 0);
        m.initial = q;
        m.set_default_rule(
            q,
            vec![
                out_current(vec![call(q, XVar::X1, vec![])]),
                call(q, XVar::X2, vec![]),
            ],
        );
        m.validate().unwrap();
        m
    }

    #[test]
    fn identity_copies_any_forest() {
        let m = identity();
        for src in ["", "a", "a(b(\"t\") c) d(e)"] {
            let f = parse_forest(src).unwrap();
            assert_eq!(run_mft(&m, &f).unwrap(), f, "on {src:?}");
            assert_eq!(run_mft_naive(&m, &f).unwrap(), f, "naive on {src:?}");
        }
    }

    #[test]
    fn doubling_ft_has_exponential_output() {
        // §4.2: q(a(x1)x2) → q(x2)q(x2); q(ε) → a. Forest of n a's → 2^n a's.
        let mut m = Mft::new();
        let a = m.alphabet.intern_elem("a");
        let q = m.add_state("q", 0);
        m.initial = q;
        m.set_sym_rule(
            q,
            a,
            vec![call(q, XVar::X2, vec![]), call(q, XVar::X2, vec![])],
        );
        m.set_eps_rule(q, vec![out(a, vec![])]);
        m.validate().unwrap();
        let f = parse_forest("a a a a").unwrap();
        let out = run_mft(&m, &f).unwrap();
        assert_eq!(out.len(), 16);
        assert_eq!(run_mft_naive(&m, &f).unwrap(), out);
    }

    #[test]
    fn doubling_output_budget_is_enforced() {
        // 20 a's → 2^20 output trees; a budget below that must refuse to
        // materialize — in far fewer than 2^20 steps.
        let mut m = Mft::new();
        let a = m.alphabet.intern_elem("a");
        let q = m.add_state("q", 0);
        m.initial = q;
        m.set_sym_rule(
            q,
            a,
            vec![call(q, XVar::X2, vec![]), call(q, XVar::X2, vec![])],
        );
        m.set_eps_rule(q, vec![out(a, vec![])]);
        m.validate().unwrap();
        let f = parse_forest(&"a ".repeat(20)).unwrap();
        let limits = RunLimits {
            max_steps: 10_000,
            max_output_nodes: 1_000,
        };
        assert_eq!(
            run_mft_with_limits(&m, &f, limits),
            Err(RunError::OutputLimit {
                max_output_nodes: 1_000
            })
        );
        // With the budget lifted the same run succeeds (sharing keeps the
        // evaluation itself far below the step limit).
        let out = run_mft_with_limits(
            &m,
            &f,
            RunLimits {
                max_steps: 10_000,
                max_output_nodes: u64::MAX,
            },
        )
        .unwrap();
        assert_eq!(out.len(), 1 << 20);
    }

    #[test]
    fn parameters_accumulate() {
        // rev(σ(x1)x2, y) → rev(x2, σ(ε) y); rev(ε, y) → y — reverses a flat
        // forest using an accumulating parameter.
        let mut m = Mft::new();
        let q0 = m.add_state("q0", 0);
        let rev = m.add_state("rev", 1);
        m.initial = q0;
        m.set_default_rule(q0, vec![call(rev, XVar::X0, vec![vec![]])]);
        m.set_eps_rule(q0, vec![call(rev, XVar::X0, vec![vec![]])]);
        m.set_default_rule(
            rev,
            vec![call(
                rev,
                XVar::X2,
                vec![vec![out_current(vec![]), param(0)]],
            )],
        );
        m.set_eps_rule(rev, vec![param(0)]);
        m.validate().unwrap();
        let f = parse_forest("a b c").unwrap();
        assert_eq!(forest_to_term(&run_mft(&m, &f).unwrap()), "c() b() a()");
        assert_eq!(
            forest_to_term(&run_mft_naive(&m, &f).unwrap()),
            "c() b() a()"
        );
    }

    #[test]
    fn stay_loop_hits_step_limit() {
        let mut m = Mft::new();
        let q = m.add_state("q", 0);
        m.initial = q;
        m.set_eps_rule(q, vec![call(q, XVar::X0, vec![])]);
        m.validate().unwrap();
        let limits = RunLimits::with_max_steps(1000);
        let r = run_mft_with_limits(&m, &[], limits);
        assert_eq!(r, Err(RunError::StepLimit { max_steps: 1000 }));
        // Same behavior from the reference evaluator.
        let r = run_mft_naive_with_limits(&m, &[], limits);
        assert_eq!(r, Err(RunError::StepLimit { max_steps: 1000 }));
    }

    #[test]
    fn naive_output_budget_stops_param_doubling() {
        // p_i(x0, y1 y1): 2^40 output nodes in ~42 steps. Both evaluators
        // must refuse under the same budget with the same error.
        let mut src = String::from("q0(%) -> p0(x0, a());\n");
        for i in 0..40 {
            src.push_str(&format!("p{i}(%, y1) -> p{}(x0, y1 y1);\n", i + 1));
        }
        src.push_str("p40(%, y1) -> y1;\n");
        let m = crate::text::parse_mft(&src).unwrap();
        let limits = RunLimits {
            max_steps: 10_000,
            max_output_nodes: 1_000,
        };
        let expected = Err(RunError::OutputLimit {
            max_output_nodes: 1_000,
        });
        assert_eq!(run_mft_naive_with_limits(&m, &[], limits), expected);
        assert_eq!(run_mft_with_limits(&m, &[], limits), expected);
    }

    #[test]
    fn cyclic_stay_loop_fails_fast_under_default_limits() {
        // A pure stay loop closes a configuration cycle on its second tail
        // call; with the default 200M-step budget the evaluator must report
        // divergence immediately (constant memory), not burn the budget.
        let mut m = Mft::new();
        let q = m.add_state("q", 0);
        m.initial = q;
        m.set_eps_rule(q, vec![call(q, XVar::X0, vec![])]);
        m.validate().unwrap();
        let start = std::time::Instant::now();
        let r = run_mft(&m, &[]);
        assert!(matches!(r, Err(RunError::StepLimit { .. })), "{r:?}");
        assert!(
            start.elapsed() < std::time::Duration::from_secs(5),
            "cycle not detected eagerly: {:?}",
            start.elapsed()
        );
    }

    #[test]
    fn memoization_collapses_repeated_subevaluations() {
        // The doubling FT revisits the same (state, suffix) pair 2^i times;
        // with memoization the step count stays linear in the input, even
        // though the output is exponential.
        let mut m = Mft::new();
        let a = m.alphabet.intern_elem("a");
        let q = m.add_state("q", 0);
        m.initial = q;
        m.set_sym_rule(
            q,
            a,
            vec![call(q, XVar::X2, vec![]), call(q, XVar::X2, vec![])],
        );
        m.set_eps_rule(q, vec![out(a, vec![])]);
        m.validate().unwrap();
        let f = parse_forest(&"a ".repeat(30)).unwrap();
        // 2^30 output trees; the naive evaluator would need ≥ 2^30 steps.
        // 1000 steps suffice for the memoizing evaluator.
        let r = run_mft_with_limits(
            &m,
            &f,
            RunLimits {
                max_steps: 1_000,
                max_output_nodes: 100,
            },
        );
        // It reaches the output boundary (not the step limit) and correctly
        // refuses to materialize 2^30 nodes.
        assert_eq!(
            r,
            Err(RunError::OutputLimit {
                max_output_nodes: 100
            })
        );
    }

    #[test]
    fn interp_stats_report_memo_behavior() {
        // Same doubling FT as above, shallow enough to materialize: each
        // suffix is evaluated once (a miss) and hit once by the second
        // branch of the rule that revisits it.
        let mut m = Mft::new();
        let a = m.alphabet.intern_elem("a");
        let q = m.add_state("q", 0);
        m.initial = q;
        m.set_sym_rule(
            q,
            a,
            vec![call(q, XVar::X2, vec![]), call(q, XVar::X2, vec![])],
        );
        m.set_eps_rule(q, vec![out(a, vec![])]);
        m.validate().unwrap();
        let f = parse_forest(&"a ".repeat(8)).unwrap();
        let (_, stats) = run_mft_with_stats(&m, &f, RunLimits::default()).unwrap();
        assert!(stats.memo_hits >= 8, "{stats:?}");
        assert!(stats.memo_misses >= stats.memo_entries as u64, "{stats:?}");
        assert!(stats.memo_entries >= 8, "{stats:?}");
        assert_eq!(
            stats.steps,
            stats.memo_hits + stats.memo_misses,
            "{stats:?}"
        );
    }

    #[test]
    fn text_default_rule_takes_precedence_for_text() {
        // q matches text nodes via %ttext, everything else via default.
        let mut m = Mft::new();
        let q = m.add_state("q", 0);
        m.initial = q;
        m.set_text_rule(q, vec![out_current(vec![]), call(q, XVar::X2, vec![])]);
        m.set_default_rule(
            q,
            vec![call(q, XVar::X1, vec![]), call(q, XVar::X2, vec![])],
        );
        m.validate().unwrap();
        let f = parse_forest(r#"a("x" b("y"))"#).unwrap();
        let out = run_mft(&m, &f).unwrap();
        assert_eq!(forest_to_term(&out), r#""x" "y""#);
    }

    #[test]
    fn sym_rule_beats_text_default() {
        // A (q,"person0")-rule fires on exactly that text constant.
        let mut m = Mft::new();
        let person0 = m.alphabet.intern_text("person0");
        let yes = m.alphabet.intern_elem("yes");
        let no = m.alphabet.intern_elem("no");
        let q = m.add_state("q", 0);
        m.initial = q;
        m.set_sym_rule(
            q,
            person0,
            vec![out(yes, vec![]), call(q, XVar::X2, vec![])],
        );
        m.set_text_rule(q, vec![out(no, vec![]), call(q, XVar::X2, vec![])]);
        m.set_default_rule(q, vec![call(q, XVar::X2, vec![])]);
        m.validate().unwrap();
        let f = parse_forest(r#""person0" "person1" e "person0""#).unwrap();
        let out = run_mft(&m, &f).unwrap();
        assert_eq!(forest_to_term(&out), "yes() no() yes()");
    }

    #[test]
    fn current_label_at_eps_error_parity() {
        // Built without validate(): %t in an ε-rule must fail identically in
        // both evaluators.
        let mut m = Mft::new();
        let q = m.add_state("qbad", 0);
        m.initial = q;
        m.set_eps_rule(q, vec![out_current(vec![])]);
        let expected = Err(RunError::CurrentLabelAtEps {
            state: "qbad".to_string(),
        });
        assert_eq!(run_mft(&m, &[]), expected);
        assert_eq!(run_mft_naive(&m, &[]), expected);
    }
}
