//! In-memory (denotational) MFT interpreter.
//!
//! Implements the semantics of §2.2 directly: every state `q` of rank m+1
//! realizes `[[q]] : F^{m+1} → F`, defined by structural recursion over the
//! input forest; parameters are forest values. This interpreter materializes
//! the whole input and output and serves as the reference implementation the
//! streaming engine (and all optimizations) are tested against.
//!
//! The paper only deals with *terminating* MFTs; since stay moves can loop,
//! the interpreter enforces a configurable step budget and reports
//! [`RunError::StepLimit`] on exhaustion.

use crate::mft::{Mft, OutLabel, Rhs, RhsNode, StateId, XVar};
use foxq_forest::{Forest, Label, Tree};
use std::rc::Rc;

/// Limits for one interpreter run.
#[derive(Debug, Clone, Copy)]
pub struct RunLimits {
    /// Maximum number of rule applications.
    pub max_steps: u64,
}

impl Default for RunLimits {
    fn default() -> Self {
        RunLimits {
            max_steps: 200_000_000,
        }
    }
}

/// Runtime failure of an interpreter run.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RunError {
    /// The step budget was exhausted (almost always a non-terminating
    /// stay-move loop).
    StepLimit { max_steps: u64 },
    /// `%t` was required in a context with no current node (an ε-rule);
    /// [`Mft::validate`] rejects such transducers statically.
    CurrentLabelAtEps { state: String },
}

impl std::fmt::Display for RunError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            RunError::StepLimit { max_steps } => {
                write!(
                    f,
                    "step limit of {max_steps} exceeded (non-terminating stay moves?)"
                )
            }
            RunError::CurrentLabelAtEps { state } => {
                write!(f, "%t used with no current node in state {state}")
            }
        }
    }
}

impl std::error::Error for RunError {}

/// Run `mft` on `input`, producing `[[q0]](input)`.
pub fn run_mft(mft: &Mft, input: &[Tree]) -> Result<Forest, RunError> {
    run_mft_with_limits(mft, input, RunLimits::default())
}

/// [`run_mft`] with an explicit step budget.
pub fn run_mft_with_limits(
    mft: &Mft,
    input: &[Tree],
    limits: RunLimits,
) -> Result<Forest, RunError> {
    let mut ctx = Ctx {
        mft,
        steps: 0,
        limits,
    };
    let mut out = Vec::new();
    ctx.eval_state(mft.initial, input, &[], &mut out)?;
    Ok(out)
}

struct Ctx<'a> {
    mft: &'a Mft,
    steps: u64,
    limits: RunLimits,
}

/// Variable bindings while evaluating one rhs.
struct Bind<'a> {
    /// x0: the full current forest.
    x0: &'a [Tree],
    /// x1/x2 and the current label; `None` in ε context.
    node: Option<(&'a Label, &'a [Tree], &'a [Tree])>,
    params: &'a [Rc<Forest>],
}

impl<'a> Ctx<'a> {
    fn eval_state(
        &mut self,
        q: StateId,
        g0: &[Tree],
        params: &[Rc<Forest>],
        out: &mut Forest,
    ) -> Result<(), RunError> {
        self.steps += 1;
        if self.steps > self.limits.max_steps {
            return Err(RunError::StepLimit {
                max_steps: self.limits.max_steps,
            });
        }
        let rules = &self.mft.rules[q.idx()];
        match g0.split_first() {
            None => {
                let bind = Bind {
                    x0: g0,
                    node: None,
                    params,
                };
                self.eval_rhs(q, &rules.eps, &bind, out)
            }
            Some((t, rest)) => {
                let rhs = match self.mft.alphabet.lookup(&t.label) {
                    Some(sym) if rules.by_sym.contains_key(&sym) => &rules.by_sym[&sym],
                    _ if t.is_text() && rules.text_default.is_some() => {
                        rules.text_default.as_ref().unwrap()
                    }
                    _ => &rules.default,
                };
                let bind = Bind {
                    x0: g0,
                    node: Some((&t.label, &t.children, rest)),
                    params,
                };
                self.eval_rhs(q, rhs, &bind, out)
            }
        }
    }

    fn eval_rhs(
        &mut self,
        q: StateId,
        rhs: &Rhs,
        bind: &Bind<'_>,
        out: &mut Forest,
    ) -> Result<(), RunError> {
        for node in rhs {
            match node {
                RhsNode::Param(i) => out.extend_from_slice(&bind.params[*i]),
                RhsNode::Out { label, children } => {
                    let label = match label {
                        OutLabel::Sym(s) => self.mft.alphabet.label(*s).clone(),
                        OutLabel::Current => match bind.node {
                            Some((l, _, _)) => l.clone(),
                            None => {
                                return Err(RunError::CurrentLabelAtEps {
                                    state: self.mft.name_of(q).to_string(),
                                })
                            }
                        },
                    };
                    let mut kids = Vec::new();
                    self.eval_rhs(q, children, bind, &mut kids)?;
                    out.push(Tree {
                        label,
                        children: kids,
                    });
                }
                RhsNode::Call { state, input, args } => {
                    let g = match input {
                        XVar::X0 => bind.x0,
                        XVar::X1 => bind.node.map(|(_, x1, _)| x1).unwrap_or(&[]),
                        XVar::X2 => bind.node.map(|(_, _, x2)| x2).unwrap_or(&[]),
                    };
                    let mut arg_vals = Vec::with_capacity(args.len());
                    for a in args {
                        let mut v = Vec::new();
                        self.eval_rhs(q, a, bind, &mut v)?;
                        arg_vals.push(Rc::new(v));
                    }
                    self.eval_state(*state, g, &arg_vals, out)?;
                }
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::mft::rhs::*;
    use foxq_forest::term::{forest_to_term, parse_forest};

    /// Identity transducer: qcopy(%t(x1)x2) → %t(qcopy(x1)) qcopy(x2).
    fn identity() -> Mft {
        let mut m = Mft::new();
        let q = m.add_state("qcopy", 0);
        m.initial = q;
        m.set_default_rule(
            q,
            vec![
                out_current(vec![call(q, XVar::X1, vec![])]),
                call(q, XVar::X2, vec![]),
            ],
        );
        m.validate().unwrap();
        m
    }

    #[test]
    fn identity_copies_any_forest() {
        let m = identity();
        for src in ["", "a", "a(b(\"t\") c) d(e)"] {
            let f = parse_forest(src).unwrap();
            assert_eq!(run_mft(&m, &f).unwrap(), f, "on {src:?}");
        }
    }

    #[test]
    fn doubling_ft_has_exponential_output() {
        // §4.2: q(a(x1)x2) → q(x2)q(x2); q(ε) → a. Forest of n a's → 2^n a's.
        let mut m = Mft::new();
        let a = m.alphabet.intern_elem("a");
        let q = m.add_state("q", 0);
        m.initial = q;
        m.set_sym_rule(
            q,
            a,
            vec![call(q, XVar::X2, vec![]), call(q, XVar::X2, vec![])],
        );
        m.set_eps_rule(q, vec![out(a, vec![])]);
        m.validate().unwrap();
        let f = parse_forest("a a a a").unwrap();
        let out = run_mft(&m, &f).unwrap();
        assert_eq!(out.len(), 16);
    }

    #[test]
    fn parameters_accumulate() {
        // rev(σ(x1)x2, y) → rev(x2, σ(ε) y); rev(ε, y) → y — reverses a flat
        // forest using an accumulating parameter.
        let mut m = Mft::new();
        let q0 = m.add_state("q0", 0);
        let rev = m.add_state("rev", 1);
        m.initial = q0;
        m.set_default_rule(q0, vec![call(rev, XVar::X0, vec![vec![]])]);
        m.set_eps_rule(q0, vec![call(rev, XVar::X0, vec![vec![]])]);
        m.set_default_rule(
            rev,
            vec![call(
                rev,
                XVar::X2,
                vec![vec![out_current(vec![]), param(0)]],
            )],
        );
        m.set_eps_rule(rev, vec![param(0)]);
        m.validate().unwrap();
        let f = parse_forest("a b c").unwrap();
        assert_eq!(forest_to_term(&run_mft(&m, &f).unwrap()), "c() b() a()");
    }

    #[test]
    fn stay_loop_hits_step_limit() {
        let mut m = Mft::new();
        let q = m.add_state("q", 0);
        m.initial = q;
        m.set_eps_rule(q, vec![call(q, XVar::X0, vec![])]);
        m.validate().unwrap();
        let r = run_mft_with_limits(&m, &[], RunLimits { max_steps: 1000 });
        assert_eq!(r, Err(RunError::StepLimit { max_steps: 1000 }));
    }

    #[test]
    fn text_default_rule_takes_precedence_for_text() {
        // q matches text nodes via %ttext, everything else via default.
        let mut m = Mft::new();
        let q = m.add_state("q", 0);
        m.initial = q;
        m.set_text_rule(q, vec![out_current(vec![]), call(q, XVar::X2, vec![])]);
        m.set_default_rule(
            q,
            vec![call(q, XVar::X1, vec![]), call(q, XVar::X2, vec![])],
        );
        m.validate().unwrap();
        let f = parse_forest(r#"a("x" b("y"))"#).unwrap();
        let out = run_mft(&m, &f).unwrap();
        assert_eq!(forest_to_term(&out), r#""x" "y""#);
    }

    #[test]
    fn sym_rule_beats_text_default() {
        // A (q,"person0")-rule fires on exactly that text constant.
        let mut m = Mft::new();
        let person0 = m.alphabet.intern_text("person0");
        let yes = m.alphabet.intern_elem("yes");
        let no = m.alphabet.intern_elem("no");
        let q = m.add_state("q", 0);
        m.initial = q;
        m.set_sym_rule(
            q,
            person0,
            vec![out(yes, vec![]), call(q, XVar::X2, vec![])],
        );
        m.set_text_rule(q, vec![out(no, vec![]), call(q, XVar::X2, vec![])]);
        m.set_default_rule(q, vec![call(q, XVar::X2, vec![])]);
        m.validate().unwrap();
        let f = parse_forest(r#""person0" "person1" e "person0""#).unwrap();
        let out = run_mft(&m, &f).unwrap();
        assert_eq!(forest_to_term(&out), "yes() no() yes()");
    }
}
