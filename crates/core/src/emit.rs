//! Earliest emission — stream query results out before the document ends.
//!
//! The streaming engine ([`crate::stream`]) already maintains the earliest
//! emission invariant internally: after every input event it walks the
//! leftmost frontier of the output graph, pushes everything ground to the
//! sink, stalls at the first pending state call, and frees the flushed
//! prefix from the arena. What it lacked was a way to *release* that
//! irrevocable prefix downstream incrementally — every caller buffered the
//! whole serialized output and shipped it after end-of-input.
//!
//! This module closes the gap with two pieces:
//!
//! * [`EmitSink`] — an [`XmlSink`] with an `emit` boundary. The emission
//!   drivers ([`run_streaming_emit`](crate::stream::run_streaming_emit) and
//!   the per-lane variants in `foxq_service`) call `emit` after each
//!   delivered input event; everything pushed since the previous boundary
//!   is irrevocable (per the paper's earliest-emission argument: no pending
//!   state call remains to its left) and can be handed to a socket, stdout,
//!   or a chunked HTTP response without ever being revoked.
//! * [`EmissionAnalysis`] — a static analysis over the compiled MFT that
//!   answers, per state, *can this state ever have ground output to the
//!   left of a pending call?* A transducer none of whose reachable states
//!   can is end-buffered by construction (its entire output materializes at
//!   the eof tick); one whose initial state can is expected to stream.
//!
//! [`EmitWriter`] is the serializer both the server and the CLI use: it
//! renders output events through the shared [`XmlWriter`] (so streamed
//! bytes are identical to materialized ones) into an internal buffer that
//! each `emit` boundary drains through a caller-supplied delivery closure.

use crate::mft::{Mft, Rhs, RhsNode, StateId};
use foxq_forest::{Label, NodeKind};
use foxq_xml::{XmlSink, XmlWriter};
use std::io;

// ---------------------------------------------------------------------------
// EmitSink
// ---------------------------------------------------------------------------

/// An [`XmlSink`] with an emission boundary.
///
/// The engine's emission drivers call [`EmitSink::emit`] after each fully
/// processed input event (and once more after end-of-input). Everything
/// pushed via `open`/`close` since the previous boundary is *irrevocable* —
/// no pending state call remains to its left — so the sink may release it
/// downstream immediately. `emit` with nothing new accumulated must be a
/// cheap no-op: most input events grow no output on buffering queries.
///
/// Unlike the per-event `open`/`close` hot path (infallible, errors
/// deferred), `emit` is fallible: a delivery failure (client hung up,
/// stdout closed) aborts the run as [`StreamError::Emit`] — there is no
/// point transducing input nobody will read.
///
/// [`StreamError::Emit`]: crate::stream::StreamError::Emit
pub trait EmitSink: XmlSink {
    /// Release everything accumulated since the previous boundary.
    fn emit(&mut self) -> io::Result<()>;
}

// ---------------------------------------------------------------------------
// EmitWriter
// ---------------------------------------------------------------------------

/// Serializes output events into an internal buffer and hands each
/// irrevocable prefix to a delivery closure at [`EmitSink::emit`] time.
///
/// Serialization goes through the same [`XmlWriter`] as the materializing
/// [`WriterSink`](foxq_xml::WriterSink), so the concatenation of delivered
/// prefixes is byte-identical to the buffered output (proptest-guarded in
/// `tests/emit_stream.rs`). I/O errors from the delivery closure surface at
/// the next `emit` / [`EmitWriter::finish`], mirroring `WriterSink`'s
/// deferred-error contract on the infallible `open`/`close` path.
pub struct EmitWriter<F: FnMut(&[u8]) -> io::Result<()>> {
    writer: XmlWriter<Vec<u8>>,
    deliver: F,
    /// Non-empty prefixes delivered so far.
    chunks: u64,
    error: Option<io::Error>,
}

impl<F: FnMut(&[u8]) -> io::Result<()>> EmitWriter<F> {
    pub fn new(deliver: F) -> Self {
        EmitWriter {
            writer: XmlWriter::new(Vec::new()),
            deliver,
            chunks: 0,
            error: None,
        }
    }

    /// Total serialized bytes (delivered + still buffered).
    pub fn bytes_written(&self) -> u64 {
        self.writer.bytes_written()
    }

    /// Non-empty prefixes delivered so far.
    pub fn chunks_delivered(&self) -> u64 {
        self.chunks
    }

    /// Check for a deferred serialization error (delivery errors surface
    /// eagerly from [`EmitSink::emit`], so after a successful final emit
    /// this can only report buffer-write failures, which cannot happen for
    /// `Vec`).
    pub fn finish(mut self) -> io::Result<()> {
        match self.error.take() {
            Some(e) => Err(e),
            None => Ok(()),
        }
    }

    fn record(&mut self, r: io::Result<()>) {
        if self.error.is_none() {
            if let Err(e) = r {
                self.error = Some(e);
            }
        }
    }
}

impl<F: FnMut(&[u8]) -> io::Result<()>> XmlSink for EmitWriter<F> {
    fn open(&mut self, label: &Label) {
        let r = match label.kind {
            NodeKind::Element => self.writer.start_elem(&label.name),
            NodeKind::Text => self.writer.text(&label.name),
        };
        self.record(r);
    }

    fn close(&mut self, label: &Label) {
        if label.kind == NodeKind::Element {
            let r = self.writer.end_elem(&label.name);
            self.record(r);
        }
    }
}

impl<F: FnMut(&[u8]) -> io::Result<()>> EmitSink for EmitWriter<F> {
    fn emit(&mut self) -> io::Result<()> {
        if let Some(e) = self.error.take() {
            return Err(e);
        }
        let buf = self.writer.get_mut();
        if buf.is_empty() {
            return Ok(());
        }
        let r = (self.deliver)(buf);
        buf.clear();
        if r.is_ok() {
            self.chunks += 1;
        }
        r
    }
}

// ---------------------------------------------------------------------------
// Static emission analysis
// ---------------------------------------------------------------------------

/// Per-state answer to *can this state have ground output to the left of a
/// pending call?* — the static side of earliest emission.
///
/// A state `q` is **early-emitting** when some reachable configuration of
/// `q` holds an output event that is already irrevocable (no pending call
/// to its left) while a pending call remains to its right. The engine
/// flushes exactly such prefixes; a transducer whose initial state is not
/// early-emitting keeps its entire output behind its leftmost pending call
/// until end-of-input (the end-buffered shape — e.g. the unoptimized
/// translation that accumulates `qcopy(x0)` in a parameter).
///
/// Computed as a least fixpoint over rule right-hand sides, `early[q]`
/// holds iff some rule of `q`
///
/// * places an output node strictly before a state call in emission
///   (pre-order) position — the output flushes while the call pends — or
/// * contains a call (anywhere, including accumulator arguments) to an
///   early-emitting state: substituting that state's rule exhibits the
///   same shape one expansion later.
///
/// Parameters (`y_i`) are opaque: their content is supplied by the caller
/// and placed wherever the callee puts the parameter, so they count as
/// neither output nor call. The analysis is a *may* over-approximation —
/// `early[q]` can hold for runs where every call resolves within one event
/// — which is the useful direction for a streaming diagnostic.
#[derive(Debug, Clone)]
pub struct EmissionAnalysis {
    early: Vec<bool>,
}

impl EmissionAnalysis {
    /// Run the fixpoint over all states of `mft`.
    pub fn analyze(mft: &Mft) -> Self {
        let n = mft.states.len();
        let mut early = vec![false; n];
        // Seed: rules with a direct output-before-call shape.
        for (q, rules) in mft.rules.iter().enumerate() {
            let direct = rules
                .by_sym
                .values()
                .chain(rules.text_default.iter())
                .chain([&rules.default, &rules.eps])
                .any(rhs_emits_before_call);
            early[q] = direct;
        }
        // Propagate: calling an early state (anywhere) makes a state early.
        let mut changed = true;
        while changed {
            changed = false;
            for (q, rules) in mft.rules.iter().enumerate() {
                if early[q] {
                    continue;
                }
                let hit = rules
                    .by_sym
                    .values()
                    .chain(rules.text_default.iter())
                    .chain([&rules.default, &rules.eps])
                    .any(|r| rhs_calls_early(r, &early));
                if hit {
                    early[q] = true;
                    changed = true;
                }
            }
        }
        EmissionAnalysis { early }
    }

    /// Whether `q` can hold irrevocable output left of a pending call.
    pub fn is_early(&self, q: StateId) -> bool {
        self.early[q.idx()]
    }

    /// Number of early-emitting states.
    pub fn early_count(&self) -> usize {
        self.early.iter().filter(|&&b| b).count()
    }

    /// Total number of states analyzed.
    pub fn state_count(&self) -> usize {
        self.early.len()
    }

    /// Whether the transducer as a whole is expected to stream: its
    /// initial state is early-emitting.
    pub fn streams_early(&self, mft: &Mft) -> bool {
        self.is_early(mft.initial)
    }
}

/// Does `rhs` place an output node strictly before a state call in
/// emission (pre-order) position? Call arguments are excluded from the
/// positional walk: they surface at the callee's parameter positions, not
/// here.
fn rhs_emits_before_call(rhs: &Rhs) -> bool {
    fn walk(rhs: &Rhs, seen_out: &mut bool) -> bool {
        for node in rhs {
            match node {
                RhsNode::Out { children, .. } => {
                    *seen_out = true;
                    if walk(children, seen_out) {
                        return true;
                    }
                }
                RhsNode::Call { .. } => {
                    if *seen_out {
                        return true;
                    }
                }
                RhsNode::Param(_) => {}
            }
        }
        false
    }
    walk(rhs, &mut false)
}

/// Does `rhs` call an already-early state anywhere (including inside
/// accumulator arguments)?
fn rhs_calls_early(rhs: &Rhs, early: &[bool]) -> bool {
    rhs.iter().any(|node| match node {
        RhsNode::Out { children, .. } => rhs_calls_early(children, early),
        RhsNode::Call { state, args, .. } => {
            early[state.idx()] || args.iter().any(|a| rhs_calls_early(a, early))
        }
        RhsNode::Param(_) => false,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::opt::optimize;
    use crate::stream::{run_streaming_emit, StreamLimits};
    use crate::text::parse_mft;
    use crate::translate::translate;
    use foxq_xquery::parse_query;
    use std::cell::RefCell;
    use std::rc::Rc;

    #[test]
    fn identity_is_early_emitting() {
        let m =
            parse_mft("qcopy(%t(x1) x2) -> %t(qcopy(x1)) qcopy(x2); qcopy(eps) -> eps;").unwrap();
        let a = EmissionAnalysis::analyze(&m);
        assert!(a.streams_early(&m));
        assert_eq!(a.early_count(), a.state_count());
    }

    #[test]
    fn pure_accumulator_is_not_early() {
        // Everything funnels into a parameter; output only appears at eof
        // when the ε-rule discharges the accumulator. No rule ever has
        // ground output left of a call.
        let m = parse_mft(
            "q0(%t(x1) x2) -> qacc(x2, %t()); q0(eps) -> eps; \
             qacc(%t(x1) x2, y1) -> qacc(x2, y1); qacc(eps, y1) -> y1;",
        )
        .unwrap();
        let a = EmissionAnalysis::analyze(&m);
        assert!(!a.streams_early(&m));
        assert_eq!(a.early_count(), 0);
    }

    #[test]
    fn earliness_propagates_through_calls() {
        // q0 itself has no output-before-call rule, but it calls qcopy,
        // which does.
        let m = parse_mft(
            "q0(%t(x1) x2) -> qcopy(x1); q0(eps) -> eps; \
             qcopy(%t(x1) x2) -> %t(qcopy(x1)) qcopy(x2); qcopy(eps) -> eps;",
        )
        .unwrap();
        let a = EmissionAnalysis::analyze(&m);
        assert!(a.streams_early(&m));
    }

    #[test]
    fn translated_streamable_query_is_early() {
        let q =
            parse_query("<o>{ for $p in $input/people/person return <n>{$p/name/text()}</n> }</o>")
                .unwrap();
        let m = optimize(translate(&q).unwrap());
        assert!(EmissionAnalysis::analyze(&m).streams_early(&m));
    }

    #[test]
    fn emit_writer_chunks_concatenate_to_full_output() {
        let m = optimize(translate(&parse_query("<o>{$input/site/a}</o>").unwrap()).unwrap());
        let doc = "<site><a>1</a><b>x</b><a>2</a></site>";
        let chunks: Rc<RefCell<Vec<Vec<u8>>>> = Rc::default();
        let sink = {
            let chunks = chunks.clone();
            EmitWriter::new(move |p: &[u8]| {
                chunks.borrow_mut().push(p.to_vec());
                Ok(())
            })
        };
        let reader = foxq_xml::XmlReader::new(doc.as_bytes());
        let (sink, stats) = run_streaming_emit(&m, reader, sink, StreamLimits::default()).unwrap();
        assert!(sink.chunks_delivered() >= 2, "expected incremental chunks");
        sink.finish().unwrap();
        let all: Vec<u8> = chunks.borrow().iter().flatten().copied().collect();
        let expected = crate::stream::run_streaming_to_string(&m, doc.as_bytes()).unwrap();
        assert_eq!(String::from_utf8(all).unwrap(), expected.output);
        assert!(stats.emit_flushes >= 2, "{}", stats.emit_flushes);
        assert!(stats.first_emit_events > 0);
        assert!(stats.streamed_output_events > 0);
        assert!(stats.streamed_fraction() > 0.0);
    }

    #[test]
    fn emit_error_aborts_run() {
        let m =
            parse_mft("qcopy(%t(x1) x2) -> %t(qcopy(x1)) qcopy(x2); qcopy(eps) -> eps;").unwrap();
        let sink = EmitWriter::new(|_: &[u8]| {
            Err(io::Error::new(io::ErrorKind::BrokenPipe, "client gone"))
        });
        let reader = foxq_xml::XmlReader::new(b"<a><b>t</b></a>".as_slice());
        let err = match run_streaming_emit(&m, reader, sink, StreamLimits::default()) {
            Err(e) => e,
            Ok(_) => panic!("expected the run to abort on emit failure"),
        };
        assert!(matches!(err, crate::stream::StreamError::Emit(_)), "{err}");
    }
}
