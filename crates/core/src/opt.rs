//! MFT optimizations (Section 4.1 of the paper).
//!
//! Four rewrites, applied repeatedly until a fixpoint (they interact):
//!
//! 1. **Unused parameter reduction** — a parameter that never contributes to
//!    output is dropped; computed as the complement of the *necessary* set
//!    `S ⊆ Q × ℕ`, the least fixpoint of the paper's algorithm over bare
//!    occurrences.
//! 2. **Constant parameter reduction** — a parameter instantiated with the
//!    same constant forest at every (non-self) call site is substituted away.
//! 3. **Stay-move removal** — a state whose rules form the `q(%,…) → f`
//!    shorthand (no `x1`/`x2`, no `%t`) is inlined at its call sites.
//! 4. **Unreachable state removal** — states not reachable from `q0` are
//!    dropped and ids compacted.
//!
//! The translation of §3 introduces parameters for every in-scope variable;
//! most are removed here, which is what makes streaming effective: an
//! unoptimized transducer holds `qcopy(x0)` — a copy of the whole input —
//! in a parameter, so it cannot run in bounded memory (see the experiments).

use crate::mft::{rhs_size, Mft, OutLabel, Rhs, RhsNode, StateId, XVar};
use foxq_forest::FxHashSet;

/// Statistics of one [`optimize_with_stats`] run.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct OptStats {
    /// Fixpoint rounds executed.
    pub rounds: usize,
    /// Parameters removed as unused.
    pub unused_params_removed: usize,
    /// Parameters removed as constant.
    pub const_params_removed: usize,
    /// Stay states inlined.
    pub stay_states_inlined: usize,
    /// Unreachable states removed.
    pub states_removed: usize,
    /// Rewrites withheld because they would duplicate more than
    /// [`OptLimits::max_inline_growth`] nodes. Counts *events* per round, so
    /// a permanently kept candidate is counted once per round that
    /// reconsiders it; treat as a diagnostic, not a rewrite count.
    pub inline_budget_skips: usize,
}

/// Growth bounds for the inlining rewrites.
///
/// Constant-parameter substitution and stay-state inlining both *duplicate*
/// right-hand-side material when a parameter occurs more than once. On
/// adversarial inputs (nested value-doubling `let`s) unbounded duplication
/// makes the fixpoint exponential — 15 ms / 200 ms / 5.8 s at 12/16/20
/// nested lets. Mirroring gcx's `MAX_INLINED_SIZE`, each rewrite estimates
/// the nodes it would *add beyond moving existing material* and backs off —
/// keeping the parameter or stay state, which is always semantics-preserving
/// — when the estimate exceeds the budget. Rewrites that duplicate nothing
/// (single-use parameters, single-call-site stay states) are never blocked,
/// so ordinary translated queries optimize exactly as before.
#[derive(Debug, Clone, Copy)]
pub struct OptLimits {
    /// Maximum number of rhs nodes one rewrite may add by duplication.
    pub max_inline_growth: usize,
}

impl Default for OptLimits {
    fn default() -> Self {
        OptLimits {
            max_inline_growth: 512,
        }
    }
}

/// The optimizer's adversarial query family: `n` nested value-doubling lets
/// over a ground constant (`let $ai := <x>{$a(i-1)}{$a(i-1)}</x>`), whose
/// bound value — and, under unbudgeted substitution, the optimized
/// transducer — has 2^n nodes. Exported so the optimizer tests, the serving
/// tests, the `opt_nested_lets` bench, and the `perf_smoke`/CLI guards all
/// exercise exactly the same input.
pub fn nested_doubling_lets(n: usize) -> String {
    let mut src = String::from("let $a0 := <c></c> return ");
    for i in 1..=n {
        let p = i - 1;
        src.push_str(&format!("let $a{i} := <x>{{$a{p}}}{{$a{p}}}</x> return "));
    }
    src.push_str(&format!("<o>{{$a{n}}}</o>"));
    src
}

/// Apply all four optimizations to a fixpoint.
pub fn optimize(m: Mft) -> Mft {
    optimize_with_stats(m).0
}

/// [`optimize`], also reporting what was done.
pub fn optimize_with_stats(m: Mft) -> (Mft, OptStats) {
    optimize_with_limits(m, OptLimits::default())
}

/// [`optimize_with_stats`] under explicit growth bounds.
pub fn optimize_with_limits(mut m: Mft, limits: OptLimits) -> (Mft, OptStats) {
    let mut stats = OptStats::default();
    // Generous cap; every enabled rewrite strictly shrinks params + states.
    for _ in 0..10_000 {
        stats.rounds += 1;
        let mut changed = false;
        changed |= remove_unused_params(&mut m, &mut stats);
        changed |= remove_constant_params(&mut m, &mut stats, limits);
        changed |= remove_stay_states(&mut m, &mut stats, limits);
        changed |= remove_unreachable(&mut m, &mut stats);
        if !changed {
            break;
        }
    }
    debug_assert!(m.validate().is_ok(), "{:?}", m.validate());
    (m, stats)
}

// ---------------------------------------------------------------------------
// 1. Unused parameter reduction
// ---------------------------------------------------------------------------

/// Visit rhs nodes together with the call-argument context: `f(node, arg_of)`
/// where `arg_of` is `Some((callee, j))` when the node sits (directly) inside
/// the j-th argument of a call to `callee`, `None` when it is *bare*.
fn visit_with_ctx<'a>(
    rhs: &'a Rhs,
    arg_of: Option<(StateId, usize)>,
    f: &mut impl FnMut(&'a RhsNode, Option<(StateId, usize)>),
) {
    for n in rhs {
        f(n, arg_of);
        match n {
            RhsNode::Out { children, .. } => visit_with_ctx(children, arg_of, f),
            RhsNode::Call { state, args, .. } => {
                for (j, a) in args.iter().enumerate() {
                    visit_with_ctx(a, Some((*state, j)), f);
                }
            }
            RhsNode::Param(_) => {}
        }
    }
}

fn all_rhs(m: &Mft, q: StateId) -> impl Iterator<Item = &Rhs> {
    let r = &m.rules[q.idx()];
    r.by_sym
        .values()
        .chain(r.text_default.as_ref())
        .chain([&r.default, &r.eps])
}

fn remove_unused_params(m: &mut Mft, stats: &mut OptStats) -> bool {
    let nq = m.states.len();
    let mut needed: Vec<Vec<bool>> = m.states.iter().map(|s| vec![false; s.params]).collect();
    // Seed: bare occurrences.
    for (q, needed_q) in needed.iter_mut().enumerate() {
        for rhs in all_rhs(m, StateId(q as u32)) {
            visit_with_ctx(rhs, None, &mut |n, ctx| {
                if let (RhsNode::Param(i), None) = (n, ctx) {
                    needed_q[*i] = true;
                }
            });
        }
    }
    // Fixpoint: a param is needed if it occurs bare inside an argument whose
    // callee parameter is needed.
    loop {
        let mut grew = false;
        for q in 0..nq {
            for rhs in all_rhs(m, StateId(q as u32)) {
                let mut hits: Vec<(usize, usize, usize)> = Vec::new();
                visit_with_ctx(rhs, None, &mut |n, ctx| {
                    if let (RhsNode::Param(i), Some((callee, j))) = (n, ctx) {
                        hits.push((callee.idx(), j, *i));
                    }
                });
                for (callee, j, i) in hits {
                    if needed[callee][j] && !needed[q][i] {
                        needed[q][i] = true;
                        grew = true;
                    }
                }
            }
        }
        if !grew {
            break;
        }
    }
    let total_unused: usize = needed
        .iter()
        .map(|v| v.iter().filter(|&&b| !b).count())
        .sum();
    if total_unused == 0 {
        return false;
    }
    stats.unused_params_removed += total_unused;
    apply_param_removal(m, &needed);
    true
}

/// Drop every parameter whose `keep` flag is false: reindex `Param` nodes in
/// the owning state's rules and drop the argument at every call site.
fn apply_param_removal(m: &mut Mft, keep: &[Vec<bool>]) {
    // old index → new index per state.
    let remap: Vec<Vec<Option<usize>>> = keep
        .iter()
        .map(|ks| {
            let mut next = 0;
            ks.iter()
                .map(|&k| {
                    if k {
                        let i = next;
                        next += 1;
                        Some(i)
                    } else {
                        None
                    }
                })
                .collect()
        })
        .collect();
    for (q, ks) in keep.iter().enumerate() {
        m.states[q].params = ks.iter().filter(|&&k| k).count();
    }
    for q in 0..m.states.len() {
        let mut rules = std::mem::take(&mut m.rules[q]);
        for r in rules.by_sym.values_mut() {
            rewrite_params(r, q, &remap);
        }
        if let Some(r) = rules.text_default.as_mut() {
            rewrite_params(r, q, &remap);
        }
        rewrite_params(&mut rules.default, q, &remap);
        rewrite_params(&mut rules.eps, q, &remap);
        m.rules[q] = rules;
    }
}

fn rewrite_params(rhs: &mut Rhs, owner: usize, remap: &[Vec<Option<usize>>]) {
    for n in rhs.iter_mut() {
        match n {
            RhsNode::Param(i) => {
                *i = remap[owner][*i].expect("kept parameters only");
            }
            RhsNode::Out { children, .. } => rewrite_params(children, owner, remap),
            RhsNode::Call { state, args, .. } => {
                let callee = state.idx();
                let mut kept = Vec::with_capacity(args.len());
                for (j, mut a) in std::mem::take(args).into_iter().enumerate() {
                    if remap[callee][j].is_some() {
                        rewrite_params(&mut a, owner, remap);
                        kept.push(a);
                    }
                }
                *args = kept;
            }
        }
    }
}

// ---------------------------------------------------------------------------
// 2. Constant parameter reduction
// ---------------------------------------------------------------------------

/// Is this rhs a ground constant forest (symbols only — no calls, params, or
/// `%t`)?
fn is_ground(rhs: &Rhs) -> bool {
    rhs.iter().all(|n| match n {
        RhsNode::Out {
            label: OutLabel::Sym(_),
            children,
        } => is_ground(children),
        _ => false,
    })
}

/// Number of `Param(j)` occurrences (bare or nested) in `q`'s rules — the
/// count a substitution would copy its replacement into.
fn param_occurrences(m: &Mft, q: StateId, j: usize) -> usize {
    all_rhs(m, q)
        .flat_map(crate::mft::rhs_iter)
        .filter(|n| matches!(n, RhsNode::Param(i) if *i == j))
        .count()
}

fn remove_constant_params(m: &mut Mft, stats: &mut OptStats, limits: OptLimits) -> bool {
    let nq = m.states.len();
    #[derive(Clone)]
    enum Info {
        Unseen,
        Const(Rhs),
        Varying,
    }
    let mut info: Vec<Vec<Info>> = m
        .states
        .iter()
        .map(|s| vec![Info::Unseen; s.params])
        .collect();
    for q in 0..nq {
        for rhs in all_rhs(m, StateId(q as u32)) {
            let mut stack: Vec<&Rhs> = vec![rhs];
            while let Some(r) = stack.pop() {
                for n in r {
                    match n {
                        RhsNode::Out { children, .. } => stack.push(children),
                        RhsNode::Param(_) => {}
                        RhsNode::Call { state, args, .. } => {
                            for (j, a) in args.iter().enumerate() {
                                stack.push(a);
                                let self_pass = state.idx() == q
                                    && matches!(a.as_slice(), [RhsNode::Param(i)] if *i == j);
                                if self_pass {
                                    continue;
                                }
                                let slot = &mut info[state.idx()][j];
                                if is_ground(a) {
                                    match slot {
                                        Info::Unseen => *slot = Info::Const(a.clone()),
                                        Info::Const(w) if w == a => {}
                                        _ => *slot = Info::Varying,
                                    }
                                } else {
                                    *slot = Info::Varying;
                                }
                            }
                        }
                    }
                }
            }
        }
    }
    let mut keep: Vec<Vec<bool>> = m.states.iter().map(|s| vec![true; s.params]).collect();
    let mut subst: Vec<Vec<Option<Rhs>>> = m.states.iter().map(|s| vec![None; s.params]).collect();
    let mut count = 0;
    for q in 0..nq {
        for j in 0..m.states[q].params {
            if let Info::Const(w) = &info[q][j] {
                // Substituting copies `w` into every occurrence of the
                // parameter; one copy merely *moves* the call-site argument,
                // the rest is duplication. Back off when that exceeds the
                // growth budget (the parameter stays — always sound).
                let uses = param_occurrences(m, StateId(q as u32), j);
                let growth = uses.saturating_sub(1).saturating_mul(rhs_size(w));
                if growth > limits.max_inline_growth {
                    stats.inline_budget_skips += 1;
                    continue;
                }
                keep[q][j] = false;
                subst[q][j] = Some(w.clone());
                count += 1;
            }
        }
    }
    if count == 0 {
        return false;
    }
    stats.const_params_removed += count;
    // First substitute the constants for the params in the owner's rules…
    for (q, subst_q) in subst.iter().enumerate() {
        let mut rules = std::mem::take(&mut m.rules[q]);
        for r in rules.by_sym.values_mut() {
            substitute_params(r, subst_q);
        }
        if let Some(r) = rules.text_default.as_mut() {
            substitute_params(r, subst_q);
        }
        substitute_params(&mut rules.default, subst_q);
        substitute_params(&mut rules.eps, subst_q);
        m.rules[q] = rules;
    }
    // …then drop the parameter slots and call arguments.
    apply_param_removal(m, &keep);
    true
}

/// Replace `Param(i)` with `subst[i]` (splicing) where set.
fn substitute_params(rhs: &mut Rhs, subst: &[Option<Rhs>]) {
    let mut out = Vec::with_capacity(rhs.len());
    for mut n in std::mem::take(rhs) {
        match &mut n {
            RhsNode::Param(i) => {
                if let Some(w) = subst.get(*i).and_then(|s| s.as_ref()) {
                    out.extend(w.iter().cloned());
                } else {
                    out.push(n);
                }
            }
            RhsNode::Out { children, .. } => {
                substitute_params(children, subst);
                out.push(n);
            }
            RhsNode::Call { args, .. } => {
                for a in args.iter_mut() {
                    substitute_params(a, subst);
                }
                out.push(n);
            }
        }
    }
    *rhs = out;
}

// ---------------------------------------------------------------------------
// 3. Stay-move removal
// ---------------------------------------------------------------------------

/// Estimated node growth of inlining stay state `q`'s body at all its call
/// sites: duplicated argument material (a parameter occurring k times in the
/// body copies its argument k−1 extra times) plus extra body copies beyond
/// the first call site. Zero for the common translated-query shape
/// (single-use parameters, one call site), so the budget only bites on
/// adversarial value-doubling nests.
fn stay_inline_growth(m: &Mft, q: StateId) -> usize {
    let body = &m.rules[q.idx()].default;
    let bsize = rhs_size(body);
    let nparams = m.params_of(q);
    let mut occ = vec![0usize; nparams];
    for n in crate::mft::rhs_iter(body) {
        if let RhsNode::Param(i) = n {
            occ[*i] += 1;
        }
    }
    let mut sites = 0usize;
    let mut duplicated = 0usize;
    for r in 0..m.states.len() {
        for rhs in all_rhs(m, StateId(r as u32)) {
            for n in crate::mft::rhs_iter(rhs) {
                if let RhsNode::Call { state, args, .. } = n {
                    if *state == q {
                        sites += 1;
                        for (a, k) in args.iter().zip(&occ) {
                            duplicated = duplicated
                                .saturating_add(k.saturating_sub(1).saturating_mul(rhs_size(a)));
                        }
                    }
                }
            }
        }
    }
    duplicated.saturating_add(bsize.saturating_mul(sites.saturating_sub(1)))
}

fn remove_stay_states(m: &mut Mft, stats: &mut OptStats, limits: OptLimits) -> bool {
    // Find one inlinable stay state (not initial, not self-recursive) whose
    // inlining stays within the duplication budget.
    let mut skips = 0usize;
    let target = (0..m.states.len() as u32).map(StateId).find(|&q| {
        let candidate =
            q != m.initial && m.is_stay_state(q) && !rhs_calls_state(&m.rules[q.idx()].default, q);
        if candidate && stay_inline_growth(m, q) > limits.max_inline_growth {
            skips += 1;
            return false;
        }
        candidate
    });
    stats.inline_budget_skips += skips;
    let Some(q) = target else {
        return false;
    };
    let body = m.rules[q.idx()].default.clone();
    stats.stay_states_inlined += 1;
    for r in 0..m.states.len() {
        let mut rules = std::mem::take(&mut m.rules[r]);
        for rr in rules.by_sym.values_mut() {
            inline_stay(rr, q, &body);
        }
        if let Some(rr) = rules.text_default.as_mut() {
            inline_stay(rr, q, &body);
        }
        inline_stay(&mut rules.default, q, &body);
        inline_stay(&mut rules.eps, q, &body);
        m.rules[r] = rules;
    }
    // q is now uncalled; unreachable-removal collects it.
    true
}

fn rhs_calls_state(rhs: &Rhs, q: StateId) -> bool {
    crate::mft::rhs_iter(rhs).any(|n| matches!(n, RhsNode::Call { state, .. } if *state == q))
}

/// Replace calls `q(x, a1..am)` with `body[x0 ↦ x, y_i ↦ a_i]`.
fn inline_stay(rhs: &mut Rhs, q: StateId, body: &Rhs) {
    let mut out = Vec::with_capacity(rhs.len());
    for mut n in std::mem::take(rhs) {
        match &mut n {
            RhsNode::Call { state, input, args } if *state == q => {
                for a in args.iter_mut() {
                    inline_stay(a, q, body); // nested calls to q first
                }
                out.extend(subst_stay_body(body, *input, args));
                continue;
            }
            RhsNode::Call { args, .. } => {
                for a in args.iter_mut() {
                    inline_stay(a, q, body);
                }
            }
            RhsNode::Out { children, .. } => inline_stay(children, q, body),
            RhsNode::Param(_) => {}
        }
        out.push(n);
    }
    *rhs = out;
}

/// `body[x0 ↦ x, y_i ↦ args[i]]` — stay bodies contain only x0 calls, so the
/// substitution retargets every call's input.
fn subst_stay_body(body: &Rhs, x: XVar, args: &[Rhs]) -> Rhs {
    let mut out = Vec::with_capacity(body.len());
    for n in body {
        match n {
            RhsNode::Param(i) => out.extend(args[*i].iter().cloned()),
            RhsNode::Out { label, children } => out.push(RhsNode::Out {
                label: *label,
                children: subst_stay_body(children, x, args),
            }),
            RhsNode::Call {
                state,
                input,
                args: cargs,
            } => {
                debug_assert_eq!(*input, XVar::X0, "stay bodies only contain x0 calls");
                out.push(RhsNode::Call {
                    state: *state,
                    input: x,
                    args: cargs.iter().map(|a| subst_stay_body(a, x, args)).collect(),
                });
            }
        }
    }
    out
}

// ---------------------------------------------------------------------------
// 4. Unreachable state removal
// ---------------------------------------------------------------------------

fn remove_unreachable(m: &mut Mft, stats: &mut OptStats) -> bool {
    let mut reachable: FxHashSet<StateId> = FxHashSet::default();
    let mut work = vec![m.initial];
    while let Some(q) = work.pop() {
        if !reachable.insert(q) {
            continue;
        }
        for rhs in all_rhs(m, q) {
            for n in crate::mft::rhs_iter(rhs) {
                if let RhsNode::Call { state, .. } = n {
                    if !reachable.contains(state) {
                        work.push(*state);
                    }
                }
            }
        }
    }
    if reachable.len() == m.states.len() {
        return false;
    }
    stats.states_removed += m.states.len() - reachable.len();
    // Compact ids.
    let mut remap: Vec<Option<StateId>> = vec![None; m.states.len()];
    let mut next = 0u32;
    for (q, slot) in remap.iter_mut().enumerate() {
        if reachable.contains(&StateId(q as u32)) {
            *slot = Some(StateId(next));
            next += 1;
        }
    }
    let old_states = std::mem::take(&mut m.states);
    let old_rules = std::mem::take(&mut m.rules);
    for (q, (info, r)) in old_states.into_iter().zip(old_rules).enumerate() {
        if remap[q].is_some() {
            m.states.push(info);
            m.rules.push(r);
        }
    }
    m.initial = remap[m.initial.idx()].unwrap();
    for q in 0..m.states.len() {
        let mut rs = std::mem::take(&mut m.rules[q]);
        for r in rs.by_sym.values_mut() {
            remap_states(r, &remap);
        }
        if let Some(r) = rs.text_default.as_mut() {
            remap_states(r, &remap);
        }
        remap_states(&mut rs.default, &remap);
        remap_states(&mut rs.eps, &remap);
        m.rules[q] = rs;
    }
    true
}

fn remap_states(rhs: &mut Rhs, remap: &[Option<StateId>]) {
    for n in rhs.iter_mut() {
        match n {
            RhsNode::Call { state, args, .. } => {
                *state = remap[state.idx()].expect("reachable states only");
                for a in args.iter_mut() {
                    remap_states(a, remap);
                }
            }
            RhsNode::Out { children, .. } => remap_states(children, remap),
            RhsNode::Param(_) => {}
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::interp::run_mft;
    use crate::translate::translate;
    use foxq_forest::term::{forest_to_term, parse_forest};
    use foxq_xquery::{eval_query, parse_query};

    /// Optimized transducer must stay equivalent to the reference semantics.
    fn check_opt(query: &str, docs: &[&str]) -> (Mft, OptStats) {
        let q = parse_query(query).unwrap();
        let m0 = translate(&q).unwrap();
        let (m1, stats) = optimize_with_stats(m0.clone());
        m1.validate().unwrap();
        for doc in docs {
            let f = parse_forest(doc).unwrap();
            let expected = eval_query(&q, &f).unwrap();
            let a0 = run_mft(&m0, &f).unwrap();
            let a1 = run_mft(&m1, &f).unwrap();
            assert_eq!(
                forest_to_term(&a0),
                forest_to_term(&expected),
                "unopt {query}"
            );
            assert_eq!(
                forest_to_term(&a1),
                forest_to_term(&expected),
                "opt {query}"
            );
        }
        assert!(m1.state_count() <= m0.state_count());
        (m1, stats)
    }

    #[test]
    fn optimization_preserves_pperson() {
        let (m, stats) = check_opt(
            r#"<out>{ for $b in $input/person[./p_id/text() = "person0"]
               return let $r := $b/name/text() return $r }</out>"#,
            &[
                r#"person(p_id(a() "person0") name("Jim") c() name("Li"))"#,
                r#"person(p_id(a() "perso7") name("Jim") c() p_id("person0"))"#,
                r#"person(p_id("x"))"#,
                "",
            ],
        );
        // The paper's hand-optimized Mperson has 6 states and max rank 3
        // (2 parameters). Ours should land in the same region.
        assert!(m.state_count() <= 10, "{} states", m.state_count());
        assert!(m.max_params() <= 2, "max params {}", m.max_params());
        assert!(stats.unused_params_removed > 0);
        assert!(stats.stay_states_inlined > 0);
    }

    #[test]
    fn theorem2_predicate_free_queries_become_fts() {
        // Q2-style: nested for loops, no predicates, output variables only
        // from the nearest for ⇒ all parameters removable (Theorem 2).
        let (m, _) = check_opt(
            "<q2>{ for $o in $input/site/open_auctions/open_auction return
                   <increase>{ for $i in $o/bidder/increase return
                       <bid>{$i/text()}</bid> }</increase> }</q2>",
            &[r#"site(open_auctions(open_auction(bidder(increase("1")) bidder(increase("2")))))"#],
        );
        assert!(
            m.is_ft(),
            "expected an FT, got max rank {}",
            m.max_params() + 1
        );
    }

    #[test]
    fn theorem2_reconstruction_query_becomes_ft() {
        // Q13-style reconstruction.
        let (m, _) = check_opt(
            "<q13>{ for $item in $input/site/regions/australia/item return
                <item><name>{$item/name/text()}</name>
                <description>{$item/description}</description></item> }</q13>",
            &[r#"site(regions(australia(item(name("N") description(parlist(listitem("x")))))))"#],
        );
        assert!(
            m.is_ft(),
            "expected an FT, got max rank {}",
            m.max_params() + 1
        );
    }

    #[test]
    fn predicates_keep_parameters() {
        // With a predicate, rank-3 states (2 params) must survive — they are
        // the if-then-else branches.
        let (m, _) = check_opt(
            r#"<o>{$input/r/p[./id/text()="1"]}</o>"#,
            &[r#"r(p(id("1")) p(id("2")))"#],
        );
        assert!(!m.is_ft());
        assert_eq!(m.max_params(), 2);
    }

    #[test]
    fn unused_param_fixpoint_is_transitive() {
        // q passes y1 to p which passes it to r which discards it: all three
        // parameter slots must be removed.
        let src = "
            q0(%t(x1) x2) -> q(x1, a());
            q0(eps) -> eps;
            q(%t(x1) x2, y1) -> p(x1, y1);
            q(eps, y1) -> eps;
            p(%t(x1) x2, y1) -> r(x2, y1);
            p(eps, y1) -> eps;
            r(%t(x1) x2, y1) -> done();
            r(eps, y1) -> eps;
        ";
        let m = crate::text::parse_mft(src).unwrap();
        let (opt, stats) = optimize_with_stats(m.clone());
        assert_eq!(stats.unused_params_removed, 3);
        assert!(opt.is_ft());
        let f = parse_forest("x(y)").unwrap();
        assert_eq!(run_mft(&m, &f).unwrap(), run_mft(&opt, &f).unwrap());
    }

    #[test]
    fn used_params_survive_unused_analysis() {
        let src = "
            q0(%t(x1) x2) -> q(x1, hold());
            q0(eps) -> eps;
            q(%t(x1) x2, y1) -> q(x2, y1);
            q(eps, y1) -> y1;
        ";
        let m = crate::text::parse_mft(src).unwrap();
        let (opt, _) = optimize_with_stats(m.clone());
        // y1 is emitted at ε — but it is *constant* (always hold()), so the
        // constant-parameter pass may still remove the slot while preserving
        // semantics.
        for doc in ["", "x(y z)"] {
            let f = parse_forest(doc).unwrap();
            assert_eq!(
                run_mft(&m, &f).unwrap(),
                run_mft(&opt, &f).unwrap(),
                "{doc}"
            );
        }
    }

    #[test]
    fn constant_params_are_substituted() {
        // y1 of q is always c() — except for the self pass-through.
        let src = "
            q0(%t(x1) x2) -> q(x1, c());
            q0(eps) -> q(x0, c());
            q(%t(x1) x2, y1) -> q(x2, y1);
            q(eps, y1) -> y1;
        ";
        let m = crate::text::parse_mft(src).unwrap();
        let (opt, stats) = optimize_with_stats(m.clone());
        assert_eq!(stats.const_params_removed, 1);
        assert!(opt.is_ft());
        for doc in ["", "a", "a b c"] {
            let f = parse_forest(doc).unwrap();
            assert_eq!(run_mft(&m, &f).unwrap(), run_mft(&opt, &f).unwrap());
        }
    }

    #[test]
    fn varying_params_are_not_substituted() {
        let src = "
            q0(%t(x1) x2) -> q(x1, c()) q(x1, d());
            q0(eps) -> eps;
            q(%t(x1) x2, y1) -> q(x2, y1);
            q(eps, y1) -> y1;
        ";
        let m = crate::text::parse_mft(src).unwrap();
        let (opt, stats) = optimize_with_stats(m.clone());
        assert_eq!(stats.const_params_removed, 0);
        let f = parse_forest("a(b)").unwrap();
        assert_eq!(run_mft(&m, &f).unwrap(), run_mft(&opt, &f).unwrap());
    }

    #[test]
    fn stay_states_are_inlined() {
        let src = "
            q0(%t(x1) x2) -> wrap(mid(x0));
            q0(eps) -> wrap(mid(x0));
            mid(%) -> inner(x0) tail();
            inner(%t(x1) x2) -> %t() inner(x2);
            inner(eps) -> eps;
        ";
        let m = crate::text::parse_mft(src).unwrap();
        let (opt, stats) = optimize_with_stats(m.clone());
        assert!(stats.stay_states_inlined >= 1);
        assert!(opt.state_count() < m.state_count());
        let f = parse_forest("a b").unwrap();
        assert_eq!(run_mft(&m, &f).unwrap(), run_mft(&opt, &f).unwrap());
    }

    #[test]
    fn self_recursive_stay_states_are_not_inlined() {
        // loop(%)→loop(x0) is non-terminating; the optimizer must leave it
        // alone (and not loop itself). It is unreachable here, so it gets
        // collected by the reachability pass instead.
        let src = "
            q0(%t(x1) x2) -> a();
            q0(eps) -> eps;
            loop(%) -> loop(x0);
        ";
        let m = crate::text::parse_mft(src).unwrap();
        let (opt, stats) = optimize_with_stats(m);
        assert_eq!(stats.stay_states_inlined, 0);
        assert_eq!(stats.states_removed, 1);
        let f = parse_forest("x").unwrap();
        assert_eq!(forest_to_term(&run_mft(&opt, &f).unwrap()), "a()");
    }

    #[test]
    fn unreachable_states_are_removed() {
        let src = "
            q0(%t(x1) x2) -> a();
            q0(eps) -> eps;
            dead(%t(x1) x2) -> b() dead2(x1);
            dead2(%t(x1) x2) -> c();
        ";
        let m = crate::text::parse_mft(src).unwrap();
        let (opt, stats) = optimize_with_stats(m);
        assert_eq!(stats.states_removed, 2);
        assert_eq!(opt.state_count(), 1);
    }

    #[test]
    fn optimizing_twice_is_idempotent() {
        let q = parse_query(
            r#"<out>{ for $b in $input/person[./p_id/text() = "person0"]
               return let $r := $b/name/text() return $r }</out>"#,
        )
        .unwrap();
        let m1 = optimize(translate(&q).unwrap());
        let (m2, stats) = optimize_with_stats(m1.clone());
        assert_eq!(m1.state_count(), m2.state_count());
        assert_eq!(stats.unused_params_removed, 0);
        assert_eq!(stats.const_params_removed, 0);
        assert_eq!(stats.stay_states_inlined, 0);
        assert_eq!(stats.states_removed, 0);
    }

    #[test]
    fn inline_budget_keeps_nested_doubling_lets_polynomial() {
        // Without the growth budget the optimized MFT materializes 2^20
        // nodes (4.2M size, ~seconds); with it, the transducer stays small
        // and the fixpoint fast.
        let q = parse_query(&nested_doubling_lets(20)).unwrap();
        let m0 = translate(&q).unwrap();
        let (m1, stats) = optimize_with_stats(m0.clone());
        m1.validate().unwrap();
        assert!(stats.inline_budget_skips > 0, "{stats:?}");
        assert!(
            m1.size() <= m0.size(),
            "budgeted optimize grew the MFT: {} > {}",
            m1.size(),
            m0.size()
        );
        assert!(m1.size() < 100_000, "size {} not polynomial", m1.size());
    }

    #[test]
    fn inline_budget_preserves_semantics() {
        // Same family at a size where the 2^n output is materializable: the
        // budgeted transducer (params kept) agrees with the unoptimized one
        // and the reference query semantics.
        let src = nested_doubling_lets(10);
        let q = parse_query(&src).unwrap();
        let m0 = translate(&q).unwrap();
        let (m1, stats) = optimize_with_stats(m0.clone());
        assert!(stats.inline_budget_skips > 0, "{stats:?}");
        let f = parse_forest("r(a)").unwrap();
        let expected = eval_query(&q, &f).unwrap();
        assert_eq!(
            forest_to_term(&run_mft(&m0, &f).unwrap()),
            forest_to_term(&expected)
        );
        assert_eq!(
            forest_to_term(&run_mft(&m1, &f).unwrap()),
            forest_to_term(&expected)
        );
    }

    #[test]
    fn tight_budget_still_produces_valid_equivalent_transducers() {
        // max_inline_growth = 0: only duplication-free rewrites fire.
        use super::{optimize_with_limits, OptLimits};
        let query = r#"<out>{ for $b in $input/person[./p_id/text() = "person0"]
               return let $r := $b/name/text() return $r }</out>"#;
        let q = parse_query(query).unwrap();
        let m0 = translate(&q).unwrap();
        let (m1, _) = optimize_with_limits(
            m0.clone(),
            OptLimits {
                max_inline_growth: 0,
            },
        );
        m1.validate().unwrap();
        for doc in [
            r#"person(p_id(a() "person0") name("Jim") c() name("Li"))"#,
            "",
        ] {
            let f = parse_forest(doc).unwrap();
            assert_eq!(
                forest_to_term(&run_mft(&m1, &f).unwrap()),
                forest_to_term(&eval_query(&q, &f).unwrap()),
                "{doc}"
            );
        }
    }

    #[test]
    fn size_reduction_on_benchmark_queries() {
        for query in [
            "<o>{ for $p in $input/site/people/person return $p/name/text() }</o>",
            "<o>{$input//*//*}</o>",
            "<double><r1>{$input/*}</r1>{$input/*}</double>",
        ] {
            let q = parse_query(query).unwrap();
            let m0 = translate(&q).unwrap();
            let (m1, _) = optimize_with_stats(m0.clone());
            assert!(
                m1.size() <= m0.size(),
                "{query}: {} > {}",
                m1.size(),
                m0.size()
            );
            // and still correct:
            let f = parse_forest(r#"site(people(person(name("N") a(b()))))"#).unwrap();
            let qq = parse_query(query).unwrap();
            assert_eq!(
                forest_to_term(&run_mft(&m1, &f).unwrap()),
                forest_to_term(&eval_query(&qq, &f).unwrap())
            );
        }
    }
}
