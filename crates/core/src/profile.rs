//! Per-run engine resource profiler.
//!
//! [`StreamProfiler`] is a [`StreamObserver`] that attributes
//! expansions, output events, and arena deltas to individual MFT states
//! (the "hot state" table) and records a bounded, adaptively
//! downsampled **buffer timeline** of
//! `(input_event_index, live_nodes, live_bytes, pending_calls)` — the
//! buffer-occupancy-over-time signal the paper's Fig. 4 plots and the
//! streamability planner (ROADMAP item 4) calibrates against.
//!
//! The timeline starts at one point per input event; when the point
//! buffer fills, adjacent points are pair-merged and the stride doubles,
//! so any run fits in a fixed budget while every window keeps its
//! within-window maxima. Mid-event transient peaks (an expansion can
//! allocate then release inside one event) are folded into the current
//! window by watching the arena's monotone run-global peaks, so
//! `max(hi_*)` over the timeline equals the run's final
//! `peak_live_nodes` / `peak_live_bytes` / `peak_pending_calls`
//! **exactly** (asserted in tests).

use crate::mft::{Mft, StateId};
use crate::stream::{BufferSample, StreamObserver};
use std::fmt::Write as _;

/// Default timeline budget (points kept before downsampling doubles
/// the stride). Must be even.
pub const DEFAULT_TIMELINE_POINTS: usize = 256;

/// Per-state accumulators (dense by `StateId` index).
#[derive(Debug, Clone, Copy, Default)]
struct StateCell {
    expansions: u64,
    output_events: u64,
    net_nodes: i64,
    net_bytes: i64,
    net_pending: i64,
}

/// One downsampled window of the buffer timeline.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct TimelinePoint {
    /// Input event index at which this window starts (1-based).
    pub start_event: u64,
    /// Live expression nodes at the window's end.
    pub live_nodes: u64,
    /// Approximate live bytes at the window's end.
    pub live_bytes: u64,
    /// Pending state calls at the window's end.
    pub pending_calls: u64,
    /// Maximum live nodes observed within the window.
    pub hi_live_nodes: u64,
    /// Maximum live bytes observed within the window.
    pub hi_live_bytes: u64,
    /// Maximum pending calls observed within the window.
    pub hi_pending_calls: u64,
}

impl TimelinePoint {
    fn observe(&mut self, s: &BufferSample) {
        self.live_nodes = s.live_nodes as u64;
        self.live_bytes = s.live_bytes as u64;
        self.pending_calls = s.pending_calls as u64;
        self.hi_live_nodes = self.hi_live_nodes.max(s.live_nodes as u64);
        self.hi_live_bytes = self.hi_live_bytes.max(s.live_bytes as u64);
        self.hi_pending_calls = self.hi_pending_calls.max(s.pending_calls as u64);
    }

    fn merge_next(&mut self, next: &TimelinePoint) {
        self.live_nodes = next.live_nodes;
        self.live_bytes = next.live_bytes;
        self.pending_calls = next.pending_calls;
        self.hi_live_nodes = self.hi_live_nodes.max(next.hi_live_nodes);
        self.hi_live_bytes = self.hi_live_bytes.max(next.hi_live_bytes);
        self.hi_pending_calls = self.hi_pending_calls.max(next.hi_pending_calls);
    }
}

/// The profiling [`StreamObserver`]: hot-state attribution plus the
/// bounded buffer timeline. Build one per run, pass it to
/// `Engine::with_observer` (or an `*_observed` driver), then turn the
/// returned observer into a [`StreamProfile`] with
/// [`StreamProfiler::into_profile`].
#[derive(Debug, Clone)]
pub struct StreamProfiler {
    states: Vec<StateCell>,
    /// Most recently expanded state — output events are credited here
    /// (the emitter has no state in hand when it flushes).
    last_state: Option<StateId>,
    points: Vec<TimelinePoint>,
    capacity: usize,
    /// Input events per timeline point (doubles on compaction).
    stride: u64,
    /// Events recorded into the current (last) point.
    window_events: u64,
    seen_peak_nodes: u64,
    seen_peak_bytes: u64,
    seen_peak_pending: u64,
}

impl StreamProfiler {
    /// A profiler sized for `mft` with the default timeline budget.
    pub fn for_mft(mft: &Mft) -> StreamProfiler {
        Self::with_capacity(mft.state_count(), DEFAULT_TIMELINE_POINTS)
    }

    /// A profiler for `state_count` states keeping at most
    /// `timeline_points` timeline windows (rounded up to even, min 2).
    pub fn with_capacity(state_count: usize, timeline_points: usize) -> StreamProfiler {
        let capacity = timeline_points.max(2).next_multiple_of(2);
        StreamProfiler {
            states: vec![StateCell::default(); state_count],
            last_state: None,
            points: Vec::new(),
            capacity,
            stride: 1,
            window_events: 0,
            seen_peak_nodes: 0,
            seen_peak_bytes: 0,
            seen_peak_pending: 0,
        }
    }

    /// Pair-merge adjacent points and double the stride.
    fn compact(&mut self) {
        let mut merged = Vec::with_capacity(self.capacity / 2);
        for pair in self.points.chunks(2) {
            let mut m = pair[0];
            if let Some(next) = pair.get(1) {
                m.merge_next(next);
            }
            merged.push(m);
        }
        self.points = merged;
        self.stride *= 2;
    }

    fn cell(&mut self, state: StateId) -> &mut StateCell {
        let idx = state.idx();
        if idx >= self.states.len() {
            self.states.resize(idx + 1, StateCell::default());
        }
        &mut self.states[idx]
    }

    /// Resolve state names against `mft` and produce the final,
    /// render-ready profile.
    pub fn into_profile(self, mft: &Mft) -> StreamProfile {
        let mut states: Vec<StateProfile> = self
            .states
            .iter()
            .enumerate()
            .filter(|(_, c)| c.expansions > 0 || c.output_events > 0)
            .map(|(idx, c)| StateProfile {
                state: mft.name_of(StateId(idx as u32)).to_string(),
                expansions: c.expansions,
                output_events: c.output_events,
                net_nodes: c.net_nodes,
                net_bytes: c.net_bytes,
                net_pending: c.net_pending,
            })
            .collect();
        states.sort_by(|a, b| {
            b.expansions
                .cmp(&a.expansions)
                .then_with(|| a.state.cmp(&b.state))
        });
        StreamProfile {
            states,
            peak_live_nodes: self.seen_peak_nodes,
            peak_live_bytes: self.seen_peak_bytes,
            peak_pending_calls: self.seen_peak_pending,
            events_per_point: self.stride,
            timeline: self.points,
        }
    }
}

impl StreamObserver for StreamProfiler {
    const ENABLED: bool = true;

    fn on_expansion(&mut self, state: StateId, d_nodes: i64, d_bytes: i64, d_pending: i64) {
        let cell = self.cell(state);
        cell.expansions += 1;
        cell.net_nodes += d_nodes;
        cell.net_bytes += d_bytes;
        cell.net_pending += d_pending;
        self.last_state = Some(state);
    }

    fn on_output_event(&mut self) {
        if let Some(state) = self.last_state {
            self.cell(state).output_events += 1;
        }
    }

    fn on_event(&mut self, sample: BufferSample) {
        if self.points.is_empty() || self.window_events == self.stride {
            if self.points.len() == self.capacity {
                self.compact();
            }
            self.points.push(TimelinePoint {
                start_event: sample.input_event_index,
                ..TimelinePoint::default()
            });
            self.window_events = 0;
        }
        self.window_events += 1;
        let point = self.points.last_mut().expect("point pushed above");
        point.observe(&sample);
        // Fold mid-event transient peaks (visible only through the
        // arena's monotone run-global peaks) into the current window,
        // so the timeline's maximum equals the run peak exactly.
        if sample.peak_live_nodes as u64 > self.seen_peak_nodes {
            self.seen_peak_nodes = sample.peak_live_nodes as u64;
            point.hi_live_nodes = point.hi_live_nodes.max(self.seen_peak_nodes);
        }
        if sample.peak_live_bytes as u64 > self.seen_peak_bytes {
            self.seen_peak_bytes = sample.peak_live_bytes as u64;
            point.hi_live_bytes = point.hi_live_bytes.max(self.seen_peak_bytes);
        }
        if sample.peak_pending_calls as u64 > self.seen_peak_pending {
            self.seen_peak_pending = sample.peak_pending_calls as u64;
            point.hi_pending_calls = point.hi_pending_calls.max(self.seen_peak_pending);
        }
    }
}

/// Per-state row of the hot-state table.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StateProfile {
    /// State name (from [`Mft::name_of`]).
    pub state: String,
    /// Rule expansions attributed to this state.
    pub expansions: u64,
    /// Output events credited to this state (most-recently-expanded
    /// attribution).
    pub output_events: u64,
    /// Net live-node delta this state's expansions caused (allocated
    /// minus released); positive means the state grows the buffer.
    pub net_nodes: i64,
    /// Net live-byte delta (ditto).
    pub net_bytes: i64,
    /// Net pending-call delta (ditto).
    pub net_pending: i64,
}

/// Finished per-run profile: hot-state table + buffer timeline.
#[derive(Debug, Clone, Default)]
pub struct StreamProfile {
    /// Per-state rows, most expansions first.
    pub states: Vec<StateProfile>,
    /// Run peak of live nodes (equals `StreamStats::peak_live_nodes`).
    pub peak_live_nodes: u64,
    /// Run peak of live bytes (equals `StreamStats::peak_live_bytes`).
    pub peak_live_bytes: u64,
    /// Run peak of pending calls (equals
    /// `StreamStats::peak_pending_calls`).
    pub peak_pending_calls: u64,
    /// Input events each timeline point covers.
    pub events_per_point: u64,
    /// The downsampled buffer timeline, in input order.
    pub timeline: Vec<TimelinePoint>,
}

/// The sparkline ramp, lowest to highest occupancy.
const SPARK_RAMP: [char; 8] = ['▁', '▂', '▃', '▄', '▅', '▆', '▇', '█'];

/// Render `values` as a sparkline scaled to the slice's maximum.
pub fn sparkline(values: impl Iterator<Item = u64>) -> String {
    let values: Vec<u64> = values.collect();
    let max = values.iter().copied().max().unwrap_or(0);
    values
        .iter()
        .map(|&v| {
            if max == 0 {
                SPARK_RAMP[0]
            } else {
                // Scale so only the true maximum hits the top glyph.
                let idx = (v * (SPARK_RAMP.len() as u64 - 1)).div_ceil(max);
                SPARK_RAMP[idx as usize]
            }
        })
        .collect()
}

impl StreamProfile {
    /// The hot-state table as aligned text (header + one row per
    /// state, most expansions first).
    pub fn hot_state_table(&self) -> String {
        let mut out = String::new();
        let name_w = self
            .states
            .iter()
            .map(|s| s.state.len())
            .max()
            .unwrap_or(5)
            .max(5);
        let _ = writeln!(
            out,
            "{:<name_w$}  {:>10}  {:>10}  {:>10}  {:>12}  {:>10}",
            "state", "expansions", "out_events", "net_nodes", "net_bytes", "net_pending"
        );
        for s in &self.states {
            let _ = writeln!(
                out,
                "{:<name_w$}  {:>10}  {:>10}  {:>10}  {:>12}  {:>10}",
                s.state, s.expansions, s.output_events, s.net_nodes, s.net_bytes, s.net_pending
            );
        }
        out
    }

    /// Render the full profile: peaks, hot-state table, and buffer
    /// timelines as sparklines (bytes and pending calls).
    pub fn render(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(
            out,
            "peaks: live nodes {}, live bytes {}, pending calls {}",
            self.peak_live_nodes, self.peak_live_bytes, self.peak_pending_calls
        );
        out.push_str(&self.hot_state_table());
        if !self.timeline.is_empty() {
            let _ = writeln!(
                out,
                "buffer timeline ({} input events/point, max bytes {}):",
                self.events_per_point, self.peak_live_bytes
            );
            let _ = writeln!(
                out,
                "  bytes   {}",
                sparkline(self.timeline.iter().map(|p| p.hi_live_bytes))
            );
            let _ = writeln!(
                out,
                "  pending {}",
                sparkline(self.timeline.iter().map(|p| p.hi_pending_calls))
            );
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::opt::optimize;
    use crate::stream::{
        run_streaming_with_limits, run_streaming_with_observer, StreamLimits, StreamStats,
    };
    use crate::translate::translate;
    use foxq_xml::{WriterSink, XmlReader};
    use foxq_xquery::parse_query;

    fn mft_for(query: &str) -> Mft {
        optimize(translate(&parse_query(query).unwrap()).unwrap())
    }

    fn doc(n: usize) -> String {
        let mut s = String::from("<people>");
        for i in 0..n {
            s.push_str(&format!("<person><name>p{i}</name><junk>x</junk></person>"));
        }
        s.push_str("</people>");
        s
    }

    fn run_plain(mft: &Mft, input: &[u8]) -> (String, StreamStats) {
        let (sink, stats) = run_streaming_with_limits(
            mft,
            XmlReader::new(input),
            WriterSink::new(Vec::new()),
            StreamLimits::default(),
        )
        .unwrap();
        let out = String::from_utf8(sink.finish().unwrap()).unwrap();
        (out, stats)
    }

    fn run_profiled(
        mft: &Mft,
        input: &[u8],
        timeline_points: usize,
    ) -> (String, StreamStats, StreamProfile) {
        let profiler = StreamProfiler::with_capacity(mft.state_count(), timeline_points);
        let (sink, stats, profiler) = run_streaming_with_observer(
            mft,
            XmlReader::new(input),
            WriterSink::new(Vec::new()),
            StreamLimits::default(),
            profiler,
        )
        .unwrap();
        let out = String::from_utf8(sink.finish().unwrap()).unwrap();
        (out, stats, profiler.into_profile(mft))
    }

    #[test]
    fn observer_on_is_stats_and_output_identical_to_off() {
        let mft =
            mft_for("<o>{ for $p in $input/people/person return <n>{$p/name/text()}</n> }</o>");
        let input = doc(50);
        let (out_off, stats_off) = run_plain(&mft, input.as_bytes());
        let (out_on, stats_on, _) = run_profiled(&mft, input.as_bytes(), 256);
        assert_eq!(out_off, out_on, "observer changed the output");
        assert_eq!(stats_off, stats_on, "observer changed the stats");
    }

    #[test]
    fn timeline_max_equals_run_peaks_exactly() {
        // Small point budget forces several compaction rounds; the
        // folded maxima must still reproduce the run peaks exactly.
        for points in [2, 4, 8, 256] {
            let mft = mft_for("<double><r1>{$input/*}</r1>{$input/*}</double>");
            let input = doc(80);
            let (_, stats, profile) = run_profiled(&mft, input.as_bytes(), points);
            assert!(profile.timeline.len() <= points.max(2));
            let max_bytes = profile.timeline.iter().map(|p| p.hi_live_bytes).max();
            let max_nodes = profile.timeline.iter().map(|p| p.hi_live_nodes).max();
            let max_pending = profile.timeline.iter().map(|p| p.hi_pending_calls).max();
            assert_eq!(
                max_bytes,
                Some(stats.peak_live_bytes as u64),
                "{points} pts"
            );
            assert_eq!(
                max_nodes,
                Some(stats.peak_live_nodes as u64),
                "{points} pts"
            );
            assert_eq!(
                max_pending,
                Some(stats.peak_pending_calls as u64),
                "{points} pts"
            );
            assert_eq!(profile.peak_live_bytes, stats.peak_live_bytes as u64);
            assert_eq!(profile.peak_live_nodes, stats.peak_live_nodes as u64);
            assert_eq!(profile.peak_pending_calls, stats.peak_pending_calls as u64);
        }
    }

    #[test]
    fn hot_states_account_for_every_expansion_and_output_event() {
        let mft =
            mft_for("<o>{ for $p in $input/people/person return <n>{$p/name/text()}</n> }</o>");
        let input = doc(20);
        let (_, stats, profile) = run_profiled(&mft, input.as_bytes(), 64);
        let expansions: u64 = profile.states.iter().map(|s| s.expansions).sum();
        let outputs: u64 = profile.states.iter().map(|s| s.output_events).sum();
        assert_eq!(expansions, stats.expansions);
        assert_eq!(outputs, stats.output_events);
        assert!(profile.states[0].expansions >= profile.states.last().unwrap().expansions);
        // Rendering carries the table and a sparkline per timeline row.
        let rendered = profile.render();
        assert!(rendered.contains("state"));
        assert!(rendered.contains("buffer timeline"));
        assert!(rendered.contains('█'), "no full-height glyph in {rendered}");
    }

    #[test]
    fn sparkline_tops_out_only_at_the_maximum() {
        assert_eq!(sparkline([0u64, 0].into_iter()), "▁▁");
        let line = sparkline([1u64, 5, 10].into_iter());
        assert_eq!(line.chars().count(), 3);
        assert!(line.ends_with('█'));
        assert!(!line.starts_with('█'));
    }
}
