//! MinXQuery → MFT compilation (Section 3 of the paper, Theorem 1).
//!
//! The compilation function `T(e, ρ, q)` is implemented case by case exactly
//! as in §3: `ρ` maps in-scope variables to parameter positions, `q` is the
//! state whose rules are being defined. The initial rules are
//!
//! ```text
//! q0(%) → q'0(x0, qcopy(x0))         with ρ0 = {$input ↦ 1}
//! ```
//!
//! so the unoptimized transducer carries a copy of the whole input in a
//! parameter — precisely the redundancy §4.1's optimizations remove.
//!
//! The path-scan rules `F(p, q, q')` satisfy the paper's equation (1):
//! for each subtree `tᵢ` matching `p`, the body state `q'` is called once,
//! at position `tᵢ sᵢ`, with a fresh copy of `tᵢ` appended as the last
//! parameter. We realize `F` with a subset construction over the path's
//! steps (the linear-path specialization of the Green et al. DFA the paper
//! cites): a scan state is a set `S` of *active* steps; a node matching the
//! final step is *selected*. Two template infelicities in the paper's prose
//! are resolved the way its own worked example (`Mperson`) and equation (1)
//! demand: scanning always continues through following siblings of a match,
//! and nested matches below a selected node are found exactly when a
//! `descendant` step remains active.
//!
//! XPath predicates become CPS states with two parameters `(then, else)` —
//! the paper's `q_{p'}` construction ("the two parameters are used as two
//! branches of a if-then-else statement", §2.2). `empty(p)` swaps the
//! branches; comparisons resolve at text-node symbols of the alphabet.

use crate::mft::{rhs, Mft, Rhs, StateId, XVar};
use foxq_forest::FxHashMap;
use foxq_xquery::ast::{Axis, NodeTest, Path, Pred, Query, Step};
use std::collections::BTreeSet;

/// Error produced by [`translate`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TranslateError {
    /// A path starts at a variable that is not in scope.
    Unbound { var: String },
    /// A path must start with the nearest enclosing `for` variable (or
    /// `$input` if there is none) — the §2.1 streamability restriction.
    NotNearestFor { var: String, expected: String },
    /// A path starts at a `let`-bound variable.
    PathFromLet { var: String },
}

impl std::fmt::Display for TranslateError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TranslateError::Unbound { var } => write!(f, "unbound variable ${var}"),
            TranslateError::NotNearestFor { var, expected } => write!(
                f,
                "path starts at ${var}; MinXQuery requires the nearest enclosing for-variable \
                 (${expected}) or $input outside any for"
            ),
            TranslateError::PathFromLet { var } => {
                write!(f, "path starts at let-bound variable ${var}")
            }
        }
    }
}

impl std::error::Error for TranslateError {}

/// Translate a MinXQuery program into an (unoptimized) MFT.
///
/// The result is total, deterministic, and semantically equal to the
/// program: `[[M_P]](f) = [[P]](f)` for every input forest `f` (Theorem 1).
/// Run [`crate::opt::optimize`] afterwards to obtain the transducer the
/// paper actually streams.
pub fn translate(query: &Query) -> Result<Mft, TranslateError> {
    let mut tr = Tr::new();
    let q0 = tr.mft.add_state("q0", 0);
    tr.mft.initial = q0;
    let qi = tr.mft.add_state("qI", 1);
    let qcopy = tr.qcopy();
    // q0(%) → qI(x0, qcopy(x0))
    tr.mft.set_stay_rule(
        q0,
        vec![rhs::call(
            qi,
            XVar::X0,
            vec![vec![rhs::call(qcopy, XVar::X0, vec![])]],
        )],
    );
    let scope = Scope {
        rho: vec![("input".to_string(), 0)],
        nearest_for: None,
        let_vars: Vec::new(),
    };
    tr.compile(query, &scope, qi)?;
    debug_assert!(tr.mft.validate().is_ok(), "{:?}", tr.mft.validate());
    Ok(tr.mft)
}

/// Compilation scope: ρ plus streamability bookkeeping.
#[derive(Clone)]
struct Scope {
    /// ρ: variable name → 0-based parameter index.
    rho: Vec<(String, usize)>,
    /// The variable of the nearest enclosing `for`, if any.
    nearest_for: Option<String>,
    /// Variables bound by `let` (paths may not start at these).
    let_vars: Vec<String>,
}

impl Scope {
    fn rank(&self) -> usize {
        self.rho.len()
    }

    fn lookup(&self, var: &str) -> Option<usize> {
        self.rho
            .iter()
            .rev()
            .find(|(n, _)| n == var)
            .map(|(_, i)| *i)
    }

    /// Check a path start against the §2.1 restriction.
    fn check_path_start(&self, var: &str) -> Result<(), TranslateError> {
        if self.lookup(var).is_none() {
            return Err(TranslateError::Unbound {
                var: var.to_string(),
            });
        }
        if self.let_vars.iter().any(|v| v == var) {
            return Err(TranslateError::PathFromLet {
                var: var.to_string(),
            });
        }
        let expected = self.nearest_for.as_deref().unwrap_or("input");
        if var != expected {
            return Err(TranslateError::NotNearestFor {
                var: var.to_string(),
                expected: expected.to_string(),
            });
        }
        Ok(())
    }
}

/// How a path scan acts on matches of the final step.
#[derive(Clone, PartialEq, Eq, Hash)]
enum Mode {
    /// Call the body state with a copy of the match (eq. (1)); carries the
    /// environment parameters through.
    Select { body: StateId, env: usize },
    /// Existential check: reaching the final step selects `then`.
    Exists,
    /// Comparison against a string constant at a final `text()` step.
    Compare { value: String, negate: bool },
}

impl Mode {
    fn params(&self) -> usize {
        match self {
            Mode::Select { env, .. } => *env,
            _ => 2, // (then, else)
        }
    }
}

/// Memo key for scan states.
#[derive(Clone, PartialEq, Eq, Hash)]
struct ScanKey {
    steps: Vec<Step>,
    mode: Mode,
    active: Vec<usize>,
}

/// Which rule of a scan state is being generated.
#[derive(Clone, PartialEq)]
enum LabelCase {
    /// A `(q,σ)`-rule for an element name.
    Elem(String),
    /// The default rule — elements not covered by a symbol rule.
    ElemDefault,
    /// A `(q,σ)`-rule for a text constant (comparisons).
    TextConst(String),
    /// The text-default rule — all remaining text nodes.
    TextDefault,
}

struct Tr {
    mft: Mft,
    qcopy: Option<StateId>,
    scan_memo: FxHashMap<ScanKey, StateId>,
    counter: usize,
}

impl Tr {
    fn new() -> Self {
        Tr {
            mft: Mft::new(),
            qcopy: None,
            scan_memo: FxHashMap::default(),
            counter: 0,
        }
    }

    /// The shared identity state:
    /// `qcopy(%t(x1)x2) → %t(qcopy(x1)) qcopy(x2); qcopy(ε) → ε`.
    fn qcopy(&mut self) -> StateId {
        if let Some(q) = self.qcopy {
            return q;
        }
        let q = self.mft.add_state("qcopy", 0);
        self.mft.set_default_rule(
            q,
            vec![
                rhs::out_current(vec![rhs::call(q, XVar::X1, vec![])]),
                rhs::call(q, XVar::X2, vec![]),
            ],
        );
        self.qcopy = Some(q);
        q
    }

    fn fresh(&mut self, prefix: &str, params: usize) -> StateId {
        self.counter += 1;
        self.mft
            .add_state(format!("{prefix}{}", self.counter), params)
    }

    /// Pass-through arguments `y1..ym`.
    fn env_args(&self, m: usize) -> Vec<Rhs> {
        (0..m).map(|i| vec![rhs::param(i)]).collect()
    }

    // ----------------------------------------------------------------
    // T(e, ρ, q)
    // ----------------------------------------------------------------

    fn compile(&mut self, e: &Query, scope: &Scope, q: StateId) -> Result<(), TranslateError> {
        let m = scope.rank();
        debug_assert_eq!(self.mft.params_of(q), m);
        match e {
            // e = e1 … en
            Query::Seq(items) => {
                let mut body = Vec::with_capacity(items.len());
                let mut subs = Vec::with_capacity(items.len());
                for _ in items {
                    let qi = self.fresh("q", m);
                    body.push(rhs::call(qi, XVar::X0, self.env_args(m)));
                    subs.push(qi);
                }
                self.mft.set_stay_rule(q, body);
                for (item, qi) in items.iter().zip(subs) {
                    self.compile(item, scope, qi)?;
                }
                Ok(())
            }
            // e = <σ>e'</σ>
            Query::Element { name, content } => {
                let sym = self.mft.alphabet.intern_elem(name);
                let inner = self.fresh("q", m);
                self.mft.set_stay_rule(
                    q,
                    vec![rhs::out(
                        sym,
                        vec![rhs::call(inner, XVar::X0, self.env_args(m))],
                    )],
                );
                match content.len() {
                    1 => self.compile(&content[0], scope, inner),
                    _ => self.compile(&Query::Seq(content.clone()), scope, inner),
                }
            }
            // e = σ (string constant)
            Query::Text(s) => {
                let sym = self.mft.alphabet.intern_text(s);
                self.mft.set_stay_rule(q, vec![rhs::out(sym, vec![])]);
                Ok(())
            }
            Query::Path(p) if p.steps.is_empty() => {
                // e = $v — output the variable's parameter.
                let idx = scope
                    .lookup(&p.start)
                    .ok_or_else(|| TranslateError::Unbound {
                        var: p.start.clone(),
                    })?;
                self.mft.set_stay_rule(q, vec![rhs::param(idx)]);
                Ok(())
            }
            // e = p — emit a copy of each selected subtree.
            Query::Path(p) => {
                scope.check_path_start(&p.start)?;
                // q'(%, y1..ym+1) → ym+1
                let sel = self.fresh("q", m + 1);
                self.mft.set_stay_rule(sel, vec![rhs::param(m)]);
                self.scan_entry(p, scope, q, sel)
            }
            // e = for $v in p return e'
            Query::For { var, path, body } => {
                scope.check_path_start(&path.start)?;
                let body_state = self.fresh("q", m + 1);
                let mut inner = scope.clone();
                inner.rho.push((var.clone(), m));
                inner.nearest_for = Some(var.clone());
                self.compile(body, &inner, body_state)?;
                self.scan_entry(path, scope, q, body_state)
            }
            // e = let $v := ev return e'
            Query::Let { var, value, body } => {
                let qv = self.fresh("q", m);
                let qb = self.fresh("q", m + 1);
                let mut args = self.env_args(m);
                args.push(vec![rhs::call(qv, XVar::X0, self.env_args(m))]);
                self.mft
                    .set_stay_rule(q, vec![rhs::call(qb, XVar::X0, args)]);
                self.compile(value, scope, qv)?;
                let mut inner = scope.clone();
                inner.rho.push((var.clone(), m));
                inner.let_vars.push(var.clone());
                self.compile(body, &inner, qb)
            }
        }
    }

    // ----------------------------------------------------------------
    // F(p, q, q') — path scans
    // ----------------------------------------------------------------

    /// Install entry rules on `q` so that scanning starts at the right
    /// position, then delegate to the scan-state machinery.
    fn scan_entry(
        &mut self,
        p: &Path,
        scope: &Scope,
        q: StateId,
        body: StateId,
    ) -> Result<(), TranslateError> {
        let m = scope.rank();
        let mode = Mode::Select { body, env: m };
        let qcopy = self.qcopy();
        if p.steps.is_empty() {
            // `for $v in $w` — a single iteration at the current position.
            let mut args = self.env_args(m);
            if p.start == "input" && scope.nearest_for.is_none() {
                // The document node: its "copy" is the whole forest.
                args.push(vec![rhs::call(qcopy, XVar::X0, vec![])]);
                self.mft
                    .set_stay_rule(q, vec![rhs::call(body, XVar::X0, args)]);
            } else {
                args.push(vec![rhs::out_current(vec![rhs::call(
                    qcopy,
                    XVar::X1,
                    vec![],
                )])]);
                self.mft
                    .set_default_rule(q, vec![rhs::call(body, XVar::X0, args)]);
                self.mft.set_eps_rule(q, vec![]);
            }
            return Ok(());
        }
        let s0: BTreeSet<usize> = [0].into_iter().collect();
        let scan = self.scan_state(&p.steps, &mode, &s0);
        let args = self.env_args(m);
        if p.start == "input" && scope.nearest_for.is_none() {
            // $input is the document node: its children are the top-level
            // forest, so the scan runs over x0 directly.
            if p.steps[0].axis == Axis::FollowingSibling {
                // The document node has no siblings.
                self.mft.set_stay_rule(q, vec![]);
            } else {
                self.mft
                    .set_stay_rule(q, vec![rhs::call(scan, XVar::X0, args)]);
            }
        } else {
            // Variable-rooted: the origin node is the first tree of the
            // current position; scan its children (or following siblings).
            let input = match p.steps[0].axis {
                Axis::FollowingSibling => XVar::X2,
                _ => XVar::X1,
            };
            self.mft
                .set_default_rule(q, vec![rhs::call(scan, input, args)]);
            self.mft.set_eps_rule(q, vec![]);
        }
        Ok(())
    }

    /// Get or create the scan state for active-step set `S`.
    fn scan_state(&mut self, steps: &[Step], mode: &Mode, s: &BTreeSet<usize>) -> StateId {
        let key = ScanKey {
            steps: steps.to_vec(),
            mode: mode.clone(),
            active: s.iter().copied().collect(),
        };
        if let Some(&q) = self.scan_memo.get(&key) {
            return q;
        }
        let prefix = match mode {
            Mode::Select { .. } => "s",
            Mode::Exists => "e",
            Mode::Compare { .. } => "c",
        };
        let q = self.fresh(prefix, mode.params());
        self.scan_memo.insert(key, q);
        self.build_scan_rules(steps, mode, s, q);
        q
    }

    fn build_scan_rules(&mut self, steps: &[Step], mode: &Mode, s: &BTreeSet<usize>, q: StateId) {
        // Symbol rules: every element name tested in the path, plus the
        // comparison constant in Compare mode.
        let mut names: BTreeSet<String> = BTreeSet::new();
        collect_names(steps, &mut names);
        let default_rhs = self.case_rhs(steps, mode, s, &LabelCase::ElemDefault);
        for name in &names {
            let r = self.case_rhs(steps, mode, s, &LabelCase::Elem(name.clone()));
            if r != default_rhs {
                let sym = self.mft.alphabet.intern_elem(name);
                self.mft.set_sym_rule(q, sym, r);
            }
        }
        let text_rhs = self.case_rhs(steps, mode, s, &LabelCase::TextDefault);
        if let Mode::Compare { value, .. } = mode {
            let r = self.case_rhs(steps, mode, s, &LabelCase::TextConst(value.clone()));
            if r != text_rhs {
                let sym = self.mft.alphabet.intern_text(value);
                self.mft.set_sym_rule(q, sym, r);
            }
        }
        // Text nodes must never fall through to the element-default rule
        // (`*` must not match text), so scan states always carry one.
        self.mft.set_text_rule(q, text_rhs);
        self.mft.set_default_rule(q, default_rhs);
        let eps = match mode {
            Mode::Select { .. } => vec![],
            _ => vec![rhs::param(1)], // else-branch
        };
        self.mft.set_eps_rule(q, eps);
    }

    /// The rhs of one rule: resolve predicates into a conditional tree, then
    /// build the leaf actions.
    fn case_rhs(
        &mut self,
        steps: &[Step],
        mode: &Mode,
        s: &BTreeSet<usize>,
        case: &LabelCase,
    ) -> Rhs {
        // Steps whose node test accepts this label.
        let matched: Vec<usize> = s
            .iter()
            .copied()
            .filter(|&i| test_accepts(&steps[i].test, case))
            .collect();
        let (plain, with_preds): (Vec<usize>, Vec<usize>) =
            matched.iter().partition(|&&i| steps[i].preds.is_empty());
        let base: BTreeSet<usize> = plain.into_iter().collect();
        // Factor the sibling continuation out of the conditional whenever no
        // predicate-guarded step activates a following-sibling successor —
        // this keeps predicate buffering local to one node. (Only meaningful
        // in Select mode; the existential modes chain through siblings.)
        let sib_factorable = matches!(mode, Mode::Select { .. })
            && with_preds
                .iter()
                .all(|&i| i + 1 >= steps.len() || steps[i + 1].axis != Axis::FollowingSibling);
        let mut out = self.cond_tree(
            steps,
            mode,
            s,
            case,
            &with_preds,
            base.clone(),
            sib_factorable,
        );
        if sib_factorable {
            if let Some(mut sib) = self.sib_part(steps, mode, s, &base) {
                out.append(&mut sib);
            }
        }
        out
    }

    /// Recursive decision tree over predicate-guarded matched steps.
    #[allow(clippy::too_many_arguments)]
    fn cond_tree(
        &mut self,
        steps: &[Step],
        mode: &Mode,
        s: &BTreeSet<usize>,
        case: &LabelCase,
        pending: &[usize],
        acc: BTreeSet<usize>,
        sib_factored: bool,
    ) -> Rhs {
        match pending.split_first() {
            None => self.leaf_rhs(steps, mode, s, case, &acc, sib_factored),
            Some((&i, rest)) => {
                let mut with = acc.clone();
                with.insert(i);
                let then_rhs = self.cond_tree(steps, mode, s, case, rest, with, sib_factored);
                let else_rhs = self.cond_tree(steps, mode, s, case, rest, acc, sib_factored);
                self.pred_conjunction(&steps[i].preds, then_rhs, else_rhs)
            }
        }
    }

    /// Wrap `then`/`else` in predicate-state calls, one per predicate
    /// (conjunction).
    fn pred_conjunction(&mut self, preds: &[Pred], then_rhs: Rhs, else_rhs: Rhs) -> Rhs {
        let mut acc = then_rhs;
        for p in preds.iter().rev() {
            acc = self.pred_call(p, acc, else_rhs.clone());
        }
        acc
    }

    /// One predicate test as a call to a CPS predicate state.
    fn pred_call(&mut self, pred: &Pred, then_rhs: Rhs, else_rhs: Rhs) -> Rhs {
        let (rel, mode, swap) = match pred {
            Pred::Exists(rel) => (rel.clone(), Mode::Exists, false),
            Pred::Empty(rel) => (rel.clone(), Mode::Exists, true),
            Pred::Eq(rel, v) => (
                rel.clone(),
                Mode::Compare {
                    value: v.clone(),
                    negate: false,
                },
                false,
            ),
            Pred::Neq(rel, v) => (
                rel.clone(),
                Mode::Compare {
                    value: v.clone(),
                    negate: true,
                },
                false,
            ),
        };
        let mut steps = rel.steps;
        if matches!(mode, Mode::Compare { .. })
            && steps
                .last()
                .map(|s| s.test != NodeTest::Text)
                .unwrap_or(false)
        {
            // Desugar `p = "s"` to `p/text() = "s"` (the fragment compares
            // text and attribute values; attributes are text children here).
            steps.push(Step {
                axis: Axis::Child,
                test: NodeTest::Text,
                preds: vec![],
            });
        }
        let s0: BTreeSet<usize> = [0].into_iter().collect();
        let scan = self.scan_state(&steps, &mode, &s0);
        let input = match steps[0].axis {
            Axis::FollowingSibling => XVar::X2,
            _ => XVar::X1,
        };
        let args = if swap {
            vec![else_rhs, then_rhs]
        } else {
            vec![then_rhs, else_rhs]
        };
        vec![rhs::call(scan, input, args)]
    }

    /// Leaf action for effective matched set `M`.
    fn leaf_rhs(
        &mut self,
        steps: &[Step],
        mode: &Mode,
        s: &BTreeSet<usize>,
        case: &LabelCase,
        m_set: &BTreeSet<usize>,
        sib_factored: bool,
    ) -> Rhs {
        let k = steps.len() - 1;
        let final_hit = m_set.contains(&k) && self.final_step_hits(mode, case);
        match mode {
            Mode::Select { body, env } => {
                let mut out = Vec::new();
                if final_hit {
                    let qcopy = self.qcopy();
                    let mut args = self.env_args(*env);
                    args.push(vec![rhs::out_current(vec![rhs::call(
                        qcopy,
                        XVar::X1,
                        vec![],
                    )])]);
                    out.push(rhs::call(*body, XVar::X0, args));
                }
                if let Some(c) = self.child_set(steps, s, m_set) {
                    let cs = self.scan_state(steps, mode, &c);
                    out.push(rhs::call(cs, XVar::X1, self.env_args(*env)));
                }
                if !sib_factored {
                    if let Some(mut sib) = self.sib_part(steps, mode, s, m_set) {
                        out.append(&mut sib);
                    }
                }
                out
            }
            Mode::Exists | Mode::Compare { .. } => {
                if final_hit {
                    return vec![rhs::param(0)]; // then — short-circuit
                }
                let b = self.sib_set(steps, s, m_set);
                let sib_call = vec![rhs::call(
                    self.scan_state(steps, mode, &b),
                    XVar::X2,
                    vec![vec![rhs::param(0)], vec![rhs::param(1)]],
                )];
                match self.child_set(steps, s, m_set) {
                    Some(c) => {
                        let cs = self.scan_state(steps, mode, &c);
                        vec![rhs::call(cs, XVar::X1, vec![vec![rhs::param(0)], sib_call])]
                    }
                    None => sib_call,
                }
            }
        }
    }

    /// Does a match of the final step count as a hit in this rule case?
    fn final_step_hits(&self, mode: &Mode, case: &LabelCase) -> bool {
        match mode {
            Mode::Select { .. } | Mode::Exists => true,
            Mode::Compare { value, negate } => match case {
                LabelCase::TextConst(c) => (c == value) != *negate,
                LabelCase::TextDefault => *negate,
                // Final steps of comparisons are text() after desugaring, so
                // element cases never reach the final step.
                _ => false,
            },
        }
    }

    /// C(M): active steps for the children forest.
    fn child_set(
        &self,
        steps: &[Step],
        s: &BTreeSet<usize>,
        m_set: &BTreeSet<usize>,
    ) -> Option<BTreeSet<usize>> {
        let mut c = BTreeSet::new();
        for &i in s {
            if steps[i].axis == Axis::Descendant {
                c.insert(i); // descendant steps persist downward
            }
        }
        for &i in m_set {
            if i + 1 < steps.len() && matches!(steps[i + 1].axis, Axis::Child | Axis::Descendant) {
                c.insert(i + 1);
            }
        }
        (!c.is_empty()).then_some(c)
    }

    /// B(M): active steps for the following-sibling forest.
    fn sib_set(
        &self,
        steps: &[Step],
        s: &BTreeSet<usize>,
        m_set: &BTreeSet<usize>,
    ) -> BTreeSet<usize> {
        let mut b = s.clone();
        for &i in m_set {
            if i + 1 < steps.len() && steps[i + 1].axis == Axis::FollowingSibling {
                b.insert(i + 1);
            }
        }
        b
    }

    /// The sibling continuation call (Select mode).
    fn sib_part(
        &mut self,
        steps: &[Step],
        mode: &Mode,
        s: &BTreeSet<usize>,
        m_set: &BTreeSet<usize>,
    ) -> Option<Rhs> {
        let b = self.sib_set(steps, s, m_set);
        if b.is_empty() {
            return None;
        }
        let env = match mode {
            Mode::Select { env, .. } => *env,
            _ => unreachable!("sib_part is only used for Select"),
        };
        let q = self.scan_state(steps, mode, &b);
        Some(vec![rhs::call(q, XVar::X2, self.env_args(env))])
    }
}

/// Does this node test accept the label case?
fn test_accepts(test: &NodeTest, case: &LabelCase) -> bool {
    match (test, case) {
        (NodeTest::Name(n), LabelCase::Elem(e)) => n == e,
        (NodeTest::Name(_), _) => false,
        (NodeTest::AnyElem, LabelCase::Elem(_) | LabelCase::ElemDefault) => true,
        (NodeTest::AnyElem, _) => false,
        (NodeTest::Text, LabelCase::TextConst(_) | LabelCase::TextDefault) => true,
        (NodeTest::Text, _) => false,
        (NodeTest::AnyNode, _) => true,
    }
}

/// All element names tested in these steps (top level; nested predicate
/// paths get their own scan states with their own name sets).
fn collect_names(steps: &[Step], out: &mut BTreeSet<String>) {
    for s in steps {
        if let NodeTest::Name(n) = &s.test {
            out.insert(n.clone());
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::interp::run_mft;
    use foxq_forest::term::{forest_to_term, parse_forest};
    use foxq_xquery::{eval_query, parse_query};

    /// Check `[[M_P]](f) = [[P]](f)` on one query/document pair.
    fn check(query: &str, doc: &str) {
        let q = parse_query(query).unwrap();
        let f = parse_forest(doc).unwrap();
        let expected = eval_query(&q, &f).unwrap();
        let mft = translate(&q).unwrap();
        mft.validate().unwrap();
        let actual = run_mft(&mft, &f).unwrap();
        assert_eq!(
            forest_to_term(&actual),
            forest_to_term(&expected),
            "query {query} on {doc}"
        );
    }

    #[test]
    fn constant_queries() {
        check("<a/>", "x()");
        check("<a>hello</a>", "x()");
        check("<a><b/><c>t</c></a>", "x()");
    }

    #[test]
    fn bare_input_variable() {
        check("<d>{$input}</d>", "a(b()) c()");
    }

    #[test]
    fn simple_child_paths() {
        check("<o>{$input/a}</o>", "a(\"1\") b() a(\"2\")");
        check("<o>{$input/a/b}</o>", "a(b(\"x\") c() b(\"y\")) b(\"z\")");
        check("<o>{$input/r/a}</o>", "r(a(a(b())) b())"); // nested a NOT selected
    }

    #[test]
    fn descendant_paths_select_nested_matches() {
        // The §2.1 example: nested c's both selected.
        check("<o>{$input/descendant::c}</o>", "doc(a(b(c(c()) d())))");
        check("<o>{$input//a}</o>", "r(a(a(b())) b(a()))");
    }

    #[test]
    fn text_and_star_tests() {
        check("<o>{$input/a/text()}</o>", r#"a("x" b("y") "z") a("w")"#);
        check("<o>{$input/r/*}</o>", r#"r(a() "text" b(c()))"#); // * skips text
        check("<o>{$input/r/node()}</o>", r#"r(a() "text" b(c()))"#);
        check("<o>{$input//text()}</o>", r#"r(a("x") "y")"#);
    }

    #[test]
    fn following_sibling_paths() {
        check(
            "<o>{$input/r/a/following-sibling::b}</o>",
            "r(a() x() b(\"1\") a() b(\"2\"))",
        );
        check(
            "for $a in $input/r/a return <hit>{$a/following-sibling::c}</hit>",
            "r(a() b() c(\"1\") a() c(\"2\"))",
        );
    }

    #[test]
    fn nested_for_loops() {
        check(
            "for $v1 in $input/descendant::a return
             for $v2 in $v1/descendant::b return
             let $v3 := $v2/descendant::c return
             let $v4 := $v2/descendant::d return
             ($v1,$v2,$v3,$v4)",
            "doc(a(b(c(c()) d() d()) b(d())))",
        );
    }

    #[test]
    fn pperson_equals_reference() {
        let q = r#"<out>{ for $b in $input/person[./p_id/text() = "person0"]
                   return let $r := $b/name/text() return $r }</out>"#;
        check(
            q,
            r#"person(p_id(a() "person0") name("Jim") c() name("Li"))"#,
        );
        check(
            q,
            r#"person(p_id(a() "perso7") name("Jim") c() p_id("person0"))"#,
        );
        check(q, r#"person(p_id("nope") name("Jim"))"#);
        check(q, "x()");
    }

    #[test]
    fn exists_and_empty_predicates() {
        let doc = r#"r(p(id("1") h()) p(id("2")) p(h()))"#;
        check("<o>{$input/r/p[./h]}</o>", doc);
        check("<o>{$input/r/p[empty(./h)]}</o>", doc);
        check("<o>{$input/r/p[./id]}</o>", doc);
        check("<o>{$input/r/p[empty(./id/text())]}</o>", doc);
    }

    #[test]
    fn comparison_predicates() {
        let doc = r#"r(p(id("1") n("A")) p(id("2") n("B")) p(id("1")))"#;
        check(r#"<o>{$input/r/p[./id/text()="1"]}</o>"#, doc);
        check(r#"<o>{$input/r/p[./id/text()!="1"]}</o>"#, doc);
        // Multiple id children: existential semantics.
        let doc2 = r#"r(p(id("x") id("1")))"#;
        check(r#"<o>{$input/r/p[./id/text()="1"]}</o>"#, doc2);
        check(r#"<o>{$input/r/p[./id/text()!="1"]}</o>"#, doc2);
    }

    #[test]
    fn predicate_on_descendant_path() {
        check(
            r#"<o>{$input//p[./id/text()="1"]}</o>"#,
            r#"r(p(id("1") p(id("2"))) q(p(id("1"))))"#,
        );
    }

    #[test]
    fn multiple_predicates_are_conjunctive() {
        check(
            r#"<o>{$input/r/p[./a][./b/text()="1"]}</o>"#,
            r#"r(p(a() b("1")) p(a()) p(b("1")))"#,
        );
    }

    #[test]
    fn nested_predicates() {
        // p nodes with a child `a` that itself has a `b` child.
        check(
            "<o>{$input/r/p[./a[./b]]}</o>",
            "r(p(a(b())) p(a()) p(b()))",
        );
    }

    #[test]
    fn following_sibling_inside_predicate() {
        // Q4-style: an x whose matching b has a matching b after it.
        check(
            r#"<o>{$input/r/x[./b[./n/text()="1"]/following-sibling::b/n/text()="2"]}</o>"#,
            r#"r(x(b(n("1")) b(n("2"))) x(b(n("2")) b(n("1"))) x(b(n("1"))))"#,
        );
    }

    #[test]
    fn descendant_inside_predicate() {
        check(
            r#"<o>{$input/r/p[.//k/text()="hit"]}</o>"#,
            r#"r(p(a(b(k("hit")))) p(k("miss")) p())"#,
        );
    }

    #[test]
    fn lets_and_sequences() {
        check(
            "let $x := $input/r/a return ($x, $x)",
            "r(a(\"1\") a(\"2\"))",
        );
        check(
            "<o>{let $x := <w/> return ($x, $x, $input/r/a)}</o>",
            "r(a())",
        );
    }

    #[test]
    fn deep_duplication_query() {
        check(
            "<deepdup>{ for $x in $input/* return
               <r> { for $y in $x/* return <r1><r2>{$y}</r2>{$y}</r1> } </r>
             }</deepdup>",
            "site(a(b(\"1\")) c())",
        );
    }

    #[test]
    fn double_query() {
        check(
            "<double><r1>{$input/*}</r1>{$input/*}</double>",
            "site(a(\"x\") b())",
        );
    }

    #[test]
    fn fourstar_query() {
        check(
            "<fourstar>{$input//*//*//*//*}</fourstar>",
            "a(b(c(d(e(f())) d2())) g())",
        );
    }

    #[test]
    fn element_comparison_is_desugared_to_text_child() {
        // `[./id = "1"]` behaves like `[./id/text() = "1"]`.
        check(
            r#"<o>{$input/r/p[./id="1"]}</o>"#,
            r#"r(p(id("1")) p(id("x")))"#,
        );
    }

    #[test]
    fn scope_violations_are_rejected() {
        let q = parse_query("for $a in $input/x return $input/y").unwrap();
        assert!(matches!(
            translate(&q),
            Err(TranslateError::NotNearestFor { .. })
        ));
        let q2 = parse_query("let $a := $input/x return $a/y").unwrap();
        assert!(matches!(
            translate(&q2),
            Err(TranslateError::PathFromLet { .. })
        ));
        let q3 = parse_query("$undefined/a").unwrap();
        assert!(matches!(
            translate(&q3),
            Err(TranslateError::Unbound { .. })
        ));
        // Outer-variable *output* (not a path root) is fine:
        let q4 = parse_query("for $a in $input/x return for $b in $a/y return ($a, $b)").unwrap();
        translate(&q4).unwrap();
    }

    #[test]
    fn unoptimized_transducer_shape() {
        // The paper reports 14 states for Pperson before optimization; our
        // construction is systematic rather than hand-derived, so we pin
        // bounds and structure instead of the exact count.
        let q = parse_query(
            r#"<out>{ for $b in $input/person[./p_id/text() = "person0"]
               return let $r := $b/name/text() return $r }</out>"#,
        )
        .unwrap();
        let m = translate(&q).unwrap();
        assert!(
            m.state_count() >= 10 && m.state_count() <= 24,
            "{} states",
            m.state_count()
        );
        assert!(!m.is_ft()); // parameters present before optimization
    }

    #[test]
    fn empty_document_and_empty_results() {
        check("<o>{$input/a}</o>", "");
        check("for $x in $input/nothing return <hit/>", "a(b())");
    }

    #[test]
    fn zero_step_for_over_input() {
        check("for $d in $input return <doc>{$d}</doc>", "a() b()");
    }

    #[test]
    fn zero_step_for_over_variable() {
        check(
            "for $a in $input/r/a return for $b in $a return <w>{$b}</w>",
            "r(a(\"1\") a(\"2\"))",
        );
    }
}
