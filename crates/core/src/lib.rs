//! Macro forest transducers and the XQuery streaming pipeline.
//!
//! This crate is the paper's primary contribution, end to end:
//!
//! * [`mft`] — the transducer model of Definition 2 (§2.2);
//! * [`interp`] — the denotational semantics `[[q]]` as a reference
//!   interpreter;
//! * [`text`] — the paper's rule notation (parser + printer);
//! * [`stream`] — the streaming execution engine (§1 contribution (1),
//!   in the style of Nakano & Mu's pushdown machine);
//! * [`translate`] — the MinXQuery → MFT compilation of §3 (Theorem 1);
//! * [`opt`] — the optimizations of §4.1: unused/constant parameter
//!   reduction, stay-move removal, unreachable state removal (Theorem 2);
//! * [`profile`] — the per-run resource profiler: hot-state
//!   attribution and downsampled buffer timelines over the engine's
//!   [`stream::StreamObserver`] hooks;
//! * [`emit`] — earliest emission: the static which-states-can-emit-early
//!   analysis plus the [`emit::EmitSink`] boundary that releases
//!   irrevocable output prefixes downstream before end-of-input.

pub mod emit;
pub mod interp;
pub mod mft;
pub mod opt;
pub mod profile;
pub mod stream;
pub mod text;
pub mod translate;

pub use emit::{EmissionAnalysis, EmitSink, EmitWriter};
pub use interp::{
    run_mft, run_mft_naive, run_mft_naive_with_limits, run_mft_with_limits, RunError, RunLimits,
};
pub use mft::{Mft, MftError, OutLabel, Rhs, RhsNode, StateId, XVar};
pub use text::{parse_mft, print_mft};
