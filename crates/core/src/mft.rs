//! Macro forest transducers (Definition 2 of the paper).
//!
//! An MFT is a tuple `(Q, Σ, q0, R)`:
//!
//! * `Q` — finite ranked set of states; a state of rank *m+1* takes the input
//!   forest plus *m* accumulating parameters `y1..ym`;
//! * `Σ` — finite alphabet of labels of interest (element names and string
//!   constants), interned in an [`Alphabet`];
//! * for every state and input symbol σ at most one *(q,σ)-rule*
//!   `q(σ(x1)x2, y1..ym) → rhs`; exactly one *default rule*
//!   `q(%t(x1)x2, …) → rhs` applicable to any node; exactly one *ε-rule*
//!   `q(ε, …) → rhs`. We additionally support the paper's `%ttext` pattern
//!   (see the `Mperson` example in §2.2): an optional *text-default rule*
//!   that matches any text node, taking precedence over the default rule.
//!
//! Right-hand sides are forests over `Σ ∪ Q ∪ {x0,x1,x2} ∪ {y1..ym}` where
//! x-variables appear exactly as the first argument of a state call
//! ([`RhsNode::Call`]) and parameters only at leaves ([`RhsNode::Param`]).
//! A call on `x0` is a **stay move**. `%t` in a right-hand side
//! ([`OutLabel::Current`]) copies the current input node's label.
//!
//! Transducers built through [`Mft::add_state`] are total and deterministic
//! by construction: every state starts with `default → ε` and `ε → ε` rules.

use foxq_forest::{Alphabet, FxHashMap, FxHashSet, Label, SymId};
use std::fmt;

/// Index of a state in [`Mft::states`].
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Default)]
pub struct StateId(pub u32);

impl StateId {
    #[inline]
    pub fn idx(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Debug for StateId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "q{}", self.0)
    }
}

/// Which part of the input a state call recurses on.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum XVar {
    /// The current position itself — a *stay move*.
    X0,
    /// The children forest of the current node.
    X1,
    /// The following-sibling forest of the current node.
    X2,
}

/// The label of an output node in a right-hand side.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum OutLabel {
    /// A fixed symbol σ ∈ Σ (element or text constant).
    Sym(SymId),
    /// `%t` — the label of the current input node (only meaningful in
    /// default / text-default / (q,σ) rules, not in ε-rules).
    Current,
}

/// One node of a right-hand-side forest.
#[derive(Clone, PartialEq, Eq, Hash, Debug)]
pub enum RhsNode {
    /// An output node with a forest of children.
    Out { label: OutLabel, children: Rhs },
    /// A state call `q(xi, a1, …, am)`.
    Call {
        state: StateId,
        input: XVar,
        args: Vec<Rhs>,
    },
    /// A context parameter `y_{i+1}` (stored 0-based).
    Param(usize),
}

/// A right-hand side: a forest of [`RhsNode`]s.
pub type Rhs = Vec<RhsNode>;

/// Convenience constructors for right-hand sides.
pub mod rhs {
    use super::*;

    pub fn out(sym: SymId, children: Rhs) -> RhsNode {
        RhsNode::Out {
            label: OutLabel::Sym(sym),
            children,
        }
    }

    pub fn out_current(children: Rhs) -> RhsNode {
        RhsNode::Out {
            label: OutLabel::Current,
            children,
        }
    }

    pub fn call(state: StateId, input: XVar, args: Vec<Rhs>) -> RhsNode {
        RhsNode::Call { state, input, args }
    }

    pub fn param(i: usize) -> RhsNode {
        RhsNode::Param(i)
    }
}

/// The rule set of one state.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct StateRules {
    /// `(q,σ)`-rules.
    pub by_sym: FxHashMap<SymId, Rhs>,
    /// Optional text-default rule (`%ttext` pattern): applies to any text
    /// node that has no `(q,σ)`-rule.
    pub text_default: Option<Rhs>,
    /// Default rule (`%t` pattern): applies to any remaining node.
    pub default: Rhs,
    /// ε-rule.
    pub eps: Rhs,
}

/// Metadata of a state.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct StateInfo {
    /// Human-readable name (used by the printer and in errors).
    pub name: String,
    /// Number of accumulating parameters (the paper's rank is `params + 1`).
    pub params: usize,
}

/// A macro forest transducer.
#[derive(Clone, Default)]
pub struct Mft {
    // (Debug is implemented via the textual printer, see below.)
    pub alphabet: Alphabet,
    pub states: Vec<StateInfo>,
    pub rules: Vec<StateRules>,
    pub initial: StateId,
}

impl Mft {
    pub fn new() -> Self {
        Mft::default()
    }

    /// Add a state with `params` accumulating parameters. Its default and
    /// ε-rules start as `→ ε`, keeping the transducer total.
    pub fn add_state(&mut self, name: impl Into<String>, params: usize) -> StateId {
        let id = StateId(self.states.len() as u32);
        self.states.push(StateInfo {
            name: name.into(),
            params,
        });
        self.rules.push(StateRules::default());
        id
    }

    pub fn state_count(&self) -> usize {
        self.states.len()
    }

    pub fn params_of(&self, q: StateId) -> usize {
        self.states[q.idx()].params
    }

    pub fn name_of(&self, q: StateId) -> &str {
        &self.states[q.idx()].name
    }

    pub fn set_sym_rule(&mut self, q: StateId, sym: SymId, rhs: Rhs) {
        self.rules[q.idx()].by_sym.insert(sym, rhs);
    }

    pub fn set_text_rule(&mut self, q: StateId, rhs: Rhs) {
        self.rules[q.idx()].text_default = Some(rhs);
    }

    pub fn set_default_rule(&mut self, q: StateId, rhs: Rhs) {
        self.rules[q.idx()].default = rhs;
    }

    pub fn set_eps_rule(&mut self, q: StateId, rhs: Rhs) {
        self.rules[q.idx()].eps = rhs;
    }

    /// The paper's `q(%, …) → f` shorthand: sets both the default and the
    /// ε-rule to `f`. The rhs must not use `x1`/`x2` or `%t`
    /// (checked by [`Mft::validate`]; such states are *stay states* and can
    /// be inlined by the optimizer).
    pub fn set_stay_rule(&mut self, q: StateId, rhs: Rhs) {
        self.rules[q.idx()].default = rhs.clone();
        self.rules[q.idx()].eps = rhs;
    }

    /// Whether `q`'s rules form a `%`-shorthand stay state
    /// (default == ε rule, no `x1`/`x2`, no `%t`, no symbol rules).
    pub fn is_stay_state(&self, q: StateId) -> bool {
        let r = &self.rules[q.idx()];
        r.by_sym.is_empty()
            && r.text_default.is_none()
            && r.default == r.eps
            && rhs_iter(&r.default).all(|n| match n {
                RhsNode::Call { input, .. } => *input == XVar::X0,
                RhsNode::Out { label, .. } => *label != OutLabel::Current,
                RhsNode::Param(_) => true,
            })
    }

    /// A *forest transducer* (FT) is an MFT in which no state has parameters.
    pub fn is_ft(&self) -> bool {
        self.states.iter().all(|s| s.params == 0)
    }

    /// Size |M| as defined in the paper: |Σ| plus the sizes of all left- and
    /// right-hand sides. An lhs `q(σ(x1)x2, y1..ym)` counts `4 + m` (state,
    /// symbol, x1, x2, parameters); an ε-lhs counts `2 + m`. Rhs nodes count
    /// 1 each, with calls adding 1 for their x-argument.
    pub fn size(&self) -> usize {
        let mut n = self.alphabet.len();
        for (info, rules) in self.states.iter().zip(&self.rules) {
            let m = info.params;
            let mut rule_count = rules.by_sym.len() + 1; // + default
            if rules.text_default.is_some() {
                rule_count += 1;
            }
            n += rule_count * (4 + m); // binary lhs patterns
            n += 2 + m; // ε lhs
            for r in rules.by_sym.values() {
                n += rhs_size(r);
            }
            if let Some(r) = &rules.text_default {
                n += rhs_size(r);
            }
            n += rhs_size(&rules.default);
            n += rhs_size(&rules.eps);
        }
        n
    }

    /// Total number of rules (symbol + text-default + default + ε).
    pub fn rule_count(&self) -> usize {
        self.rules
            .iter()
            .map(|r| r.by_sym.len() + usize::from(r.text_default.is_some()) + 2)
            .sum()
    }

    /// Maximum number of parameters over all states.
    pub fn max_params(&self) -> usize {
        self.states.iter().map(|s| s.params).max().unwrap_or(0)
    }

    /// Whether `rhs` is the *pure-skip* right-hand side of `q`:
    /// `q(%t(x1)x2, y1..ym) → q(x2, y1..ym)` — the state ignores the node,
    /// its subtree, and passes every parameter through unchanged.
    fn is_pure_skip(&self, q: StateId, rhs: &Rhs) -> bool {
        match rhs.as_slice() {
            [RhsNode::Call {
                state,
                input: XVar::X2,
                args,
            }] if *state == q => {
                args.len() == self.params_of(q)
                    && args
                        .iter()
                        .enumerate()
                        .all(|(i, a)| matches!(a.as_slice(), [RhsNode::Param(j)] if *j == i))
            }
            _ => false,
        }
    }

    /// Static alphabet-projection analysis: which input labels can this
    /// transducer react to, and is an event carrying any *other* label —
    /// together with its entire subtree — semantically skippable?
    ///
    /// The analysis is conservative. An unmatched-label event is skippable
    /// when every state that can be *subscribed* at a forest location either
    ///
    /// * has a pure-skip default rule (`q(%t(x1)x2, ȳ) → q(x2, ȳ)`): not
    ///   expanding it and leaving it subscribed until after the skipped
    ///   subtree is exactly what the rule would have done, or
    /// * is a `%`-shorthand stay state whose rhs only re-enters skippable
    ///   states via `x0`: delaying its expansion to the next delivered event
    ///   selects the same rhs (default = ε-rule, no `(q,σ)`-rules, no `%t`)
    ///   and the delayed `x0` calls land where the immediate ones would have.
    ///
    /// States reachable only through `x1` of a *text* rule are exempt from
    /// the requirement: they subscribe under a text node, and text nodes are
    /// leaves in the XML event model (their child location is defined by the
    /// immediately following close event, which a prefilter must deliver
    /// because the text open itself was delivered).
    pub fn projection(&self) -> LabelProjection {
        let n = self.states.len();

        // Least fixpoint of the two skippability shapes.
        let mut skippable: Vec<bool> = (0..n)
            .map(|i| {
                let q = StateId(i as u32);
                self.is_pure_skip(q, &self.rules[i].default)
            })
            .collect();
        loop {
            let mut changed = false;
            for i in 0..n {
                let q = StateId(i as u32);
                if !skippable[i]
                    && self.is_stay_state(q)
                    && rhs_iter(&self.rules[i].default).all(|node| match node {
                        RhsNode::Call { state, .. } => skippable[state.idx()],
                        _ => true,
                    })
                {
                    skippable[i] = true;
                    changed = true;
                }
            }
            if !changed {
                break;
            }
        }

        // States that can be *subscribed* at a forest (element-content)
        // location (`at_risk`), via a mutual fixpoint with the states whose
        // open-context rules can *fire* at one (`fireable`): the initial
        // state is both; x1/x2 callees of a fireable state's open rules are
        // subscribed (hence fireable at the next open), x0 callees are
        // fireable within the same event. Exception: x1 callees of *text*
        // rules subscribe under a text node — text nodes are leaves, so the
        // subscription resolves through the ε-rule at the very next (close)
        // event and never sees an open. ε-rules themselves only use x0 and
        // expand in close context, where no subscriptions can form.
        let mut at_risk = vec![false; n];
        let mut fireable = vec![false; n];
        at_risk[self.initial.idx()] = true;
        fireable[self.initial.idx()] = true;
        loop {
            let mut changed = false;
            let mut mark =
                |rhs: &Rhs, x1_is_safe: bool, at_risk: &mut Vec<bool>, fireable: &mut Vec<bool>| {
                    for node in rhs_iter(rhs) {
                        if let RhsNode::Call { state, input, .. } = node {
                            let j = state.idx();
                            let subscribes = match input {
                                XVar::X0 => false,
                                XVar::X2 => true,
                                XVar::X1 => !x1_is_safe,
                            };
                            if subscribes && !at_risk[j] {
                                at_risk[j] = true;
                                changed = true;
                            }
                            // Subscribed and x0 callees alike can fire at this
                            // location (x1-of-text callees cannot: they resolve
                            // via ε before any open event).
                            if (subscribes || *input == XVar::X0) && !fireable[j] {
                                fireable[j] = true;
                                changed = true;
                            }
                        }
                    }
                };
            for i in 0..n {
                if !fireable[i] {
                    continue;
                }
                let rules = &self.rules[i];
                for (sym, rhs) in &rules.by_sym {
                    let x1_safe = self.alphabet.label(*sym).is_text();
                    mark(rhs, x1_safe, &mut at_risk, &mut fireable);
                }
                if let Some(rhs) = &rules.text_default {
                    mark(rhs, true, &mut at_risk, &mut fireable);
                }
                mark(&rules.default, false, &mut at_risk, &mut fireable);
            }
            if !changed {
                break;
            }
        }

        let elements = at_risk
            .iter()
            .zip(&skippable)
            .all(|(risk, skip)| !risk || *skip);

        // Skipping delays a subscribed stay state's expansion into a later
        // event, and its `x0` calls expand under that event too — so for
        // *text* events the text-default rule (which preempts the default)
        // must be pure-skip on the whole x0-closure of the at-risk set.
        let mut delayed = at_risk.clone();
        loop {
            let mut changed = false;
            for i in 0..n {
                if delayed[i] && self.is_stay_state(StateId(i as u32)) {
                    for node in rhs_iter(&self.rules[i].default) {
                        if let RhsNode::Call { state, .. } = node {
                            if !delayed[state.idx()] {
                                delayed[state.idx()] = true;
                                changed = true;
                            }
                        }
                    }
                }
            }
            if !changed {
                break;
            }
        }
        let texts = elements
            && delayed.iter().enumerate().all(|(i, risk)| {
                !risk
                    || match &self.rules[i].text_default {
                        None => true,
                        Some(rhs) => self.is_pure_skip(StateId(i as u32), rhs),
                    }
            });

        let mut seen: FxHashSet<SymId> = FxHashSet::default();
        let mut matched = Vec::new();
        for rules in &self.rules {
            for sym in rules.by_sym.keys() {
                if seen.insert(*sym) {
                    matched.push(self.alphabet.label(*sym).clone());
                }
            }
        }
        LabelProjection {
            matched,
            elements,
            texts,
        }
    }

    /// Structural well-formedness (Definition 2 restrictions).
    pub fn validate(&self) -> Result<(), MftError> {
        if self.states.is_empty() {
            return Err(MftError::new("transducer has no states"));
        }
        if self.initial.idx() >= self.states.len() {
            return Err(MftError::new("initial state out of range"));
        }
        if self.params_of(self.initial) != 0 {
            return Err(MftError::new(format!(
                "initial state {} must have rank 1 (no parameters)",
                self.name_of(self.initial)
            )));
        }
        for (i, rules) in self.rules.iter().enumerate() {
            let q = StateId(i as u32);
            let m = self.params_of(q);
            for (sym, r) in &rules.by_sym {
                if sym.0 as usize >= self.alphabet.len() {
                    return Err(self.rule_err(q, "symbol out of range"));
                }
                self.validate_rhs(q, m, r, RuleKind::Sym)?;
            }
            if let Some(r) = &rules.text_default {
                self.validate_rhs(q, m, r, RuleKind::TextDefault)?;
            }
            self.validate_rhs(q, m, &rules.default, RuleKind::Default)?;
            self.validate_rhs(q, m, &rules.eps, RuleKind::Eps)?;
        }
        Ok(())
    }

    fn validate_rhs(&self, q: StateId, m: usize, r: &Rhs, kind: RuleKind) -> Result<(), MftError> {
        for node in rhs_iter(r) {
            match node {
                RhsNode::Param(i) => {
                    if *i >= m {
                        return Err(self
                            .rule_err(q, format!("parameter y{} exceeds rank (m = {m})", i + 1)));
                    }
                }
                RhsNode::Out { label, .. } => {
                    if kind == RuleKind::Eps && *label == OutLabel::Current {
                        return Err(self.rule_err(q, "%t output label in ε-rule"));
                    }
                    if let OutLabel::Sym(s) = label {
                        if s.0 as usize >= self.alphabet.len() {
                            return Err(self.rule_err(q, "output symbol out of range"));
                        }
                    }
                }
                RhsNode::Call { state, input, args } => {
                    if state.idx() >= self.states.len() {
                        return Err(self.rule_err(q, "call to undefined state"));
                    }
                    if kind == RuleKind::Eps && *input != XVar::X0 {
                        return Err(self.rule_err(q, "ε-rule may only use x0"));
                    }
                    if args.len() != self.params_of(*state) {
                        return Err(self.rule_err(
                            q,
                            format!(
                                "call to {} with {} arguments, expected {}",
                                self.name_of(*state),
                                args.len(),
                                self.params_of(*state)
                            ),
                        ));
                    }
                }
            }
        }
        Ok(())
    }

    fn rule_err(&self, q: StateId, msg: impl Into<String>) -> MftError {
        MftError::new(format!("state {}: {}", self.name_of(q), msg.into()))
    }
}

/// Result of [`Mft::projection`]: the label alphabet this transducer can
/// react to, plus whether events outside it are skippable. Consumed by the
/// multi-query engine's shared start-tag prefilter
/// (`foxq_service::MultiQueryEngine`).
#[derive(Debug, Clone)]
pub struct LabelProjection {
    /// Labels with a `(q,σ)`-rule in some state (elements *and* text
    /// constants). Events carrying them must always be delivered.
    pub matched: Vec<Label>,
    /// Unmatched **element** events — with their entire subtrees — may be
    /// withheld from this transducer without changing its output.
    pub elements: bool,
    /// Unmatched **text** events may be withheld too. Implies nothing on its
    /// own; only meaningful when [`LabelProjection::elements`] also holds.
    pub texts: bool,
}

impl fmt::Debug for Mft {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", crate::text::print_mft(self))
    }
}

#[derive(PartialEq, Eq, Clone, Copy)]
enum RuleKind {
    Sym,
    TextDefault,
    Default,
    Eps,
}

/// Validation / construction error.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MftError {
    pub msg: String,
}

impl MftError {
    pub fn new(msg: impl Into<String>) -> Self {
        MftError { msg: msg.into() }
    }
}

impl fmt::Display for MftError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.msg)
    }
}

impl std::error::Error for MftError {}

/// Number of nodes in a rhs forest (calls add one for the x-argument).
pub fn rhs_size(r: &Rhs) -> usize {
    rhs_iter(r)
        .map(|n| {
            if matches!(n, RhsNode::Call { .. }) {
                2
            } else {
                1
            }
        })
        .sum()
}

/// Iterate over every node of a rhs, including nodes nested in output
/// children and call arguments.
pub fn rhs_iter(r: &Rhs) -> RhsIter<'_> {
    RhsIter {
        stack: r.iter().rev().collect(),
    }
}

pub struct RhsIter<'a> {
    stack: Vec<&'a RhsNode>,
}

impl<'a> Iterator for RhsIter<'a> {
    type Item = &'a RhsNode;

    fn next(&mut self) -> Option<&'a RhsNode> {
        let n = self.stack.pop()?;
        match n {
            RhsNode::Out { children, .. } => self.stack.extend(children.iter().rev()),
            RhsNode::Call { args, .. } => {
                for a in args.iter().rev() {
                    self.stack.extend(a.iter().rev());
                }
            }
            RhsNode::Param(_) => {}
        }
        Some(n)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rhs::*;

    /// The doubling FT from §4.2: q(a(x1)x2) → q(x2)q(x2); q(ε) → a.
    fn doubler() -> (Mft, StateId) {
        let mut m = Mft::new();
        let a = m.alphabet.intern_elem("a");
        let q = m.add_state("q", 0);
        m.initial = q;
        m.set_sym_rule(
            q,
            a,
            vec![call(q, XVar::X2, vec![]), call(q, XVar::X2, vec![])],
        );
        m.set_eps_rule(q, vec![out(a, vec![])]);
        (m, q)
    }

    #[test]
    fn build_and_validate() {
        let (m, _) = doubler();
        m.validate().unwrap();
        assert!(m.is_ft());
        assert_eq!(m.rule_count(), 3); // a-rule + default + ε
    }

    #[test]
    fn validation_catches_bad_param() {
        let mut m = Mft::new();
        let q = m.add_state("q", 0);
        m.initial = q;
        m.set_default_rule(q, vec![param(0)]);
        assert!(m.validate().is_err());
    }

    #[test]
    fn validation_catches_arity_mismatch() {
        let mut m = Mft::new();
        let q = m.add_state("q", 0);
        let p = m.add_state("p", 2);
        m.initial = q;
        m.set_default_rule(q, vec![call(p, XVar::X1, vec![vec![]])]); // needs 2 args
        assert!(m.validate().is_err());
    }

    #[test]
    fn validation_rejects_x1_in_eps_rule() {
        let mut m = Mft::new();
        let q = m.add_state("q", 0);
        m.initial = q;
        m.set_eps_rule(q, vec![call(q, XVar::X1, vec![])]);
        assert!(m.validate().is_err());
    }

    #[test]
    fn validation_rejects_current_label_in_eps_rule() {
        let mut m = Mft::new();
        let q = m.add_state("q", 0);
        m.initial = q;
        m.set_eps_rule(q, vec![out_current(vec![])]);
        assert!(m.validate().is_err());
    }

    #[test]
    fn validation_requires_rank1_initial() {
        let mut m = Mft::new();
        let q = m.add_state("q", 1);
        m.initial = q;
        assert!(m.validate().is_err());
    }

    #[test]
    fn stay_state_detection() {
        let mut m = Mft::new();
        let q = m.add_state("q", 1);
        let p = m.add_state("p", 0);
        m.set_stay_rule(q, vec![call(p, XVar::X0, vec![]), param(0)]);
        assert!(m.is_stay_state(q));
        // p has default ε / eps ε — also a stay state (trivially).
        assert!(m.is_stay_state(p));
        m.set_default_rule(p, vec![call(p, XVar::X2, vec![])]);
        assert!(!m.is_stay_state(p));
    }

    #[test]
    fn projection_of_a_child_path_navigator() {
        // q0 is a stay state producing s(x0); s skips any unmatched node
        // (pure-skip default and %text rules) and reacts only to `site`.
        let mut m = Mft::new();
        let site = m.alphabet.intern_elem("site");
        let hit = m.alphabet.intern_elem("hit");
        let q0 = m.add_state("q0", 0);
        let s = m.add_state("s", 0);
        m.initial = q0;
        m.set_stay_rule(q0, vec![call(s, XVar::X0, vec![])]);
        m.set_sym_rule(s, site, vec![out(hit, vec![]), call(s, XVar::X2, vec![])]);
        m.set_text_rule(s, vec![call(s, XVar::X2, vec![])]);
        m.set_default_rule(s, vec![call(s, XVar::X2, vec![])]);
        m.validate().unwrap();
        let p = m.projection();
        assert!(p.elements, "pure-skip navigator must be skippable");
        assert!(p.texts, "pure-skip %text rule must be skippable");
        let names: Vec<&str> = p.matched.iter().map(|l| &*l.name).collect();
        assert_eq!(names, ["site"]);
    }

    #[test]
    fn projection_rejects_copying_and_looping_states() {
        // qcopy recurses into x1 of unmatched nodes: nothing is skippable.
        let copy = crate::text::parse_mft(
            "qcopy(%t(x1) x2) -> %t(qcopy(x1)) qcopy(x2); qcopy(eps) -> eps;",
        )
        .unwrap();
        assert!(!copy.projection().elements);

        // A stay loop is not skippable either (least fixpoint: delaying the
        // expansion would suppress the loop).
        let looping = crate::text::parse_mft("q0(%) -> q0(x0);").unwrap();
        assert!(!looping.projection().elements);
    }

    #[test]
    fn projection_exempts_text_rule_x1_callees() {
        // qcopy only ever subscribes under a text node (x1 of a %ttext
        // rule); text nodes are leaves, so the lane stays skippable for
        // elements while text events must be delivered.
        let m = crate::text::parse_mft(
            "s(%ttext(x1) x2) -> %t(qcopy(x1)) s(x2);\
             s(%t(x1) x2) -> s(x2);\
             s(eps) -> eps;\
             qcopy(%t(x1) x2) -> %t(qcopy(x1)) qcopy(x2);\
             qcopy(eps) -> eps;",
        )
        .unwrap();
        let p = m.projection();
        assert!(p.elements);
        assert!(!p.texts, "the %ttext rule does real work");
    }

    #[test]
    fn size_metric_counts_alphabet_and_rules() {
        let (m, _) = doubler();
        // |Σ| = 1; a-rule lhs 4 + rhs 4 (two calls à 2); default lhs 4 + rhs 0;
        // ε lhs 2 + rhs 1.
        assert_eq!(m.size(), 1 + 4 + 4 + 4 + 2 + 1);
    }

    #[test]
    fn rhs_iter_visits_nested() {
        let (m, q) = doubler();
        let r = vec![out(SymId(0), vec![call(q, XVar::X1, vec![]), param(0)])];
        let kinds: Vec<_> = rhs_iter(&r).collect();
        assert_eq!(kinds.len(), 3);
        let _ = m;
    }
}
