//! Macro forest transducers (Definition 2 of the paper).
//!
//! An MFT is a tuple `(Q, Σ, q0, R)`:
//!
//! * `Q` — finite ranked set of states; a state of rank *m+1* takes the input
//!   forest plus *m* accumulating parameters `y1..ym`;
//! * `Σ` — finite alphabet of labels of interest (element names and string
//!   constants), interned in an [`Alphabet`];
//! * for every state and input symbol σ at most one *(q,σ)-rule*
//!   `q(σ(x1)x2, y1..ym) → rhs`; exactly one *default rule*
//!   `q(%t(x1)x2, …) → rhs` applicable to any node; exactly one *ε-rule*
//!   `q(ε, …) → rhs`. We additionally support the paper's `%ttext` pattern
//!   (see the `Mperson` example in §2.2): an optional *text-default rule*
//!   that matches any text node, taking precedence over the default rule.
//!
//! Right-hand sides are forests over `Σ ∪ Q ∪ {x0,x1,x2} ∪ {y1..ym}` where
//! x-variables appear exactly as the first argument of a state call
//! ([`RhsNode::Call`]) and parameters only at leaves ([`RhsNode::Param`]).
//! A call on `x0` is a **stay move**. `%t` in a right-hand side
//! ([`OutLabel::Current`]) copies the current input node's label.
//!
//! Transducers built through [`Mft::add_state`] are total and deterministic
//! by construction: every state starts with `default → ε` and `ε → ε` rules.

use foxq_forest::{Alphabet, FxHashMap, SymId};
use std::fmt;

/// Index of a state in [`Mft::states`].
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Default)]
pub struct StateId(pub u32);

impl StateId {
    #[inline]
    pub fn idx(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Debug for StateId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "q{}", self.0)
    }
}

/// Which part of the input a state call recurses on.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum XVar {
    /// The current position itself — a *stay move*.
    X0,
    /// The children forest of the current node.
    X1,
    /// The following-sibling forest of the current node.
    X2,
}

/// The label of an output node in a right-hand side.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum OutLabel {
    /// A fixed symbol σ ∈ Σ (element or text constant).
    Sym(SymId),
    /// `%t` — the label of the current input node (only meaningful in
    /// default / text-default / (q,σ) rules, not in ε-rules).
    Current,
}

/// One node of a right-hand-side forest.
#[derive(Clone, PartialEq, Eq, Hash, Debug)]
pub enum RhsNode {
    /// An output node with a forest of children.
    Out { label: OutLabel, children: Rhs },
    /// A state call `q(xi, a1, …, am)`.
    Call {
        state: StateId,
        input: XVar,
        args: Vec<Rhs>,
    },
    /// A context parameter `y_{i+1}` (stored 0-based).
    Param(usize),
}

/// A right-hand side: a forest of [`RhsNode`]s.
pub type Rhs = Vec<RhsNode>;

/// Convenience constructors for right-hand sides.
pub mod rhs {
    use super::*;

    pub fn out(sym: SymId, children: Rhs) -> RhsNode {
        RhsNode::Out {
            label: OutLabel::Sym(sym),
            children,
        }
    }

    pub fn out_current(children: Rhs) -> RhsNode {
        RhsNode::Out {
            label: OutLabel::Current,
            children,
        }
    }

    pub fn call(state: StateId, input: XVar, args: Vec<Rhs>) -> RhsNode {
        RhsNode::Call { state, input, args }
    }

    pub fn param(i: usize) -> RhsNode {
        RhsNode::Param(i)
    }
}

/// The rule set of one state.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct StateRules {
    /// `(q,σ)`-rules.
    pub by_sym: FxHashMap<SymId, Rhs>,
    /// Optional text-default rule (`%ttext` pattern): applies to any text
    /// node that has no `(q,σ)`-rule.
    pub text_default: Option<Rhs>,
    /// Default rule (`%t` pattern): applies to any remaining node.
    pub default: Rhs,
    /// ε-rule.
    pub eps: Rhs,
}

/// Metadata of a state.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct StateInfo {
    /// Human-readable name (used by the printer and in errors).
    pub name: String,
    /// Number of accumulating parameters (the paper's rank is `params + 1`).
    pub params: usize,
}

/// A macro forest transducer.
#[derive(Clone, Default)]
pub struct Mft {
    // (Debug is implemented via the textual printer, see below.)
    pub alphabet: Alphabet,
    pub states: Vec<StateInfo>,
    pub rules: Vec<StateRules>,
    pub initial: StateId,
}

impl Mft {
    pub fn new() -> Self {
        Mft::default()
    }

    /// Add a state with `params` accumulating parameters. Its default and
    /// ε-rules start as `→ ε`, keeping the transducer total.
    pub fn add_state(&mut self, name: impl Into<String>, params: usize) -> StateId {
        let id = StateId(self.states.len() as u32);
        self.states.push(StateInfo {
            name: name.into(),
            params,
        });
        self.rules.push(StateRules::default());
        id
    }

    pub fn state_count(&self) -> usize {
        self.states.len()
    }

    pub fn params_of(&self, q: StateId) -> usize {
        self.states[q.idx()].params
    }

    pub fn name_of(&self, q: StateId) -> &str {
        &self.states[q.idx()].name
    }

    pub fn set_sym_rule(&mut self, q: StateId, sym: SymId, rhs: Rhs) {
        self.rules[q.idx()].by_sym.insert(sym, rhs);
    }

    pub fn set_text_rule(&mut self, q: StateId, rhs: Rhs) {
        self.rules[q.idx()].text_default = Some(rhs);
    }

    pub fn set_default_rule(&mut self, q: StateId, rhs: Rhs) {
        self.rules[q.idx()].default = rhs;
    }

    pub fn set_eps_rule(&mut self, q: StateId, rhs: Rhs) {
        self.rules[q.idx()].eps = rhs;
    }

    /// The paper's `q(%, …) → f` shorthand: sets both the default and the
    /// ε-rule to `f`. The rhs must not use `x1`/`x2` or `%t`
    /// (checked by [`Mft::validate`]; such states are *stay states* and can
    /// be inlined by the optimizer).
    pub fn set_stay_rule(&mut self, q: StateId, rhs: Rhs) {
        self.rules[q.idx()].default = rhs.clone();
        self.rules[q.idx()].eps = rhs;
    }

    /// Whether `q`'s rules form a `%`-shorthand stay state
    /// (default == ε rule, no `x1`/`x2`, no `%t`, no symbol rules).
    pub fn is_stay_state(&self, q: StateId) -> bool {
        let r = &self.rules[q.idx()];
        r.by_sym.is_empty()
            && r.text_default.is_none()
            && r.default == r.eps
            && rhs_iter(&r.default).all(|n| match n {
                RhsNode::Call { input, .. } => *input == XVar::X0,
                RhsNode::Out { label, .. } => *label != OutLabel::Current,
                RhsNode::Param(_) => true,
            })
    }

    /// A *forest transducer* (FT) is an MFT in which no state has parameters.
    pub fn is_ft(&self) -> bool {
        self.states.iter().all(|s| s.params == 0)
    }

    /// Size |M| as defined in the paper: |Σ| plus the sizes of all left- and
    /// right-hand sides. An lhs `q(σ(x1)x2, y1..ym)` counts `4 + m` (state,
    /// symbol, x1, x2, parameters); an ε-lhs counts `2 + m`. Rhs nodes count
    /// 1 each, with calls adding 1 for their x-argument.
    pub fn size(&self) -> usize {
        let mut n = self.alphabet.len();
        for (info, rules) in self.states.iter().zip(&self.rules) {
            let m = info.params;
            let mut rule_count = rules.by_sym.len() + 1; // + default
            if rules.text_default.is_some() {
                rule_count += 1;
            }
            n += rule_count * (4 + m); // binary lhs patterns
            n += 2 + m; // ε lhs
            for r in rules.by_sym.values() {
                n += rhs_size(r);
            }
            if let Some(r) = &rules.text_default {
                n += rhs_size(r);
            }
            n += rhs_size(&rules.default);
            n += rhs_size(&rules.eps);
        }
        n
    }

    /// Total number of rules (symbol + text-default + default + ε).
    pub fn rule_count(&self) -> usize {
        self.rules
            .iter()
            .map(|r| r.by_sym.len() + usize::from(r.text_default.is_some()) + 2)
            .sum()
    }

    /// Maximum number of parameters over all states.
    pub fn max_params(&self) -> usize {
        self.states.iter().map(|s| s.params).max().unwrap_or(0)
    }

    /// Structural well-formedness (Definition 2 restrictions).
    pub fn validate(&self) -> Result<(), MftError> {
        if self.states.is_empty() {
            return Err(MftError::new("transducer has no states"));
        }
        if self.initial.idx() >= self.states.len() {
            return Err(MftError::new("initial state out of range"));
        }
        if self.params_of(self.initial) != 0 {
            return Err(MftError::new(format!(
                "initial state {} must have rank 1 (no parameters)",
                self.name_of(self.initial)
            )));
        }
        for (i, rules) in self.rules.iter().enumerate() {
            let q = StateId(i as u32);
            let m = self.params_of(q);
            for (sym, r) in &rules.by_sym {
                if sym.0 as usize >= self.alphabet.len() {
                    return Err(self.rule_err(q, "symbol out of range"));
                }
                self.validate_rhs(q, m, r, RuleKind::Sym)?;
            }
            if let Some(r) = &rules.text_default {
                self.validate_rhs(q, m, r, RuleKind::TextDefault)?;
            }
            self.validate_rhs(q, m, &rules.default, RuleKind::Default)?;
            self.validate_rhs(q, m, &rules.eps, RuleKind::Eps)?;
        }
        Ok(())
    }

    fn validate_rhs(&self, q: StateId, m: usize, r: &Rhs, kind: RuleKind) -> Result<(), MftError> {
        for node in rhs_iter(r) {
            match node {
                RhsNode::Param(i) => {
                    if *i >= m {
                        return Err(self
                            .rule_err(q, format!("parameter y{} exceeds rank (m = {m})", i + 1)));
                    }
                }
                RhsNode::Out { label, .. } => {
                    if kind == RuleKind::Eps && *label == OutLabel::Current {
                        return Err(self.rule_err(q, "%t output label in ε-rule"));
                    }
                    if let OutLabel::Sym(s) = label {
                        if s.0 as usize >= self.alphabet.len() {
                            return Err(self.rule_err(q, "output symbol out of range"));
                        }
                    }
                }
                RhsNode::Call { state, input, args } => {
                    if state.idx() >= self.states.len() {
                        return Err(self.rule_err(q, "call to undefined state"));
                    }
                    if kind == RuleKind::Eps && *input != XVar::X0 {
                        return Err(self.rule_err(q, "ε-rule may only use x0"));
                    }
                    if args.len() != self.params_of(*state) {
                        return Err(self.rule_err(
                            q,
                            format!(
                                "call to {} with {} arguments, expected {}",
                                self.name_of(*state),
                                args.len(),
                                self.params_of(*state)
                            ),
                        ));
                    }
                }
            }
        }
        Ok(())
    }

    fn rule_err(&self, q: StateId, msg: impl Into<String>) -> MftError {
        MftError::new(format!("state {}: {}", self.name_of(q), msg.into()))
    }
}

impl fmt::Debug for Mft {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", crate::text::print_mft(self))
    }
}

#[derive(PartialEq, Eq, Clone, Copy)]
enum RuleKind {
    Sym,
    TextDefault,
    Default,
    Eps,
}

/// Validation / construction error.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MftError {
    pub msg: String,
}

impl MftError {
    pub fn new(msg: impl Into<String>) -> Self {
        MftError { msg: msg.into() }
    }
}

impl fmt::Display for MftError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.msg)
    }
}

impl std::error::Error for MftError {}

/// Number of nodes in a rhs forest (calls add one for the x-argument).
pub fn rhs_size(r: &Rhs) -> usize {
    rhs_iter(r)
        .map(|n| {
            if matches!(n, RhsNode::Call { .. }) {
                2
            } else {
                1
            }
        })
        .sum()
}

/// Iterate over every node of a rhs, including nodes nested in output
/// children and call arguments.
pub fn rhs_iter(r: &Rhs) -> RhsIter<'_> {
    RhsIter {
        stack: r.iter().rev().collect(),
    }
}

pub struct RhsIter<'a> {
    stack: Vec<&'a RhsNode>,
}

impl<'a> Iterator for RhsIter<'a> {
    type Item = &'a RhsNode;

    fn next(&mut self) -> Option<&'a RhsNode> {
        let n = self.stack.pop()?;
        match n {
            RhsNode::Out { children, .. } => self.stack.extend(children.iter().rev()),
            RhsNode::Call { args, .. } => {
                for a in args.iter().rev() {
                    self.stack.extend(a.iter().rev());
                }
            }
            RhsNode::Param(_) => {}
        }
        Some(n)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rhs::*;

    /// The doubling FT from §4.2: q(a(x1)x2) → q(x2)q(x2); q(ε) → a.
    fn doubler() -> (Mft, StateId) {
        let mut m = Mft::new();
        let a = m.alphabet.intern_elem("a");
        let q = m.add_state("q", 0);
        m.initial = q;
        m.set_sym_rule(
            q,
            a,
            vec![call(q, XVar::X2, vec![]), call(q, XVar::X2, vec![])],
        );
        m.set_eps_rule(q, vec![out(a, vec![])]);
        (m, q)
    }

    #[test]
    fn build_and_validate() {
        let (m, _) = doubler();
        m.validate().unwrap();
        assert!(m.is_ft());
        assert_eq!(m.rule_count(), 3); // a-rule + default + ε
    }

    #[test]
    fn validation_catches_bad_param() {
        let mut m = Mft::new();
        let q = m.add_state("q", 0);
        m.initial = q;
        m.set_default_rule(q, vec![param(0)]);
        assert!(m.validate().is_err());
    }

    #[test]
    fn validation_catches_arity_mismatch() {
        let mut m = Mft::new();
        let q = m.add_state("q", 0);
        let p = m.add_state("p", 2);
        m.initial = q;
        m.set_default_rule(q, vec![call(p, XVar::X1, vec![vec![]])]); // needs 2 args
        assert!(m.validate().is_err());
    }

    #[test]
    fn validation_rejects_x1_in_eps_rule() {
        let mut m = Mft::new();
        let q = m.add_state("q", 0);
        m.initial = q;
        m.set_eps_rule(q, vec![call(q, XVar::X1, vec![])]);
        assert!(m.validate().is_err());
    }

    #[test]
    fn validation_rejects_current_label_in_eps_rule() {
        let mut m = Mft::new();
        let q = m.add_state("q", 0);
        m.initial = q;
        m.set_eps_rule(q, vec![out_current(vec![])]);
        assert!(m.validate().is_err());
    }

    #[test]
    fn validation_requires_rank1_initial() {
        let mut m = Mft::new();
        let q = m.add_state("q", 1);
        m.initial = q;
        assert!(m.validate().is_err());
    }

    #[test]
    fn stay_state_detection() {
        let mut m = Mft::new();
        let q = m.add_state("q", 1);
        let p = m.add_state("p", 0);
        m.set_stay_rule(q, vec![call(p, XVar::X0, vec![]), param(0)]);
        assert!(m.is_stay_state(q));
        // p has default ε / eps ε — also a stay state (trivially).
        assert!(m.is_stay_state(p));
        m.set_default_rule(p, vec![call(p, XVar::X2, vec![])]);
        assert!(!m.is_stay_state(p));
    }

    #[test]
    fn size_metric_counts_alphabet_and_rules() {
        let (m, _) = doubler();
        // |Σ| = 1; a-rule lhs 4 + rhs 4 (two calls à 2); default lhs 4 + rhs 0;
        // ε lhs 2 + rhs 1.
        assert_eq!(m.size(), 1 + 4 + 4 + 4 + 2 + 1);
    }

    #[test]
    fn rhs_iter_visits_nested() {
        let (m, q) = doubler();
        let r = vec![out(SymId(0), vec![call(q, XVar::X1, vec![]), param(0)])];
        let kinds: Vec<_> = rhs_iter(&r).collect();
        assert_eq!(kinds.len(), 3);
        let _ = m;
    }
}
